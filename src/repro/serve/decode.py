"""Forward-only decode programs on the operator-DAG IR.

One transformer layer of a serving iteration is expressed as a 12-op
:class:`~repro.core.operators.OpGraph` and executed through the same
:class:`~repro.runtime.dag_executor.DagExecutor` the trainer uses — in
its forward-only mode (``retain=``), which streams activations out of
the env as soon as their last reader ran (a decode step holds no tape).

Bindings are built with
:func:`~repro.core.executor_bindings.forward_binding` and close over a
mutable :class:`DecodeState`: the scheduler mutates ``state.batch`` and
``state.layer`` between runs while the program/bindings are built once.
Every anchor's env value is a per-attention-rank list of per-request
payloads — requests never share a kernel, which is the bitwise-equality
contract between continuous-batched and sequential-golden decode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

import numpy as np

from ..core.executor_bindings import OpBinding, forward_binding
from ..core.operators import Op, OpGraph
from ..model.routing import build_dispatch_plan
from ..tensor import Tensor, ops
from .kv_cache import PagedKVCache

__all__ = ["ActiveRequest", "DecodeProgram", "DecodeState",
           "build_decode_graph", "build_decode_bindings",
           "decode_program"]


class ActiveRequest:
    """One admitted request's mutable in-flight state."""

    def __init__(self, request, cache: PagedKVCache, admission_seq: int):
        self.request = request
        self.cache = cache
        self.admission_seq = admission_seq
        #: Tokens committed so far (prompt + generated).
        self.tokens: List[int] = list(request.prompt)
        #: KV positions already committed.
        self.pos = 0
        self.generated: List[int] = []
        #: Per-step ``[vocab]`` logits rows (the argmax inputs) — the
        #: serve_golden invariant compares these bitwise.
        self.logits_log: List[np.ndarray] = []
        #: This iteration's input token ids (prompt on prefill, the
        #: last generated token on decode).
        self.cur_ids: np.ndarray = np.asarray(request.prompt,
                                              dtype=np.int64)
        self.restarts = 0

    @property
    def cur_len(self) -> int:
        return int(self.cur_ids.shape[0])

    @property
    def is_prefill(self) -> bool:
        return self.pos == 0

    @property
    def done(self) -> bool:
        return len(self.generated) >= self.request.max_new_tokens

    def commit(self, next_token: int, logits_row: np.ndarray) -> None:
        """Advance one iteration: KV commit + greedy token append."""
        s = self.cur_len
        self.cache.advance(s)
        self.pos += s
        self.generated.append(int(next_token))
        self.tokens.append(int(next_token))
        self.logits_log.append(logits_row)
        self.cur_ids = np.asarray([next_token], dtype=np.int64)

    def reset(self) -> None:
        """Restart from scratch (crash re-queue / eviction): greedy
        decode is deterministic, so the replay is bitwise-identical to
        an uninterrupted run."""
        self.cache.release()
        self.tokens = list(self.request.prompt)
        self.pos = 0
        self.generated = []
        self.logits_log = []
        self.cur_ids = np.asarray(self.request.prompt, dtype=np.int64)
        self.restarts += 1


@dataclass
class DecodeProgram:
    """Minimal program contract for :class:`DagExecutor` (no tiles)."""

    graph: OpGraph
    order: List[str]
    tile_graph: Optional[OpGraph] = None


@dataclass
class DecodeState:
    """Mutable context the decode bindings close over."""

    model: Any
    placement: Any
    #: Per-attention-rank lists of :class:`ActiveRequest`.
    batch: List[List[ActiveRequest]] = field(default_factory=list)
    #: Layer the next DAG run computes.
    layer: int = 0
    #: Fan-out over attention ranks: sequential list-map by default;
    #: the threaded scheduler swaps in a thread-pool map.
    map_ranks: Callable[..., List[Any]] = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.map_ranks is None:
            self.map_ranks = lambda fn, xs: [fn(x) for x in xs]

    @property
    def block(self):
        return self.model.blocks[self.layer]


def build_decode_graph() -> OpGraph:
    """One serving layer as IR ops (Fig. 20 flow, forward only)."""
    return OpGraph([
        Op("attn_ln", "memory", deps=()),
        Op("qkv", "gemm", deps=("attn_ln",)),
        Op("rope_append", "memory", deps=("qkv",)),
        Op("attend", "attn", deps=("rope_append",)),
        Op("attn_out", "gemm", deps=("attend",)),
        Op("attn_residual", "memory", deps=("attn_out",)),
        Op("ffn_ln", "memory", deps=("attn_residual",)),
        Op("route", "gemm", deps=("ffn_ln",)),
        Op("moe_dispatch", "comm", comm_pattern="a2a", comm_scope="inter",
           deps=("route",)),
        Op("moe_experts", "gemm", deps=("moe_dispatch",)),
        Op("moe_combine", "comm", comm_pattern="a2a", comm_scope="inter",
           deps=("moe_experts",)),
        Op("ffn_residual", "memory",
           deps=("attn_residual", "moe_combine")),
    ])


def _per_item(state: DecodeState, fn) -> Callable:
    """Lift a per-request function over the rank/batch nesting."""
    def handler(ctx):
        def one_rank(pair):
            rank_index, values = pair
            return [fn(item, val)
                    for item, val in zip(state.batch[rank_index], values)]
        return state.map_ranks(
            one_rank, [(i, v) for i, v in enumerate(ctx)])
    return handler


def build_decode_bindings(state: DecodeState) -> List[OpBinding]:
    """Numeric handlers for the decode graph, closing over ``state``."""
    model = state.model
    attn_cfg = model.config

    def lift(op: str, reads, fn, covers=None) -> OpBinding:
        per = _per_item(state, fn)

        def seq(ctx):
            value_lists = [ctx.env[r] for r in reads]
            # zip the reads per rank: fn receives a tuple of values
            merged = [list(zip(*vals)) if len(reads) > 1 else
                      [(v,) for v in vals[0]]
                      for vals in
                      [[vl[i] for vl in value_lists]
                       for i in range(len(state.batch))]]
            return per(merged)
        return forward_binding(op, reads, seq, covers=covers)

    def attn_ln(item, vals):
        (hidden,) = vals
        return state.block.ln1(hidden)

    def qkv(item, vals):
        (x,) = vals
        return state.block.attn.qkv_proj(x)

    def rope_append(item: ActiveRequest, vals):
        (qkv_t,) = vals
        attn = state.block.attn
        s = item.cur_len
        q, k, v = attn.split_qkv(qkv_t, 1, s)
        # Prefill from position 0 takes the positions=None path — the
        # exact code the reference model runs, so prefill logits are
        # bitwise-equal to a whole-sequence forward of the prompt.
        if item.pos == 0:
            positions = None
        else:
            positions = np.arange(item.pos, item.pos + s,
                                  dtype=np.float64)
        q_rot = ops.rope_rotate(q, attn.rope_base, positions)
        k_rot = ops.rope_rotate(k, attn.rope_base, positions)
        item.cache.put(state.layer, k_rot.data[0], v.data[0], item.pos)
        k_cache, v_cache = item.cache.gather(state.layer, item.pos + s)
        return (q_rot, Tensor(k_cache[None]), Tensor(v_cache[None]))

    def attend(item, vals):
        ((q_rot, k_cache, v_cache),) = vals
        return state.block.attn.decode_attend(q_rot, k_cache, v_cache)

    def attn_out(item: ActiveRequest, vals):
        (ctx_heads,) = vals
        attn = state.block.attn
        flat = ctx_heads.reshape(1, item.cur_len, attn.hidden_size)
        return attn.out_proj(flat)

    def attn_residual(item, vals):
        hidden, a_out = vals
        return hidden + a_out

    def ffn_ln(item, vals):
        (x,) = vals
        return state.block.ln2(x)

    def route(item: ActiveRequest, vals):
        (x,) = vals
        moe = state.block.moe
        x_flat = x.reshape(-1, attn_cfg.hidden_size)
        routing, weights, _aux = moe.router(x_flat)
        plan = build_dispatch_plan(routing, moe.n_experts)
        ffn_in = ops.take_rows(x_flat, plan.token_of_row)
        return {
            "t": x_flat.shape[0],
            "plan": plan,
            "weights": weights.data,
            "ffn_in": ffn_in.data,
        }

    def moe_bridge(ctx):
        routed = ctx.env["route"]
        combined = state.placement.moe_forward(state.block.moe, routed)
        out = []
        for rank_combined, rank_batch in zip(combined, state.batch):
            out.append([
                Tensor(rows.reshape(1, item.cur_len,
                                    attn_cfg.hidden_size))
                for rows, item in zip(rank_combined, rank_batch)
            ])
        return out

    def ffn_residual(item, vals):
        ln2_in, moe_out = vals
        return ln2_in + moe_out

    return [
        lift("attn_ln", ("hidden",), attn_ln),
        lift("qkv", ("attn_ln",), qkv),
        lift("rope_append", ("qkv",), rope_append),
        lift("attend", ("rope_append",), attend),
        lift("attn_out", ("attend",), attn_out),
        lift("attn_residual", ("hidden", "attn_out"), attn_residual),
        lift("ffn_ln", ("attn_residual",), ffn_ln),
        lift("route", ("ffn_ln",), route),
        forward_binding("moe_dispatch", ("route",), moe_bridge,
                        covers=("moe_dispatch", "moe_experts",
                                "moe_combine")),
        lift("ffn_residual", ("attn_residual", "moe_dispatch"),
             ffn_residual),
    ]


def decode_program() -> DecodeProgram:
    """The decode graph with its (trivially topological) op order."""
    graph = build_decode_graph()
    return DecodeProgram(graph=graph, order=[op.name for op in graph])
