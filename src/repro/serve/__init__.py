"""Continuous-batching MoE inference on the operator-DAG IR.

The serving half of the repo: paged KV caches (:mod:`.kv_cache`),
the forward-only decode program (:mod:`.decode`), DisagMoE-style
disaggregated attention/expert placement over the repo's collectives
(:mod:`.placement`), deterministic arrival traces and the virtual clock
(:mod:`.arrivals`), and the iteration-level scheduler itself
(:mod:`.scheduler`).
"""

from .arrivals import (Request, VirtualClock, bursty_trace,
                       latency_summary, poisson_trace)
from .decode import (ActiveRequest, DecodeProgram, DecodeState,
                     build_decode_bindings, build_decode_graph,
                     decode_program)
from .kv_cache import (BlockAllocator, KVLeakError, KVPool, OutOfKVBlocks,
                       PagedKVCache)
from .placement import COMBINE_TAG, DISPATCH_TAG, DisaggregatedPlacement
from .scheduler import (RequestResult, ServeEngine, ServeResult,
                        golden_decode)

__all__ = [
    "ActiveRequest",
    "BlockAllocator",
    "COMBINE_TAG",
    "DISPATCH_TAG",
    "DecodeProgram",
    "DecodeState",
    "DisaggregatedPlacement",
    "KVLeakError",
    "KVPool",
    "OutOfKVBlocks",
    "PagedKVCache",
    "Request",
    "RequestResult",
    "ServeEngine",
    "ServeResult",
    "VirtualClock",
    "bursty_trace",
    "build_decode_bindings",
    "build_decode_graph",
    "decode_program",
    "golden_decode",
    "latency_summary",
    "poisson_trace",
]
