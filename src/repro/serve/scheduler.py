"""Continuous-batching MoE serving engine.

Iteration-level scheduling in the vLLM/Orca style, on top of this
repo's own subsystems: the per-layer decode program runs through the
:class:`~repro.runtime.dag_executor.DagExecutor` (forward-only
``retain=`` mode), KV lives in the paged pool of
:mod:`repro.serve.kv_cache`, MoE crosses the disaggregated
attention/expert bridge of :mod:`repro.serve.placement`, request
latencies land in the :class:`~repro.obs.Tracer` as closed spans on the
injected clock, and a mid-stream :class:`~repro.ft.RankCrash` re-queues
the in-flight requests instead of failing the run.

Determinism contract: per-request compute never crosses request
boundaries, greedy decode is a pure function of the token prefix, and
crash/eviction recovery replays a request from scratch — so every
admitted request's generated tokens *and* per-step logits are
bitwise-identical to an unbatched sequential run of the same engine
(the ``serve_golden`` invariant).
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, List, Optional, Sequence

import numpy as np

from ..comm import World
from ..core.config import ServeConfig
from ..ft import RankCrash
from ..runtime.dag_executor import DagExecutor
from ..tensor import ops
from .arrivals import Request, VirtualClock, latency_summary
from .decode import (ActiveRequest, DecodeState, build_decode_bindings,
                     decode_program)
from .kv_cache import KVLeakError, KVPool, OutOfKVBlocks, PagedKVCache
from .placement import DisaggregatedPlacement

__all__ = ["RequestResult", "ServeResult", "ServeEngine", "golden_decode"]


@dataclass
class RequestResult:
    """One completed request's output + timing."""

    request_id: int
    prompt: tuple
    generated: List[int]
    logits: List[np.ndarray]
    arrival_time: float
    finish_time: float
    restarts: int

    @property
    def latency(self) -> float:
        return self.finish_time - self.arrival_time


@dataclass
class ServeResult:
    """Everything one engine run produced."""

    results: Dict[int, RequestResult]
    n_iterations: int
    n_crashes: int
    n_evictions: int
    latency: Dict[str, float] = field(default_factory=dict)

    def tokens_of(self, request_id: int) -> List[int]:
        """Generated token ids of one completed request."""
        return self.results[request_id].generated


class ServeEngine:
    """Admits, batches, decodes, and completes inference requests."""

    def __init__(self, model, config: ServeConfig,
                 world: Optional[World] = None,
                 tracer: Optional[Any] = None,
                 clock: Optional[VirtualClock] = None):
        self.model = model
        self.config = config
        self.clock = clock if clock is not None else VirtualClock()
        self.tracer = tracer
        self.placement = DisaggregatedPlacement(
            model.config.n_experts, config, world=world)
        if tracer is not None:
            self.placement.world.attach_tracer(tracer)
        attn = model.blocks[0].attn
        self.pool = KVPool(
            n_layers=model.config.n_layers,
            n_kv_heads=attn.n_kv_heads,
            head_dim=attn.head_dim,
            n_blocks=config.kv_blocks,
            block_size=config.kv_block_size,
            dtype=np.float64,
        )
        self.state = DecodeState(model=model, placement=self.placement)
        self.state.batch = [[] for _ in self.placement.attn_ranks]
        self._program = decode_program()
        self._executor = DagExecutor(
            self._program, build_decode_bindings(self.state),
            self.placement.bridge.world.group(self.placement.attn_ranks),
            inputs=("hidden",))
        self._pool_exec: Optional[ThreadPoolExecutor] = None
        if config.execution == "threaded":
            self._pool_exec = ThreadPoolExecutor(
                max_workers=len(self.placement.attn_ranks),
                thread_name_prefix="serve-attn")
            self.state.map_ranks = self._threaded_map
        self._admission_seq = 0
        #: Replays per request id (crash re-queues + evictions), carried
        #: across re-admissions.
        self._restarts: Dict[int, int] = {}
        self.n_iterations = 0
        self.n_crashes = 0
        self.n_evictions = 0
        self._shutdown = False

    # -- worker fan-out -------------------------------------------------

    def _threaded_map(self, fn, xs: Sequence[Any]) -> List[Any]:
        """One task per attention rank; workers do pure per-request
        numpy compute and never touch the tracer's span stacks."""
        assert self._pool_exec is not None
        return list(self._pool_exec.map(fn, xs))

    # -- admission / eviction -------------------------------------------

    @property
    def active(self) -> List[ActiveRequest]:
        """All in-flight requests, in admission order."""
        items = [it for rank in self.state.batch for it in rank]
        return sorted(items, key=lambda it: it.admission_seq)

    def _admit(self, waiting: Deque[Request]) -> None:
        while waiting and len(self.active) < self.config.max_batch_size:
            req = waiting[0]
            if req.arrival_time > self.clock():
                break
            worst = req.prompt_len + req.max_new_tokens
            if -(-worst // self.config.kv_block_size) > \
                    self.pool.allocator.n_blocks:
                raise OutOfKVBlocks(
                    f"request {req.request_id} needs more KV blocks "
                    f"than the pool holds ({self.pool.allocator.n_blocks})"
                )
            cache = PagedKVCache(self.pool)
            try:
                cache.ensure_capacity(req.prompt_len)
            except OutOfKVBlocks:
                break  # defer until completions free blocks
            waiting.popleft()
            item = ActiveRequest(req, cache, self._admission_seq)
            item.restarts = self._restarts.get(req.request_id, 0)
            self._admission_seq += 1
            rank = self.placement.rank_of_request(req.request_id)
            self.state.batch[rank].append(item)

    def _remove(self, item: ActiveRequest) -> None:
        for rank in self.state.batch:
            if item in rank:
                rank.remove(item)
                return
        raise KeyError(f"request {item.request.request_id} not active")

    def _evict(self, item: ActiveRequest,
               waiting: Deque[Request]) -> None:
        """Return a request to the waiting queue, freeing its blocks.

        The victim restarts from scratch on re-admission; determinism
        makes the replay bitwise-identical, so eviction never perturbs
        outputs — only latency.
        """
        item.reset()
        self._remove(item)
        self._restarts[item.request.request_id] = item.restarts
        waiting.appendleft(item.request)
        self.n_evictions += 1

    def _grow_caches(self, waiting: Deque[Request]) -> None:
        """Reserve this iteration's KV before any compute; evict the
        newest-admitted victims when the pool is exhausted."""
        for item in self.active:
            if item not in self.active:  # evicted by a prior pass
                continue
            while True:
                try:
                    item.cache.ensure_capacity(item.cur_len)
                    break
                except OutOfKVBlocks:
                    victims = [v for v in self.active if v is not item]
                    if not victims:
                        self._evict(item, waiting)
                        break
                    self._evict(victims[-1], waiting)

    # -- the iteration ---------------------------------------------------

    def _iteration_cost(self) -> float:
        c = self.config
        prefill_tokens = sum(it.cur_len for it in self.active
                             if it.is_prefill)
        decode_requests = sum(1 for it in self.active
                              if not it.is_prefill)
        return (c.iteration_cost + c.prefill_token_cost * prefill_tokens
                + c.decode_token_cost * decode_requests)

    def _forward(self) -> None:
        """One mixed prefill+decode iteration over the active batch."""
        model = self.model
        hidden = [
            [ops.embedding(model.embedding, item.cur_ids[None, :])
             for item in rank]
            for rank in self.state.batch
        ]
        for layer in range(model.config.n_layers):
            self.state.layer = layer
            result = self._executor.run({"hidden": hidden},
                                        tracer=self.tracer,
                                        retain=("ffn_residual",))
            hidden = result.env["ffn_residual"]
        for rank_hidden, rank_batch in zip(hidden, self.state.batch):
            for h, item in zip(rank_hidden, rank_batch):
                logits = model.lm_head(model.final_norm(h))
                row = np.ascontiguousarray(logits.data[0, -1])
                item.commit(int(np.argmax(row)), row)

    def _requeue_all(self, waiting: Deque[Request]) -> None:
        """Crash recovery: reset every in-flight request and put it
        back at the head of the queue (admission order preserved)."""
        for item in reversed(self.active):
            item.reset()
            self._remove(item)
            self._restarts[item.request.request_id] = item.restarts
            waiting.appendleft(item.request)

    def _record_request_span(self, item: ActiveRequest) -> None:
        if self.tracer is None:
            return
        self.tracer.record_span(
            f"request-{item.request.request_id}",
            start=item.request.arrival_time,
            end=self.clock(),
            cat="serve.request",
            pid="serve",
            new_tokens=len(item.generated),
            prompt_tokens=item.request.prompt_len,
            restarts=item.restarts,
        )

    def run(self, requests: Sequence[Request]) -> ServeResult:
        """Serve a whole trace to completion."""
        if self._shutdown:
            raise RuntimeError("engine already shut down")
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate request ids in trace")
        waiting: Deque[Request] = deque(
            sorted(requests, key=lambda r: (r.arrival_time,
                                            r.request_id)))
        results: Dict[int, RequestResult] = {}
        while waiting or self.active:
            if not self.active and waiting:
                self.clock.advance_to(waiting[0].arrival_time)
            self._admit(waiting)
            if not self.active:
                raise RuntimeError(
                    "no request admissible despite an empty batch"
                )
            self._grow_caches(waiting)
            if not self.active:
                continue
            t0 = self.clock()
            try:
                self._forward()
            except RankCrash:
                self.n_crashes += 1
                self._requeue_all(waiting)
                self.clock.advance(self.config.iteration_cost)
                continue
            self.clock.advance(self._iteration_cost())
            self.n_iterations += 1
            if self.tracer is not None:
                self.tracer.record_span(
                    f"iteration-{self.n_iterations}", start=t0,
                    end=self.clock(), cat="serve.iteration",
                    pid="serve", batch=len(self.active))
            for item in list(self.active):
                if item.done:
                    item.cache.release()
                    self._remove(item)
                    self._record_request_span(item)
                    results[item.request.request_id] = RequestResult(
                        request_id=item.request.request_id,
                        prompt=item.request.prompt,
                        generated=list(item.generated),
                        logits=list(item.logits_log),
                        arrival_time=item.request.arrival_time,
                        finish_time=self.clock(),
                        restarts=item.restarts,
                    )
        latency = (latency_summary(self.tracer)
                   if self.tracer is not None else {})
        return ServeResult(results=results,
                           n_iterations=self.n_iterations,
                           n_crashes=self.n_crashes,
                           n_evictions=self.n_evictions,
                           latency=latency)

    # -- teardown ---------------------------------------------------------

    def shutdown(self) -> None:
        """Release resources and enforce the leak contract: every KV
        block freed, every tracer span stack empty."""
        if self._shutdown:
            return
        self._shutdown = True
        for item in self.active:
            item.cache.release()
            self._remove(item)
        if self._pool_exec is not None:
            self._pool_exec.shutdown(wait=True)
        self.pool.allocator.assert_no_leaks()
        if self.tracer is not None:
            open_stacks = {tid: depth for tid, depth
                           in self.tracer.thread_stacks().items()
                           if depth}
            if open_stacks:
                raise KVLeakError(
                    f"tracer span stacks still open at shutdown: "
                    f"{open_stacks}"
                )


def golden_decode(model, config: ServeConfig,
                  requests: Sequence[Request],
                  tracer: Optional[Any] = None) -> ServeResult:
    """The unbatched sequential reference: the *same* engine code with
    ``max_batch_size=1`` and no faults — each request runs alone, so
    its output is the per-request ground truth the continuous batcher
    must match bitwise."""
    golden_cfg = replace(config, max_batch_size=1,
                         execution="sequential")
    engine = ServeEngine(model, golden_cfg, tracer=tracer)
    try:
        return engine.run(requests)
    finally:
        engine.shutdown()
