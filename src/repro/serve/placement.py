"""Disaggregated attention/expert placement for MoE serving.

DisagMoE-style placement: the world is split into an *attention* group
(ranks ``[0, A)`` — each holds a full replica of the dense weights and
hosts a slice of the request batch) and an *expert* group (ranks
``[A, A+E)`` — each holds ``n_experts / E`` contiguous experts).  Every
MoE layer crosses the bridge twice through the repo's own uneven
all-to-all: ``serve:dispatch_a2a`` carries routed token rows attention →
experts, ``serve:combine_a2a`` carries FC2 outputs back.  Both legs go
through :func:`~repro.parallel.dist_ops.dist_all_to_all_uneven`, so the
:class:`~repro.comm.CommLedger` records exact per-rank wire bytes under
``serve:``-prefixed tags — separate buckets from the training Eq. 1–4
auditor, which stays balanced.

Bitwise contract: every GEMM is per-(request, expert) on the same
contiguous rows the reference :class:`~repro.model.moe.MoELayer` would
use, and the combine applies the identical ``np.add.at`` scatter — so a
request's MoE output is bitwise independent of which other requests
share the iteration.  That independence is what lets the continuous
batcher match the unbatched sequential golden bit-for-bit.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ..comm import World
from ..core.config import ServeConfig
from ..parallel.dist_ops import dist_all_to_all_uneven
from ..tensor import Tensor

__all__ = ["DisaggregatedPlacement", "DISPATCH_TAG", "COMBINE_TAG"]

DISPATCH_TAG = "serve:dispatch_a2a"
COMBINE_TAG = "serve:combine_a2a"


class DisaggregatedPlacement:
    """Rank layout + the MoE bridge collective for serving."""

    def __init__(self, n_experts: int, config: ServeConfig,
                 world: Optional[World] = None):
        a, e = config.attention_ranks, config.expert_ranks
        if n_experts % e != 0:
            raise ValueError(
                f"n_experts={n_experts} not divisible by "
                f"expert_ranks={e}"
            )
        self.config = config
        self.world = world if world is not None else World(a + e)
        if self.world.size != a + e:
            raise ValueError(
                f"world size {self.world.size} != attention_ranks + "
                f"expert_ranks = {a + e}"
            )
        #: Bridge group: all ranks; dispatch/combine a2a runs over it.
        self.bridge = self.world.full_group()
        self.attn_ranks = list(range(a))
        self.expert_ranks = list(range(a, a + e))
        self.n_experts = n_experts
        #: Contiguous experts per expert rank.
        self.experts_per_rank = n_experts // e

    def rank_of_request(self, request_id: int) -> int:
        """Attention-rank index hosting a request (static round-robin)."""
        return request_id % len(self.attn_ranks)

    def moe_forward(self, moe, routed: List[List[Dict[str, Any]]]
                    ) -> List[List[np.ndarray]]:
        """One MoE layer across the bridge for the whole active batch.

        ``routed[i]`` holds attention rank ``i``'s per-request route
        results (dicts from the ``route`` binding: ``t``, ``plan``,
        ``weights``, ``ffn_in``).  Returns the per-request combined
        ``[t, hidden]`` arrays in the same nesting.
        """
        a = len(self.attn_ranks)
        e = len(self.expert_ranks)
        pe = self.experts_per_rank
        n = self.bridge.size
        hidden = moe.hidden_size
        dtype = np.float64

        # --- dispatch: reorder each attention rank's routed rows by
        # destination expert rank.  Plan rows are already sorted by
        # expert, so a request's rows for expert rank j are one
        # contiguous slice; the send tensor is (dest-major,
        # request-minor) concatenation.
        send_tensors: List[Tensor] = []
        send_splits: List[List[int]] = []
        # seg_meta[j][src] = [(item, counts per local expert), ...] in
        # the request order rank ``src`` sent them — exactly the row
        # order expert rank j receives within src's chunk.
        seg_meta: List[List[List[Any]]] = [
            [[] for _ in range(a)] for _ in range(e)
        ]
        for i in range(a):
            pieces: List[List[np.ndarray]] = [[] for _ in range(e)]
            for item in routed[i]:
                plan = item["plan"]
                bounds = np.concatenate(
                    [[0], np.cumsum(plan.expert_counts)])
                for j in range(e):
                    lo = int(bounds[j * pe])
                    hi = int(bounds[(j + 1) * pe])
                    pieces[j].append(item["ffn_in"][lo:hi])
                    counts = plan.expert_counts[j * pe:(j + 1) * pe]
                    seg_meta[j][i].append((item, counts))
            flat = [seg for j in range(e) for seg in pieces[j]]
            if flat:
                send = np.concatenate(flat, axis=0)
            else:
                send = np.zeros((0, hidden), dtype=dtype)
            splits = [0] * n
            for j in range(e):
                splits[self.expert_ranks[j]] = int(
                    sum(seg.shape[0] for seg in pieces[j]))
            send_tensors.append(Tensor(np.ascontiguousarray(send)))
            send_splits.append(splits)
        for _ in range(e):
            send_tensors.append(Tensor(np.zeros((0, hidden), dtype=dtype)))
            send_splits.append([0] * n)

        received = dist_all_to_all_uneven(
            self.bridge, send_tensors, send_splits, tag=DISPATCH_TAG)

        # --- expert compute: walk each expert rank's receive buffer in
        # arrival order (source-rank-major, request-minor, local-expert-
        # minor) and run one GEMM per (request, expert) segment — the
        # same contiguous operand the reference grouped_expert_forward
        # uses, so outputs are bitwise-identical per request.
        back_tensors: List[Tensor] = []
        back_splits: List[List[int]] = []
        for _ in range(a):
            back_tensors.append(Tensor(np.zeros((0, hidden), dtype=dtype)))
            back_splits.append([0] * n)
        for j in range(e):
            buf = received[self.expert_ranks[j]].data
            out_parts: List[np.ndarray] = []
            rows_from_src = [0] * a
            off = 0
            for src in range(a):
                for item, counts in seg_meta[j][src]:
                    for le in range(pe):
                        c = int(counts[le])
                        if c == 0:
                            continue
                        seg = buf[off:off + c]
                        expert = moe.experts[j * pe + le]
                        out_parts.append(expert(Tensor(seg)).data)
                        off += c
                        rows_from_src[src] += c
            if off != buf.shape[0]:
                raise RuntimeError(
                    f"expert rank {j}: consumed {off} of "
                    f"{buf.shape[0]} received rows"
                )
            if out_parts:
                out = np.concatenate(out_parts, axis=0)
            else:
                out = np.zeros((0, hidden), dtype=dtype)
            splits = [0] * n
            for src in range(a):
                splits[src] = rows_from_src[src]
            back_tensors.append(Tensor(np.ascontiguousarray(out)))
            back_splits.append(splits)

        combined = dist_all_to_all_uneven(
            self.bridge, back_tensors, back_splits, tag=COMBINE_TAG)

        # --- reassemble per request: rank i's receive buffer is
        # (expert-rank-major, request-minor); a request's plan-order
        # rows are the j-ascending concatenation of its segments, which
        # is exactly expert-ascending order.  Then the reference
        # combine: gate-scale after FC2, np.add.at scatter per token.
        outputs: List[List[np.ndarray]] = []
        for i in range(a):
            buf = combined[i].data
            # chunk offsets per expert rank within rank i's buffer
            chunk_off = [0] * e
            pos = 0
            for j in range(e):
                chunk_off[j] = pos
                pos += sum(
                    int(counts.sum())
                    for item, counts in seg_meta[j][i]
                )
            if pos != buf.shape[0]:
                raise RuntimeError(
                    f"attention rank {i}: expected {pos} combined rows, "
                    f"received {buf.shape[0]}"
                )
            # per-(j, item) start offsets in request order
            item_off: List[Dict[int, int]] = [dict() for _ in range(e)]
            for j in range(e):
                cursor = chunk_off[j]
                for item, counts in seg_meta[j][i]:
                    item_off[j][id(item)] = cursor
                    cursor += int(counts.sum())
            rank_out: List[np.ndarray] = []
            for item in routed[i]:
                plan = item["plan"]
                parts: List[np.ndarray] = []
                for j in range(e):
                    c = int(plan.expert_counts[
                        j * pe:(j + 1) * pe].sum())
                    if c == 0:
                        continue
                    lo = item_off[j][id(item)]
                    parts.append(buf[lo:lo + c])
                if parts:
                    fc2_out = np.concatenate(parts, axis=0)
                else:
                    fc2_out = np.zeros((0, hidden), dtype=dtype)
                w_rows = item["weights"][plan.token_of_row,
                                         plan.slot_of_row]
                scaled = fc2_out * w_rows.reshape(-1, 1)
                out = np.zeros((item["t"], hidden), dtype=dtype)
                np.add.at(out, plan.token_of_row, scaled)
                rank_out.append(out)
            outputs.append(rank_out)
        return outputs
