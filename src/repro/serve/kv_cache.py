"""Paged KV caches for continuous-batching decode.

vLLM-style paged attention, sized for GQA: the pool stores
``n_kv_heads = n_heads / gqa_ratio`` heads per position (the fused QKV
projection is sliced by :meth:`~repro.model.layers.SelfAttention.split_qkv`,
so only the K/V slices ever land here), in fixed-size token blocks
handed out by a free-list allocator.  A request owns a block table per
its lifetime; eviction and completion return every block, and the
scheduler's shutdown path asserts ``allocated == freed`` — the leak
contract of ISSUE 9.

Keys are cached *post-RoPE* (rotation only depends on the absolute
position, which never changes once written); values are cached raw.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

__all__ = ["KVLeakError", "OutOfKVBlocks", "BlockAllocator", "KVPool",
           "PagedKVCache"]


class KVLeakError(RuntimeError):
    """Blocks (or tracer span stacks) survived scheduler shutdown."""


class OutOfKVBlocks(RuntimeError):
    """The pool cannot satisfy an allocation (caller evicts/defers)."""


class BlockAllocator:
    """LIFO free-list over a fixed block pool, with leak accounting."""

    def __init__(self, n_blocks: int):
        if n_blocks < 1:
            raise ValueError(f"n_blocks must be >= 1, got {n_blocks}")
        self.n_blocks = n_blocks
        self._free: List[int] = list(range(n_blocks - 1, -1, -1))
        self.allocated_total = 0
        self.freed_total = 0

    @property
    def free_blocks(self) -> int:
        return len(self._free)

    @property
    def in_use(self) -> int:
        return self.n_blocks - len(self._free)

    def allocate(self, n: int = 1) -> List[int]:
        """Take ``n`` blocks all-or-nothing; raises :class:`OutOfKVBlocks`."""
        if n < 0:
            raise ValueError(f"cannot allocate {n} blocks")
        if n > len(self._free):
            raise OutOfKVBlocks(
                f"need {n} KV blocks, only {len(self._free)} of "
                f"{self.n_blocks} free"
            )
        taken = [self._free.pop() for _ in range(n)]
        self.allocated_total += n
        return taken

    def free(self, blocks: List[int]) -> None:
        """Return blocks to the pool; double frees are rejected."""
        for b in blocks:
            if not 0 <= b < self.n_blocks:
                raise ValueError(f"block id {b} out of range")
            if b in self._free:
                raise ValueError(f"double free of block {b}")
            self._free.append(b)
        self.freed_total += len(blocks)

    def assert_no_leaks(self) -> None:
        """Shutdown contract: every allocated block was freed."""
        if self.in_use or self.allocated_total != self.freed_total:
            raise KVLeakError(
                f"KV block leak: {self.in_use} blocks still held "
                f"(allocated {self.allocated_total}, freed "
                f"{self.freed_total})"
            )


class KVPool:
    """Per-attention-rank backing store for every request's KV blocks.

    Layout ``[n_layers, n_blocks, block_size, n_kv_heads, head_dim]``
    for K and V separately — the GQA saving is structural: the head
    axis is ``n_kv_heads``, not ``n_heads``.
    """

    def __init__(self, n_layers: int, n_kv_heads: int, head_dim: int,
                 n_blocks: int, block_size: int, dtype=np.float64):
        self.n_layers = n_layers
        self.n_kv_heads = n_kv_heads
        self.head_dim = head_dim
        self.block_size = block_size
        self.allocator = BlockAllocator(n_blocks)
        shape = (n_layers, n_blocks, block_size, n_kv_heads, head_dim)
        self.k = np.zeros(shape, dtype=dtype)
        self.v = np.zeros(shape, dtype=dtype)

    def bytes_in_use(self) -> int:
        """Bytes of pool storage currently owned by live requests."""
        per_block = (2 * self.n_layers * self.block_size
                     * self.n_kv_heads * self.head_dim
                     * self.k.itemsize)
        return self.allocator.in_use * per_block


class PagedKVCache:
    """One request's view of the pool: a block table plus a length.

    ``put`` writes post-RoPE K rows and raw V rows for one layer at an
    explicit position offset (every layer of an iteration writes the
    same positions); ``advance`` commits the new tokens once per
    iteration after all layers ran.  ``gather`` materializes the
    contiguous ``[T, n_kv_heads, head_dim]`` arrays attention consumes
    — copies of identical values, so batched and sequential decode
    read bitwise-equal operands.
    """

    def __init__(self, pool: KVPool):
        self.pool = pool
        self.blocks: List[int] = []
        self.length = 0

    @property
    def capacity(self) -> int:
        return len(self.blocks) * self.pool.block_size

    def blocks_needed(self, n_new: int) -> int:
        """Blocks to allocate before appending ``n_new`` tokens."""
        total = self.length + n_new
        have = len(self.blocks)
        need = -(-total // self.pool.block_size)  # ceil div
        return max(0, need - have)

    def ensure_capacity(self, n_new: int) -> None:
        """Grow the block table to hold ``n_new`` more tokens."""
        need = self.blocks_needed(n_new)
        if need:
            self.blocks.extend(self.pool.allocator.allocate(need))

    def _slots(self, start: int, count: int) -> List[Tuple[int, int, int]]:
        """(block_id, offset_in_block, run_length) covering a span."""
        out = []
        pos = start
        remaining = count
        bs = self.pool.block_size
        while remaining > 0:
            block = self.blocks[pos // bs]
            off = pos % bs
            run = min(bs - off, remaining)
            out.append((block, off, run))
            pos += run
            remaining -= run
        return out

    def put(self, layer: int, k_rows: np.ndarray, v_rows: np.ndarray,
            start: int) -> None:
        """Write ``[s, n_kv_heads, head_dim]`` K/V rows at ``start``."""
        count = k_rows.shape[0]
        if start + count > self.capacity:
            raise OutOfKVBlocks(
                f"writing positions [{start}, {start + count}) exceeds "
                f"capacity {self.capacity}; call ensure_capacity first"
            )
        row = 0
        for block, off, run in self._slots(start, count):
            self.pool.k[layer, block, off:off + run] = \
                k_rows[row:row + run]
            self.pool.v[layer, block, off:off + run] = \
                v_rows[row:row + run]
            row += run

    def advance(self, n_new: int) -> None:
        """Commit ``n_new`` tokens (once per iteration, after all layers)."""
        self.length += n_new

    def gather(self, layer: int, upto: int) -> Tuple[np.ndarray,
                                                     np.ndarray]:
        """Contiguous ``[upto, n_kv_heads, head_dim]`` K and V arrays."""
        k_parts = []
        v_parts = []
        for block, off, run in self._slots(0, upto):
            k_parts.append(self.pool.k[layer, block, off:off + run])
            v_parts.append(self.pool.v[layer, block, off:off + run])
        if not k_parts:
            empty = np.zeros((0, self.pool.n_kv_heads,
                              self.pool.head_dim), dtype=self.pool.k.dtype)
            return empty, empty.copy()
        return (np.concatenate(k_parts, axis=0),
                np.concatenate(v_parts, axis=0))

    def release(self) -> None:
        """Return every block to the allocator (eviction/completion)."""
        if self.blocks:
            self.pool.allocator.free(self.blocks)
            self.blocks = []
        self.length = 0
