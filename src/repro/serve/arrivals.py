"""Request traces and the deterministic serving clock.

A serving benchmark is only reproducible if both the *workload* and the
*clock* are: :func:`poisson_trace` / :func:`bursty_trace` draw seeded
arrival processes, and :class:`VirtualClock` is the injected time source
the scheduler advances by its modelled per-iteration cost — so latency
percentiles are exact, CI-stable numbers rather than wall-clock noise.

The clock satisfies the :class:`~repro.obs.Tracer` ``clock`` protocol
(zero-arg callable returning seconds), which is how the same instant
flows scheduler → per-request spans → the percentile summary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["Request", "VirtualClock", "poisson_trace", "bursty_trace",
           "latency_summary"]


@dataclass(frozen=True)
class Request:
    """One inference request: a prompt and a generation budget."""

    request_id: int
    prompt: tuple
    max_new_tokens: int
    arrival_time: float = 0.0

    def __post_init__(self):
        if len(self.prompt) < 1:
            raise ValueError("prompt must hold at least one token")
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got {self.max_new_tokens}"
            )
        if self.arrival_time < 0:
            raise ValueError(
                f"arrival_time must be >= 0, got {self.arrival_time}"
            )

    @property
    def prompt_len(self) -> int:
        return len(self.prompt)


class VirtualClock:
    """A deterministic clock the scheduler advances explicitly."""

    def __init__(self, start: float = 0.0):
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> float:
        """Move forward by ``dt`` seconds; returns the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance clock by {dt}")
        self.now += dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Jump forward to ``t`` (no-op if already past it)."""
        self.now = max(self.now, float(t))
        return self.now


def _draw_requests(arrival_times: Sequence[float], vocab: int,
                   rng: np.random.Generator,
                   prompt_len: tuple, max_new_tokens: tuple
                   ) -> List[Request]:
    lo_p, hi_p = prompt_len
    lo_n, hi_n = max_new_tokens
    out = []
    for i, t in enumerate(arrival_times):
        plen = int(rng.integers(lo_p, hi_p + 1))
        nnew = int(rng.integers(lo_n, hi_n + 1))
        prompt = tuple(int(x) for x in rng.integers(0, vocab, size=plen))
        out.append(Request(request_id=i, prompt=prompt,
                           max_new_tokens=nnew, arrival_time=float(t)))
    return out


def poisson_trace(n_requests: int, rate: float, vocab: int,
                  prompt_len: tuple = (2, 6),
                  max_new_tokens: tuple = (2, 5),
                  seed: int = 0) -> List[Request]:
    """Seeded Poisson arrivals: exponential inter-arrival gaps at
    ``rate`` requests per clock unit."""
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n_requests)
    arrivals = np.cumsum(gaps)
    return _draw_requests(arrivals, vocab, rng, prompt_len,
                          max_new_tokens)


def bursty_trace(n_requests: int, burst_size: int, burst_gap: float,
                 vocab: int,
                 prompt_len: tuple = (2, 6),
                 max_new_tokens: tuple = (2, 5),
                 seed: int = 0) -> List[Request]:
    """Seeded bursty arrivals: bursts of simultaneous requests spaced
    ``burst_gap`` apart — the adversarial admission pattern."""
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    if burst_size < 1:
        raise ValueError(f"burst_size must be >= 1, got {burst_size}")
    if burst_gap < 0:
        raise ValueError(f"burst_gap must be >= 0, got {burst_gap}")
    rng = np.random.default_rng(seed)
    arrivals = [(i // burst_size) * burst_gap for i in range(n_requests)]
    return _draw_requests(arrivals, vocab, rng, prompt_len,
                          max_new_tokens)


def latency_summary(tracer, cat: str = "serve.request"
                    ) -> Dict[str, float]:
    """p50/p95/p99 latency + throughput from per-request spans.

    Reads the closed ``serve.request`` spans the scheduler recorded on
    its injected clock, so the summary is deterministic end-to-end when
    a :class:`VirtualClock` is injected.
    """
    spans = tracer.closed_spans(cat)
    if not spans:
        return {"count": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "throughput_tokens": 0.0,
                "span_seconds": 0.0}
    latencies = np.array([s.duration for s in spans], dtype=np.float64)
    tokens = float(sum(s.attrs.get("new_tokens", 0) for s in spans))
    t_lo = min(s.start for s in spans)
    t_hi = max(s.end for s in spans)
    window = max(t_hi - t_lo, 1e-12)
    return {
        "count": float(len(spans)),
        "p50": float(np.percentile(latencies, 50)),
        "p95": float(np.percentile(latencies, 95)),
        "p99": float(np.percentile(latencies, 99)),
        "mean": float(latencies.mean()),
        "throughput_tokens": tokens / window,
        "span_seconds": float(window),
    }


def summarize_latencies(latencies: Sequence[float]) -> Dict[str, float]:
    """Percentile summary over raw latency values (golden-run helper)."""
    if not latencies:
        return {"count": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0}
    arr = np.array(list(latencies), dtype=np.float64)
    return {
        "count": float(arr.size),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
    }


_ = Optional  # typing re-export guard for mypy-narrow configs
