"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``plan MODEL N_GPUS [GPU]`` — §3/§7 job planning: strategy selection,
  scale-up ratio, predicted performance vs Megatron-LM.
* ``table3`` — regenerate the headline strong-scaling table.
* ``train-demo [STEPS]`` — train a miniature MoE with SP+EP on a
  simulated node and print the loss curve.
* ``ft-demo [STEPS]`` — same run under the fault-tolerance subsystem:
  injected comm faults, a rank crash, a loss spike, and a slow link,
  with retries, checkpoint rollback, and straggler detection.
* ``trace [STEPS]`` — train the miniature MoE under the observability
  subsystem: per-collective spans, an Eq. 1–4 comm-volume audit, a
  simulated overlap timeline, and a Chrome-trace JSON you can open in
  Perfetto / ``chrome://tracing``.
* ``verify [--smoke | --elastic | --serve | --fuzz N] [--seed S]`` —
  differential conformance: run parallel plans against the single-rank
  golden model and print the cases × invariants matrix (exit 1 on any
  violation).  ``--elastic`` runs the resize conformance grid;
  ``--serve`` runs the continuous-batching serving matrix (batched vs
  unbatched golden, bitwise).
* ``serve-demo [N_REQUESTS]`` — continuous-batching MoE inference on
  the decode DAG: Poisson arrivals, paged KV, disaggregated
  attention/expert ranks, an optional mid-stream rank crash, and
  p50/p95/p99 latency percentiles on the virtual clock.
* ``elastic-demo [STEPS]`` — shrink the world mid-run and grow it
  back via checkpoint–reshard–resume, then diff the loss trajectory
  against the fixed-size run.
* ``models`` / ``gpus`` — list the Table 2 zoo and Table 4 hardware.
"""

from __future__ import annotations

import argparse
import sys

from .core.config import GPU_SPECS, MODEL_ZOO


def cmd_models(_args) -> int:
    print(f"{'name':16s} {'params':>8s} {'act.':>8s} {'layers':>6s} "
          f"{'h':>6s} {'h_ffn':>6s} {'E':>3s} {'k':>2s} {'m':>2s}")
    for name, m in MODEL_ZOO.items():
        print(f"{name:16s} {m.total_params / 1e9:7.1f}B "
              f"{m.activated_params / 1e9:7.1f}B {m.n_layers:6d} "
              f"{m.hidden_size:6d} {m.ffn_hidden_size:6d} "
              f"{m.n_experts:3d} {m.top_k:2d} {m.gqa_ratio:2d}")
    return 0


def cmd_gpus(_args) -> int:
    print(f"{'name':6s} {'TFLOPS':>7s} {'HBM':>6s} {'HBM bw':>8s} "
          f"{'NVLink':>7s} {'NIC':>6s}")
    for name, g in GPU_SPECS.items():
        print(f"{name:6s} {g.peak_flops / 1e12:7.0f} "
              f"{g.memory_bytes / 1024 ** 3:4.0f}GB "
              f"{g.memory_bandwidth / 1e12:5.1f}TB/s "
              f"{g.nvlink_bandwidth / 1e9:4.0f}GB/s "
              f"{g.nic_bandwidth / 1e9:3.0f}GB/s")
    return 0


def _plan_cluster_spec(args):
    """Build the ClusterSpec a ``repro plan`` invocation describes."""
    from .core.cluster import ClusterSpec

    if args.cluster:
        return ClusterSpec.load(args.cluster)
    models = ([m.strip() for m in args.gpu_models.split(",")]
              if args.gpu_models else [args.gpu])
    nodes = args.nodes or 1
    if len(models) == 1:
        models = models * nodes
    if len(models) != nodes:
        raise ValueError(
            f"--gpu-models names {len(models)} nodes but --nodes is "
            f"{nodes}")
    return ClusterSpec(
        name=f"{nodes}x{args.gpus_per_node}x" + ",".join(
            sorted(set(models))),
        gpus_per_node=args.gpus_per_node,
        node_gpus=tuple(models),
    )


def _cmd_plan_search(args) -> int:
    """Cluster mode: enumerate, price, and emit the winning plan."""
    from .core.autoschedule import optimize_plan
    from .core.config import TrainConfig
    from .core.planner import NoFeasiblePlan, plan_cluster

    model = MODEL_ZOO[args.model]
    try:
        cluster = _plan_cluster_spec(args)
    except (OSError, ValueError) as exc:
        print(f"bad cluster spec: {exc}", file=sys.stderr)
        return 2
    train = TrainConfig(global_batch_size=args.batch,
                        micro_batch_size=args.micro_batch)
    try:
        result = plan_cluster(model, cluster, train, top=args.top)
    except NoFeasiblePlan as exc:
        print(f"no feasible plan: {exc}", file=sys.stderr)
        return 1
    print(result.explain())
    best = result.best.candidate

    if len(result.ranked) > 1:
        print("\nrunners-up:")
        for scored in result.ranked[1:]:
            print(f"  {scored.iteration_time * 1e3:9.1f} ms  "
                  f"{scored.candidate.describe()}")

    if args.schedule_budget > 0:
        composed = optimize_plan(model, cluster, train,
                                 budget=args.schedule_budget,
                                 seed=args.seed)
        print(f"\nschedule search (budget {args.schedule_budget}, "
              f"seed {args.seed}): layer gain "
              f"{composed.layer_gain * 100:.2f}% over the holistic "
              f"baseline ({composed.fwd.evaluations} fwd + "
              f"{composed.bwd.evaluations} bwd evaluations)")

    if args.verify:
        from .verify import plan_conformance_cases, run_matrix
        precision = ("fp8" if best.precision == "fp8" else "bf16")
        cases = plan_conformance_cases(
            attention=best.parallel.attention, ffn=best.parallel.ffn,
            ep_dispatch=best.parallel.ep_dispatch,
            precision=precision, seed=args.seed)
        print(f"\nverifying the winner on the conformance matrix "
              f"({len(cases)} cases)")
        report = run_matrix(cases)
        print(report.render())
        if not report.ok:
            return 1
    return 0


def cmd_plan(args) -> int:
    from .core.config import ParallelConfig, TrainConfig
    from .core.planner import plan_parallelism
    from .perf.systems import MegaScalePerfModel, MegatronPerfModel

    if args.cluster or args.nodes:
        return _cmd_plan_search(args)
    if args.n_gpus is None:
        print("plan needs N_GPUS, or a cluster description via "
              "--cluster/--nodes", file=sys.stderr)
        return 2

    model = MODEL_ZOO[args.model]
    gpu = GPU_SPECS[args.gpu]
    plan = plan_parallelism(model, args.n_gpus, gpu)
    print(plan.explain())

    train = TrainConfig(global_batch_size=args.batch)
    ms = MegaScalePerfModel().iteration(model, plan.parallel, train, gpu)
    mg_pc = ParallelConfig.megatron(
        plan.parallel.model_parallel_size, plan.parallel.pipeline_size,
        plan.parallel.data_parallel_size)
    mg = MegatronPerfModel().iteration(model, mg_pc, train, gpu)
    print(f"\npredicted: MegaScale {ms.iteration_time:.2f}s/iter "
          f"({ms.tokens_per_second / 1e3:.0f}k tok/s, "
          f"MFU {ms.mfu(model, gpu) * 100:.1f}%) — "
          f"{mg.iteration_time / ms.iteration_time:.2f}x over "
          f"Megatron-LM")
    return 0


def cmd_table3(_args) -> int:
    from .core.config import ParallelConfig, TrainConfig
    from .perf.systems import MegaScalePerfModel, MegatronPerfModel

    model = MODEL_ZOO["internal-352b"]
    gpu = GPU_SPECS["h800"]
    train = TrainConfig(global_batch_size=720)
    print(f"{'GPUs':>5s} {'Megatron s/iter':>16s} "
          f"{'MegaScale s/iter':>17s} {'tok/s':>8s} {'speedup':>8s}")
    for n_gpus in (240, 480, 720, 960, 1440):
        dp = n_gpus // 120
        ms = MegaScalePerfModel().iteration(
            model, ParallelConfig.megascale(8, 15, dp), train, gpu)
        mg = MegatronPerfModel().iteration(
            model, ParallelConfig.megatron(8, 15, dp), train, gpu)
        print(f"{n_gpus:5d} {mg.iteration_time:16.2f} "
              f"{ms.iteration_time:17.2f} "
              f"{ms.tokens_per_second / 1e3:7.0f}k "
              f"{mg.iteration_time / ms.iteration_time:7.2f}x")
    return 0


def cmd_train_demo(args) -> int:
    import numpy as np

    from .comm import World
    from .core.config import ModelConfig, ParallelConfig, TrainConfig
    from .core.trainer import MegaScaleTrainer
    from .data import MarkovCorpus, batch_iterator
    from .model import MoETransformer
    from .precision.optimizer import AdamW

    config = ModelConfig("cli-demo", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=16)
    model = MoETransformer(config, seed=0, dtype=np.float64)
    backend = args.backend
    if args.tile_tokens is not None and backend is None:
        backend = "dag"  # tile-granular execution is a DAG feature
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=3e-3,
                        aux_loss_coeff=0.01, backend=backend,
                        tile_tokens=args.tile_tokens)
    trainer = MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=3e-3))
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    print("step  lm-loss")
    for step, batch in enumerate(
            batch_iterator(corpus, 4, 16, seed=1, limit=args.steps)):
        result = trainer.train_step(batch)
        print(f"{step:4d}  {result.lm_loss:.4f}")
    return 0


def cmd_ft_demo(args) -> int:
    import tempfile

    import numpy as np

    from .comm import World
    from .core.config import ModelConfig, ParallelConfig, TrainConfig
    from .core.runner import FaultInjector, ProductionRunner
    from .core.trainer import MegaScaleTrainer
    from .data import MarkovCorpus, batch_iterator
    from .ft import (BackoffPolicy, FaultPlan, FaultSpec, HealthMonitor,
                     LossSpikeGuard, NumericGuard, StragglerDetector)
    from .model import MoETransformer
    from .precision.optimizer import AdamW

    steps = args.steps
    if steps < 1:
        print(f"steps must be >= 1, got {steps}", file=sys.stderr)
        return 2
    config = ModelConfig("ft-demo", 1, 16, 4, 2, 24, 4, 2,
                         vocab_size=32, seq_len=8)
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=8, learning_rate=5e-3,
                        aux_loss_coeff=0.01)
    # One plan shared across restarts: a mid-run timeout and a
    # corrupted transfer (both transient, cleared by retry), plus a
    # persistently 2x-slow link on rank 1 for the straggler detector.
    plan = FaultPlan(
        [FaultSpec("timeout", at_call=40),
         FaultSpec("corrupt", at_call=90)],
        slow_ranks={1: 2.0}, seed=0)
    # With 2 ranks the z-score of a single outlier is capped at 1.0
    # (sqrt(n - 1)), so lower the threshold below that ceiling.
    monitor = HealthMonitor(
        straggler=StragglerDetector(window=8, z_threshold=0.9),
        numeric=NumericGuard())

    def factory():
        model = MoETransformer(config, seed=0, dtype=np.float64)
        world = World(2, 2).attach_fault_plan(plan)
        return MegaScaleTrainer(
            model, world, ParallelConfig.megascale(2), train,
            optimizer=AdamW(model.parameters(), lr=5e-3),
            health=monitor)

    ckpt_dir = args.dir or tempfile.mkdtemp(prefix="repro-ft-demo-")
    runner = ProductionRunner(
        factory, ckpt_dir, checkpoint_interval=4,
        retry_policy=BackoffPolicy(max_retries=3, base_delay=0.5),
        loss_guard=LossSpikeGuard(window=8, factor=3.0),
        numeric_guard=NumericGuard())
    injector = FaultInjector(fault_steps=[steps // 2 + 1],
                             spike_steps=[3 * steps // 4 + 1],
                             spike_factor=50.0)
    corpus = MarkovCorpus(vocab_size=32, seed=0)
    batches = list(batch_iterator(corpus, 2, 8, seed=1, limit=steps))
    metrics = runner.run(batches, injector)

    print(f"trained {steps} batches ({len(metrics.steps)} step "
          f"executions, {metrics.replayed_steps} replayed)")
    print(f"comm faults injected : "
          f"{[e.kind for e in plan.fired] or 'none'}")
    print(f"restarts             : {metrics.restart_count} "
          f"(at steps {metrics.restarts or '-'})")
    print(f"retries / backoff    : {metrics.retries} / "
          f"{metrics.backoff_seconds:.1f}s simulated")
    print(f"loss-spike rollbacks : {len(metrics.rollbacks)} "
          f"(at steps {metrics.rollbacks or '-'})")
    print(f"checkpoints          : {metrics.checkpoints} "
          f"(discarded: {runner.discarded or 'none'})")
    print(f"stragglers flagged   : "
          f"{monitor.flagged_stragglers() or 'none'} "
          f"(rank 1 runs a 2x-slow link)")
    if metrics.losses:
        print(f"final loss           : {metrics.losses[-1]:.4f}")
    else:
        print("final loss           : - (already trained; resume "
              "found nothing to do)")
    print(f"checkpoint dir       : {ckpt_dir}")
    return 0


def cmd_trace(args) -> int:
    import numpy as np

    from .comm import World
    from .core.config import ModelConfig, ParallelConfig, TrainConfig
    from .core.operators import build_forward_graph
    from .core.schedule import HolisticScheduler
    from .core.trainer import MegaScaleTrainer
    from .data import MarkovCorpus, batch_iterator
    from .model import MoETransformer
    from .obs import (Observability, audit_comm_volumes,
                      crosscheck_tracer_ledger, text_summary,
                      write_chrome_trace)
    from .perf.estimator import KernelModel
    from .precision.optimizer import AdamW
    from .sim import simulate

    steps = args.steps
    if steps < 1:
        print(f"steps must be >= 1, got {steps}", file=sys.stderr)
        return 2

    # AG/RS dispatch keeps every audited mechanism on an exact ring
    # identity (Eqs. 2 and 4); A2A dispatch volumes fluctuate with the
    # router and only audit against the Eq. 3 expectation.
    n = 4
    config = ModelConfig("trace-demo", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=16)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=16, learning_rate=3e-3,
                        aux_loss_coeff=0.01)
    model = MoETransformer(config, seed=0, dtype=np.float64)
    obs = Observability.create()
    world = World(n, n)
    trainer = MegaScaleTrainer(
        model, world, ParallelConfig.megascale(n, ep_dispatch="ag_rs"),
        train, optimizer=AdamW(model.parameters(), lr=3e-3), obs=obs)

    corpus = MarkovCorpus(vocab_size=64, seed=0)
    for batch in batch_iterator(corpus, 4, 16, seed=1, limit=steps):
        trainer.train_step(batch)

    # A simulated overlap timeline for the same strategy lands on its
    # own ``sim`` process lane (simulated clock, not wall clock).
    gpu = GPU_SPECS["h800"]
    graph = build_forward_graph(
        MODEL_ZOO["internal-352b"],
        ParallelConfig.megascale(8, ep_dispatch="ag_rs"), 1)
    tasks = HolisticScheduler().schedule(
        graph, KernelModel(gpu).durations(graph))
    simulate(tasks, tracer=obs.tracer, trace_pid="sim")

    report = audit_comm_volumes(
        world.ledger, b=4, s=16, h=32, n=n, m=config.gqa_ratio,
        k=config.top_k, elem_bytes=8.0,
        passes=config.n_layers * steps)
    matched, traced, ledger_bytes = crosscheck_tracer_ledger(
        obs.tracer, world.ledger)

    trace = write_chrome_trace(args.out, obs.tracer, extra_metadata={
        "model": config.name, "steps": steps,
        "strategy": "SP+EP (ag_rs)", "model_parallel_size": n})
    print(text_summary(obs.tracer, title=f"trace of {steps} steps"))
    print()
    print(obs.metrics.render("metrics"))
    print()
    print(report.render())
    print()
    print(f"tracer/ledger bytes  : {traced:.0f} vs {ledger_bytes:.0f} "
          f"({'match' if matched else 'MISMATCH'})")
    print(f"chrome trace         : {args.out} "
          f"({len(trace['traceEvents'])} events; open in Perfetto or "
          f"chrome://tracing)")
    if not report.ok:
        for entry in report.failed():
            print(f"AUDIT FAILED: {entry.mechanism} off by "
                  f"{entry.rel_error:.2%} (tolerance "
                  f"{entry.tolerance:.2%})", file=sys.stderr)
        return 1
    if not matched:
        print("AUDIT FAILED: traced bytes do not match the ledger",
              file=sys.stderr)
        return 1
    return 0


def cmd_elastic_demo(args) -> int:
    import tempfile

    import numpy as np

    from .comm import World
    from .core.config import ModelConfig, ParallelConfig, TrainConfig
    from .core.runner import FaultInjector
    from .core.trainer import MegaScaleTrainer
    from .elastic import ElasticRunner, ParallelLayout
    from .model import MoETransformer
    from .precision.optimizer import AdamW
    from .verify.invariants import tolerance_for_precision

    steps = args.steps
    shrink_at = args.shrink_at if args.shrink_at is not None \
        else max(1, steps // 3)
    grow_at = args.grow_at if args.grow_at is not None \
        else max(shrink_at + 1, (2 * steps) // 3)
    if not 1 <= shrink_at < grow_at < steps:
        print(f"need 1 <= shrink ({shrink_at}) < grow ({grow_at}) < "
              f"steps ({steps})", file=sys.stderr)
        return 2

    config = ModelConfig("elastic-demo", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=16)
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=16, learning_rate=1e-2,
                        aux_loss_coeff=0.01)
    rng = np.random.default_rng(0)
    batches = [rng.integers(0, 64, size=(2, 17)) for _ in range(steps)]

    def layout_at(n: int) -> ParallelLayout:
        return ParallelLayout.from_parallel_config(
            ParallelConfig.megascale(n))

    def factory(layout: ParallelLayout):
        n = layout.world_size
        model = MoETransformer(config, seed=0, dtype=np.float64)
        return MegaScaleTrainer(
            model, World(n, n), ParallelConfig.megascale(n), train,
            optimizer=AdamW(model.parameters(), lr=1e-2))

    # The fixed-size golden: the same batches at world size 4 all the
    # way through.
    fixed = factory(layout_at(4))
    fixed_losses = [float(fixed.train_step(b).loss) for b in batches]

    ckpt_dir = args.dir or tempfile.mkdtemp(prefix="repro-elastic-")
    runner = ElasticRunner(factory, layout_at(4), ckpt_dir,
                           checkpoint_interval=4)
    injector = FaultInjector(resize_steps={shrink_at: layout_at(2),
                                           grow_at: layout_at(4)})
    metrics = runner.run(batches, injector)

    final = {}
    for step, loss in zip(metrics.steps, metrics.losses):
        final[step] = loss
    band = tolerance_for_precision("fp32", "loss")

    print(f"elastic run: world 4 -> 2 at step {shrink_at} -> 4 at "
          f"step {grow_at} ({steps} batches)")
    print(f"{'step':>4s} {'world':>5s} {'elastic':>12s} "
          f"{'fixed-size':>12s} {'rel err':>9s}")
    world = 4
    ok = True
    for step in range(steps):
        if step == shrink_at:
            world = 2
        elif step == grow_at:
            world = 4
        got, want = final[step], fixed_losses[step]
        rel = abs(got - want) / max(abs(want), 1e-300)
        within = band.close(got, want, want)
        ok = ok and within
        mark = "" if within else "  OUT OF BAND"
        print(f"{step:4d} {world:5d} {got:12.8f} {want:12.8f} "
              f"{rel:9.2e}{mark}")
    print(f"resizes absorbed     : {metrics.resizes} "
          f"(restarts: {metrics.restart_count})")
    for report in runner.reshard_reports:
        print(f"reshard              : [{report.old_layout.describe()}]"
              f" -> [{report.new_layout.describe()}]")
        print(f"  zero1 shards       : {report.zero_elements_moved} of "
              f"{report.numel} elements changed ranks "
              f"({report.zero_bytes / 1024:.1f} KiB)")
        print(f"  experts            : {report.n_experts_moved} moved "
              f"({report.expert_bytes / 1024:.1f} KiB)")
        print(f"  dp rings re-formed : {len(report.dp_rings)}")
        print(f"  modelled cost      : {report.seconds() * 1e6:.2f} us "
              f"at reshard link bandwidth")
    print(f"reshard total        : {metrics.reshard_bytes / 1024:.1f} "
          f"KiB moved, {metrics.reshard_seconds * 1e6:.2f} us modelled")
    print(f"checkpoint dir       : {ckpt_dir}")
    if ok:
        print(f"trajectory match     : all {steps} steps within the "
              f"fp32 band (rtol {band.rtol:g})")
        return 0
    print("trajectory match     : FAILED (see OUT OF BAND rows)",
          file=sys.stderr)
    return 1


def cmd_serve_demo(args) -> int:
    import numpy as np

    from .comm import World
    from .core.config import ModelConfig, ServeConfig
    from .ft import FaultPlan, FaultSpec
    from .obs import Tracer
    from .serve import (ServeEngine, VirtualClock, bursty_trace,
                        golden_decode, poisson_trace)

    n = args.n_requests
    if n < 1:
        print(f"n_requests must be >= 1, got {n}", file=sys.stderr)
        return 2
    config = ModelConfig("serve-demo", 2, 32, 8, 2, 48, 8, 2,
                         vocab_size=64, seq_len=64)
    from .model import MoETransformer
    model = MoETransformer(config, seed=0, dtype=np.float64)
    serve = ServeConfig(attention_ranks=2, expert_ranks=2,
                        kv_block_size=4, kv_blocks=args.kv_blocks,
                        max_batch_size=args.batch,
                        execution=args.execution)
    if args.trace == "poisson":
        requests = poisson_trace(n, rate=0.5, vocab=64, seed=args.seed)
    else:
        requests = bursty_trace(n, burst_size=3, burst_gap=2.0,
                                vocab=64, seed=args.seed)
    world = World(serve.world_size)
    if args.crash_at is not None:
        world.attach_fault_plan(FaultPlan(
            [FaultSpec(kind="crash", at_call=args.crash_at)]))
    clock = VirtualClock()
    tracer = Tracer(clock=clock)
    engine = ServeEngine(model, serve, world=world, tracer=tracer,
                        clock=clock)
    try:
        result = engine.run(requests)
    finally:
        engine.shutdown()
    golden = golden_decode(model, serve, requests)

    print(f"served {len(result.results)} requests in "
          f"{result.n_iterations} iterations "
          f"(batch <= {serve.max_batch_size}, {args.execution}, "
          f"{len(engine.placement.attn_ranks)} attn + "
          f"{len(engine.placement.expert_ranks)} expert ranks)")
    print(f"{'req':>4s} {'arrive':>7s} {'finish':>7s} {'lat':>6s} "
          f"{'rst':>4s}  prompt -> generated")
    mismatches = 0
    for rid in sorted(result.results):
        r = result.results[rid]
        g = golden.results[rid]
        match = (r.generated == g.generated and all(
            np.array_equal(a, b) for a, b in zip(r.logits, g.logits)))
        mismatches += 0 if match else 1
        mark = "" if match else "  MISMATCH vs golden"
        print(f"{rid:4d} {r.arrival_time:7.2f} {r.finish_time:7.2f} "
              f"{r.latency:6.2f} {r.restarts:4d}  "
              f"{list(r.prompt)} -> {r.generated}{mark}")
    lat = result.latency
    if lat:
        print(f"latency (virtual s)  : p50 {lat['p50']:.2f}  "
              f"p95 {lat['p95']:.2f}  p99 {lat['p99']:.2f}  "
              f"mean {lat['mean']:.2f}")
        print(f"throughput           : "
              f"{lat['throughput_tokens']:.2f} tok/s over "
              f"{lat['span_seconds']:.2f}s")
    print(f"crashes / evictions  : {result.n_crashes} / "
          f"{result.n_evictions}")
    tags = world.ledger.bytes_by_tag()
    print(f"bridge a2a bytes     : dispatch "
          f"{tags.get('serve:dispatch_a2a', 0.0):.0f}, combine "
          f"{tags.get('serve:combine_a2a', 0.0):.0f}")
    if mismatches:
        print(f"golden check         : FAILED ({mismatches} requests "
              f"diverged)", file=sys.stderr)
        return 1
    print(f"golden check         : all {len(result.results)} requests "
          f"bitwise-identical to the unbatched sequential run")
    return 0


def cmd_verify(args) -> int:
    from .verify import run_matrix, smoke_matrix
    from .verify.cases import elastic_matrix
    from .verify.fuzz import fuzz

    def progress(result) -> None:
        mark = "ok" if result.ok else "FAIL"
        print(f"  {result.case.case_id:48s} {mark}", flush=True)

    if args.serve:
        from .verify import run_serve_matrix, serve_matrix
        cases = serve_matrix(seed=args.seed)
        print(f"running the serve matrix ({len(cases)} cases, "
              f"seed {args.seed})")
        report = run_serve_matrix(cases, progress=progress)
        print()
        print(report.render())
        return 0 if report.ok else 1
    if args.fuzz > 0:
        print(f"fuzzing {args.fuzz} random cases (seed {args.seed})")
        report = fuzz(args.fuzz, seed=args.seed, progress=progress)
    else:
        if args.elastic:
            cases = elastic_matrix(seed=args.seed)
            label = "elastic (resize) matrix"
        else:
            cases = smoke_matrix(seed=args.seed)
            label = "smoke matrix"
        if args.backend != "engine":
            cases = [case.replace(backend=args.backend)
                     for case in cases]
        print(f"running the {label} ({len(cases)} cases, "
              f"seed {args.seed}, backend {args.backend})")
        report = run_matrix(cases, progress=progress)
    print()
    print(report.render())
    if not report.ok and args.shrink:
        from .verify.fuzz import shrink

        def fails(case) -> bool:
            from .verify import run_case
            return not run_case(case).ok

        for failing in report.failures():
            minimal = shrink(failing.case, fails)
            print(f"shrunk {failing.case.case_id} -> "
                  f"{minimal.case_id}")
    return 0 if report.ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MegaScale-MoE reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the Table 2 model zoo")
    sub.add_parser("gpus", help="list the Table 4 GPU specs")

    plan = sub.add_parser("plan", help="plan a training job (§3/§7)")
    plan.add_argument("model", choices=sorted(MODEL_ZOO))
    plan.add_argument("n_gpus", nargs="?", type=int, default=None)
    plan.add_argument("gpu", nargs="?", default="h800",
                      choices=sorted(GPU_SPECS))
    plan.add_argument("--batch", type=int, default=720)
    plan.add_argument("--cluster", default=None, metavar="SPEC.json",
                      help="cluster description file (nodes, GPU "
                           "models, link tiers); switches to plan-"
                           "space search")
    plan.add_argument("--nodes", type=int, default=None,
                      help="describe the cluster via flags: node count "
                           "(switches to plan-space search)")
    plan.add_argument("--gpus-per-node", type=int, default=8,
                      help="ranks per NVLink domain (default 8)")
    plan.add_argument("--gpu-models", default=None, metavar="a,b,...",
                      help="per-node GPU models for mixed fleets "
                           "(single name = uniform)")
    plan.add_argument("--micro-batch", type=int, default=2,
                      help="micro-batch size the plan is priced at")
    plan.add_argument("--top", type=int, default=4,
                      help="ranked plans to print")
    plan.add_argument("--schedule-budget", type=int, default=0,
                      metavar="N",
                      help="also run the op-priority schedule search "
                           "on the winner with this evaluation budget")
    plan.add_argument("--verify", action="store_true",
                      help="run the winning strategy through the "
                           "conformance matrix (exit 1 on violation)")
    plan.add_argument("--seed", type=int, default=0)

    sub.add_parser("table3", help="regenerate the strong-scaling table")

    demo = sub.add_parser("train-demo",
                          help="train a miniature MoE on one node")
    demo.add_argument("steps", nargs="?", type=int, default=10)
    demo.add_argument("--backend", default=None,
                      choices=["engine", "dag"],
                      help="numeric backend: legacy engines or the "
                           "schedule-ordered DAG executor (bitwise-"
                           "identical losses)")
    demo.add_argument("--tile-tokens", type=int, default=None,
                      help="token-chunk width for tile-granular "
                           "fused-kernel execution (4.2); must divide "
                           "the per-rank sequence shard; implies the "
                           "dag backend (env: REPRO_TILE_TOKENS)")

    ft = sub.add_parser(
        "ft-demo",
        help="train through injected faults with full recovery")
    ft.add_argument("steps", nargs="?", type=int, default=16)
    ft.add_argument("--dir", default=None,
                    help="checkpoint directory (default: temp dir)")

    trace = sub.add_parser(
        "trace",
        help="traced training demo with comm-volume audit")
    trace.add_argument("steps", nargs="?", type=int, default=2)
    trace.add_argument("--out", default="trace.json",
                       help="Chrome-trace output path")

    elastic = sub.add_parser(
        "elastic-demo",
        help="shrink and grow the world mid-run via "
             "checkpoint-reshard-resume")
    elastic.add_argument("steps", nargs="?", type=int, default=9)
    elastic.add_argument("--shrink-at", type=int, default=None,
                         help="step at which the world shrinks to 2 "
                              "ranks (default: steps // 3)")
    elastic.add_argument("--grow-at", type=int, default=None,
                         help="step at which the world grows back to "
                              "4 ranks (default: 2 * steps // 3)")
    elastic.add_argument("--dir", default=None,
                         help="checkpoint directory (default: temp "
                              "dir)")

    serve = sub.add_parser(
        "serve-demo",
        help="continuous-batching MoE inference with paged KV and "
             "disaggregated expert ranks")
    serve.add_argument("n_requests", nargs="?", type=int, default=6)
    serve.add_argument("--trace", default="poisson",
                       choices=["poisson", "bursty"],
                       help="arrival process for the request trace")
    serve.add_argument("--batch", type=int, default=3,
                       help="max concurrent requests per iteration")
    serve.add_argument("--kv-blocks", type=int, default=64,
                       help="paged KV pool size (small values force "
                            "mid-stream evictions)")
    serve.add_argument("--execution", default="sequential",
                       choices=["sequential", "threaded"],
                       help="attention-rank fan-out mode")
    serve.add_argument("--crash-at", type=int, default=None,
                       metavar="CALL",
                       help="inject a rank crash at the Nth collective "
                            "call; in-flight requests re-queue and "
                            "replay")
    serve.add_argument("--seed", type=int, default=0)

    verify = sub.add_parser(
        "verify",
        help="differential conformance matrix vs the golden model")
    verify.add_argument("--smoke", action="store_true",
                        help="run the seeded CI smoke matrix (default)")
    verify.add_argument("--elastic", action="store_true",
                        help="run the resize conformance grid (shrink "
                             "at step 1, grow back at step 2) instead")
    verify.add_argument("--serve", action="store_true",
                        help="run the continuous-batching serving "
                             "matrix (batched vs unbatched golden, "
                             "bitwise) instead")
    verify.add_argument("--fuzz", type=int, default=0, metavar="N",
                        help="run N random fuzzed cases instead")
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument("--backend", default="engine",
                        choices=["engine", "dag"],
                        help="numeric backend for the smoke matrix "
                             "(dag adds bitwise + schedule-conformance "
                             "checks against the engine path; "
                             "vectorized-execution cases always run on "
                             "the dag backend)")
    verify.add_argument("--shrink", action="store_true",
                        help="shrink failing cases to minimal "
                             "reproducers")

    args = parser.parse_args(argv)
    handlers = {
        "models": cmd_models,
        "gpus": cmd_gpus,
        "plan": cmd_plan,
        "table3": cmd_table3,
        "train-demo": cmd_train_demo,
        "ft-demo": cmd_ft_demo,
        "trace": cmd_trace,
        "elastic-demo": cmd_elastic_demo,
        "serve-demo": cmd_serve_demo,
        "verify": cmd_verify,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
