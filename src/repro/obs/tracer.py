"""Span-based tracing for the simulated training stack.

One :class:`Tracer` collects everything a run does into a single list of
:class:`Span` records (plus instant :class:`Event` marks), regardless of
which layer produced it:

* **collectives** — :meth:`~repro.comm.group.ProcessGroup.pre_collective`
  opens a ``comm`` span, :meth:`~repro.comm.group.ProcessGroup.record`
  annotates it with the ledger bytes and closes it, and injected faults
  surface as instant events;
* **pipeline stages** — :class:`~repro.parallel.pp_engine.PipelineParallelTrainer`
  wraps each stage×micro-batch forward in a span and marks p2p transfers;
* **training steps** — :class:`~repro.core.trainer.MegaScaleTrainer`
  nests ``forward``/``backward``/``optimizer`` spans under each step, and
  :class:`~repro.core.runner.ProductionRunner` marks checkpoints,
  restarts, and rollbacks;
* **the event simulator** — :func:`~repro.sim.engine.simulate` task
  records ingest as already-closed spans on the simulated clock.

Spans carry ``stream`` / ``rank`` / ``phase`` attribution so the Chrome
trace exporter (:mod:`repro.obs.export`) can lay them out exactly like a
GPU profiler would: one lane per stream, one process per clock domain.

Wall-clock spans use ``time.perf_counter`` by default; tests inject a
deterministic fake clock.  All timestamps are seconds (floats); the
exporter converts to microseconds.

Thread model
------------
One tracer serves all SPMD rank threads: each thread owns a private
span *stack* (strict LIFO nesting is per thread, like call frames),
while the ``spans``/``events`` lists and span-id allocation are shared
under a lock.  A worker thread may adopt the spawning thread's
innermost open span as its root parent via :meth:`Tracer.inherit_parent`
so rank work nests under ``forward``/``backward`` in the export, and
spans opened on an SPMD rank thread are auto-attributed to that rank
(see :func:`repro.runtime.spmd.current_rank`).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..runtime.spmd import current_rank as _current_rank

__all__ = ["Span", "Event", "Tracer"]


@dataclass
class Span:
    """One timed, possibly-nested interval of work."""

    name: str
    cat: str = "default"
    start: float = 0.0
    end: Optional[float] = None
    stream: str = "main"
    pid: str = "train"
    rank: Optional[int] = None
    phase: str = ""
    span_id: int = 0
    parent_id: Optional[int] = None
    depth: int = 0
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between open and close (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass
class Event:
    """An instantaneous mark (checkpoint written, fault fired, ...)."""

    name: str
    cat: str = "event"
    ts: float = 0.0
    stream: str = "main"
    pid: str = "train"
    rank: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Collects spans and events from every instrumented layer.

    Spans open and close in LIFO order (strict nesting, like call
    frames); :meth:`annotate` attaches attributes to the innermost open
    span, which is how the byte ledger decorates communication spans
    without the collectives knowing about tracing.

    Args:
        clock: Returns the current time in seconds; defaults to
            ``time.perf_counter``.  Tests inject a deterministic fake.
        enabled: When False every method is a cheap no-op, so
            instrumented code paths cost nothing in untraced runs.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        enabled: bool = True,
    ):
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.enabled = enabled
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self._stacks: Dict[int, List[Span]] = {}
        self._inherited: Dict[int, Span] = {}
        self._next_id = 1
        self._lock = threading.Lock()

    @property
    def _stack(self) -> List[Span]:
        """The calling thread's private span stack."""
        tid = threading.get_ident()
        stack = self._stacks.get(tid)
        if stack is None:
            stack = self._stacks[tid] = []
        return stack

    def inherit_parent(self, span: Optional[Span]) -> None:
        """Adopt ``span`` as this thread's root parent (None to retire).

        Called by SPMD worker threads with the spawning thread's
        innermost open span, so thread-root spans parent under it.
        Passing None also drops the thread's (now finished) stack, so
        short-lived worker threads do not accumulate state.
        """
        tid = threading.get_ident()
        if span is None:
            self._inherited.pop(tid, None)
            self._stacks.pop(tid, None)
        else:
            self._inherited[tid] = span

    # -- span lifecycle ----------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str = "default",
        stream: str = "main",
        pid: str = "train",
        rank: Optional[int] = None,
        phase: str = "",
        **attrs: Any,
    ) -> Optional[Span]:
        """Open a nested span; returns it (or None while disabled)."""
        if not self.enabled:
            return None
        stack = self._stack
        parent = (stack[-1] if stack
                  else self._inherited.get(threading.get_ident()))
        if rank is None:
            rank = _current_rank()
        span = Span(
            name=name,
            cat=cat,
            start=self.clock(),
            stream=stream,
            pid=pid,
            rank=rank,
            phase=phase,
            parent_id=parent.span_id if parent is not None else None,
            depth=parent.depth + 1 if parent is not None else 0,
            attrs=dict(attrs),
        )
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            self.spans.append(span)
        stack.append(span)
        return span

    def end(self, span: Optional[Span] = None, **attrs: Any) -> Optional[Span]:
        """Close ``span`` (default: the innermost open span).

        Spans close strictly LIFO; closing an outer span while inner
        ones remain open closes the inner ones too (crash unwinding).
        """
        if not self.enabled or not self._stack:
            return None
        if span is None:
            span = self._stack[-1]
        if span not in self._stack:
            return None
        now = self.clock()
        while self._stack:
            top = self._stack.pop()
            top.end = now
            if top is span:
                break
        span.attrs.update(attrs)
        return span

    @contextmanager
    def span(
        self,
        name: str,
        cat: str = "default",
        stream: str = "main",
        pid: str = "train",
        rank: Optional[int] = None,
        phase: str = "",
        **attrs: Any,
    ) -> Iterator[Optional[Span]]:
        """Context-managed :meth:`begin`/:meth:`end` pair."""
        handle = self.begin(
            name, cat=cat, stream=stream, pid=pid, rank=rank, phase=phase, **attrs
        )
        try:
            yield handle
        finally:
            if handle is not None:
                self.end(handle)

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes to the innermost open span (no-op if none)."""
        if self.enabled and self._stack:
            self._stack[-1].attrs.update(attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span, or None."""
        return self._stack[-1] if self._stack else None

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def record_span(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "default",
        stream: str = "main",
        pid: str = "train",
        rank: Optional[int] = None,
        phase: str = "",
        **attrs: Any,
    ) -> Optional[Span]:
        """Append an already-closed span with explicit timestamps.

        Continuous-batching request lifetimes overlap arbitrarily, so
        they cannot live on the strict-LIFO per-thread stack; the serve
        scheduler instead records each request's span whole at finish
        time, on whatever clock it was injected with.  Like
        :meth:`ingest_timeline`, the span never touches the stack.
        """
        if not self.enabled:
            return None
        if end < start:
            raise ValueError(
                f"span {name!r} ends before it starts "
                f"({end} < {start})"
            )
        if rank is None:
            rank = _current_rank()
        span = Span(
            name=name,
            cat=cat,
            start=start,
            end=end,
            stream=stream,
            pid=pid,
            rank=rank,
            phase=phase,
            attrs=dict(attrs),
        )
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            self.spans.append(span)
        return span

    # -- instant events ----------------------------------------------------

    def instant(
        self,
        name: str,
        cat: str = "event",
        stream: str = "main",
        pid: str = "train",
        rank: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Event]:
        """Record an instantaneous event at the current clock time."""
        if not self.enabled:
            return None
        if rank is None:
            rank = _current_rank()
        event = Event(
            name=name,
            cat=cat,
            ts=self.clock(),
            stream=stream,
            pid=pid,
            rank=rank,
            attrs=dict(attrs),
        )
        with self._lock:
            self.events.append(event)
        return event

    # -- simulator ingestion -----------------------------------------------

    def ingest_timeline(self, timeline: Any, pid: str = "sim") -> List[Span]:
        """Convert a :class:`~repro.sim.engine.Timeline` into spans.

        Simulated task records land as already-closed spans on their own
        process lane (``pid``), keeping the simulated clock separate
        from wall-clock spans.  Returns the new spans.
        """
        if not self.enabled:
            return []
        out: List[Span] = []
        with self._lock:
            for record in timeline.records:
                task = record.task
                span = Span(
                    name=task.name,
                    cat="sim.comm" if task.is_comm else "sim.compute",
                    start=record.start,
                    end=record.end,
                    stream=task.stream,
                    pid=pid,
                    span_id=self._next_id,
                    attrs={"is_comm": task.is_comm,
                           "deps": list(task.deps)},
                )
                self._next_id += 1
                out.append(span)
            self.spans.extend(out)
        return out

    # -- queries -----------------------------------------------------------

    def closed_spans(
        self, cat: Optional[str] = None, pid: Optional[str] = None
    ) -> List[Span]:
        """Closed spans, optionally filtered by category prefix and pid."""
        return [
            s
            for s in self.spans
            if s.closed
            and (cat is None or s.cat == cat or s.cat.startswith(cat + "."))
            and (pid is None or s.pid == pid)
        ]

    def thread_stacks(self) -> Dict[int, int]:
        """Open-span count per registered thread stack.

        Worker threads that finished cleanly should have retired their
        stacks via :meth:`inherit_parent`\\ ``(None)``; the serve
        scheduler's shutdown leak check asserts exactly that — any
        surviving entry here for a dead thread is a span-stack leak.
        """
        with self._lock:
            return {tid: len(stack)
                    for tid, stack in self._stacks.items()}

    def children_of(self, span: Span) -> List[Span]:
        """Direct children of ``span`` (by parent link)."""
        return [s for s in self.spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        """Drop all spans, events, and any open stack frames."""
        with self._lock:
            self.spans.clear()
            self.events.clear()
            self._stacks.clear()
            self._inherited.clear()
