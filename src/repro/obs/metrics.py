"""Metrics registry: counters, gauges, and histograms for one run.

The trainer, the production runner, and the byte ledger each keep their
own numbers; this registry gives them one namespace so a run can be
summarized (and regression-tested) from a single snapshot:

* counters — monotonically increasing totals (steps run, tokens seen,
  restarts, retries);
* gauges — last-value observations (current loss, ledger byte totals
  synced via :meth:`MetricsRegistry.ingest_ledger`);
* histograms — bounded-memory summaries (count/sum/min/max plus a
  reservoir of recent values for percentiles), for per-step losses and
  per-collective byte sizes.

Everything is plain floats — no external metrics client — so snapshots
serialize straight into the regression harness's JSON.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total, sharded per thread.

    ``inc`` writes only the calling thread's shard — a single dict-slot
    update under the GIL, no lock — so concurrent SPMD rank threads
    never contend.  ``value`` folds base + shards on read.
    """

    __slots__ = ("_base", "_shards")

    def __init__(self, value: float = 0.0):
        self._base = float(value)
        self._shards: Dict[int, float] = {}

    def inc(self, amount: float = 1.0) -> None:
        """Add a non-negative ``amount`` to the total."""
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        tid = threading.get_ident()
        shards = self._shards
        shards[tid] = shards.get(tid, 0.0) + amount

    @property
    def value(self) -> float:
        """The folded total across all thread shards."""
        # list() snapshots the values atomically under the GIL, so a
        # concurrent inc cannot resize the dict mid-sum.
        return self._base + sum(list(self._shards.values()))

    @value.setter
    def value(self, new: float) -> None:
        self._base = float(new)
        self._shards = {}

    def __repr__(self) -> str:
        return f"Counter(value={self.value})"


@dataclass
class Gauge:
    """A last-value observation."""

    value: float = 0.0
    updates: int = 0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """Bounded-memory distribution summary.

    Keeps exact count/sum/min/max and a sliding reservoir of the most
    recent ``reservoir_size`` observations for percentile estimates, so
    multi-thousand-step runs do not grow memory without limit.
    """

    reservoir_size: int = 1024
    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")
    _reservoir: List[float] = field(default_factory=list, repr=False)
    #: observe() folds several fields, so concurrent threads serialize.
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def observe(self, value: float) -> None:
        """Fold one observation into the summary and reservoir."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)
            self._reservoir.append(value)
            if len(self._reservoir) > self.reservoir_size:
                del self._reservoir[
                    : len(self._reservoir) - self.reservoir_size]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Approximate percentile from the recent-value reservoir."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        index = round(p / 100.0 * (len(ordered) - 1))
        return ordered[index]


class MetricsRegistry:
    """Create-on-first-use registry keyed by dotted metric names."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- accessors ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named :class:`Counter`, created on first use."""
        return self.counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The named :class:`Gauge`, created on first use."""
        return self.gauges.setdefault(name, Gauge())

    def histogram(self, name: str, reservoir_size: int = 1024) -> Histogram:
        """The named :class:`Histogram`, created on first use."""
        return self.histograms.setdefault(name, Histogram(reservoir_size))

    # -- convenience -------------------------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment the named counter."""
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        """Set the named gauge."""
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe into the named histogram."""
        self.histogram(name).observe(value)

    def ingest_ledger(self, ledger: Any, prefix: str = "comm") -> None:
        """Sync byte-ledger totals into gauges (idempotent snapshot).

        Creates ``<prefix>.bytes.total``, ``<prefix>.calls.total``, and
        per-op ``<prefix>.bytes.<op>`` / ``<prefix>.calls.<op>`` from a
        :class:`~repro.comm.group.CommLedger` (duck-typed: anything with
        ``total_bytes``/``counts``).
        """
        counts = ledger.counts()
        self.set(f"{prefix}.bytes.total", ledger.total_bytes())
        self.set(f"{prefix}.calls.total", float(sum(counts.values())))
        for op, n_calls in counts.items():
            self.set(f"{prefix}.bytes.{op}", ledger.total_bytes(op=op))
            self.set(f"{prefix}.calls.{op}", float(n_calls))

    # -- output ------------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Flat name→value map (histograms expand to summary stats)."""
        out: Dict[str, float] = {}
        for name, counter in self.counters.items():
            out[name] = counter.value
        for name, gauge in self.gauges.items():
            out[name] = gauge.value
        for name, hist in self.histograms.items():
            if hist.count == 0:
                continue
            out[f"{name}.count"] = float(hist.count)
            out[f"{name}.mean"] = hist.mean
            out[f"{name}.min"] = hist.min
            out[f"{name}.max"] = hist.max
            out[f"{name}.p50"] = hist.percentile(50)
            out[f"{name}.p99"] = hist.percentile(99)
        return out

    def render(self, title: Optional[str] = None) -> str:
        """Aligned text table of the snapshot."""
        snap = self.snapshot()
        lines: List[str] = []
        if title:
            lines.append(f"=== {title} ===")
        if not snap:
            lines.append("(no metrics recorded)")
            return "\n".join(lines)
        width = max(len(name) for name in snap)
        for name in sorted(snap):
            lines.append(f"{name.ljust(width)}  {_fmt(snap[name])}")
        return "\n".join(lines)


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"
