"""Trace exporters: Chrome-trace JSON and a plain-text timeline summary.

The Chrome trace event format is the lingua franca of GPU profilers
(``chrome://tracing``, Perfetto, TensorBoard all open it): a JSON object
with a ``traceEvents`` list of complete (``"ph": "X"``) and instant
(``"ph": "i"``) events.  Mapping from the span model:

==============  ==========================================
span field      trace event field
==============  ==========================================
``pid``         ``pid`` — one process lane per clock domain
                (wall-clock ``train`` vs simulated ``sim``)
``stream``      ``tid`` — one thread lane per stream
``start``       ``ts`` in microseconds
``duration``    ``dur`` in microseconds
``cat``         ``cat`` (filterable in the UI)
attrs           ``args`` (shown when a slice is clicked)
==============  ==========================================

Span nesting renders naturally: Chrome stacks slices that overlap on the
same ``(pid, tid)`` lane, which is exactly how nested spans behave.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from .tracer import Event, Span, Tracer

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "text_summary",
]

_SCALE = 1e6  # seconds -> microseconds


def _json_safe(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [_coerce(v) for v in value]
        else:
            out[key] = str(value)
    return out


def _coerce(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def to_chrome_trace(
    spans: Sequence[Span],
    events: Sequence[Event] = (),
    extra_metadata: Optional[Dict[str, Any]] = None,
    rank_lanes: bool = False,
) -> Dict[str, Any]:
    """Build the Chrome-trace dict for a span/event collection.

    Open (unclosed) spans are skipped — a trace is exported after the
    run, so anything still open is a crashed frame, not a slice.

    With ``rank_lanes=True`` rank-attributed spans land on per-rank
    thread lanes (``"<stream>:r<rank>"``) instead of one shared stream
    lane — the natural view for threaded SPMD runs, where rank spans
    genuinely overlap in wall-clock time and would otherwise render as
    bogus nesting on a single lane.
    """
    trace_events: List[Dict[str, Any]] = []
    for span in spans:
        if not span.closed:
            continue
        args = _json_safe(span.attrs)
        if span.rank is not None:
            args["rank"] = span.rank
        if span.phase:
            args["phase"] = span.phase
        tid = span.stream
        if rank_lanes and span.rank is not None:
            tid = f"{span.stream}:r{span.rank}"
        trace_events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": span.start * _SCALE,
                "dur": span.duration * _SCALE,
                "pid": span.pid,
                "tid": tid,
                "args": args,
            }
        )
    for event in events:
        args = _json_safe(event.attrs)
        if event.rank is not None:
            args["rank"] = event.rank
        tid = event.stream
        if rank_lanes and event.rank is not None:
            tid = f"{event.stream}:r{event.rank}"
        trace_events.append(
            {
                "name": event.name,
                "cat": event.cat,
                "ph": "i",
                "s": "p",
                "ts": event.ts * _SCALE,
                "pid": event.pid,
                "tid": tid,
                "args": args,
            }
        )
    meta = {"tool": "repro.obs", "spanCount": len(trace_events)}
    if extra_metadata:
        meta.update(extra_metadata)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": meta,
    }


def write_chrome_trace(
    path: str,
    tracer: Tracer,
    extra_metadata: Optional[Dict[str, Any]] = None,
    rank_lanes: bool = False,
) -> Dict[str, Any]:
    """Serialize a tracer's spans/events to ``path``; returns the dict."""
    trace = to_chrome_trace(tracer.spans, tracer.events, extra_metadata,
                            rank_lanes=rank_lanes)
    with open(path, "w") as handle:
        json.dump(trace, handle, indent=1)
    return trace


def text_summary(tracer: Tracer, title: str = "timeline summary") -> str:
    """Human-readable per-category and per-stream span accounting."""
    closed = [s for s in tracer.spans if s.closed]
    lines = [f"=== {title} ==="]
    if not closed:
        lines.append("(no closed spans)")
        return "\n".join(lines)

    by_cat: Dict[str, List[Span]] = {}
    by_lane: Dict[str, List[Span]] = {}
    for span in closed:
        by_cat.setdefault(span.cat, []).append(span)
        by_lane.setdefault(f"{span.pid}/{span.stream}", []).append(span)

    lines.append(f"{len(closed)} spans, {len(tracer.events)} events")
    lines.append("")
    lines.append(f"{'category':24s} {'spans':>6s} {'busy (s)':>10s} {'bytes':>14s}")
    for cat in sorted(by_cat):
        spans = by_cat[cat]
        busy = sum(s.duration for s in spans)
        moved = sum(float(s.attrs.get("bytes", 0.0)) for s in spans)
        lines.append(f"{cat:24s} {len(spans):6d} {busy:10.6f} {moved:14.0f}")
    lines.append("")
    lines.append(f"{'lane (pid/stream)':32s} {'spans':>6s} {'busy (s)':>10s}")
    for lane in sorted(by_lane):
        spans = by_lane[lane]
        busy = sum(s.duration for s in spans)
        lines.append(f"{lane:32s} {len(spans):6d} {busy:10.6f}")
    return "\n".join(lines)
