"""Comm-volume auditor: traced bytes vs the Eq. 1–4 closed forms.

MegaScale-MoE's §3 strategy choices all rest on four closed-form
per-pass communication volumes (Table 1 symbols; ``×`` the wire element
size for bytes, ``×`` the rank count for all-ranks totals):

* Eq. 1 — TP attention: ``2 b s h (n-1)/n`` per rank (AG + RS);
* Eq. 2 — SP (Ulysses) attention: Eq. 1 ``× (2 + 2/m)/n``; as printed
  the equation counts both all-to-all directions, so the realized
  per-pass volume is exactly half;
* Eq. 3 — EP all-to-all dispatch: ``2 k/n · b s h (n-1)/n`` per rank —
  the *uniform-routing expectation*; the realized volume fluctuates with
  the router but never exceeds the all-remote bound ``2 k b s h / n``;
* Eq. 4 — TP FFN (and EP's AG/RS dispatch mode): Eq. 1's volume.

The auditor takes what a run actually moved — either the byte ledger or
the traced comm spans — groups it by mechanism via the collective tags,
and compares against the formulas, flagging divergence beyond a
tolerance (1% for the exact ring identities; configurable, looser, for
the stochastic A2A expectation).  This is the accounting check behind
the paper's "communication-efficient" claims, run on every traced job
instead of only inside the benchmark suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, Union

from ..core.analysis import (
    ep_ffn_comm_volume,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
    tp_ffn_comm_volume,
)
from .tracer import Span

__all__ = [
    "AuditEntry",
    "AuditReport",
    "MECHANISMS",
    "audit_comm_volumes",
    "crosscheck_tracer_ledger",
]


@dataclass(frozen=True)
class MechanismSpec:
    """How one parallelism mechanism shows up in tags and formulas."""

    name: str
    equation: str
    #: Ledger-tag prefixes whose forward records belong to this mechanism.
    tag_prefixes: Tuple[str, ...]
    #: All-ranks expected elements per pass, from (b, s, h, n, m, k).
    expected_elements: Callable[[int, int, int, int, int, int], float]
    #: Whether the identity is exact (ring collectives) or an
    #: expectation (randomly routed all-to-all).
    exact: bool = True


MECHANISMS: Dict[str, MechanismSpec] = {
    "tp_attention": MechanismSpec(
        name="tp_attention",
        equation="Eq. 1",
        tag_prefixes=("tp_attn:",),
        expected_elements=lambda b, s, h, n, m, k: (
            tp_attention_comm_volume(b, s, h, n) * n
        ),
    ),
    "sp_attention": MechanismSpec(
        name="sp_attention",
        equation="Eq. 2 / 2",
        tag_prefixes=("sp_attn:",),
        expected_elements=lambda b, s, h, n, m, k: (
            sp_attention_comm_volume(b, s, h, n, m) * n / 2.0
        ),
    ),
    "ep_ffn_a2a": MechanismSpec(
        name="ep_ffn_a2a",
        equation="Eq. 3 (expectation)",
        tag_prefixes=("ep_ffn:dispatch_a2a", "ep_ffn:combine_a2a"),
        expected_elements=lambda b, s, h, n, m, k: (
            ep_ffn_comm_volume(b, s, h, n, k) * n
        ),
        exact=False,
    ),
    "ep_ffn_ag_rs": MechanismSpec(
        name="ep_ffn_ag_rs",
        equation="Eq. 4",
        tag_prefixes=("ep_ffn:dispatch_ag", "ep_ffn:combine_rs"),
        expected_elements=lambda b, s, h, n, m, k: (
            tp_ffn_comm_volume(b, s, h, n) * n
        ),
    ),
    "tp_ffn": MechanismSpec(
        name="tp_ffn",
        equation="Eq. 4",
        tag_prefixes=("tp_ffn:",),
        expected_elements=lambda b, s, h, n, m, k: (
            tp_ffn_comm_volume(b, s, h, n) * n
        ),
    ),
}


@dataclass
class AuditEntry:
    """One mechanism's predicted-vs-measured forward byte volume."""

    mechanism: str
    equation: str
    expected_bytes: float
    measured_bytes: float
    tolerance: float
    exact: bool
    #: For the A2A expectation: the all-remote hard upper bound.
    hard_bound_bytes: Optional[float] = None

    @property
    def rel_error(self) -> float:
        if self.expected_bytes == 0.0:
            return 0.0 if self.measured_bytes == 0.0 else float("inf")
        return abs(self.measured_bytes - self.expected_bytes) / self.expected_bytes

    @property
    def within_bound(self) -> bool:
        if self.hard_bound_bytes is None:
            return True
        return self.measured_bytes <= self.hard_bound_bytes * (1.0 + 1e-9)

    @property
    def ok(self) -> bool:
        return self.rel_error <= self.tolerance and self.within_bound


@dataclass
class AuditReport:
    """All audited mechanisms for one run."""

    entries: List[AuditEntry]
    passes: int

    @property
    def ok(self) -> bool:
        return bool(self.entries) and all(e.ok for e in self.entries)

    def failed(self) -> List[AuditEntry]:
        """The entries that violated their tolerance or bound."""
        return [e for e in self.entries if not e.ok]

    def entry(self, mechanism: str) -> AuditEntry:
        """The entry for one mechanism name (KeyError if absent)."""
        for e in self.entries:
            if e.mechanism == mechanism:
                return e
        raise KeyError(f"no audited mechanism {mechanism!r}")

    def render(self) -> str:
        """Aligned expected-vs-measured table for terminals/logs."""
        lines = [
            "=== comm-volume audit (forward bytes, all ranks,"
            f" {self.passes} passes) ==="
        ]
        if not self.entries:
            lines.append("(no audited mechanisms found in the trace)")
            return "\n".join(lines)
        header = (
            f"{'mechanism':14s} {'equation':20s} {'expected':>12s}"
            f" {'measured':>12s} {'rel err':>8s} {'ok':>4s}"
        )
        lines.append(header)
        for e in self.entries:
            lines.append(
                f"{e.mechanism:14s} {e.equation:20s} {e.expected_bytes:12.0f}"
                f" {e.measured_bytes:12.0f} {e.rel_error:8.4f}"
                f" {'yes' if e.ok else 'NO':>4s}"
            )
        return "\n".join(lines)


def _tag_matches(tag: str, prefixes: Tuple[str, ...]) -> bool:
    return any(tag.startswith(p) for p in prefixes)


def _measured_from_ledger(
    ledger: Any, prefixes: Tuple[str, ...], include_backward: bool
) -> float:
    # Prefer the never-rotated cumulative tag counters: a bounded
    # CommLedger(max_records=...) drops old records, and live records +
    # rolled aggregates would drift out from under a long audit window.
    bytes_by_tag = getattr(ledger, "bytes_by_tag", None)
    if callable(bytes_by_tag):
        total = 0.0
        for tag, tag_bytes in bytes_by_tag().items():
            if not _tag_matches(tag, prefixes):
                continue
            if not include_backward and tag.endswith(":bwd"):
                continue
            total += tag_bytes
        return total
    # Duck-typed sources without counters: live records plus the
    # per-(op, tag) aggregates of anything rotated out.
    total = 0.0
    for record in ledger.records:
        if not _tag_matches(record.tag, prefixes):
            continue
        if not include_backward and record.tag.endswith(":bwd"):
            continue
        total += record.total_bytes
    for (_op, tag), rolled in getattr(ledger, "rolled", {}).items():
        if not _tag_matches(tag, prefixes):
            continue
        if not include_backward and tag.endswith(":bwd"):
            continue
        total += rolled["total_bytes"]
    return total


def _measured_from_spans(
    spans: Iterable[Span], prefixes: Tuple[str, ...], include_backward: bool
) -> float:
    total = 0.0
    for span in spans:
        if not span.cat.startswith("comm"):
            continue
        tag = str(span.attrs.get("tag", ""))
        if not _tag_matches(tag, prefixes):
            continue
        if not include_backward and tag.endswith(":bwd"):
            continue
        total += float(span.attrs.get("bytes", 0.0))
    return total


def audit_comm_volumes(
    source: Union[Any, Iterable[Span]],
    *,
    b: int,
    s: int,
    h: int,
    n: int,
    m: int = 1,
    k: int = 1,
    elem_bytes: float = 8.0,
    passes: int = 1,
    tolerance: float = 0.01,
    a2a_tolerance: float = 0.30,
    include_backward: bool = False,
) -> AuditReport:
    """Audit moved bytes against the Eq. 1–4 predictions.

    Args:
        source: A :class:`~repro.comm.group.CommLedger` (anything with
            ``.records``) or an iterable of comm :class:`Span` objects
            whose attrs carry ``tag`` and ``bytes``.
        b, s, h, n, m, k: Table 1 symbols — micro-batch, sequence,
            hidden size, model-parallel degree, GQA ratio, top-k.
        elem_bytes: Wire bytes per element the engines recorded with.
        passes: Forward passes audited (layers × steps).
        tolerance: Relative tolerance for the exact ring identities.
        a2a_tolerance: Looser tolerance for the Eq. 3 routing
            expectation.
        include_backward: Also count ``:bwd``-tagged records (the dual
            collectives retrace forward volumes; off by default so the
            audit matches the per-pass formulas directly).

    Only mechanisms that actually moved bytes produce entries, so one
    auditor serves every strategy combination.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    from_ledger = hasattr(source, "records")
    span_list: List[Span] = [] if from_ledger else list(source)
    entries: List[AuditEntry] = []
    direction_factor = 2.0 if include_backward else 1.0
    for spec in MECHANISMS.values():
        if from_ledger:
            measured = _measured_from_ledger(
                source, spec.tag_prefixes, include_backward
            )
        else:
            measured = _measured_from_spans(
                span_list, spec.tag_prefixes, include_backward
            )
        if measured == 0.0:
            continue
        expected = (
            spec.expected_elements(b, s, h, n, m, k)
            * elem_bytes
            * passes
            * direction_factor
        )
        hard_bound = None
        if not spec.exact:
            hard_bound = 2.0 * k * b * s * h * elem_bytes * passes * direction_factor
        entries.append(
            AuditEntry(
                mechanism=spec.name,
                equation=spec.equation,
                expected_bytes=expected,
                measured_bytes=measured,
                tolerance=tolerance if spec.exact else a2a_tolerance,
                exact=spec.exact,
                hard_bound_bytes=hard_bound,
            )
        )
    return AuditReport(entries=entries, passes=passes)


def crosscheck_tracer_ledger(
    tracer: Any, ledger: Any, tolerance: float = 1e-9
) -> Tuple[bool, float, float]:
    """Verify traced comm bytes equal the ledger's byte totals.

    Sums ``bytes`` over comm spans and comm instant events (p2p marks)
    and compares with ``ledger.total_bytes()``.  Returns
    ``(ok, traced_bytes, ledger_bytes)``.  Only meaningful when the
    tracer was attached for the ledger's whole lifetime.
    """
    traced = 0.0
    for span in tracer.spans:
        if span.cat.startswith("comm"):
            traced += float(span.attrs.get("bytes", 0.0))
    for event in tracer.events:
        if event.cat.startswith("comm"):
            traced += float(event.attrs.get("bytes", 0.0))
    ledger_bytes = float(ledger.total_bytes())
    if ledger_bytes == 0.0:
        return traced == 0.0, traced, ledger_bytes
    ok = abs(traced - ledger_bytes) / ledger_bytes <= tolerance
    return ok, traced, ledger_bytes
