"""Unified observability: tracing, metrics, export, and comm auditing.

One :class:`Observability` bundle per run wires the whole stack:

>>> from repro.obs import Observability
>>> obs = Observability.create()
>>> # trainer = MegaScaleTrainer(..., obs=obs)  # spans + metrics
>>> # write_chrome_trace("trace.json", obs.tracer)

See ``docs/INTERNALS.md`` §7 for the span model and exporter format,
and ``python -m repro trace`` for the end-to-end demo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .audit import (
    MECHANISMS,
    AuditEntry,
    AuditReport,
    audit_comm_volumes,
    crosscheck_tracer_ledger,
)
from .export import text_summary, to_chrome_trace, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .tracer import Event, Span, Tracer

__all__ = [
    "AuditEntry",
    "AuditReport",
    "Counter",
    "Event",
    "Gauge",
    "Histogram",
    "MECHANISMS",
    "MetricsRegistry",
    "Observability",
    "Span",
    "Tracer",
    "audit_comm_volumes",
    "crosscheck_tracer_ledger",
    "text_summary",
    "to_chrome_trace",
    "write_chrome_trace",
]


@dataclass
class Observability:
    """Tracer + metrics registry handed to trainers and runners."""

    tracer: Tracer = field(default_factory=Tracer)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @classmethod
    def create(cls, clock: Optional[Callable[[], float]] = None) -> "Observability":
        """Fresh bundle, optionally on an injected clock."""
        return cls(tracer=Tracer(clock=clock), metrics=MetricsRegistry())
