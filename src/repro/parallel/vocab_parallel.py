"""Vocab-parallel LM head and cross-entropy.

With a 65,536-token vocabulary (§6.1) the LM-head logits tensor
``[tokens, vocab]`` is the single largest activation, so production
systems shard the output projection across the model-parallel ranks and
compute the softmax cross-entropy *without ever materializing full
logits* (Megatron-LM's vocab-parallel loss, used by both compared
systems).  Each rank holds ``vocab/n`` output columns:

1. local logits ``x @ W_r``  → ``[T, V/n]``;
2. a *detached* global row-max (softmax is shift-invariant, so no
   gradient flows through the max — a numpy side-channel suffices);
3. local ``sum(exp(logits - max))`` reduced with a differentiable
   all-reduce → the log-sum-exp;
4. each target's logit lives on exactly one rank; a differentiable
   all-reduce of the per-rank partial picks it up.

The result equals the reference dense cross-entropy to float precision,
while each rank's logits stay ``1/n`` of the full width.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..comm.group import ProcessGroup
from ..tensor import Tensor
from .dist_ops import dist_all_reduce

__all__ = ["shard_lm_head", "vocab_parallel_cross_entropy",
           "vocab_parallel_loss"]


def shard_lm_head(weight: np.ndarray, n: int) -> List[Tensor]:
    """Column-shard an ``[h, V]`` LM-head weight into ``n`` leaves."""
    h, vocab = weight.shape
    if vocab % n != 0:
        raise ValueError(f"vocab {vocab} not divisible by {n} ranks")
    width = vocab // n
    return [Tensor(weight[:, r * width:(r + 1) * width].copy(),
                   requires_grad=True, name=f"lm_head_shard_{r}")
            for r in range(n)]


def vocab_parallel_cross_entropy(
    group: ProcessGroup,
    logit_shards: Sequence[Tensor],
    targets: np.ndarray,
    elem_bytes: float = 2.0,
) -> Tensor:
    """Mean cross-entropy from per-rank ``[T, V/n]`` logit shards.

    ``targets`` holds global vocabulary ids of shape ``[T]`` (or any
    shape flattening to T).  Returns a scalar Tensor on the shared tape;
    gradients flow to every shard.
    """
    group.check_shards(logit_shards)
    n = group.size
    targets = np.asarray(targets).reshape(-1)
    t = logit_shards[0].shape[0]
    width = logit_shards[0].shape[-1]
    if targets.shape[0] != t:
        raise ValueError(
            f"targets cover {targets.shape[0]} rows, logits have {t}"
        )
    if (targets < 0).any() or (targets >= n * width).any():
        raise ValueError("target id outside the sharded vocabulary")

    # 2. Detached global max per row (shift-invariance: no grad path).
    global_max = np.max(
        [shard.data.max(axis=-1) for shard in logit_shards], axis=0)
    shift = global_max[:, None]

    # 3. Differentiable log-sum-exp via an all-reduce of local sums.
    local_sums = [
        (shard - Tensor(shift)).exp().sum(axis=-1, keepdims=True)
        for shard in logit_shards
    ]
    global_sums = dist_all_reduce(group, local_sums,
                                  elem_bytes=elem_bytes,
                                  tag="vocab_ce:sumexp")

    # 4. The target logit, assembled by summing per-rank partials.
    rows = np.arange(t)
    partials = []
    for r, shard in enumerate(logit_shards):
        local_ids = targets - r * width
        mine = (local_ids >= 0) & (local_ids < width)
        # Rows not owned contribute zero; clamp indices for the gather.
        safe_ids = np.where(mine, local_ids, 0)
        gathered = shard[rows, safe_ids]
        partials.append(gathered * Tensor(mine.astype(shard.dtype)))
    target_logits = dist_all_reduce(group, partials,
                                    elem_bytes=elem_bytes,
                                    tag="vocab_ce:target")

    # Every rank computes the identical loss; take rank 0's copy.
    lse = global_sums[0].log().reshape(t) + Tensor(global_max)
    loss = (lse - target_logits[0]).mean()
    return loss


def vocab_parallel_loss(
    group: ProcessGroup,
    hidden_shards: Sequence[Tensor],
    head_shards: Sequence[Tensor],
    targets: np.ndarray,
    elem_bytes: float = 2.0,
) -> Tensor:
    """Sequence-sharded hidden states × vocab-sharded head → mean CE.

    ``hidden_shards[r]`` is rank r's ``[b, s/n, h]`` slice and
    ``head_shards[r]`` its ``[h, V/n]`` columns.  Each rank's tokens
    need logits over the *full* vocabulary, so hidden states circulate
    (here: every rank evaluates its head shard on the concatenated
    sequence — the all-gather the paper's SP region performs anyway),
    then the sharded cross-entropy above finishes the job.
    """
    group.check_shards(hidden_shards)
    group.check_shards(head_shards)
    from .dist_ops import dist_all_gather
    flats = [s.reshape(-1, s.shape[-1]) if s.ndim == 3 else s
             for s in hidden_shards]
    fulls = dist_all_gather(group, flats, axis=0,
                            elem_bytes=elem_bytes, tag="vocab_ce:ag")
    logit_shards = [fulls[r] @ head_shards[r]
                    for r in range(group.size)]
    return vocab_parallel_cross_entropy(group, logit_shards, targets,
                                        elem_bytes)
