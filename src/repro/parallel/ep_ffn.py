"""Expert-parallel FFN with both dispatch modes (§3.2, Fig. 6).

Each of the ``n`` ranks owns ``E/n`` whole experts (full GEMM shapes —
the GEMM-efficiency advantage over TP) plus a replica of the router gate.
Activations enter and leave sequence-sharded (``[b, s/n, h]``).

Two communication patterns are implemented:

* **A2A** (classic expert parallelism): token rows travel to their
  experts' ranks via an uneven all-to-all, and return the same way.
  Per-pass volume is Eq. 3, ``2 k/n · b s h (n-1)/n`` — shrinks with
  ``n`` but grows with top-``k``.
* **AG/RS** (MegaScale's alternative for large top-k): all-gather the
  token shards, *locally scatter* (discard rows not routed to this
  rank's experts), compute, assemble a full-size contribution, and
  reduce-scatter.  Volume equals TP's Eq. 4 regardless of ``k``, and the
  ring pattern is faster than all-to-all in practice (Fig. 7).

Received rows are sorted by ``(expert, source rank)`` — the §4.2
ordering that minimizes the number of source ranks each GroupedGEMM tile
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..comm.group import ProcessGroup
from ..model.moe import MoELayer, grouped_expert_forward
from ..model.routing import RoutingResult, build_dispatch_plan
from ..tensor import Tensor, ops
from .dist_ops import (
    dist_all_gather,
    dist_all_to_all_uneven,
    dist_reduce_scatter,
)

__all__ = ["EPFFNEngine", "EPForwardResult", "choose_dispatch_mode"]


def choose_dispatch_mode(top_k: int, ep_size: int) -> str:
    """Adaptive dispatch-mode choice (§3.2).

    A2A moves ``2k/n``·X elements versus AG/RS's ``2``·X, so on volume
    alone A2A wins while ``k < n``; but A2A's all-pairs pattern is less
    efficient than the ring collectives, so MegaScale switches to AG/RS
    once ``k`` approaches ``n`` (Fig. 7 puts the crossover near top-k≈6
    on an 8-GPU node).
    """
    return "a2a" if top_k < 0.75 * ep_size else "ag_rs"


@dataclass
class EPForwardResult:
    """Per-rank outputs of an EP forward pass."""

    output_shards: List[Tensor]
    aux_loss: Tensor
    routing: List[RoutingResult]
    tokens_per_rank: np.ndarray


class EPFFNEngine:
    """Runs a reference :class:`MoELayer`'s experts under EP."""

    def __init__(self, group: ProcessGroup, moe: MoELayer,
                 mode: str = "adaptive",
                 elem_bytes: Optional[float] = None,
                 fp8_comm: bool = False):
        n = group.size
        if moe.n_experts % n != 0:
            raise ValueError(
                f"n_experts={moe.n_experts} not divisible by EP size {n}"
            )
        if mode not in ("a2a", "ag_rs", "adaptive"):
            raise ValueError(f"unknown dispatch mode {mode!r}")
        self.group = group
        self.moe = moe
        self.local_experts = moe.n_experts // n
        if mode == "adaptive":
            mode = choose_dispatch_mode(moe.top_k, n)
        self.mode = mode
        self.elem_bytes = elem_bytes
        #: §5 FP8 communication compression (AG/RS dispatch mode only:
        #: the A2A path already carries selected rows).
        self.fp8_comm = fp8_comm
        #: Conservation telemetry from the most recent forward pass
        #: (consumed by ``repro.verify``'s token-conservation and
        #: router-mass invariants); None until the first forward.
        self.last_telemetry: Optional[dict] = None
        self._last_send_splits: Optional[List[List[int]]] = None

    # -- shared helpers ----------------------------------------------------

    def _flatten(self, shards: Sequence[Tensor]) -> List[Tensor]:
        flats = []
        for shard in shards:
            if shard.ndim == 3:
                flats.append(shard.reshape(-1, shard.shape[-1]))
            else:
                flats.append(shard)
        return flats

    # -- per-op handlers (graph-node granularity) --------------------------
    #
    # One method per forward-graph op, shared verbatim by the legacy
    # call chains below and the DAG executor's bindings, so both paths
    # build the identical autograd tape.

    def op_route(self, flat: Tensor):
        """``router`` (A2A mode): replicated gate over local tokens."""
        routing, weights, _ = self.moe.router(flat)
        return routing, weights

    def op_scatter_a2a(self, flat: Tensor, routing: RoutingResult):
        """``scatter`` (A2A mode): sort kept (token, slot) pairs by
        destination rank, then expert, then token order."""
        n = self.group.size
        pair_token = np.repeat(np.arange(routing.n_tokens),
                               routing.top_k)
        pair_slot = np.tile(np.arange(routing.top_k), routing.n_tokens)
        pair_expert = routing.expert_index.reshape(-1)
        kept = routing.kept.reshape(-1)
        pos = np.nonzero(kept)[0]
        dest = pair_expert[pos] // self.local_experts
        order = np.lexsort((pos, pair_expert[pos], dest))
        sel = pos[order]
        send_rows = ops.take_rows(flat, pair_token[sel])
        meta = {
            "token": pair_token[sel],
            "slot": pair_slot[sel],
            "expert": pair_expert[sel],
        }
        splits = np.bincount(dest[order], minlength=n).tolist()
        return send_rows, meta, splits

    def op_experts_a2a(self, received: Tensor, metas, all_splits,
                       j: int) -> Tensor:
        """``fc1``–``fc2`` (A2A mode): sort received rows by (expert,
        source rank), GroupedGEMM, un-sort back to arrival order."""
        n = self.group.size
        expert_ids = np.concatenate([
            metas[i]["expert"][_split_slice(all_splits[i], j)]
            for i in range(n)
        ]) if received.shape[0] else np.zeros(0, dtype=np.int64)
        source_rank = np.concatenate([
            np.full(all_splits[i][j], i) for i in range(n)
        ]) if received.shape[0] else np.zeros(0, dtype=np.int64)
        order = np.lexsort((np.arange(expert_ids.shape[0]),
                            source_rank, expert_ids))
        sorted_rows = ops.take_rows(received, order)
        counts = np.bincount(expert_ids - j * self.local_experts,
                             minlength=self.local_experts)
        fc2_out = _grouped_forward_by_counts(
            self.moe.experts[j * self.local_experts:
                             (j + 1) * self.local_experts],
            sorted_rows, counts)
        inverse = np.argsort(order)
        return ops.take_rows(fc2_out, inverse)

    def op_combine_weighted(self, rows: Tensor, meta, weights: Tensor,
                            t_local: int, out_shape) -> Tensor:
        """``weighted_sum`` (A2A mode): gate-weight returned rows and
        scatter-add them back into token order (§4.1)."""
        w_rows = weights[meta["token"], meta["slot"]]
        scaled = rows * w_rows.reshape(-1, 1)
        combined = ops.put_rows(scaled, meta["token"], t_local)
        return combined.reshape(*out_shape)

    def op_route_full(self, full: Tensor):
        """``router`` (AG/RS mode): replicated gate over all tokens."""
        return self.moe.router(full)

    def op_scatter_ag(self, full: Tensor, routing: RoutingResult,
                      j: int, source_rank: np.ndarray):
        """``scatter`` (AG/RS mode): keep rows routed to rank ``j``'s
        experts, sorted by (expert, source rank)."""
        local_lo = j * self.local_experts
        local_hi = local_lo + self.local_experts
        masked = RoutingResult(
            expert_index=routing.expert_index,
            gate_weight=routing.gate_weight,
            kept=routing.kept
            & (routing.expert_index >= local_lo)
            & (routing.expert_index < local_hi),
        )
        plan = build_dispatch_plan(masked, self.moe.n_experts,
                                   source_rank_of_token=source_rank)
        ffn_in = ops.take_rows(full, plan.token_of_row)
        return plan, ffn_in

    def op_experts_ag(self, ffn_in: Tensor, plan, j: int) -> Tensor:
        """``fc1``–``fc2`` (AG/RS mode): local GroupedGEMM."""
        local_lo = j * self.local_experts
        return grouped_expert_forward(
            self.moe.experts[local_lo:local_lo + self.local_experts],
            ffn_in, plan, expert_offset=local_lo)

    def op_gather_ag(self, fc2_out: Tensor, plan, weights: Tensor,
                     t_total: int) -> Tensor:
        """``gather`` (AG/RS mode): weighted full-size contribution."""
        w_rows = weights[plan.token_of_row, plan.slot_of_row]
        scaled = fc2_out * w_rows.reshape(-1, 1)
        return ops.put_rows(scaled, plan.token_of_row, t_total)

    def forward(self, hidden_shards: List[Tensor],
                executor: Optional[object] = None) -> EPForwardResult:
        """Map ``ln2_out`` shards to combined MoE-output shards.

        With an ``executor`` (:class:`~repro.runtime.spmd.SpmdExecutor`),
        each rank runs on its own thread: routing metadata crosses rank
        boundaries via an explicit gossip rendezvous instead of shared
        Python lists, and the global aux loss is built exactly once at a
        rendezvous so the gate gradient matches the sequential graph
        bitwise.
        """
        self.group.check_shards(hidden_shards)
        self._last_send_splits = None
        if executor is not None:
            result = self._forward_spmd(hidden_shards, executor)
        elif self.mode == "a2a":
            result = self._forward_a2a(hidden_shards)
        else:
            result = self._forward_ag_rs(hidden_shards)
        self.record_telemetry(hidden_shards, result)
        return result

    def record_telemetry(self, hidden_shards: Sequence[Tensor],
                         result: EPForwardResult) -> None:
        """Snapshot what dispatch/combine moved, as plain numbers.

        The verify invariants check conservation laws against this; the
        DAG executor calls it too so both backends expose the same
        telemetry surface.
        """
        self.last_telemetry = {
            "mode": self.mode,
            "top_k": self.moe.top_k,
            "tokens_in": [int(np.prod(s.shape[:-1]))
                          for s in hidden_shards],
            "tokens_per_rank": np.asarray(
                result.tokens_per_rank).tolist(),
            "kept_pairs": [int(r.kept.sum()) for r in result.routing],
            "gate_mass": [
                np.asarray((r.gate_weight * r.kept).sum(axis=1))
                for r in result.routing
            ],
            "fully_kept": [np.asarray(r.kept.all(axis=1))
                           for r in result.routing],
            "input_shapes": [tuple(s.shape) for s in hidden_shards],
            "output_shapes": [tuple(s.shape)
                              for s in result.output_shards],
            "send_splits": self._last_send_splits,
        }

    def _forward_spmd(self, hidden_shards: List[Tensor],
                      executor) -> EPForwardResult:
        rank_fn = (self._a2a_rank if self.mode == "a2a"
                   else self._ag_rs_rank)
        results = executor.run(
            self.group,
            lambda comm: rank_fn(comm, hidden_shards[comm.index]))
        outputs = [r[0] for r in results]
        aux = results[0][1]
        if self.mode == "a2a":
            routings = [r[2] for r in results]
            tokens = np.array([r[3] for r in results])
        else:
            routings = [results[0][2]]
            tokens = np.asarray(results[0][3])
        return EPForwardResult(
            output_shards=outputs,
            aux_loss=aux,
            routing=routings,
            tokens_per_rank=tokens,
        )

    # -- A2A dispatch --------------------------------------------------------

    def _forward_a2a(self, hidden_shards: List[Tensor]) -> EPForwardResult:
        group = self.group
        n = group.size
        flats = self._flatten(hidden_shards)

        # 1. Local routing on each rank (replicated gate => the same
        #    decisions the reference model makes for those tokens).
        routings: List[RoutingResult] = []
        weight_tensors: List[Tensor] = []
        for flat in flats:
            routing, weights = self.op_route(flat)
            routings.append(routing)
            weight_tensors.append(weights)
        aux = self._global_aux_loss(flats, routings)

        # 2. Sort each rank's kept (token, slot) pairs by destination
        #    rank, then expert, then token order.
        send_rows: List[Tensor] = []
        send_meta = []
        send_splits = []
        for flat, routing in zip(flats, routings):
            rows, meta, splits = self.op_scatter_a2a(flat, routing)
            send_rows.append(rows)
            send_meta.append(meta)
            send_splits.append(splits)

        # 3. Dispatch all-to-all.
        self._last_send_splits = [list(s) for s in send_splits]
        received = dist_all_to_all_uneven(
            group, send_rows, send_splits, elem_bytes=self.elem_bytes,
            tag="ep_ffn:dispatch_a2a",
        )

        # 4. On each expert rank: sort received rows by (expert, source
        #    rank) and run the local experts' GroupedGEMM.
        returned = [
            self.op_experts_a2a(received[j], send_meta, send_splits, j)
            for j in range(n)
        ]

        # 5. Combine all-to-all: transpose the split matrix.
        back_splits = [[send_splits[i][j] for i in range(n)]
                       for j in range(n)]
        combined_rows = dist_all_to_all_uneven(
            group, returned, back_splits, elem_bytes=self.elem_bytes,
            tag="ep_ffn:combine_a2a",
        )

        # 6. Weighted sum on the source rank (gate weight applied after
        #    FC2, §4.1).
        outputs = [
            self.op_combine_weighted(
                rows, send_meta[rank], weight_tensors[rank],
                flats[rank].shape[0], hidden_shards[rank].shape)
            for rank, rows in enumerate(combined_rows)
        ]

        return EPForwardResult(
            output_shards=outputs,
            aux_loss=aux,
            routing=routings,
            tokens_per_rank=np.array(
                [r.kept.sum() for r in routings]),
        )

    # -- AG/RS dispatch ------------------------------------------------------

    def _forward_ag_rs(self, hidden_shards: List[Tensor]) -> EPForwardResult:
        group = self.group
        n = group.size
        flats = self._flatten(hidden_shards)
        t_locals = [f.shape[0] for f in flats]
        t_total = sum(t_locals)

        # 1. All-gather the token shards: every rank sees all T tokens.
        if self.fp8_comm:
            from .dist_ops_fp8 import dist_all_gather_fp8
            fulls = dist_all_gather_fp8(group, flats,
                                        tag="ep_ffn:dispatch_ag")
        else:
            fulls = dist_all_gather(group, flats, axis=0,
                                    elem_bytes=self.elem_bytes,
                                    tag="ep_ffn:dispatch_ag")

        # Token -> source-rank map for the §4.2 tile ordering.
        source_rank = np.concatenate([
            np.full(t, i) for i, t in enumerate(t_locals)])

        contributions: List[Tensor] = []
        routings: List[RoutingResult] = []
        aux: Optional[Tensor] = None
        for j in range(n):
            # 2. Route the full batch locally (identical on every rank);
            #    only rank j's expert rows are used downstream, so the
            #    shared gate accumulates exactly the reference gradient.
            routing, weights, aux_j = self.op_route_full(fulls[j])
            routings.append(routing)
            if j == 0:
                aux = aux_j  # identical across ranks; count once

            # 3. Local scatter: keep only rows routed to local experts,
            #    sorted by (expert, source rank).
            plan, ffn_in = self.op_scatter_ag(fulls[j], routing, j,
                                              source_rank)

            # 4. Local experts' GroupedGEMM.
            fc2_out = self.op_experts_ag(ffn_in, plan, j)

            # 5. Gather: weighted rows assembled into a full-size tensor.
            contributions.append(
                self.op_gather_ag(fc2_out, plan, weights, t_total))

        # 6. Reduce-scatter the contributions back to sequence shards.
        if self.fp8_comm:
            from .dist_ops_fp8 import dist_reduce_scatter_fp8
            out_flats = dist_reduce_scatter_fp8(
                group, contributions, tag="ep_ffn:combine_rs")
        else:
            out_flats = dist_reduce_scatter(
                group, contributions, axis=0,
                elem_bytes=self.elem_bytes, tag="ep_ffn:combine_rs",
            )
        outputs = [flat.reshape(*shard.shape)
                   for flat, shard in zip(out_flats, hidden_shards)]
        return EPForwardResult(
            output_shards=outputs,
            aux_loss=aux,
            routing=routings[:1],
            tokens_per_rank=np.asarray(t_locals),
        )

    # -- SPMD per-rank paths -----------------------------------------------

    def _a2a_rank(self, comm, shard: Tensor):
        """One rank's slice of :meth:`_forward_a2a` under an executor.

        Same arithmetic in the same order; peers' routing metadata
        arrives via gossip (a rendezvous with no ledger bytes — the
        sequential loop reads it from shared lists), and the global aux
        loss is constructed once by the rendezvous leader so every rank
        shares one graph, exactly like the sequential pass.
        """
        n = comm.size
        rank = comm.index
        flat = self._flatten([shard])[0]

        # 1. Local routing; aux built once over every rank's (flat,
        #    routing) at a rendezvous — one shared Tensor, one graph.
        routing, weights = self.op_route(flat)
        aux = comm.exchange(
            ("ep_ffn", "aux"), (flat, routing),
            lambda slots: self._global_aux_loss(
                [s[0] for s in slots], [s[1] for s in slots]))

        # 2. Sort kept (token, slot) pairs by destination rank.
        send_rows, meta, splits = self.op_scatter_a2a(flat, routing)

        # Peers' metadata (expert ids per split, split sizes) — the
        # sequential loop reads these straight out of shared lists.
        shared = comm.gossip("ep_ffn:meta", (meta, splits))
        metas = [s[0] for s in shared]
        all_splits = [s[1] for s in shared]

        # 3. Dispatch all-to-all.
        received = comm.all_to_all_uneven(
            send_rows, splits, elem_bytes=self.elem_bytes,
            tag="ep_ffn:dispatch_a2a")

        # 4. Sort received rows by (expert, source rank); GroupedGEMM.
        returned = self.op_experts_a2a(received, metas, all_splits, rank)

        # 5. Combine all-to-all: transposed split matrix.
        back_splits = [all_splits[i][rank] for i in range(n)]
        rows = comm.all_to_all_uneven(
            returned, back_splits, elem_bytes=self.elem_bytes,
            tag="ep_ffn:combine_a2a")

        # 6. Weighted sum on the source rank.
        output = self.op_combine_weighted(rows, meta, weights,
                                          flat.shape[0], shard.shape)
        return output, aux, routing, routing.kept.sum()

    def _ag_rs_rank(self, comm, shard: Tensor):
        """One rank's slice of :meth:`_forward_ag_rs` under an executor.

        The all-gather delivers the same zero-copy full batch to every
        rank, each rank routes it locally (identical decisions), and
        only rank 0's aux-loss graph is kept — exactly the sequential
        accounting.
        """
        j = comm.index
        flat = self._flatten([shard])[0]
        t_locals = comm.gossip("ep_ffn:t_local", flat.shape[0])
        t_total = sum(t_locals)

        # 1. All-gather the token shards.
        if self.fp8_comm:
            from .dist_ops_fp8 import dist_all_gather_fp8
            full = comm.collective(dist_all_gather_fp8, flat,
                                   tag="ep_ffn:dispatch_ag")
        else:
            full = comm.all_gather(flat, axis=0,
                                   elem_bytes=self.elem_bytes,
                                   tag="ep_ffn:dispatch_ag")

        source_rank = np.concatenate([
            np.full(t, i) for i, t in enumerate(t_locals)])

        # 2. Route the full batch locally.
        routing, weights, aux = self.op_route_full(full)

        # 3. Local scatter to this rank's experts.
        plan, ffn_in = self.op_scatter_ag(full, routing, j, source_rank)

        # 4. Local experts' GroupedGEMM.
        fc2_out = self.op_experts_ag(ffn_in, plan, j)

        # 5. Full-size weighted contribution.
        contribution = self.op_gather_ag(fc2_out, plan, weights, t_total)

        # 6. Reduce-scatter back to sequence shards.
        if self.fp8_comm:
            from .dist_ops_fp8 import dist_reduce_scatter_fp8
            out_flat = comm.collective(dist_reduce_scatter_fp8,
                                       contribution,
                                       tag="ep_ffn:combine_rs")
        else:
            out_flat = comm.reduce_scatter(contribution, axis=0,
                                           elem_bytes=self.elem_bytes,
                                           tag="ep_ffn:combine_rs")
        output = out_flat.reshape(*shard.shape)
        return output, aux, routing, list(t_locals)

    # -- aux loss --------------------------------------------------------

    def _global_aux_loss(self, flats: List[Tensor],
                         routings: List[RoutingResult]) -> Tensor:
        """Balance loss over the global batch from per-rank routings.

        ``f`` (dispatch fractions) uses globally-summed counts; ``P``
        (mean routed probability) averages the per-rank means, which
        equals the global mean for equal shards.  The per-rank P graphs
        re-run the gate forward, so gradients flow to the replica from
        every rank — matching the reference single-rank computation.
        """
        moe = self.moe
        router = moe.router
        g_size = router.experts_per_group
        n_groups = router.n_experts // g_size

        counts = np.zeros(router.n_experts, dtype=np.float64)
        for routing in routings:
            counts += np.bincount(routing.expert_index[routing.kept]
                                  .reshape(-1),
                                  minlength=router.n_experts)
        group_counts = counts.reshape(n_groups, g_size).sum(axis=1)
        f = group_counts / max(group_counts.sum(), 1.0)

        total: Optional[Tensor] = None
        weight_total = 0
        for flat in flats:
            t = flat.shape[0]
            probs = ops.softmax(router.gate(flat), axis=-1)
            p_local = probs.reshape(t, n_groups, g_size).sum(axis=-1) \
                .sum(axis=0)
            piece = (p_local * Tensor(f)).sum() * float(n_groups)
            total = piece if total is None else total + piece
            weight_total += t
        return total * (1.0 / weight_total)


def _split_slice(splits: Sequence[int], j: int) -> slice:
    start = int(np.sum(splits[:j]))
    return slice(start, start + splits[j])


def _grouped_forward_by_counts(experts, rows: Tensor,
                               counts: np.ndarray) -> Tensor:
    """GroupedGEMM over contiguous per-expert row blocks given counts."""
    pieces = []
    offset = 0
    for local_id, count in enumerate(counts):
        if count == 0:
            continue
        pieces.append(experts[local_id](rows[offset:offset + count]))
        offset += count
    if not pieces:
        return Tensor(np.zeros((0, experts[0].fc2.shape[1]),
                               dtype=rows.dtype))
    return ops.concat(pieces, axis=0)
