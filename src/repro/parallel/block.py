"""A full parallel MoE layer: norms + attention + FFN over shards.

Composes the per-module engines into the Fig. 20 data flow with
sequence-sharded activations.  Because RMSNorm and residual adds act
per-token, they run locally on each shard — this is precisely why both
MegaScale-MoE and Megatron keep these operators in the sequence-parallel
region (§2.2).

Strategy combinations mirror the Fig. 13 ablation: attention ∈
{SP, TP} × FFN ∈ {EP, TP}, with SP+EP being MegaScale-MoE and TP+TP the
Megatron-LM baseline.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..comm.group import ProcessGroup
from ..model.transformer import TransformerBlock
from ..tensor import Tensor
from .ep_ffn import EPFFNEngine
from .sp_attention import SPAttentionEngine
from .tp_attention import TPAttentionEngine
from .tp_ffn import TPFFNEngine

__all__ = ["ParallelBlockEngine", "shard_sequence", "unshard_sequence"]


def shard_sequence(x: np.ndarray, n: int,
                   requires_grad: bool = False) -> List[Tensor]:
    """Split ``[b, s, h]`` into ``n`` sequence shards as leaf Tensors."""
    s = x.shape[1]
    if s % n != 0:
        raise ValueError(f"sequence {s} not divisible by {n} ranks")
    width = s // n
    return [Tensor(x[:, r * width:(r + 1) * width].copy(),
                   requires_grad=requires_grad) for r in range(n)]


def unshard_sequence(shards: List[Tensor]) -> np.ndarray:
    """Concatenate per-rank shard values back to ``[b, s, h]``."""
    return np.concatenate([s.data for s in shards], axis=1)


class ParallelBlockEngine:
    """Runs one :class:`TransformerBlock` sharded across a group."""

    def __init__(self, group: ProcessGroup, block: TransformerBlock,
                 attention: str = "sp", ffn: str = "ep",
                 ep_mode: str = "adaptive",
                 elem_bytes: Optional[float] = None,
                 fp8_comm: bool = False,
                 dropout: float = 0.0, rng_pool=None):
        self.group = group
        self.block = block
        if attention == "sp":
            self.attn_engine = SPAttentionEngine(group, block.attn,
                                                 elem_bytes,
                                                 dropout=dropout,
                                                 rng_pool=rng_pool)
        elif attention == "tp":
            if dropout > 0.0:
                raise ValueError(
                    "dropout is only wired into SP attention"
                )
            self.attn_engine = TPAttentionEngine(group, block.attn,
                                                 elem_bytes)
        else:
            raise ValueError(f"unknown attention strategy {attention!r}")
        if ffn == "ep":
            self.ffn_engine = EPFFNEngine(group, block.moe, ep_mode,
                                          elem_bytes, fp8_comm=fp8_comm)
        elif ffn == "tp":
            self.ffn_engine = TPFFNEngine(group, block.moe, elem_bytes,
                                          fp8_comm=fp8_comm)
        else:
            raise ValueError(f"unknown ffn strategy {ffn!r}")
        self.attention = attention
        self.ffn = ffn
        #: DAG-backend state: compiled executors keyed by (seq_len,
        #: program identity), plus introspection from the last DAG run.
        self._dag_cache: dict = {}
        self.last_executed_ops: Optional[List[str]] = None
        self.last_executed_tiles: Optional[List[str]] = None
        self.last_remat_report: Optional[dict] = None

    def forward(self, hidden_shards: List[Tensor], seq_len: int,
                executor: Optional[object] = None,
                dag_program: Optional[object] = None,
                remat_plan: Optional[object] = None,
                vectorized: bool = False
                ) -> Tuple[List[Tensor], Tensor]:
        """Map hidden shards through the block; returns (shards, aux).

        ``executor`` (an :class:`~repro.runtime.spmd.SpmdExecutor`) is
        forwarded to the SP attention and EP FFN engines, which run
        their per-rank compute on concurrent threads; the TP engines
        and the per-token norms/residuals stay on the calling thread.

        With a ``dag_program`` (a
        :class:`~repro.core.executor_bindings.LayerProgram`), the layer
        instead runs through the
        :class:`~repro.runtime.dag_executor.DagExecutor` in the
        program's schedule order — bitwise-identical to this path; an
        ``executor`` then threads *every* op per-rank, ``vectorized``
        batches every op over the rank axis
        (:mod:`repro.runtime.vectorized`), and a ``remat_plan`` drops
        unretained activations afterwards.
        """
        if dag_program is not None:
            return self._dag_forward(hidden_shards, seq_len, executor,
                                     dag_program, remat_plan,
                                     vectorized=vectorized)
        if vectorized:
            raise ValueError(
                "vectorized execution requires a dag_program"
            )
        block = self.block
        ln1_out = [block.ln1(h) for h in hidden_shards]
        if executor is not None and self.attention == "sp":
            attn_out = self.attn_engine.forward(ln1_out, seq_len,
                                                executor=executor)
        else:
            attn_out = self.attn_engine.forward(ln1_out, seq_len)
        ln2_in = [h + a for h, a in zip(hidden_shards, attn_out)]
        ln2_out = [block.ln2(x) for x in ln2_in]
        if self.ffn == "ep":
            if executor is not None:
                result = self.ffn_engine.forward(ln2_out,
                                                 executor=executor)
            else:
                result = self.ffn_engine.forward(ln2_out)
            ffn_out, aux = result.output_shards, result.aux_loss
        else:
            ffn_out, aux = self.ffn_engine.forward(ln2_out)
        return [x + f for x, f in zip(ln2_in, ffn_out)], aux

    def _dag_forward(self, hidden_shards: List[Tensor], seq_len: int,
                     executor: Optional[object], program,
                     remat_plan,
                     vectorized: bool = False
                     ) -> Tuple[List[Tensor], Tensor]:
        """Run the layer through the schedule-ordered DAG executor."""
        from ..core.executor_bindings import build_layer_bindings
        from ..runtime.dag_executor import DagExecutor

        key = (seq_len, id(program))
        dag = self._dag_cache.get(key)
        if dag is None:
            bindings = build_layer_bindings(
                self, seq_len,
                tile_plan=getattr(program, "tile_plan", None))
            dag = DagExecutor(program, bindings, self.group)
            self._dag_cache[key] = dag

        if self.ffn == "ep":
            self.ffn_engine._last_send_splits = None
        tracer = getattr(getattr(self.group, "world", None),
                         "tracer", None)
        result = dag.run({"hidden": hidden_shards}, executor=executor,
                         tracer=tracer, vectorized=vectorized)
        self.last_executed_ops = list(result.executed)
        self.last_executed_tiles = (
            list(result.executed_tiles)
            if result.executed_tiles is not None else None)

        outputs = result.per_rank("residual2")
        router_vals = result.per_rank("router")
        if self.ffn == "ep":
            from .ep_ffn import EPForwardResult
            if self.ffn_engine.mode == "a2a":
                aux = router_vals[0][3]
                routings = [v[1] for v in router_vals]
                tokens = np.array([int(v[1].kept.sum())
                                   for v in router_vals])
                ffn_out = result.per_rank("weighted_sum")
            else:
                aux = router_vals[0][2]
                routings = [router_vals[0][0]]
                tokens = np.asarray(result.per_rank("ffn_ag")[0][1])
                ffn_out = result.per_rank("ffn_rs")
            ep_result = EPForwardResult(
                output_shards=ffn_out, aux_loss=aux, routing=routings,
                tokens_per_rank=tokens)
            self.ffn_engine.record_telemetry(result.per_rank("ln2"),
                                             ep_result)
        else:
            aux = router_vals[0][2]

        self.last_remat_report = (
            result.apply_remat(remat_plan)
            if remat_plan is not None else None)
        return outputs, aux

    def sync_grads_to_reference(self) -> None:
        """Fold any TP weight-shard gradients back onto the reference
        module (no-op for SP/EP, whose weights are shared objects)."""
        for engine in (self.attn_engine, self.ffn_engine):
            sync = getattr(engine, "sync_grads_to_reference", None)
            if sync is not None:
                sync()

    def refresh_shards(self) -> None:
        """Re-derive TP weight shards after an optimizer step."""
        for engine in (self.attn_engine, self.ffn_engine):
            refresh = getattr(engine, "refresh_shards", None)
            if refresh is not None:
                refresh()
