"""Pipeline-parallel schedules: GPipe, 1F1B, interleaved 1F1B (§2.2).

MegaScale-MoE distributes layers across nodes with pipeline parallelism
(Fig. 4) and, like Megatron-LM, uses interleaved 1F1B to cut bubbles.
This module produces explicit per-stage schedules — ordered lists of
forward/backward micro-batch tasks — plus the classic bubble-rate
analysis the strong-scaling discussion in §6.1 relies on ("the number of
micro-batches for each pipeline decreases with more GPUs, leading to
more bubbles").

A schedule is a list per stage of :class:`PipelineTask`; dependency
validation checks that no task runs before its upstream producer, which
tests use as a safety property across all generated schedules.

:class:`PipelineRunner` executes a stage-partitioned model through a
schedule on one process, proving the schedules are numerically inert
(identical losses/grads to unpipelined execution).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "PipelineTask",
    "gpipe_schedule",
    "one_f_one_b_schedule",
    "interleaved_1f1b_schedule",
    "validate_schedule",
    "bubble_fraction",
    "PipelineRunner",
]


@dataclass(frozen=True)
class PipelineTask:
    """One unit of pipeline work on a stage.

    Attributes:
        phase: ``"F"`` (forward) or ``"B"`` (backward).
        micro_batch: Micro-batch index.
        virtual_stage: Which of the stage's virtual (interleaved) chunks
            this task belongs to; 0 when not interleaved.
    """

    phase: str
    micro_batch: int
    virtual_stage: int = 0


def gpipe_schedule(n_stages: int, n_micro: int) -> List[List[PipelineTask]]:
    """All forwards, then all backwards (GPipe)."""
    _check(n_stages, n_micro)
    return [
        [PipelineTask("F", m) for m in range(n_micro)]
        + [PipelineTask("B", m) for m in reversed(range(n_micro))]
        for _ in range(n_stages)
    ]


def one_f_one_b_schedule(n_stages: int,
                         n_micro: int) -> List[List[PipelineTask]]:
    """PipeDream-style 1F1B: warmup forwards, steady 1F1B, cooldown."""
    _check(n_stages, n_micro)
    schedule = []
    for stage in range(n_stages):
        warmup = min(n_stages - stage - 1, n_micro)
        tasks: List[PipelineTask] = [
            PipelineTask("F", m) for m in range(warmup)]
        next_f, next_b = warmup, 0
        while next_b < n_micro:
            if next_f < n_micro:
                tasks.append(PipelineTask("F", next_f))
                next_f += 1
            tasks.append(PipelineTask("B", next_b))
            next_b += 1
        schedule.append(tasks)
    return schedule


def interleaved_1f1b_schedule(
    n_stages: int, n_micro: int, n_virtual: int
) -> List[List[PipelineTask]]:
    """Interleaved 1F1B: each stage holds ``n_virtual`` model chunks.

    Follows Megatron-LM's scheme, which requires the micro-batch count
    to be a multiple of the stage count.  Forwards and backwards proceed
    in rounds of ``n_stages`` micro-batches per virtual chunk.
    """
    _check(n_stages, n_micro)
    if n_virtual < 1:
        raise ValueError(f"n_virtual must be >= 1, got {n_virtual}")
    if n_virtual == 1:
        return one_f_one_b_schedule(n_stages, n_micro)
    if n_micro % n_stages != 0:
        raise ValueError(
            f"interleaved schedule needs n_micro ({n_micro}) divisible by "
            f"n_stages ({n_stages})"
        )

    schedule = []
    total = n_micro * n_virtual
    for stage in range(n_stages):
        forwards = _interleaved_order(n_stages, n_micro, n_virtual)
        backwards = [
            PipelineTask("B", t.micro_batch,
                         n_virtual - 1 - t.virtual_stage)
            for t in forwards
        ]
        warmup = min((n_stages - stage - 1) * 2 + (n_virtual - 1)
                     * n_stages, total)
        tasks: List[PipelineTask] = list(forwards[:warmup])
        fi, bi = warmup, 0
        while bi < total:
            if fi < total:
                tasks.append(forwards[fi])
                fi += 1
            tasks.append(backwards[bi])
            bi += 1
        schedule.append(tasks)
    return schedule


def _interleaved_order(n_stages: int, n_micro: int,
                       n_virtual: int) -> List[PipelineTask]:
    """Forward order for interleaving: rounds of ``n_stages`` micro-
    batches cycling through virtual chunks."""
    order = []
    for round_start in range(0, n_micro, n_stages):
        width = min(n_stages, n_micro - round_start)
        for v in range(n_virtual):
            for m in range(round_start, round_start + width):
                order.append(PipelineTask("F", m, v))
    return order


def validate_schedule(schedule: List[List[PipelineTask]], n_micro: int,
                      n_virtual: int = 1) -> None:
    """Check completeness and cross-stage dependency safety.

    Simulates the pipeline clock: a stage may run F(m, v) only after the
    previous global stage (stage-major through virtual chunks) finished
    it, and B(m, v) only after the next global stage did.  Raises
    ``ValueError`` on violations.
    """
    n_stages = len(schedule)
    for stage, tasks in enumerate(schedule):
        fwd = sorted((t.virtual_stage, t.micro_batch)
                     for t in tasks if t.phase == "F")
        bwd = sorted((t.virtual_stage, t.micro_batch)
                     for t in tasks if t.phase == "B")
        expected = sorted((v, m) for v in range(n_virtual)
                          for m in range(n_micro))
        if fwd != expected or bwd != expected:
            raise ValueError(
                f"stage {stage} schedule incomplete or duplicated"
            )

    # Event-driven check: repeatedly run every stage's next ready task.
    done: Dict[Tuple[str, int, int, int], bool] = {}
    cursors = [0] * n_stages

    def ready(stage: int, task: PipelineTask) -> bool:
        g = task.virtual_stage * n_stages + stage  # global stage index
        if task.phase == "F":
            if g == 0:
                return True
            prev_stage = (g - 1) % n_stages
            prev_v = (g - 1) // n_stages
            return done.get(("F", prev_stage, task.micro_batch, prev_v),
                            False)
        last_global = n_stages * n_virtual - 1
        if g == last_global:
            return done.get(("F", stage, task.micro_batch,
                             task.virtual_stage), False)
        nxt_stage = (g + 1) % n_stages
        nxt_v = (g + 1) // n_stages
        return done.get(("B", nxt_stage, task.micro_batch, nxt_v), False)

    progressed = True
    while progressed:
        progressed = False
        for stage in range(n_stages):
            while cursors[stage] < len(schedule[stage]):
                task = schedule[stage][cursors[stage]]
                if not ready(stage, task):
                    break
                done[(task.phase, stage, task.micro_batch,
                      task.virtual_stage)] = True
                cursors[stage] += 1
                progressed = True
    stuck = [s for s in range(n_stages) if cursors[s] < len(schedule[s])]
    if stuck:
        raise ValueError(
            f"schedule deadlocks: stages {stuck} blocked "
            f"(cursor {[cursors[s] for s in stuck]})"
        )


def bubble_fraction(n_stages: int, n_micro: int,
                    n_virtual: int = 1) -> float:
    """Classic bubble-rate formula: ``(p-1) / (v·m + p - 1)``.

    Interleaving with ``v`` virtual stages divides the bubble by ``v``
    (Megatron-LM's analysis).  This is the term behind the MFU decline
    in Table 3 as GPUs grow with a fixed global batch.
    """
    _check(n_stages, n_micro)
    if n_stages == 1:
        return 0.0
    return (n_stages - 1) / (n_virtual * n_micro + n_stages - 1)


class PipelineRunner:
    """Executes stage functions through a schedule on one process.

    ``stage_fns[v][s]`` maps activations through virtual chunk ``v`` of
    stage ``s``.  Running any valid schedule must produce outputs equal
    to applying the stages sequentially — the numerical-inertness
    property tests assert.
    """

    def __init__(self, stage_fns: Sequence[Sequence[Callable]],
                 n_micro: int):
        self.stage_fns = stage_fns
        self.n_virtual = len(stage_fns)
        self.n_stages = len(stage_fns[0])
        self.n_micro = n_micro

    def run(self, micro_inputs: Sequence) -> List:
        """Run all forwards per a 1F1B-compatible order; returns final
        outputs per micro-batch (backward is autograd-driven and needs no
        schedule here)."""
        if len(micro_inputs) != self.n_micro:
            raise ValueError(
                f"expected {self.n_micro} micro inputs, got "
                f"{len(micro_inputs)}"
            )
        acts = list(micro_inputs)
        for v in range(self.n_virtual):
            for s in range(self.n_stages):
                acts = [self.stage_fns[v][s](a) for a in acts]
        return acts


def _check(n_stages: int, n_micro: int) -> None:
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_micro < 1:
        raise ValueError(f"n_micro must be >= 1, got {n_micro}")
