"""Data parallelism: replicated training with synchronized gradients.

Since simulated replicas that start identical and apply identical
updates stay bit-identical, the engine keeps *one* model and materializes
per-rank gradients by running each rank's micro-batch separately.  The
synchronization method is pluggable (§5):

* ``fp32_rs``   — exact FP32 reduce-scatter (+ all-gather), the baseline;
* ``bf16_a2a``  — MegaScale's compression: one BF16 cast, all-to-all,
  FP32 local reduction (Fig. 10);
* ``bf16_ring_rs`` — the rejected repeated-BF16-accumulation ring.

ZeRO-1 optimizer-state sharding is tracked as a memory/communication
accounting model (states live once per DP group instead of per rank).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..comm.group import ProcessGroup
from ..model.layers import Module
from ..precision.compression import GRAD_SYNC_METHODS, sync_gradients
from ..precision.optimizer import AdamW, clip_grad_norm
from ..tensor import Tensor

__all__ = ["DataParallelTrainer", "DPStepResult", "zero1_memory_model"]


@dataclass
class DPStepResult:
    """Telemetry from one synchronized DP step."""

    losses: List[float]
    mean_loss: float
    grad_norm: float
    sync_bytes: float


class DataParallelTrainer:
    """Trains a model replica under simulated data parallelism."""

    def __init__(
        self,
        model: Module,
        group: ProcessGroup,
        optimizer: AdamW,
        loss_fn: Callable[[Module, np.ndarray], Tensor],
        sync_method: str = "fp32_rs",
        grad_clip: float = 0.0,
    ):
        if sync_method not in GRAD_SYNC_METHODS:
            raise ValueError(
                f"unknown sync method {sync_method!r}; choose from "
                f"{GRAD_SYNC_METHODS}"
            )
        self.model = model
        self.group = group
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.sync_method = sync_method
        self.grad_clip = grad_clip
        self.params = model.parameters()

    def train_step(self, rank_batches: Sequence[np.ndarray]) -> DPStepResult:
        """One optimizer step over per-rank micro-batches.

        ``rank_batches[r]`` is the token batch rank ``r`` would process.
        Gradients are *accumulated locally in FP32* (the paper keeps main
        gradients in FP32 during PP accumulation) and synchronized once.
        """
        n = self.group.size
        if len(rank_batches) != n:
            raise ValueError(
                f"expected {n} rank batches, got {len(rank_batches)}"
            )

        per_rank_grads: List[List[np.ndarray]] = []
        losses = []
        for batch in rank_batches:
            self.model.zero_grad()
            loss = self.loss_fn(self.model, batch)
            loss.backward()
            losses.append(loss.item())
            per_rank_grads.append([
                (p.grad.astype(np.float64) if p.grad is not None
                 else np.zeros(p.shape, dtype=np.float64))
                for p in self.params
            ])

        ledger_before = self.group.world.ledger.total_bytes()
        for i, p in enumerate(self.params):
            synced = sync_gradients(
                self.group, [per_rank_grads[r][i] for r in range(n)],
                method=self.sync_method, average=True,
            )
            p.grad = synced[0].astype(np.float64)
        sync_bytes = self.group.world.ledger.total_bytes() - ledger_before

        norm = clip_grad_norm(self.params, self.grad_clip)
        self.optimizer.step()
        return DPStepResult(
            losses=losses,
            mean_loss=float(np.mean(losses)),
            grad_norm=norm,
            sync_bytes=sync_bytes,
        )


def zero1_memory_model(param_count: float, dp_size: int,
                       bytes_per_param: float = 2.0,
                       master_bytes: float = 4.0,
                       moment_bytes: float = 8.0,
                       grad_bytes: float = 4.0) -> Dict[str, float]:
    """Per-GPU bytes with ZeRO stage-1 optimizer-state sharding (§4.1).

    Model parameters and gradients stay replicated; the FP32 master copy
    and Adam moments are sharded ``1/dp_size``.
    """
    if dp_size < 1:
        raise ValueError(f"dp_size must be >= 1, got {dp_size}")
    return {
        "params": param_count * bytes_per_param,
        "grads": param_count * grad_bytes,
        "optimizer": param_count * (master_bytes + moment_bytes) / dp_size,
        "total": param_count * (
            bytes_per_param + grad_bytes
            + (master_bytes + moment_bytes) / dp_size
        ),
    }
