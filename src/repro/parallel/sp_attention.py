"""Ulysses-style sequence-parallel attention (§3.1).

Each of the ``n`` ranks holds a ``[b, s/n, h]`` sequence shard and a full
*replica* of the attention weights.  The forward pass follows Fig. 20:

    qkv = MatMul(ln1_out, qkv_weight)          # local, seq-sharded
    q_rope, k_rope = RoPE(q, k)                # local positions known
    qkv_a2a = All-to-All(q_rope, k_rope, v)    # seq-shard -> head-shard
    attn = SelfAttention(qkv_a2a)              # full sequence, n-th of heads
    attn_a2a = All-to-All(attn)                # head-shard -> seq-shard
    attn_out = MatMul(attn_a2a, out_weight)    # local

Communication per pass is the Eq. 2 volume — two all-to-alls that shrink
with both ``n`` and the GQA ratio ``m`` — versus TP's all-gather +
reduce-scatter of the full activation (Eq. 1).

Weights are *shared Tensor objects* across ranks: gradient contributions
from every rank accumulate on the replica exactly as the hierarchical
parameter sync of Appendix A.1 would produce.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..comm.group import ProcessGroup
from ..model.layers import SelfAttention
from ..tensor import Tensor
from .dist_ops import dist_all_to_all

__all__ = ["SPAttentionEngine"]


class SPAttentionEngine:
    """Runs a replicated :class:`SelfAttention` over sequence shards."""

    def __init__(self, group: ProcessGroup, attn: SelfAttention,
                 elem_bytes: Optional[float] = None,
                 dropout: float = 0.0, rng_pool=None):
        n = group.size
        if attn.n_heads % n != 0:
            raise ValueError(
                f"n_heads={attn.n_heads} not divisible by SP size {n}"
            )
        if attn.n_kv_heads % n != 0:
            raise ValueError(
                f"n_kv_heads={attn.n_kv_heads} not divisible by SP size {n}"
            )
        if dropout > 0.0 and rng_pool is None:
            raise ValueError("dropout > 0 requires a rng_pool")
        if rng_pool is not None and len(rng_pool) != n:
            raise ValueError(
                f"rng_pool has {len(rng_pool)} streams for {n} ranks"
            )
        self.group = group
        self.attn = attn
        self.elem_bytes = elem_bytes
        #: Attention-output dropout probability; draws come from
        #: ``rng_pool[rank]`` — one private stream per rank, so the
        #: sequential loop and the thread-per-rank executor consume
        #: identical randomness in identical per-rank order (a shared
        #: generator would race across rank threads AND make the draw
        #: order schedule-dependent).
        self.dropout = float(dropout)
        self.rng_pool = rng_pool
        #: Toggled off by the trainer around eval passes.
        self.training = True

    def _maybe_dropout(self, out: Tensor, rank: int) -> Tensor:
        if self.dropout <= 0.0 or not self.training:
            return out
        from ..tensor import ops
        return ops.dropout(out, self.dropout, self.rng_pool[rank],
                           training=True)

    # -- per-op handlers (graph-node granularity) --------------------------
    #
    # One method per forward-graph op, shared verbatim by the legacy
    # call chains below and the DAG executor's bindings, so both paths
    # build the identical autograd tape.

    def op_qkv(self, shard: Tensor):
        """``qkv_proj``: fused projection split into (q, k, v)."""
        b, s_local, _ = shard.shape
        qkv = self.attn.qkv_proj(shard)
        return self.attn.split_qkv(qkv, b, s_local)

    def op_rope(self, qkv, rank: int, local_s: int):
        """``rope``: rotate q/k with this rank's global positions."""
        from ..tensor import ops
        q, k, v = qkv
        positions = np.arange(rank * local_s, (rank + 1) * local_s)
        return (ops.rope_rotate(q, self.attn.rope_base, positions),
                ops.rope_rotate(k, self.attn.rope_base, positions),
                v)

    def op_attention(self, qkv_full):
        """``attention``: causal SDPA over the full sequence."""
        from ..tensor import ops
        q_full, k_full, v_full = qkv_full
        out = ops.scaled_dot_product_attention(
            q_full.transpose(0, 2, 1, 3),
            k_full.transpose(0, 2, 1, 3),
            v_full.transpose(0, 2, 1, 3),
            causal=True,
        )
        return out.transpose(0, 2, 1, 3)

    def op_out_proj(self, attn_shard: Tensor, rank: int) -> Tensor:
        """``out_proj``: flatten heads, project, maybe dropout."""
        b, s_local = attn_shard.shape[0], attn_shard.shape[1]
        flat = attn_shard.reshape(b, s_local, self.attn.hidden_size)
        return self._maybe_dropout(self.attn.out_proj(flat), rank)

    # -- rank-stacked handlers (vectorized backend) ------------------------
    #
    # Same ops on a ``[n_ranks, ...]``-stacked tensor, one batched numpy
    # kernel per op; per-rank slices are bitwise-identical to the
    # per-op methods above (docs/INTERNALS.md §12).

    def vec_qkv(self, stacked: Tensor):
        """``qkv_proj`` for all ranks: batched projection + q/k/v split."""
        from ..runtime.vectorized import vec_linear
        attn = self.attn
        n, b, s_local = stacked.shape[0], stacked.shape[1], \
            stacked.shape[2]
        qkv = vec_linear(stacked, attn.qkv_proj)
        h = attn.hidden_size
        kv = attn.n_kv_heads * attn.head_dim
        q = qkv[:, :, :, :h].reshape(n, b, s_local, attn.n_heads,
                                     attn.head_dim)
        k = qkv[:, :, :, h:h + kv].reshape(n, b, s_local,
                                           attn.n_kv_heads,
                                           attn.head_dim)
        v = qkv[:, :, :, h + kv:].reshape(n, b, s_local,
                                          attn.n_kv_heads,
                                          attn.head_dim)
        return q, k, v

    def vec_rope(self, qkv, local_s: int):
        """``rope`` for all ranks: each rank's global positions."""
        from ..runtime.vectorized import vec_rope
        q, k, v = qkv
        positions = [np.arange(r * local_s, (r + 1) * local_s)
                     for r in range(self.group.size)]
        return (vec_rope(q, self.attn.rope_base, positions),
                vec_rope(k, self.attn.rope_base, positions),
                v)

    def vec_attention(self, qkv_full):
        """``attention`` for all ranks: batched causal SDPA."""
        from ..runtime.vectorized import \
            vec_scaled_dot_product_attention
        q_full, k_full, v_full = qkv_full
        out = vec_scaled_dot_product_attention(
            q_full.transpose(0, 1, 3, 2, 4),
            k_full.transpose(0, 1, 3, 2, 4),
            v_full.transpose(0, 1, 3, 2, 4),
            causal=True,
        )
        return out.transpose(0, 1, 3, 2, 4)

    def vec_out_proj(self, attn_stacked: Tensor) -> Tensor:
        """``out_proj`` for all ranks: batched projection + dropout."""
        from ..runtime.vectorized import vec_dropout, vec_linear
        n, b, s_local = attn_stacked.shape[0], attn_stacked.shape[1], \
            attn_stacked.shape[2]
        flat = attn_stacked.reshape(n, b, s_local,
                                    self.attn.hidden_size)
        out = vec_linear(flat, self.attn.out_proj)
        if self.dropout > 0.0 and self.training:
            out = vec_dropout(out, self.dropout, self.rng_pool)
        return out

    def forward(self, hidden_shards: List[Tensor], seq_len: int,
                executor: Optional[object] = None) -> List[Tensor]:
        """Map ``ln1_out`` shards to ``attn_out`` shards.

        Args:
            hidden_shards: Per-rank ``[b, s/n, h]`` normalized activations.
            seq_len: Full sequence length ``s`` (for RoPE positions).
            executor: Optional :class:`~repro.runtime.spmd.SpmdExecutor`;
                when given, each rank's compute runs on its own thread
                with rendezvous collectives (bitwise-identical results).
        """
        group, attn = self.group, self.attn
        group.check_shards(hidden_shards)
        n = group.size
        local_s = seq_len // n

        if executor is not None:
            for rank, shard in enumerate(hidden_shards):
                if shard.shape[1] != local_s:
                    raise ValueError(
                        f"rank {rank} shard has seq {shard.shape[1]}, "
                        f"expected {local_s}"
                    )
            return executor.run(
                group,
                lambda comm: self._forward_rank(
                    comm, hidden_shards[comm.index], local_s))

        qs, ks, vs = [], [], []
        for rank, shard in enumerate(hidden_shards):
            s_local = shard.shape[1]
            if s_local != local_s:
                raise ValueError(
                    f"rank {rank} shard has seq {s_local}, expected "
                    f"{local_s}"
                )
            q, k, v = self.op_rope(self.op_qkv(shard), rank, local_s)
            qs.append(q)
            ks.append(k)
            vs.append(v)

        # All-to-all: split the head axis (2), gather the sequence axis
        # (1).  After this, rank r holds ALL positions for its n-th of
        # the query and KV heads.
        q_full = dist_all_to_all(group, qs, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")
        k_full = dist_all_to_all(group, ks, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")
        v_full = dist_all_to_all(group, vs, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")

        attn_heads = [
            self.op_attention((q_full[rank], k_full[rank], v_full[rank]))
            for rank in range(n)
        ]

        # All-to-all back: split sequence (1), gather heads (2).
        attn_shards = dist_all_to_all(group, attn_heads, split_axis=1,
                                      concat_axis=2,
                                      elem_bytes=self.elem_bytes,
                                      tag="sp_attn:attn_a2a")

        return [self.op_out_proj(shard, rank)
                for rank, shard in enumerate(attn_shards)]

    def _forward_rank(self, comm, shard: Tensor, local_s: int) -> Tensor:
        """One rank's slice of :meth:`forward` under an SPMD executor.

        Runs the identical per-rank arithmetic; the two all-to-alls
        rendezvous with the peer threads and execute the same
        whole-world collective, so results match the sequential loop
        bitwise.
        """
        rank = comm.index
        q, k, v = self.op_rope(self.op_qkv(shard), rank, local_s)

        q_full = comm.all_to_all(q, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")
        k_full = comm.all_to_all(k, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")
        v_full = comm.all_to_all(v, split_axis=2, concat_axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="sp_attn:qkv_a2a")

        out = self.op_attention((q_full, k_full, v_full))

        attn_shard = comm.all_to_all(out, split_axis=1, concat_axis=2,
                                     elem_bytes=self.elem_bytes,
                                     tag="sp_attn:attn_a2a")
        return self.op_out_proj(attn_shard, rank)
