"""Context-parallel (CP) attention — the §3.1 alternative MegaScale-MoE
explored and rejected.

CP partitions *all* activations along the sequence dimension and ring-
exchanges K/V so each rank attends its queries against every earlier
position.  Under causal masking the workload is inherently imbalanced:
with a contiguous layout, the rank holding the tail of the sequence
attends against almost the whole context while the head rank attends
against almost nothing — "the entire training process is often
constrained by the most imbalanced data batch".  The zigzag layout pairs
chunk ``r`` with chunk ``2n-1-r`` on the same rank, balancing the
quadratic term, though block-granularity effects keep perfect balance
out of reach.

This module provides:

* :class:`CPAttentionEngine` — numerically exact CP attention over
  simulated ranks (both layouts), validated against the reference;
* :func:`cp_workload_shares` / :func:`cp_imbalance` — the per-rank
  causal-FLOPs analysis behind the paper's rejection;
* :func:`cp_attention_comm_volume` — K/V ring-exchange volume,
  ``2·bsh/m·(n-1)/n`` per pass (GQA-reduced, like SP).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..comm.group import ProcessGroup
from ..model.layers import SelfAttention
from ..tensor import Tensor, ops
from .dist_ops import dist_all_gather

__all__ = [
    "CPAttentionEngine",
    "cp_layout_positions",
    "cp_workload_shares",
    "cp_imbalance",
    "cp_attention_comm_volume",
]


def cp_layout_positions(seq_len: int, n: int,
                        layout: str = "contiguous") -> List[np.ndarray]:
    """Absolute token positions held by each rank under a CP layout.

    ``contiguous``: rank r holds chunk r.  ``zigzag``: the sequence is
    cut into 2n chunks and rank r holds chunks r and 2n-1-r, pairing a
    cheap head chunk with an expensive tail chunk.
    """
    if layout == "contiguous":
        if seq_len % n != 0:
            raise ValueError(
                f"seq_len {seq_len} not divisible by {n} ranks"
            )
        width = seq_len // n
        return [np.arange(r * width, (r + 1) * width) for r in range(n)]
    if layout == "zigzag":
        if seq_len % (2 * n) != 0:
            raise ValueError(
                f"zigzag needs seq_len divisible by 2n = {2 * n}"
            )
        width = seq_len // (2 * n)
        out = []
        for r in range(n):
            head = np.arange(r * width, (r + 1) * width)
            tail_chunk = 2 * n - 1 - r
            tail = np.arange(tail_chunk * width, (tail_chunk + 1) * width)
            out.append(np.concatenate([head, tail]))
        return out
    raise ValueError(f"unknown CP layout {layout!r}")


def cp_workload_shares(seq_len: int, n: int,
                       layout: str = "contiguous") -> np.ndarray:
    """Fraction of total causal-attention FLOPs each rank performs.

    Position ``p`` attends to ``p+1`` keys, so a rank's work is
    ``sum(p+1)`` over its positions.
    """
    positions = cp_layout_positions(seq_len, n, layout)
    work = np.array([float((pos + 1).sum()) for pos in positions])
    return work / work.sum()


def cp_imbalance(seq_len: int, n: int,
                 layout: str = "contiguous") -> float:
    """Max-over-mean workload ratio — the pipeline-stalling factor."""
    shares = cp_workload_shares(seq_len, n, layout)
    return float(shares.max() * n)


def cp_attention_comm_volume(b: int, s: int, h: int, n: int,
                             m: int) -> float:
    """Per-pass K/V ring-exchange elements per rank ensemble.

    Each rank circulates its K and V chunks (``2·(s/n)·h/m`` elements
    per rank) through ``n-1`` hops: total ``2 b s h/m (n-1)/n`` — like
    SP, shrinking with GQA, but paid on every attention regardless of
    balance.
    """
    if n <= 1:
        return 0.0
    return 2.0 * b * s * h / m * (n - 1) / n


class CPAttentionEngine:
    """Context-parallel causal attention over simulated ranks."""

    def __init__(self, group: ProcessGroup, attn: SelfAttention,
                 layout: str = "contiguous",
                 elem_bytes: float = None):
        if layout not in ("contiguous", "zigzag"):
            raise ValueError(f"unknown CP layout {layout!r}")
        self.group = group
        self.attn = attn
        self.layout = layout
        self.elem_bytes = elem_bytes

    def forward(self, hidden_shards: List[Tensor],
                seq_len: int) -> List[Tensor]:
        """Map per-rank ``ln1_out`` shards (in layout order) to
        ``attn_out`` shards.

        ``hidden_shards[r]`` holds the positions given by
        :func:`cp_layout_positions` for rank ``r``, concatenated.
        """
        group, attn = self.group, self.attn
        group.check_shards(hidden_shards)
        n = group.size
        positions = cp_layout_positions(seq_len, n, self.layout)

        qs, ks, vs = [], [], []
        for rank, shard in enumerate(hidden_shards):
            b, s_local, _ = shard.shape
            if s_local != positions[rank].shape[0]:
                raise ValueError(
                    f"rank {rank} shard covers {s_local} positions, "
                    f"layout expects {positions[rank].shape[0]}"
                )
            qkv = attn.qkv_proj(shard)
            q, k, v = attn.split_qkv(qkv, b, s_local)
            qs.append(ops.rope_rotate(q, attn.rope_base, positions[rank]))
            ks.append(ops.rope_rotate(k, attn.rope_base, positions[rank]))
            vs.append(v)

        # Ring exchange emulated as an all-gather of K and V along the
        # sequence axis (same total volume as n-1 ring hops).
        k_full = dist_all_gather(group, ks, axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="cp_attn:kv_ring")
        v_full = dist_all_gather(group, vs, axis=1,
                                 elem_bytes=self.elem_bytes,
                                 tag="cp_attn:kv_ring")
        all_positions = np.concatenate(positions)

        outs = []
        for rank in range(n):
            out_heads = _attention_with_positions(
                qs[rank], k_full[rank], v_full[rank],
                positions[rank], all_positions, attn)
            b, s_local = out_heads.shape[0], out_heads.shape[1]
            flat = out_heads.reshape(b, s_local, attn.hidden_size)
            outs.append(attn.out_proj(flat))
        return outs


def _attention_with_positions(q: Tensor, k: Tensor, v: Tensor,
                              q_pos: np.ndarray, k_pos: np.ndarray,
                              attn: SelfAttention) -> Tensor:
    """Causal attention with explicit absolute positions.

    ``q`` is ``[b, sq, q_heads, d]``; ``k``/``v`` are
    ``[b, sk, kv_heads, d]``.  Query at position p attends keys with
    position <= p.
    """
    qh = q.transpose(0, 2, 1, 3)
    kh = k.transpose(0, 2, 1, 3)
    vh = v.transpose(0, 2, 1, 3)
    n_q = qh.shape[1]
    n_kv = kh.shape[1]
    m = n_q // n_kv
    if m > 1:
        from ..tensor.ops import _repeat_heads
        kh = _repeat_heads(kh, m)
        vh = _repeat_heads(vh, m)
    scale = 1.0 / np.sqrt(qh.shape[-1])
    scores = (qh @ kh.swapaxes(-1, -2)) * scale
    mask = k_pos[None, :] > q_pos[:, None]
    scores = ops.masked_fill(scores, mask[None, None], -1e30)
    weights = ops.softmax(scores, axis=-1)
    return (weights @ vh).transpose(0, 2, 1, 3)
