"""Differentiable collectives over per-rank Tensors.

The parallel engines (:mod:`repro.parallel`) express sharded forward
passes as ordinary autograd code; the collectives here are the seams
between ranks.  Each takes one :class:`~repro.tensor.Tensor` per rank and
returns per-rank output Tensors wired into the tape so that backward
automatically performs the *dual* collective:

=================  =======================
forward            backward
=================  =======================
all-gather         reduce-scatter
reduce-scatter     all-gather
all-to-all         all-to-all (reversed)
all-reduce         all-reduce
=================  =======================

Bytes are recorded in the world's ledger for the forward collective at
call time and for the backward collective as its gradients flow —
tagged ``<tag>`` and ``<tag>:bwd`` respectively — so tests can check the
paper's per-pass volume formulas (Eqs. 1–4) in both directions.

Backward byte accounting assumes a *single* backward sweep (one
``backward()`` call from a combined scalar, as a real loss produces).
Sweeping per-rank outputs separately re-traverses shared ancestors and
multiplies the ``:bwd`` ledger entries; gradients themselves stay exact
because contributions accumulate linearly.

Fault injection: every forward collective consults the world's fault
plan via :meth:`~repro.comm.group.ProcessGroup.pre_collective` before
moving data (crash/timeout) and
:meth:`~repro.comm.group.ProcessGroup.post_collective` on its delivered
outputs (payload corruption — a silent bit-flip into the training
numerics unless the plan verifies checksums); backward collectives
consult ``pre_collective`` under the ``:bwd`` tag.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..comm.group import ProcessGroup, tile_span
from ..tensor import Tensor

__all__ = [
    "dist_all_gather",
    "dist_reduce_scatter",
    "dist_all_to_all",
    "dist_all_to_all_uneven",
    "dist_all_reduce",
]


def _eb(tensors: Sequence[Tensor], elem_bytes: Optional[float]) -> float:
    if elem_bytes is not None:
        return float(elem_bytes)
    return float(tensors[0].data.itemsize)


def dist_all_gather(
    group: ProcessGroup,
    shards: Sequence[Tensor],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[Tensor]:
    """All-gather per-rank shards; every rank receives the concatenation.

    Backward is a reduce-scatter: rank ``i``'s gradient is the sum over
    output ranks of the ``i``-th slice of each output gradient.

    With ``tiled=True`` the gather is chunked per source rank (§4.2's
    swizzled order): shard ``i`` is copied into the gathered buffer and
    ledger-recorded as tile ``(i, n)`` — one tile's bytes at a time,
    attributed one-hot to its source rank, summing exactly to the
    untiled record.  The delivered values are bitwise-identical.
    ``tile_label`` names the graph op for ``dag.tile:*`` spans.
    """
    group.check_shards(shards)
    n = group.size
    eb = _eb(shards, elem_bytes)
    datas = [s.data for s in shards]
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)
    group.pre_collective("all_gather", tag)
    if tiled and n >= 2:
        shape = list(datas[0].shape)
        shape[axis] = int(offsets[-1])
        full = np.empty(shape, dtype=np.result_type(*datas))
        slicer = [slice(None)] * full.ndim
        for i in range(n):
            with tile_span(group, tile_label, i, n):
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                full[tuple(slicer)] = datas[i]
                group.record(
                    "all_gather",
                    _one_hot(n, i, datas[i].size * eb * (n - 1)),
                    tag, tile=(i, n))
    else:
        full = np.concatenate(datas, axis=axis)
        group.record("all_gather",
                     [d.size * eb * (n - 1) for d in datas], tag)

    # Zero-copy: with no fault plan the delivered buffers are read-only,
    # so every rank can share the single gathered array.
    plan_free = group.world.fault_plan is None
    outs = []
    for j in range(n):
        def backward(g, j=j):
            # Output j's grad is scattered back: slice i goes to rank i.
            slicer = [slice(None)] * g.ndim
            grads = []
            wire = 0.0
            for i in range(n):
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                piece = g[tuple(slicer)]
                grads.append(piece)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("reduce_scatter", tag + ":bwd")
            group.record("reduce_scatter", _one_hot(n, j, wire),
                         tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(full if plan_free else full.copy(),
                                   list(shards), backward,
                                   "dist_all_gather"))
    group.post_collective("all_gather", [o.data for o in outs], tag)
    return outs


def dist_reduce_scatter(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[Tensor]:
    """Sum all ranks' tensors; rank ``j`` receives the ``j``-th slice.

    Backward is an all-gather: every input receives the concatenation of
    the per-rank output gradients.

    With ``tiled=True`` the reduction is chunked per destination rank:
    tile ``j`` reduces only slice ``j`` (elementwise over ranks, so the
    result is bitwise-identical to slicing the whole-tensor reduction)
    and ledger-records its traffic one-hot at rank ``j`` as tile
    ``(j, n)``; tile bytes sum exactly to the untiled record.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    first = tensors[0].data
    for t in tensors[1:]:
        if t.data.shape != first.shape:
            raise ValueError("dist_reduce_scatter requires equal shapes")
    if first.shape[axis] % n != 0:
        raise ValueError(
            f"axis {axis} of size {first.shape[axis]} not divisible by {n}"
        )
    shard_elems = first.size // n
    width = first.shape[axis] // n
    group.pre_collective("reduce_scatter", tag)
    if tiled and n >= 2:
        pieces = []
        slicer = [slice(None)] * first.ndim
        for j in range(n):
            with tile_span(group, tile_label, j, n):
                slicer[axis] = slice(j * width, (j + 1) * width)
                pieces.append(np.sum(
                    [t.data[tuple(slicer)].astype(np.float64)
                     for t in tensors], axis=0))
                group.record(
                    "reduce_scatter",
                    _one_hot(n, j, shard_elems * eb * (n - 1)),
                    tag, tile=(j, n))
    else:
        total = np.sum([t.data.astype(np.float64) for t in tensors],
                       axis=0)
        pieces = np.split(total, n, axis=axis)
        group.record("reduce_scatter",
                     [shard_elems * eb * (n - 1)] * n, tag)
    outs = []
    for j in range(n):
        def backward(g, j=j):
            # d(out_j)/d(in_i) is 1 on slice j for every i: each input
            # rank receives g_j placed at slice j (the all-gather dual).
            full_shape = list(first.shape)
            grad = np.zeros(full_shape, dtype=g.dtype)
            slicer = [slice(None)] * len(full_shape)
            slicer[axis] = slice(j * width, (j + 1) * width)
            grad[tuple(slicer)] = g
            group.pre_collective("all_gather", tag + ":bwd")
            group.record("all_gather", _one_hot(n, j, g.size * eb * (n - 1)),
                         tag + ":bwd")
            if group.world.fault_plan is None:
                # Zero-copy dual: grads accumulate out-of-place, so all
                # input ranks may share the one gathered gradient.
                return (grad,) * n
            return tuple(grad.copy() for _ in range(n))

        outs.append(Tensor.from_op(
            pieces[j].astype(first.dtype,
                             copy=group.world.fault_plan is not None),
            list(tensors), backward, "dist_reduce_scatter"))
    group.post_collective("reduce_scatter", [o.data for o in outs], tag)
    return outs


def dist_all_to_all(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    split_axis: int,
    concat_axis: int,
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiles: int = 1,
    tile_axis: int = 0,
    tile_label: str = "",
) -> List[Tensor]:
    """Balanced all-to-all: split each rank's tensor into ``n`` chunks on
    ``split_axis``, exchange, concatenate received chunks on
    ``concat_axis``.

    This is the Ulysses primitive (§3.1): e.g. split heads / gather
    sequence on the way in, split sequence / gather heads on the way out.
    Backward is the reverse all-to-all.

    With ``tiles > 1`` the exchange is chunked along ``tile_axis``
    (token chunks, §4.2): each of every (source, dest) chunk's
    ``tile_axis`` extents is split into ``tiles`` equal sub-chunks, and
    tile ``t`` copies sub-chunk ``t`` of every pair into the delivered
    buffers and ledger-records ``1/tiles`` of each rank's bytes as tile
    ``(t, tiles)`` — exact, since the extent must divide evenly.
    Delivered values are bitwise-identical to the untiled exchange.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    datas = [t.data for t in tensors]
    for d in datas:
        if d.shape[split_axis] % n != 0:
            raise ValueError(
                f"split axis {split_axis} of size {d.shape[split_axis]} "
                f"not divisible by {n}"
            )
    chunks = [np.split(d, n, axis=split_axis) for d in datas]
    per_rank = [sum(chunks[i][j].size * eb for j in range(n) if j != i)
                for i in range(n)]
    group.pre_collective("all_to_all", tag)
    if tiles > 1:
        received_list = _a2a_tiled_delivery(
            group, chunks, per_rank, concat_axis, tile_axis, tiles,
            eb, tag, tile_label)
    else:
        group.record("all_to_all", per_rank, tag)
        received_list = None

    chunk_split = datas[0].shape[split_axis] // n
    outs = []
    for j in range(n):
        if received_list is not None:
            received = received_list[j]
        else:
            received = np.concatenate([chunks[i][j] for i in range(n)],
                                      axis=concat_axis)
        recv_width = [chunks[i][j].shape[concat_axis] for i in range(n)]
        recv_offsets = np.cumsum([0] + recv_width)

        def backward(g, j=j, recv_offsets=recv_offsets):
            # Chunk received from rank i returns to rank i, back at
            # split-position j.
            grads = []
            wire = 0.0
            slicer = [slice(None)] * g.ndim
            for i in range(n):
                slicer[concat_axis] = slice(recv_offsets[i],
                                            recv_offsets[i + 1])
                piece = g[tuple(slicer)]
                grad = np.zeros(datas[i].shape, dtype=g.dtype)
                gslicer = [slice(None)] * grad.ndim
                gslicer[split_axis] = slice(j * chunk_split,
                                            (j + 1) * chunk_split)
                grad[tuple(gslicer)] = piece
                grads.append(grad)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("all_to_all", tag + ":bwd")
            group.record("all_to_all", _one_hot(n, j, wire), tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(received, list(tensors), backward,
                                   "dist_all_to_all"))
    group.post_collective("all_to_all", [o.data for o in outs], tag)
    return outs


def _a2a_tiled_delivery(group, chunks, per_rank, concat_axis, tile_axis,
                        tiles, eb, tag, tile_label):
    """Token-chunked delivery for a balanced all-to-all.

    Preallocates each destination's buffer and copies one tile of every
    (source, dest) chunk per pass, recording that tile's exact bytes.
    The filled buffers hold exactly the values ``np.concatenate`` over
    whole chunks would produce.
    """
    n = len(chunks)
    for i in range(n):
        for j in range(n):
            extent = chunks[i][j].shape[tile_axis]
            if extent % tiles != 0:
                raise ValueError(
                    f"tile axis {tile_axis} extent {extent} not "
                    f"divisible by {tiles} tiles")
    received = []
    dtype = np.result_type(*[chunks[i][0] for i in range(n)])
    for j in range(n):
        shape = list(chunks[0][j].shape)
        shape[concat_axis] = sum(chunks[i][j].shape[concat_axis]
                                 for i in range(n))
        received.append(np.empty(shape, dtype=dtype))
    for t in range(tiles):
        with tile_span(group, tile_label, t, tiles):
            for j in range(n):
                offset = 0
                for i in range(n):
                    chunk = chunks[i][j]
                    width = chunk.shape[tile_axis] // tiles
                    src = [slice(None)] * chunk.ndim
                    src[tile_axis] = slice(t * width, (t + 1) * width)
                    dst = [slice(None)] * chunk.ndim
                    extent = chunk.shape[concat_axis]
                    if tile_axis == concat_axis:
                        dst[concat_axis] = slice(offset + t * width,
                                                 offset + (t + 1) * width)
                    else:
                        dst[concat_axis] = slice(offset, offset + extent)
                        dst[tile_axis] = src[tile_axis]
                    received[j][tuple(dst)] = chunk[tuple(src)]
                    offset += extent
            group.record("all_to_all", [pr / tiles for pr in per_rank],
                         tag, tile=(t, tiles))
    return received


def dist_all_to_all_uneven(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    send_splits: Sequence[Sequence[int]],
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[Tensor]:
    """Row-wise all-to-all with per-destination row counts.

    Rank ``i`` sends ``send_splits[i][j]`` rows to rank ``j``; rank ``j``
    receives the chunks concatenated in source-rank order.  This is MoE
    token dispatch (§3.2): the splits come from the routing result.
    Backward routes gradient rows back to their source ranks.

    With ``tiled=True`` delivery is chunked per *source* rank (tile
    sizes are ragged — routing decides the row counts): tile ``i``
    copies rank ``i``'s rows into every destination's buffer and
    ledger-records rank ``i``'s wire bytes one-hot as tile ``(i, n)``.
    Delivered rows land at the same source-rank-sorted offsets as the
    untiled concatenation, so values are bitwise-identical.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    offsets = []
    for i, (t, splits) in enumerate(zip(tensors, send_splits)):
        if len(splits) != n:
            raise ValueError(
                f"rank {i}: {len(splits)} splits for group size {n}"
            )
        if sum(splits) != t.data.shape[0]:
            raise ValueError(
                f"rank {i}: splits {list(splits)} do not cover "
                f"{t.data.shape[0]} rows"
            )
        offsets.append(np.cumsum([0] + list(splits)))

    per_rank = [
        sum(send_splits[i][j] for j in range(n) if j != i)
        * int(np.prod(tensors[i].data.shape[1:])) * eb
        for i in range(n)
    ]
    group.pre_collective("all_to_all", tag)
    recv_offsets_all = []
    for j in range(n):
        recv_counts = [send_splits[i][j] for i in range(n)]
        recv_offsets_all.append(np.cumsum([0] + recv_counts))
    if tiled and n >= 2:
        tail = tensors[0].data.shape[1:]
        dtype = np.result_type(*[t.data for t in tensors])
        received_list = [
            np.empty((int(recv_offsets_all[j][-1]),) + tail, dtype=dtype)
            for j in range(n)
        ]
        for i in range(n):
            with tile_span(group, tile_label, i, n):
                for j in range(n):
                    lo, hi = recv_offsets_all[j][i], recv_offsets_all[j][i + 1]
                    received_list[j][lo:hi] = \
                        tensors[i].data[offsets[i][j]:offsets[i][j + 1]]
                group.record("all_to_all", _one_hot(n, i, per_rank[i]),
                             tag, tile=(i, n))
    else:
        group.record("all_to_all", per_rank, tag)
        received_list = None

    outs = []
    for j in range(n):
        if received_list is not None:
            received = received_list[j]
        else:
            pieces = [tensors[i].data[offsets[i][j]:offsets[i][j + 1]]
                      for i in range(n)]
            received = (np.concatenate(pieces, axis=0) if pieces else
                        np.zeros((0,) + tensors[0].data.shape[1:]))
        recv_offsets = recv_offsets_all[j]

        def backward(g, j=j, recv_offsets=recv_offsets):
            grads = []
            wire = 0.0
            for i in range(n):
                piece = g[recv_offsets[i]:recv_offsets[i + 1]]
                grad = np.zeros(tensors[i].data.shape, dtype=g.dtype)
                grad[offsets[i][j]:offsets[i][j + 1]] = piece
                grads.append(grad)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("all_to_all", tag + ":bwd")
            group.record("all_to_all", _one_hot(n, j, wire), tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(received, list(tensors), backward,
                                   "dist_all_to_all_uneven"))
    group.post_collective("all_to_all", [o.data for o in outs], tag)
    return outs


def dist_all_reduce(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """Sum all ranks' tensors; every rank receives the total.

    Backward is itself an all-reduce of the output gradients.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    first = tensors[0].data
    total = np.sum([t.data.astype(np.float64) for t in tensors], axis=0)
    group.pre_collective("all_reduce", tag)
    group.record("all_reduce",
                 [2.0 * first.size / n * eb * (n - 1)] * n, tag)

    plan_free = group.world.fault_plan is None
    shared = total.astype(first.dtype, copy=False) if plan_free else None
    outs = []
    for j in range(n):
        def backward(g, j=j):
            group.pre_collective("all_reduce", tag + ":bwd")
            group.record(
                "all_reduce",
                _one_hot(n, j, 2.0 * g.size / n * eb * (n - 1)),
                tag + ":bwd",
            )
            if group.world.fault_plan is None:
                return (g,) * n  # zero-copy dual (see reduce_scatter)
            return tuple(g.copy() for _ in range(n))

        outs.append(Tensor.from_op(
            shared if plan_free else total.astype(first.dtype),
            list(tensors), backward, "dist_all_reduce"))
    group.post_collective("all_reduce", [o.data for o in outs], tag)
    return outs


def _one_hot(n: int, j: int, value: float) -> List[float]:
    out = [0.0] * n
    out[j] = value
    return out
