"""Differentiable collectives over per-rank Tensors.

The parallel engines (:mod:`repro.parallel`) express sharded forward
passes as ordinary autograd code; the collectives here are the seams
between ranks.  Each takes one :class:`~repro.tensor.Tensor` per rank and
returns per-rank output Tensors wired into the tape so that backward
automatically performs the *dual* collective:

=================  =======================
forward            backward
=================  =======================
all-gather         reduce-scatter
reduce-scatter     all-gather
all-to-all         all-to-all (reversed)
all-reduce         all-reduce
=================  =======================

Bytes are recorded in the world's ledger for the forward collective at
call time and for the backward collective as its gradients flow —
tagged ``<tag>`` and ``<tag>:bwd`` respectively — so tests can check the
paper's per-pass volume formulas (Eqs. 1–4) in both directions.

Backward byte accounting assumes a *single* backward sweep (one
``backward()`` call from a combined scalar, as a real loss produces).
Sweeping per-rank outputs separately re-traverses shared ancestors and
multiplies the ``:bwd`` ledger entries; gradients themselves stay exact
because contributions accumulate linearly.

Fault injection: every forward collective consults the world's fault
plan via :meth:`~repro.comm.group.ProcessGroup.pre_collective` before
moving data (crash/timeout) and
:meth:`~repro.comm.group.ProcessGroup.post_collective` on its delivered
outputs (payload corruption — a silent bit-flip into the training
numerics unless the plan verifies checksums); backward collectives
consult ``pre_collective`` under the ``:bwd`` tag.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..comm.group import ProcessGroup
from ..tensor import Tensor

__all__ = [
    "dist_all_gather",
    "dist_reduce_scatter",
    "dist_all_to_all",
    "dist_all_to_all_uneven",
    "dist_all_reduce",
]


def _eb(tensors: Sequence[Tensor], elem_bytes: Optional[float]) -> float:
    if elem_bytes is not None:
        return float(elem_bytes)
    return float(tensors[0].data.itemsize)


def dist_all_gather(
    group: ProcessGroup,
    shards: Sequence[Tensor],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """All-gather per-rank shards; every rank receives the concatenation.

    Backward is a reduce-scatter: rank ``i``'s gradient is the sum over
    output ranks of the ``i``-th slice of each output gradient.
    """
    group.check_shards(shards)
    n = group.size
    eb = _eb(shards, elem_bytes)
    datas = [s.data for s in shards]
    full = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)
    group.pre_collective("all_gather", tag)
    group.record("all_gather", [d.size * eb * (n - 1) for d in datas], tag)

    # Zero-copy: with no fault plan the delivered buffers are read-only,
    # so every rank can share the single gathered array.
    plan_free = group.world.fault_plan is None
    outs = []
    for j in range(n):
        def backward(g, j=j):
            # Output j's grad is scattered back: slice i goes to rank i.
            slicer = [slice(None)] * g.ndim
            grads = []
            wire = 0.0
            for i in range(n):
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                piece = g[tuple(slicer)]
                grads.append(piece)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("reduce_scatter", tag + ":bwd")
            group.record("reduce_scatter", _one_hot(n, j, wire),
                         tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(full if plan_free else full.copy(),
                                   list(shards), backward,
                                   "dist_all_gather"))
    group.post_collective("all_gather", [o.data for o in outs], tag)
    return outs


def dist_reduce_scatter(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """Sum all ranks' tensors; rank ``j`` receives the ``j``-th slice.

    Backward is an all-gather: every input receives the concatenation of
    the per-rank output gradients.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    first = tensors[0].data
    for t in tensors[1:]:
        if t.data.shape != first.shape:
            raise ValueError("dist_reduce_scatter requires equal shapes")
    if first.shape[axis] % n != 0:
        raise ValueError(
            f"axis {axis} of size {first.shape[axis]} not divisible by {n}"
        )
    total = np.sum([t.data.astype(np.float64) for t in tensors], axis=0)
    pieces = np.split(total, n, axis=axis)
    shard_elems = first.size // n
    group.pre_collective("reduce_scatter", tag)
    group.record("reduce_scatter", [shard_elems * eb * (n - 1)] * n, tag)

    width = first.shape[axis] // n
    outs = []
    for j in range(n):
        def backward(g, j=j):
            # d(out_j)/d(in_i) is 1 on slice j for every i: each input
            # rank receives g_j placed at slice j (the all-gather dual).
            full_shape = list(first.shape)
            grad = np.zeros(full_shape, dtype=g.dtype)
            slicer = [slice(None)] * len(full_shape)
            slicer[axis] = slice(j * width, (j + 1) * width)
            grad[tuple(slicer)] = g
            group.pre_collective("all_gather", tag + ":bwd")
            group.record("all_gather", _one_hot(n, j, g.size * eb * (n - 1)),
                         tag + ":bwd")
            if group.world.fault_plan is None:
                # Zero-copy dual: grads accumulate out-of-place, so all
                # input ranks may share the one gathered gradient.
                return (grad,) * n
            return tuple(grad.copy() for _ in range(n))

        outs.append(Tensor.from_op(
            pieces[j].astype(first.dtype,
                             copy=group.world.fault_plan is not None),
            list(tensors), backward, "dist_reduce_scatter"))
    group.post_collective("reduce_scatter", [o.data for o in outs], tag)
    return outs


def dist_all_to_all(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    split_axis: int,
    concat_axis: int,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """Balanced all-to-all: split each rank's tensor into ``n`` chunks on
    ``split_axis``, exchange, concatenate received chunks on
    ``concat_axis``.

    This is the Ulysses primitive (§3.1): e.g. split heads / gather
    sequence on the way in, split sequence / gather heads on the way out.
    Backward is the reverse all-to-all.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    datas = [t.data for t in tensors]
    for d in datas:
        if d.shape[split_axis] % n != 0:
            raise ValueError(
                f"split axis {split_axis} of size {d.shape[split_axis]} "
                f"not divisible by {n}"
            )
    chunks = [np.split(d, n, axis=split_axis) for d in datas]
    per_rank = [sum(chunks[i][j].size * eb for j in range(n) if j != i)
                for i in range(n)]
    group.pre_collective("all_to_all", tag)
    group.record("all_to_all", per_rank, tag)

    chunk_split = datas[0].shape[split_axis] // n
    outs = []
    for j in range(n):
        received = np.concatenate([chunks[i][j] for i in range(n)],
                                  axis=concat_axis)
        recv_width = [chunks[i][j].shape[concat_axis] for i in range(n)]
        recv_offsets = np.cumsum([0] + recv_width)

        def backward(g, j=j, recv_offsets=recv_offsets):
            # Chunk received from rank i returns to rank i, back at
            # split-position j.
            grads = []
            wire = 0.0
            slicer = [slice(None)] * g.ndim
            for i in range(n):
                slicer[concat_axis] = slice(recv_offsets[i],
                                            recv_offsets[i + 1])
                piece = g[tuple(slicer)]
                grad = np.zeros(datas[i].shape, dtype=g.dtype)
                gslicer = [slice(None)] * grad.ndim
                gslicer[split_axis] = slice(j * chunk_split,
                                            (j + 1) * chunk_split)
                grad[tuple(gslicer)] = piece
                grads.append(grad)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("all_to_all", tag + ":bwd")
            group.record("all_to_all", _one_hot(n, j, wire), tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(received, list(tensors), backward,
                                   "dist_all_to_all"))
    group.post_collective("all_to_all", [o.data for o in outs], tag)
    return outs


def dist_all_to_all_uneven(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    send_splits: Sequence[Sequence[int]],
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """Row-wise all-to-all with per-destination row counts.

    Rank ``i`` sends ``send_splits[i][j]`` rows to rank ``j``; rank ``j``
    receives the chunks concatenated in source-rank order.  This is MoE
    token dispatch (§3.2): the splits come from the routing result.
    Backward routes gradient rows back to their source ranks.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    offsets = []
    for i, (t, splits) in enumerate(zip(tensors, send_splits)):
        if len(splits) != n:
            raise ValueError(
                f"rank {i}: {len(splits)} splits for group size {n}"
            )
        if sum(splits) != t.data.shape[0]:
            raise ValueError(
                f"rank {i}: splits {list(splits)} do not cover "
                f"{t.data.shape[0]} rows"
            )
        offsets.append(np.cumsum([0] + list(splits)))

    per_rank = [
        sum(send_splits[i][j] for j in range(n) if j != i)
        * int(np.prod(tensors[i].data.shape[1:])) * eb
        for i in range(n)
    ]
    group.pre_collective("all_to_all", tag)
    group.record("all_to_all", per_rank, tag)

    outs = []
    for j in range(n):
        pieces = [tensors[i].data[offsets[i][j]:offsets[i][j + 1]]
                  for i in range(n)]
        received = (np.concatenate(pieces, axis=0) if pieces else
                    np.zeros((0,) + tensors[0].data.shape[1:]))
        recv_counts = [send_splits[i][j] for i in range(n)]
        recv_offsets = np.cumsum([0] + recv_counts)

        def backward(g, j=j, recv_offsets=recv_offsets):
            grads = []
            wire = 0.0
            for i in range(n):
                piece = g[recv_offsets[i]:recv_offsets[i + 1]]
                grad = np.zeros(tensors[i].data.shape, dtype=g.dtype)
                grad[offsets[i][j]:offsets[i][j + 1]] = piece
                grads.append(grad)
                if i != j:
                    wire += piece.size * eb
            group.pre_collective("all_to_all", tag + ":bwd")
            group.record("all_to_all", _one_hot(n, j, wire), tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(received, list(tensors), backward,
                                   "dist_all_to_all_uneven"))
    group.post_collective("all_to_all", [o.data for o in outs], tag)
    return outs


def dist_all_reduce(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[Tensor]:
    """Sum all ranks' tensors; every rank receives the total.

    Backward is itself an all-reduce of the output gradients.
    """
    group.check_shards(tensors)
    n = group.size
    eb = _eb(tensors, elem_bytes)
    first = tensors[0].data
    total = np.sum([t.data.astype(np.float64) for t in tensors], axis=0)
    group.pre_collective("all_reduce", tag)
    group.record("all_reduce",
                 [2.0 * first.size / n * eb * (n - 1)] * n, tag)

    plan_free = group.world.fault_plan is None
    shared = total.astype(first.dtype, copy=False) if plan_free else None
    outs = []
    for j in range(n):
        def backward(g, j=j):
            group.pre_collective("all_reduce", tag + ":bwd")
            group.record(
                "all_reduce",
                _one_hot(n, j, 2.0 * g.size / n * eb * (n - 1)),
                tag + ":bwd",
            )
            if group.world.fault_plan is None:
                return (g,) * n  # zero-copy dual (see reduce_scatter)
            return tuple(g.copy() for _ in range(n))

        outs.append(Tensor.from_op(
            shared if plan_free else total.astype(first.dtype),
            list(tensors), backward, "dist_all_reduce"))
    group.post_collective("all_reduce", [o.data for o in outs], tag)
    return outs


def _one_hot(n: int, j: int, value: float) -> List[float]:
    out = [0.0] * n
    out[j] = value
    return out
