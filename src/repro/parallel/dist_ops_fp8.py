"""FP8-compressed differentiable collectives (§5).

In FP8 training MegaScale-MoE "replace[s] BF16 TP reduce-scatter with
FP8 all-to-all in forward propagation and perform[s] reduction in FP32.
In the corresponding backward propagation, we apply FP8 all-gather for
gradients" with per-token quantization forward and per-channel (grouped
along tokens) quantization backward.

These ops mirror :mod:`repro.parallel.dist_ops` but quantize what goes
on the wire: forward payloads are per-token FP8-E4M3; the backward
collective quantizes gradients per-channel with a small token group.
The quantization error is *real* (values pass through
quantize→dequantize), so training curves measure genuine compression
effects; the ledger records 1 byte/element plus FP32 scales.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..comm.group import ProcessGroup
from ..precision.formats import FP8_E4M3, FloatFormat
from ..precision.quantize import (
    dequantize,
    quantize_grouped,
    quantize_per_token,
)
from ..tensor import Tensor

__all__ = ["dist_reduce_scatter_fp8", "dist_all_gather_fp8"]


def _fake_quant_rows(x: np.ndarray, fmt: FloatFormat) -> tuple:
    """Quantize-dequantize per token; returns (values, wire_bytes)."""
    flat = x.reshape(-1, x.shape[-1])
    q = quantize_per_token(flat, fmt)
    return dequantize(q).reshape(x.shape).astype(np.float64), \
        q.nbytes_on_wire


def _fake_quant_grouped(x: np.ndarray, fmt: FloatFormat,
                        group_size: int) -> tuple:
    flat = x.reshape(-1, x.shape[-1])
    q = quantize_grouped(flat, group_size, fmt)
    return dequantize(q).reshape(x.shape).astype(np.float64), \
        q.nbytes_on_wire


def dist_reduce_scatter_fp8(
    group: ProcessGroup,
    tensors: Sequence[Tensor],
    axis: int = 0,
    fmt: FloatFormat = FP8_E4M3,
    grad_group_size: int = 128,
    tag: str = "fp8_rs",
) -> List[Tensor]:
    """FP8-compressed reduce-scatter of ``[T, ...]`` tensors.

    Forward: each rank's n chunks are quantized **per token**, exchanged
    at 1 byte/element (all-to-all pattern), dequantized, and summed in
    FP32/FP64 — overflow-free reduction (§5).  Backward: the gradient
    all-gather is quantized **per channel, grouped** along tokens.
    """
    group.check_shards(tensors)
    n = group.size
    first = tensors[0].data
    if first.shape[axis] % n != 0:
        raise ValueError(
            f"axis {axis} of size {first.shape[axis]} not divisible "
            f"by {n}"
        )
    if axis != 0:
        raise ValueError("fp8 reduce-scatter supports axis 0 (tokens)")

    quantized = []       # [rank][chunk] fake-quantized values
    wire_per_rank = []   # off-diagonal chunks travel at FP8 width
    for i, t in enumerate(tensors):
        chunks = np.split(np.asarray(t.data, dtype=np.float64), n,
                          axis=0)
        q_chunks = []
        wire = 0.0
        for j, chunk in enumerate(chunks):
            values, nbytes = _fake_quant_rows(chunk, fmt)
            q_chunks.append(values)
            if j != i:
                wire += nbytes
        quantized.append(q_chunks)
        wire_per_rank.append(wire)
    group.record("all_to_all", wire_per_rank, tag)

    width = first.shape[0] // n
    outs = []
    for j in range(n):
        total = np.sum([quantized[i][j] for i in range(n)], axis=0)

        def backward(g, j=j):
            # Gradient of the sum w.r.t. every input's chunk j; the
            # gradient itself ships in grouped per-channel FP8.
            g2 = np.asarray(g, dtype=np.float64)
            values, nbytes = _fake_quant_grouped(
                g2.reshape(-1, g2.shape[-1]), fmt, grad_group_size)
            values = values.reshape(g2.shape)
            per_rank = [0.0] * n
            per_rank[j] = nbytes * (n - 1)
            group.record("all_gather", per_rank, tag + ":bwd")
            grads = []
            for i in range(n):
                grad = np.zeros(first.shape, dtype=np.float64)
                grad[j * width:(j + 1) * width] = values
                grads.append(grad)
            return tuple(grads)

        outs.append(Tensor.from_op(total.astype(first.dtype),
                                   list(tensors), backward,
                                   "dist_reduce_scatter_fp8"))
    return outs


def dist_all_gather_fp8(
    group: ProcessGroup,
    shards: Sequence[Tensor],
    fmt: FloatFormat = FP8_E4M3,
    grad_group_size: int = 128,
    tag: str = "fp8_ag",
) -> List[Tensor]:
    """FP8-compressed all-gather of token shards (axis 0).

    Forward payloads are per-token FP8; the backward reduce-scatter of
    gradients ships grouped per-channel FP8 (then reduces in FP32).
    """
    group.check_shards(shards)
    n = group.size
    values = []
    wire_per_rank = []
    for s in shards:
        v, nbytes = _fake_quant_rows(
            np.asarray(s.data, dtype=np.float64), fmt)
        values.append(v)
        wire_per_rank.append(nbytes * (n - 1))
    group.record("all_gather", wire_per_rank, tag)

    full = np.concatenate(values, axis=0)
    sizes = [v.shape[0] for v in values]
    offsets = np.cumsum([0] + sizes)

    outs = []
    for j in range(n):
        def backward(g, j=j):
            grads = []
            wire = 0.0
            for i in range(n):
                piece = np.asarray(
                    g[offsets[i]:offsets[i + 1]], dtype=np.float64)
                quantized, nbytes = _fake_quant_grouped(
                    piece.reshape(-1, piece.shape[-1]), fmt,
                    grad_group_size)
                grads.append(quantized.reshape(piece.shape))
                if i != j:
                    wire += nbytes
            per_rank = [0.0] * n
            per_rank[j] = wire
            group.record("reduce_scatter", per_rank, tag + ":bwd")
            return tuple(grads)

        outs.append(Tensor.from_op(
            full.astype(shards[0].dtype).copy(), list(shards), backward,
            "dist_all_gather_fp8"))
    return outs
