"""Parallel execution engines over simulated ranks."""

from .block import ParallelBlockEngine, shard_sequence, unshard_sequence
from .dist_ops import (
    dist_all_gather,
    dist_all_reduce,
    dist_all_to_all,
    dist_all_to_all_uneven,
    dist_reduce_scatter,
)
from .dp import DataParallelTrainer, DPStepResult, zero1_memory_model
from .ep_ffn import EPFFNEngine, EPForwardResult, choose_dispatch_mode
from .pipeline import (
    PipelineRunner,
    PipelineTask,
    bubble_fraction,
    gpipe_schedule,
    interleaved_1f1b_schedule,
    one_f_one_b_schedule,
    validate_schedule,
)
from .cp_attention import (
    CPAttentionEngine,
    cp_attention_comm_volume,
    cp_imbalance,
    cp_layout_positions,
    cp_workload_shares,
)
from .hybrid2d import Hybrid2DStepResult, Hybrid2DTrainer
from .pp_engine import PipelineParallelTrainer, PPStepResult, \
    stage_partition
from .sp_attention import SPAttentionEngine
from .tp_attention import TPAttentionEngine
from .tp_ffn import TPFFNEngine
from .vocab_parallel import (
    shard_lm_head,
    vocab_parallel_cross_entropy,
    vocab_parallel_loss,
)
from .zero import Zero1AdamW, zero_memory_model

__all__ = [
    "ParallelBlockEngine",
    "shard_sequence",
    "unshard_sequence",
    "dist_all_gather",
    "dist_all_reduce",
    "dist_all_to_all",
    "dist_all_to_all_uneven",
    "dist_reduce_scatter",
    "DataParallelTrainer",
    "DPStepResult",
    "zero1_memory_model",
    "EPFFNEngine",
    "EPForwardResult",
    "choose_dispatch_mode",
    "PipelineRunner",
    "PipelineTask",
    "bubble_fraction",
    "gpipe_schedule",
    "interleaved_1f1b_schedule",
    "one_f_one_b_schedule",
    "validate_schedule",
    "SPAttentionEngine",
    "TPAttentionEngine",
    "TPFFNEngine",
    "CPAttentionEngine",
    "cp_attention_comm_volume",
    "cp_imbalance",
    "cp_layout_positions",
    "cp_workload_shares",
    "Hybrid2DStepResult",
    "Hybrid2DTrainer",
    "PipelineParallelTrainer",
    "PPStepResult",
    "stage_partition",
    "Zero1AdamW",
    "zero_memory_model",
    "shard_lm_head",
    "vocab_parallel_cross_entropy",
    "vocab_parallel_loss",
]
