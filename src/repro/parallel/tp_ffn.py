"""Tensor-parallel FFN — the Megatron baseline for experts (§3.2).

TP shards *every* expert's intermediate dimension across the ``n`` ranks:
fc1/fc3 are column-sharded to ``[h, h_ffn/n]`` and fc2 row-sharded to
``[h_ffn/n, h]``.  Every rank therefore processes *all* routed tokens on
thin GEMM shards — the GEMM-efficiency penalty the paper measures in
Fig. 13 — and the critical path carries the full Eq. 4 volume
``2 b s h (n-1)/n`` (all-gather in, reduce-scatter out), independent of
top-k and of ``n``.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..comm.group import ProcessGroup
from ..model.moe import MoELayer
from ..model.routing import build_dispatch_plan
from ..tensor import Tensor, ops
from .dist_ops import dist_all_gather, dist_reduce_scatter

__all__ = ["TPFFNEngine"]


class TPFFNEngine:
    """Runs a reference :class:`MoELayer` with intermediate-dim sharding."""

    def __init__(self, group: ProcessGroup, moe: MoELayer,
                 elem_bytes: Optional[float] = None,
                 fp8_comm: bool = False):
        n = group.size
        ffn_hidden = moe.experts[0].fc1.shape[1]
        if ffn_hidden % n != 0:
            raise ValueError(
                f"ffn_hidden_size={ffn_hidden} not divisible by TP size {n}"
            )
        self.group = group
        self.moe = moe
        self.elem_bytes = elem_bytes
        #: §5 FP8 communication compression: per-token FP8 payloads on
        #: the forward AG/RS path, grouped per-channel FP8 gradients.
        self.fp8_comm = fp8_comm
        self._shard_weights()

    def _shard_weights(self) -> None:
        """Column-shard fc1/fc3 and row-shard fc2 of every expert."""
        n = self.group.size
        self.shards: List[List[dict]] = [[] for _ in range(n)]
        for expert in self.moe.experts:
            fh = expert.fc1.shape[1]
            width = fh // n
            for r in range(n):
                cols = slice(r * width, (r + 1) * width)
                self.shards[r].append({
                    "fc1": Tensor(expert.fc1.data[:, cols].copy(),
                                  requires_grad=True),
                    "fc3": Tensor(expert.fc3.data[:, cols].copy(),
                                  requires_grad=True),
                    "fc2": Tensor(expert.fc2.data[cols, :].copy(),
                                  requires_grad=True),
                })

    # -- per-op handlers (graph-node granularity) --------------------------
    #
    # One method per forward-graph op, shared by the legacy forward below
    # and the DAG executor's bindings.

    def op_route_full(self, full: Tensor):
        """``router``: replicated gate over all gathered tokens."""
        return self.moe.router(full)

    def op_scatter(self, full: Tensor, routing):
        """``scatter``: expert-sort all kept rows (every rank keeps
        everything — TP shards weights, not tokens)."""
        plan = build_dispatch_plan(routing, self.moe.n_experts)
        ffn_in = ops.take_rows(full, plan.token_of_row)
        return plan, ffn_in

    def op_experts(self, ffn_in: Tensor, plan, r: int) -> Tensor:
        """``fc1``–``fc2``: thin GEMM shards over every routed token."""
        pieces = []
        for expert_id, start, end in plan.expert_slices():
            shard = self.shards[r][expert_id]
            x = ffn_in[start:end]
            gate_in = x @ shard["fc1"]
            lin_in = x @ shard["fc3"]
            pieces.append((gate_in.silu() * lin_in) @ shard["fc2"])
        return (ops.concat(pieces, axis=0) if pieces else
                Tensor(np.zeros((0, ffn_in.shape[-1]),
                                dtype=ffn_in.dtype)))

    def op_gather(self, fc2_partial: Tensor, plan, weights: Tensor,
                  t_total: int) -> Tensor:
        """``gather``: weighted full-size partial contribution."""
        w_rows = weights[plan.token_of_row, plan.slot_of_row]
        scaled = fc2_partial * w_rows.reshape(-1, 1)
        return ops.put_rows(scaled, plan.token_of_row, t_total)

    def forward(self, hidden_shards: List[Tensor]) -> tuple:
        """Map ``ln2_out`` seq shards to combined output shards.

        Returns ``(output_shards, aux_loss)``.
        """
        group = self.group
        group.check_shards(hidden_shards)
        n = group.size
        flats = [s.reshape(-1, s.shape[-1]) if s.ndim == 3 else s
                 for s in hidden_shards]
        t_total = sum(f.shape[0] for f in flats)

        if self.fp8_comm:
            from .dist_ops_fp8 import dist_all_gather_fp8
            fulls = dist_all_gather_fp8(group, flats, tag="tp_ffn:ag")
        else:
            fulls = dist_all_gather(group, flats, axis=0,
                                    elem_bytes=self.elem_bytes,
                                    tag="tp_ffn:ag")

        partials = []
        aux = None
        for r in range(n):
            routing, weights, aux_r = self.op_route_full(fulls[r])
            if r == 0:
                aux = aux_r
            plan, ffn_in = self.op_scatter(fulls[r], routing)
            fc2_partial = self.op_experts(ffn_in, plan, r)
            partials.append(self.op_gather(fc2_partial, plan, weights,
                                           t_total))

        if self.fp8_comm:
            from .dist_ops_fp8 import dist_reduce_scatter_fp8
            out_flats = dist_reduce_scatter_fp8(group, partials,
                                                tag="tp_ffn:rs")
        else:
            out_flats = dist_reduce_scatter(group, partials, axis=0,
                                            elem_bytes=self.elem_bytes,
                                            tag="tp_ffn:rs")
        outputs = [flat.reshape(*shard.shape)
                   for flat, shard in zip(out_flats, hidden_shards)]
        return outputs, aux

    def sync_grads_to_reference(self) -> None:
        """Accumulate shard gradients onto the reference experts."""
        grads = self.reference_weight_grads()
        for expert, grad in zip(self.moe.experts, grads):
            for key in ("fc1", "fc3", "fc2"):
                param = getattr(expert, key)
                param.grad = (grad[key] if param.grad is None
                              else param.grad + grad[key])

    def refresh_shards(self) -> None:
        """Re-slice the (updated) reference expert weights."""
        n = self.group.size
        for e, expert in enumerate(self.moe.experts):
            fh = expert.fc1.shape[1]
            width = fh // n
            for r in range(n):
                cols = slice(r * width, (r + 1) * width)
                shard = self.shards[r][e]
                shard["fc1"].data = expert.fc1.data[:, cols].copy()
                shard["fc3"].data = expert.fc3.data[:, cols].copy()
                shard["fc2"].data = expert.fc2.data[cols, :].copy()
                for key in ("fc1", "fc3", "fc2"):
                    shard[key].grad = None

    def reference_weight_grads(self) -> List[dict]:
        """Assemble full fc1/fc3/fc2 grads per expert from shard grads."""
        n = self.group.size
        out = []
        for e, expert in enumerate(self.moe.experts):
            fh = expert.fc1.shape[1]
            width = fh // n
            fc1 = np.zeros_like(expert.fc1.data)
            fc3 = np.zeros_like(expert.fc3.data)
            fc2 = np.zeros_like(expert.fc2.data)
            for r in range(n):
                cols = slice(r * width, (r + 1) * width)
                shard = self.shards[r][e]
                if shard["fc1"].grad is not None:
                    fc1[:, cols] = shard["fc1"].grad
                if shard["fc3"].grad is not None:
                    fc3[:, cols] = shard["fc3"].grad
                if shard["fc2"].grad is not None:
                    fc2[cols, :] = shard["fc2"].grad
            out.append({"fc1": fc1, "fc3": fc3, "fc2": fc2})
        return out
