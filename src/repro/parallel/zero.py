"""ZeRO optimizer-state sharding (§2.2, §4.1).

MegaScale-MoE "employ[s] ZeRO optimizations to eliminate redundant
optimizer states across DP groups".  This module implements stage 1
*numerically*: the flattened parameter space is split into per-rank
shards; each DP rank keeps Adam moments and the FP32 master copy for its
shard only, updates it after a reduce-scatter of gradients, and the
updated shards are all-gathered back into the full parameter set.

The result is bit-identical to a full (unsharded) AdamW step — asserted
by the tests — while optimizer memory drops by ``1/dp`` and gradient
communication becomes RS+AG instead of all-reduce (same ring volume).

Stages 2 and 3 are provided as memory/communication models
(:func:`zero_memory_model`), matching the paper's usage (stage 1 in
production, deeper stages analyzed).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..comm.collectives import all_gather, reduce_scatter
from ..comm.group import ProcessGroup
from ..tensor import Tensor

__all__ = ["Zero1AdamW", "zero_memory_model"]


class Zero1AdamW:
    """ZeRO stage-1 sharded AdamW over a DP group.

    Args:
        params: The shared model parameters (replicated across ranks in
            the simulation).
        group: Data-parallel process group; ``group.size`` shards.
        lr, betas, eps, weight_decay: AdamW hyper-parameters.
    """

    def __init__(self, params: Sequence[Tensor], group: ProcessGroup,
                 lr: float = 3e-4, betas: tuple = (0.9, 0.95),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        self.params = list(params)
        self.group = group
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0

        self.numel = sum(p.size for p in self.params)
        n = group.size
        self.padded = -(-self.numel // n) * n
        self.shard_size = self.padded // n
        # Per-rank optimizer shard: master copy + moments for 1/n of
        # the flattened parameter space.
        flat = self._flatten([p.data for p in self.params])
        self.master_shards = [
            flat[r * self.shard_size:(r + 1) * self.shard_size]
            .astype(np.float64).copy()
            for r in range(n)
        ]
        self.m_shards = [np.zeros(self.shard_size) for _ in range(n)]
        self.v_shards = [np.zeros(self.shard_size) for _ in range(n)]

    def _flatten(self, arrays: Sequence[np.ndarray]) -> np.ndarray:
        flat = np.concatenate([np.asarray(a, dtype=np.float64).reshape(-1)
                               for a in arrays])
        pad = self.padded - flat.size
        if pad:
            flat = np.concatenate([flat, np.zeros(pad)])
        return flat

    def _unflatten(self, flat: np.ndarray) -> List[np.ndarray]:
        out = []
        offset = 0
        for p in self.params:
            out.append(flat[offset:offset + p.size].reshape(p.shape))
            offset += p.size
        return out

    def step(self, per_rank_grads: Optional[Sequence[Sequence[np.ndarray]]]
             = None) -> None:
        """One sharded update.

        Args:
            per_rank_grads: ``[rank][param]`` gradient arrays from each
                DP rank's backward (pre-reduction).  When omitted, the
                parameters' ``.grad`` is treated as every rank's
                gradient (already-synchronized case).
        """
        n = self.group.size
        if per_rank_grads is None:
            grads = [p.grad if p.grad is not None
                     else np.zeros(p.shape) for p in self.params]
            rank_flats = [self._flatten(grads) for _ in range(n)]
            scale = 1.0 / n  # the sum below re-multiplies by n
        else:
            if len(per_rank_grads) != n:
                raise ValueError(
                    f"expected {n} gradient sets, got "
                    f"{len(per_rank_grads)}"
                )
            rank_flats = [self._flatten(g) for g in per_rank_grads]
            scale = 1.0 / n  # DP averages gradients

        # Reduce-scatter: rank r receives the summed shard r.
        grad_shards = reduce_scatter(self.group, rank_flats,
                                     elem_bytes=4.0, tag="zero1:rs")

        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        new_shards = []
        for r in range(n):
            g = grad_shards[r] * scale
            self.m_shards[r] = (self.beta1 * self.m_shards[r]
                                + (1 - self.beta1) * g)
            self.v_shards[r] = (self.beta2 * self.v_shards[r]
                                + (1 - self.beta2) * g * g)
            update = (self.m_shards[r] / bc1) \
                / (np.sqrt(self.v_shards[r] / bc2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * self.master_shards[r]
            self.master_shards[r] = self.master_shards[r] \
                - self.lr * update
            new_shards.append(self.master_shards[r])

        # All-gather the updated shards into the full parameter set.
        fulls = all_gather(self.group, new_shards, elem_bytes=4.0,
                           tag="zero1:ag")
        for p, updated in zip(self.params,
                              self._unflatten(fulls[0][:self.numel])):
            p.data = updated.astype(p.data.dtype)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    # -- shard-level state (elastic resharding) ------------------------------

    def shard_state_dict(self) -> Dict:
        """Per-rank optimizer shards in re-partitionable form.

        The returned dict is exactly what
        :func:`repro.elastic.reshard.reshard_zero1_state` maps across
        DP degrees: the padded per-rank slices of the master copy and
        both Adam moments, plus the flatten geometry needed to undo
        the padding.
        """
        return {
            "numel": self.numel,
            "dp": self.group.size,
            "step_count": self.step_count,
            "master": [s.copy() for s in self.master_shards],
            "m": [s.copy() for s in self.m_shards],
            "v": [s.copy() for s in self.v_shards],
        }

    def load_shard_state_dict(self, state: Dict) -> None:
        """Restore shards saved by :meth:`shard_state_dict`.

        The state's DP degree must match this optimizer's group —
        reshard first (:func:`~repro.elastic.reshard
        .reshard_zero1_state`) when resuming at a different size.
        """
        if int(state["numel"]) != self.numel:
            raise ValueError(
                f"state covers {state['numel']} elements, optimizer "
                f"has {self.numel}"
            )
        if int(state["dp"]) != self.group.size:
            raise ValueError(
                f"state sharded for dp={state['dp']}, group size is "
                f"{self.group.size}; reshard before loading"
            )
        self.step_count = int(state["step_count"])
        for name, shards in (("master_shards", state["master"]),
                             ("m_shards", state["m"]),
                             ("v_shards", state["v"])):
            loaded = [np.asarray(s, dtype=np.float64).copy()
                      for s in shards]
            if any(s.shape != (self.shard_size,) for s in loaded):
                raise ValueError(
                    f"{name} shard shapes do not match shard_size "
                    f"{self.shard_size}"
                )
            setattr(self, name, loaded)
        # Propagate the restored master copy into the live parameters.
        flat = np.concatenate(self.master_shards)
        for p, updated in zip(self.params,
                              self._unflatten(flat[:self.numel])):
            p.data = updated.astype(p.data.dtype)

    def state_nbytes_per_rank(self) -> float:
        """Master + moments bytes held by one rank (the ZeRO saving)."""
        return 3 * self.shard_size * 8.0


def zero_memory_model(param_count: float, dp_size: int,
                      stage: int = 1,
                      param_bytes: float = 2.0,
                      grad_bytes: float = 4.0,
                      state_bytes: float = 12.0) -> Dict[str, float]:
    """Per-GPU bytes under ZeRO stages 0–3 (§2.2's three stages).

    Stage 0 replicates everything; stage 1 shards optimizer states;
    stage 2 also shards gradients; stage 3 also shards parameters
    (at the cost of per-layer parameter all-gathers).
    """
    if stage not in (0, 1, 2, 3):
        raise ValueError(f"unknown ZeRO stage {stage}")
    d = max(dp_size, 1)
    params = param_count * param_bytes / (d if stage >= 3 else 1)
    grads = param_count * grad_bytes / (d if stage >= 2 else 1)
    states = param_count * state_bytes / (d if stage >= 1 else 1)
    return {
        "params": params,
        "grads": grads,
        "optimizer": states,
        "total": params + grads + states,
    }
