"""Megatron-style tensor-parallel attention (the baseline of §3.1).

Each rank holds a *head shard* of the attention weights: its slice of the
fused QKV projection columns and the matching rows of the output
projection.  Activations enter and leave sequence-sharded (Megatron's
TP+SP hybrid), so the critical path carries:

    all-gather  [b, s/n, h] -> [b, s, h]      (before QKV projection)
    reduce-scatter of the partial output      (after output projection)

which is exactly the Eq. 1 volume ``2 b s h (n-1)/n`` per pass — constant
in ``n``, the scalability limitation §7 discusses.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..comm.group import ProcessGroup
from ..model.layers import SelfAttention
from ..tensor import Tensor, ops
from .dist_ops import dist_all_gather, dist_reduce_scatter

__all__ = ["TPAttentionEngine"]


class TPAttentionEngine:
    """Runs head-sharded attention over sequence-sharded activations."""

    def __init__(self, group: ProcessGroup, attn: SelfAttention,
                 elem_bytes: Optional[float] = None):
        n = group.size
        if attn.n_heads % n != 0:
            raise ValueError(
                f"n_heads={attn.n_heads} not divisible by TP size {n}"
            )
        if attn.n_kv_heads % n != 0:
            raise ValueError(
                f"n_kv_heads={attn.n_kv_heads} not divisible by TP size {n}"
            )
        self.group = group
        self.attn = attn
        self.elem_bytes = elem_bytes
        self._shard_weights()

    def _shard_weights(self) -> None:
        """Slice the reference weights into per-rank leaf Tensors.

        The fused QKV weight ``[h, h + 2·kv·hd]`` is laid out as
        ``[Q | K | V]``; each part is column-sharded by head.  The output
        projection ``[h, h]`` is row-sharded by head so per-rank partial
        products sum to the full result.
        """
        attn, n = self.attn, self.group.size
        h = attn.hidden_size
        hd = attn.head_dim
        kv = attn.n_kv_heads * hd
        w = attn.qkv_proj.weight.data
        q_w, k_w, v_w = w[:, :h], w[:, h:h + kv], w[:, h + kv:]

        self.qkv_weights: List[Tensor] = []
        self.out_weights: List[Tensor] = []
        q_cols = h // n
        kv_cols = kv // n
        out_w = attn.out_proj.weight.data
        for r in range(n):
            q_r = q_w[:, r * q_cols:(r + 1) * q_cols]
            k_r = k_w[:, r * kv_cols:(r + 1) * kv_cols]
            v_r = v_w[:, r * kv_cols:(r + 1) * kv_cols]
            self.qkv_weights.append(Tensor(
                np.concatenate([q_r, k_r, v_r], axis=1).copy(),
                requires_grad=True, name=f"qkv_shard_{r}"))
            self.out_weights.append(Tensor(
                out_w[r * q_cols:(r + 1) * q_cols, :].copy(),
                requires_grad=True, name=f"out_shard_{r}"))

    # -- per-op handlers (graph-node granularity) --------------------------
    #
    # One method per forward-graph op, shared by the legacy call chain
    # below and the DAG executor's bindings.

    def op_qkv(self, x: Tensor, r: int):
        """``qkv_proj``: this rank's head-shard projection of the full
        sequence, split into 4-D (q, k, v)."""
        attn, n = self.attn, self.group.size
        heads_local = attn.n_heads // n
        kv_local = attn.n_kv_heads // n
        hd = attn.head_dim
        b, s, _ = x.shape
        qkv = x @ self.qkv_weights[r]
        q_width = heads_local * hd
        kv_width = kv_local * hd
        q = qkv[:, :, :q_width].reshape(b, s, heads_local, hd)
        k = qkv[:, :, q_width:q_width + kv_width].reshape(
            b, s, kv_local, hd)
        v = qkv[:, :, q_width + kv_width:].reshape(b, s, kv_local, hd)
        return q, k, v

    def op_rope(self, qkv):
        """``rope``: full-sequence rotation (positions implicit)."""
        q, k, v = qkv
        return (ops.rope_rotate(q, self.attn.rope_base),
                ops.rope_rotate(k, self.attn.rope_base), v)

    def op_attention(self, qkv):
        """``attention``: causal SDPA, heads re-flattened."""
        q, k, v = qkv
        b, s = q.shape[0], q.shape[1]
        q_width = q.shape[2] * q.shape[3]
        out = ops.scaled_dot_product_attention(
            q.transpose(0, 2, 1, 3), k.transpose(0, 2, 1, 3),
            v.transpose(0, 2, 1, 3), causal=True)
        return out.transpose(0, 2, 1, 3).reshape(b, s, q_width)

    def op_out_proj(self, out: Tensor, r: int) -> Tensor:
        """``out_proj``: row-sharded partial product."""
        return out @ self.out_weights[r]

    # -- rank-stacked handlers (vectorized backend) ------------------------
    #
    # Batched mirrors of the per-rank ops above for
    # ``execution="vectorized"``: one kernel per op over the leading
    # rank axis, bitwise-identical slice-for-slice.  Every rank pairs
    # with its own weight shard, so the projections go through
    # :func:`~repro.runtime.vectorized.vec_shard_matmul`.

    def vec_qkv(self, x: Tensor):
        """Batched ``qkv_proj`` over ``[n, b, s, h]``."""
        from ..runtime.vectorized import vec_shard_matmul
        attn, n = self.attn, self.group.size
        heads_local = attn.n_heads // n
        kv_local = attn.n_kv_heads // n
        hd = attn.head_dim
        _, b, s, _ = x.shape
        qkv = vec_shard_matmul(x, self.qkv_weights)
        q_width = heads_local * hd
        kv_width = kv_local * hd
        q = qkv[:, :, :, :q_width].reshape(n, b, s, heads_local, hd)
        k = qkv[:, :, :, q_width:q_width + kv_width].reshape(
            n, b, s, kv_local, hd)
        v = qkv[:, :, :, q_width + kv_width:].reshape(
            n, b, s, kv_local, hd)
        return q, k, v

    def vec_rope(self, qkv):
        """Batched ``rope``: all ranks see the full sequence, so one
        shared position table broadcast over the rank axis."""
        from ..runtime.vectorized import vec_rope
        q, k, v = qkv
        n, s = q.shape[0], q.shape[2]
        positions = [np.arange(s)] * n
        return (vec_rope(q, self.attn.rope_base, positions),
                vec_rope(k, self.attn.rope_base, positions), v)

    def vec_attention(self, qkv) -> Tensor:
        """Batched causal SDPA on the head shards."""
        from ..runtime.vectorized import (
            vec_scaled_dot_product_attention,
        )
        q, k, v = qkv
        n, b, s = q.shape[0], q.shape[1], q.shape[2]
        q_width = q.shape[3] * q.shape[4]
        out = vec_scaled_dot_product_attention(
            q.transpose(0, 1, 3, 2, 4), k.transpose(0, 1, 3, 2, 4),
            v.transpose(0, 1, 3, 2, 4), causal=True)
        return out.transpose(0, 1, 3, 2, 4).reshape(n, b, s, q_width)

    def vec_out_proj(self, out: Tensor) -> Tensor:
        """Batched ``out_proj`` partial products."""
        from ..runtime.vectorized import vec_shard_matmul
        return vec_shard_matmul(out, self.out_weights)

    def forward(self, hidden_shards: List[Tensor],
                seq_len: int) -> List[Tensor]:
        """Map ``ln1_out`` sequence shards to ``attn_out`` shards."""
        group = self.group
        group.check_shards(hidden_shards)
        n = group.size

        # All-gather the sequence so each rank sees the full input.
        full_inputs = dist_all_gather(group, hidden_shards, axis=1,
                                      elem_bytes=self.elem_bytes,
                                      tag="tp_attn:ag")

        partials = []
        for r in range(n):
            qkv = self.op_rope(self.op_qkv(full_inputs[r], r))
            partials.append(self.op_out_proj(self.op_attention(qkv), r))

        # Partial products sum across ranks; scatter back to seq shards.
        return dist_reduce_scatter(group, partials, axis=1,
                                   elem_bytes=self.elem_bytes,
                                   tag="tp_attn:rs")

    def sync_grads_to_reference(self) -> None:
        """Accumulate the shard gradients onto the reference weights.

        A real TP deployment keeps the shards as the optimizer state;
        here the reference module owns the parameters, so the assembled
        gradients are added to it before the optimizer step.
        """
        d_qkv, d_out = self.reference_weight_grads()
        qkv_w = self.attn.qkv_proj.weight
        out_w = self.attn.out_proj.weight
        qkv_w.grad = d_qkv if qkv_w.grad is None else qkv_w.grad + d_qkv
        out_w.grad = d_out if out_w.grad is None else out_w.grad + d_out

    def refresh_shards(self) -> None:
        """Re-slice the (updated) reference weights into the shards."""
        attn, n = self.attn, self.group.size
        h = attn.hidden_size
        hd = attn.head_dim
        kv = attn.n_kv_heads * hd
        w = attn.qkv_proj.weight.data
        q_w, k_w, v_w = w[:, :h], w[:, h:h + kv], w[:, h + kv:]
        q_cols = h // n
        kv_cols = kv // n
        out_w = attn.out_proj.weight.data
        for r in range(n):
            q_r = q_w[:, r * q_cols:(r + 1) * q_cols]
            k_r = k_w[:, r * kv_cols:(r + 1) * kv_cols]
            v_r = v_w[:, r * kv_cols:(r + 1) * kv_cols]
            self.qkv_weights[r].data = np.concatenate(
                [q_r, k_r, v_r], axis=1).copy()
            self.qkv_weights[r].grad = None
            self.out_weights[r].data = \
                out_w[r * q_cols:(r + 1) * q_cols, :].copy()
            self.out_weights[r].grad = None

    def reference_weight_grads(self) -> tuple:
        """Assemble full-weight gradients from the per-rank shard grads.

        Returns ``(qkv_grad, out_grad)`` shaped like the reference
        weights, for equivalence tests against the single-rank model.
        """
        attn, n = self.attn, self.group.size
        h = attn.hidden_size
        hd = attn.head_dim
        kv = attn.n_kv_heads * hd
        q_cols = h // n
        kv_cols = kv // n

        qkv_grad = np.zeros_like(attn.qkv_proj.weight.data)
        out_grad = np.zeros_like(attn.out_proj.weight.data)
        for r in range(n):
            g = self.qkv_weights[r].grad
            if g is None:
                continue
            qkv_grad[:, r * q_cols:(r + 1) * q_cols] = g[:, :q_cols]
            qkv_grad[:, h + r * kv_cols:h + (r + 1) * kv_cols] = \
                g[:, q_cols:q_cols + kv_cols]
            qkv_grad[:, h + kv + r * kv_cols:h + kv + (r + 1) * kv_cols] = \
                g[:, q_cols + kv_cols:]
            og = self.out_weights[r].grad
            if og is not None:
                out_grad[r * q_cols:(r + 1) * q_cols, :] = og
        return qkv_grad, out_grad
