"""Hybrid 2D training: model parallelism × data parallelism (Fig. 4/5).

The full production layout inside one pipeline stage: ``n`` intra-node
ranks run SP attention + EP experts for each of ``d`` data-parallel
replicas (one replica per node), and gradient synchronization follows
Appendix A.1:

* **attention / norm / embedding parameters** are replicated across all
  ``n × d`` ranks → the four-step *hierarchical* sync (intra-node
  reduce-scatter, inter-node RS + AG, intra-node all-gather);
* **expert and router parameters** live once per replica (EP shards
  them intra-node) → a *flat* inter-node sync across the ``d`` peers.

Each replica's per-rank gradient contributions are materialized by
splitting its accumulated gradient evenly across the node's ranks —
numerically exact (the pieces sum back to the replica gradient) while
driving the real hierarchical data movement, so the ledger records the
true intra- vs inter-node traffic split of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..comm.group import World
from ..comm.hierarchical import flat_sync, hierarchical_sync
from ..core.config import ModelConfig, ParallelConfig, TrainConfig
from ..model.transformer import MoETransformer
from ..precision.optimizer import AdamW, clip_grad_norm
from ..runtime import backward as runtime_backward
from ..runtime import make_executor

__all__ = ["Hybrid2DTrainer", "Hybrid2DStepResult"]


@dataclass
class Hybrid2DStepResult:
    """Telemetry from one 2D step."""

    loss: float
    replica_losses: List[float]
    grad_norm: float
    intra_node_sync_bytes: float
    inter_node_sync_bytes: float


def _is_replicated(name: str) -> bool:
    """Replicated across the model-parallel dimension under SP+EP?

    Attention weights, norms, embeddings and the LM head are replicas;
    router gate and expert weights are the EP-sharded components.
    """
    return not (".moe.experts." in name or ".moe.router." in name)


class Hybrid2DTrainer:
    """Trains ``d`` replicas over a simulated ``n × d`` world."""

    def __init__(self, config: ModelConfig, world: World,
                 parallel: ParallelConfig, train: TrainConfig,
                 seed: int = 0, lr: Optional[float] = None):
        # Imported here: core.trainer itself builds on repro.parallel.
        from ..core.trainer import MegaScaleTrainer
        n = parallel.model_parallel_size
        if world.ranks_per_node != n:
            raise ValueError(
                f"world.ranks_per_node={world.ranks_per_node} must equal "
                f"model_parallel_size={n}"
            )
        if world.size % n != 0:
            raise ValueError(
                f"world size {world.size} not divisible by {n}"
            )
        self.world = world
        self.n = n
        self.d = world.size // n
        self.train_cfg = train
        lr = lr if lr is not None else train.learning_rate

        # One replica per node, identical init; each runs its own
        # model-parallel trainer over a sub-world that shares the
        # global ledger (so all traffic lands in one place).
        self.replicas: List[MoETransformer] = []
        self.trainers: List[MegaScaleTrainer] = []
        for _ in range(self.d):
            sub_world = World(n, ranks_per_node=n)
            sub_world.ledger = world.ledger
            model = MoETransformer(config, seed=seed, dtype=np.float64)
            self.replicas.append(model)
            self.trainers.append(MegaScaleTrainer(
                model, sub_world, parallel, train,
                optimizer=AdamW(model.parameters(), lr=lr)))
        self.param_names = [name for name, _ in
                            self.replicas[0].named_parameters()]
        #: SPMD executor for ``execution="threaded"``: the independent
        #: replica forward/backward passes run concurrently via
        #: :meth:`~repro.runtime.spmd.SpmdExecutor.map`; gradient sync
        #: stays on the calling thread (it is one whole-world
        #: collective sequence).  None = sequential replica loop.
        self.executor = make_executor(train.execution)

    def train_step(self, replica_batches: Sequence[np.ndarray]
                   ) -> Hybrid2DStepResult:
        """One synchronized step; ``replica_batches[r]`` feeds node r."""
        if len(replica_batches) != self.d:
            raise ValueError(
                f"expected {self.d} replica batches, got "
                f"{len(replica_batches)}"
            )

        # Local forward/backward per replica (no optimizer step yet).
        # Replicas are fully independent graphs, so in threaded mode
        # they run concurrently; results return in replica order.
        def replica_step(pair):
            trainer, batch = pair
            trainer.model.zero_grad()
            total, lm, aux = trainer.loss(batch)
            runtime_backward(total, executor=trainer.executor,
                             fault_plan=trainer.world.fault_plan,
                             tracer=trainer.world.tracer)
            for engine in trainer.engines:
                engine.sync_grads_to_reference()
            return total.item(), {
                name: (p.grad.copy() if p.grad is not None
                       else np.zeros(p.shape))
                for name, p in trainer.model.named_parameters()
            }

        work = list(zip(self.trainers, replica_batches))
        if self.executor is not None:
            stepped = self.executor.map(replica_step, work)
        else:
            stepped = [replica_step(pair) for pair in work]
        losses = [loss for loss, _ in stepped]
        grads: List[Dict[str, np.ndarray]] = [g for _, g in stepped]

        intra_before = self._ledger_bytes(":intra_")
        inter_before = self._ledger_bytes(":inter_")
        synced = self._sync_gradients(grads)
        intra = self._ledger_bytes(":intra_") - intra_before
        inter = self._ledger_bytes(":inter_") - inter_before

        # Apply the identical averaged gradient on every replica.
        norm = 0.0
        for trainer in self.trainers:
            params = dict(trainer.model.named_parameters())
            for name, grad in synced.items():
                params[name].grad = grad.copy()
            norm = clip_grad_norm(trainer.model.parameters(),
                                  self.train_cfg.grad_clip)
            trainer.optimizer.step()
            for engine in trainer.engines:
                engine.refresh_shards()

        return Hybrid2DStepResult(
            loss=float(np.mean(losses)),
            replica_losses=losses,
            grad_norm=norm,
            intra_node_sync_bytes=intra,
            inter_node_sync_bytes=inter,
        )

    # -- gradient synchronization (Appendix A.1) ---------------------------

    def _sync_gradients(self, grads: List[Dict[str, np.ndarray]]
                        ) -> Dict[str, np.ndarray]:
        synced: Dict[str, np.ndarray] = {}
        for name in self.param_names:
            per_replica = [g[name] for g in grads]
            if _is_replicated(name):
                # Per-rank contributions: each intra-node rank holds an
                # equal slice of its replica's accumulated gradient.
                per_rank = []
                for replica_grad in per_replica:
                    for _ in range(self.n):
                        per_rank.append(replica_grad / self.n)
                outs = hierarchical_sync(self.world, per_rank,
                                         elem_bytes=4.0,
                                         tag="hybrid2d:attn")
                synced[name] = outs[0] / self.d
            else:
                # EP-sharded components sync flat across the d peers.
                sub = World(self.d, ranks_per_node=1)
                sub.ledger = self.world.ledger
                outs = flat_sync(sub, per_replica, elem_bytes=4.0,
                                 tag="hybrid2d:expert:inter")
                synced[name] = outs[0] / self.d
        return synced

    def _ledger_bytes(self, marker: str) -> float:
        # Cumulative tag counters, not ledger.records: a bounded ledger
        # rotates old records out mid-run, and the before/after deltas
        # taken around _sync_gradients would silently under-count.
        return sum(tag_bytes
                   for tag, tag_bytes in
                   self.world.ledger.bytes_by_tag().items()
                   if marker in tag)

    def eval_loss(self, token_ids: np.ndarray) -> float:
        """LM loss on replica 0 without updates."""
        return self.trainers[0].eval_loss(token_ids)
