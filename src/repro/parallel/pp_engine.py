"""Numerical pipeline-parallel training over simulated stages.

Splits a :class:`~repro.model.MoETransformer` into ``p`` contiguous
stages (embedding on the first, LM head on the last), runs micro-batches
through a validated 1F1B schedule order, accumulates gradients, and
steps the optimizer — the §2.2 pipeline dimension made numerical.

Because gradient accumulation over equal micro-batches is exactly what
a single device running the same accumulation performs, the trainer is
numerically identical to non-pipelined micro-batched training, which the
test suite asserts.  Inter-stage activation traffic is recorded in the
world ledger as ``p2p`` sends (both directions), sized per Fig. 4's
inter-node placement of PP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..comm.group import World
from ..model.transformer import MoETransformer
from ..precision.optimizer import AdamW, clip_grad_norm
from ..runtime import backward as runtime_backward
from ..runtime import make_executor
from ..runtime.backward import _plan_is_passive
from ..tensor import Tensor, ops
from .pipeline import one_f_one_b_schedule, validate_schedule

__all__ = ["PipelineParallelTrainer", "PPStepResult", "stage_partition"]


def stage_partition(n_layers: int, n_stages: int) -> List[range]:
    """Contiguous, balanced layer ranges per stage."""
    if n_stages < 1:
        raise ValueError(f"n_stages must be >= 1, got {n_stages}")
    if n_layers < n_stages:
        raise ValueError(
            f"cannot split {n_layers} layers into {n_stages} stages"
        )
    base = n_layers // n_stages
    extra = n_layers % n_stages
    ranges = []
    start = 0
    for stage in range(n_stages):
        size = base + (1 if stage < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


@dataclass
class PPStepResult:
    """Telemetry from one pipelined optimizer step."""

    loss: float
    micro_losses: List[float]
    grad_norm: float
    p2p_bytes: float


class PipelineParallelTrainer:
    """1F1B pipelined training of one model replica.

    Args:
        model: The full model (this process owns every stage; stage
            boundaries govern scheduling and p2p accounting).
        world: Simulated world whose size is the number of stages.
        n_micro: Micro-batches per optimizer step.
        optimizer: Steps the full parameter set after accumulation.
        aux_loss_coeff: Router balance-loss weight.
        elem_bytes: Wire bytes per activation element for the ledger.
    """

    def __init__(self, model: MoETransformer, world: World,
                 n_micro: int, optimizer: Optional[AdamW] = None,
                 aux_loss_coeff: float = 0.0, grad_clip: float = 1.0,
                 elem_bytes: float = 2.0,
                 mp_world: Optional[World] = None,
                 mp_attention: str = "sp", mp_ffn: str = "ep",
                 execution: Optional[str] = None):
        self.model = model
        self.world = world
        self.n_stages = world.size
        self.n_micro = n_micro
        self.stages = stage_partition(model.config.n_layers,
                                      self.n_stages)
        self.optimizer = optimizer or AdamW(model.parameters())
        self.aux_loss_coeff = aux_loss_coeff
        self.grad_clip = grad_clip
        self.elem_bytes = elem_bytes
        schedule = one_f_one_b_schedule(self.n_stages, n_micro)
        validate_schedule(schedule, n_micro)
        self.schedule = schedule
        #: SPMD executor for ``execution="threaded"``: ready schedule
        #: slots from different stages run concurrently per wave, and
        #: the accumulated backward runs on the parallel tape walker.
        #: None = the classic sequential schedule sweep.
        self.executor = make_executor(execution)

        # Optional model-parallel dimension inside every stage (the 3D
        # composition of Fig. 4): each layer runs through a
        # ParallelBlockEngine over ``mp_world``'s ranks, with activations
        # sharded on entry to a stage and unsharded at its boundary.
        self.mp_world = mp_world
        self.block_engines = None
        if mp_world is not None:
            from .block import ParallelBlockEngine
            group = mp_world.full_group()
            self.block_engines = [
                ParallelBlockEngine(group, block, mp_attention, mp_ffn)
                for block in model.blocks
            ]

    # -- stage computation --------------------------------------------------

    def _record_p2p(self, elements: float, src: int, dst: int,
                    tag: str) -> None:
        from ..comm.group import CommRecord
        per_rank = [0.0] * self.world.size
        per_rank[src] = elements * self.elem_bytes
        self.world.ledger.record(CommRecord(
            op="p2p", group_size=self.world.size,
            send_bytes_per_rank=per_rank, tag=tag))
        tracer = self.world.tracer
        if tracer is not None:
            tracer.instant(f"p2p:{tag}", cat="comm.p2p",
                           stream=f"stage{src}", op="p2p", tag=tag,
                           bytes=per_rank[src], src=src, dst=dst)

    def _stage_forward(self, stage: int, hidden, micro_ids):
        """Run one stage's layers; returns the boundary activation."""
        model = self.model
        if stage == 0:
            hidden = ops.embedding(model.embedding, micro_ids[:, :-1])
        aux_total = None
        if self.block_engines is None:
            for layer in self.stages[stage]:
                hidden, moe_out = model.blocks[layer](hidden)
                aux = moe_out.aux_loss
                aux_total = aux if aux_total is None else aux_total + aux
            return hidden, aux_total

        # 3D path: shard the sequence across the MP ranks for this
        # stage's layers, then reassemble at the stage boundary.
        n = self.mp_world.size
        seq = hidden.shape[1]
        if seq % n != 0:
            raise ValueError(
                f"sequence {seq} not divisible by MP size {n}"
            )
        width = seq // n
        shards = [hidden[:, r * width:(r + 1) * width] for r in range(n)]
        for layer in self.stages[stage]:
            shards, aux = self.block_engines[layer].forward(
                shards, seq, executor=self.executor)
            aux_total = aux if aux_total is None else aux_total + aux
        hidden = ops.concat(shards, axis=1)
        return hidden, aux_total

    def _stage_loss(self, hidden: Tensor, micro_ids: np.ndarray,
                    aux_total: Optional[Tensor]) -> Tensor:
        model = self.model
        logits = model.lm_head(model.final_norm(hidden))
        loss = ops.cross_entropy(logits, micro_ids[:, 1:])
        if self.aux_loss_coeff and aux_total is not None:
            loss = loss + aux_total * self.aux_loss_coeff
        return loss

    # -- training step ------------------------------------------------------

    def train_step(self, token_ids: np.ndarray) -> PPStepResult:
        """One optimizer step over ``[batch, seq+1]`` token ids.

        The batch is split into ``n_micro`` equal micro-batches along
        the batch dimension; tasks execute in 1F1B order.
        """
        token_ids = np.asarray(token_ids)
        if token_ids.shape[0] % self.n_micro != 0:
            raise ValueError(
                f"batch {token_ids.shape[0]} not divisible by "
                f"n_micro {self.n_micro}"
            )
        micros = np.split(token_ids, self.n_micro, axis=0)

        self.model.zero_grad()
        ledger_before = self.world.ledger.total_bytes(op="p2p")

        # Execute in schedule order: one in-flight state per micro.
        boundary: Dict[tuple, Tensor] = {}
        aux_carry: Dict[tuple, Optional[Tensor]] = {}
        losses: Dict[int, Tensor] = {}
        cursors = [0] * self.n_stages
        remaining = sum(len(s) for s in self.schedule)
        # Wave-parallel slots need stateless fault plans: active plans
        # consume per-call state, so their firing order must stay the
        # sequential one.
        concurrent = (
            self.executor is not None
            and _plan_is_passive(self.world.fault_plan)
            and (self.mp_world is None
                 or _plan_is_passive(self.mp_world.fault_plan))
        )
        if concurrent:
            remaining = self._run_schedule_waves(
                micros, boundary, aux_carry, losses, cursors, remaining)
        while remaining:
            progressed = False
            for stage in range(self.n_stages):
                while cursors[stage] < len(self.schedule[stage]):
                    task = self.schedule[stage][cursors[stage]]
                    if not self._ready(task, stage, boundary, losses):
                        break
                    self._run_task(task, stage, micros, boundary,
                                   aux_carry, losses)
                    cursors[stage] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:
                raise RuntimeError("pipeline execution deadlocked")

        total = None
        for m in range(self.n_micro):
            piece = losses[m]
            total = piece if total is None else total + piece
        total = total * (1.0 / self.n_micro)
        runtime_backward(total, executor=self.executor,
                         fault_plan=self.world.fault_plan,
                         tracer=self.world.tracer)
        if self.block_engines is not None:
            for engine in self.block_engines:
                engine.sync_grads_to_reference()

        norm = clip_grad_norm(self.model.parameters(), self.grad_clip)
        self.optimizer.step()
        if self.block_engines is not None:
            for engine in self.block_engines:
                engine.refresh_shards()
        p2p = self.world.ledger.total_bytes(op="p2p") - ledger_before
        return PPStepResult(
            loss=total.item(),
            micro_losses=[losses[m].item() for m in range(self.n_micro)],
            grad_norm=norm,
            p2p_bytes=p2p,
        )

    def _run_schedule_waves(self, micros, boundary, aux_carry, losses,
                            cursors, remaining) -> int:
        """Drain the schedule in waves of concurrently-ready slots.

        Each wave takes at most one ready task per stage (so wave
        members never depend on each other) and runs them via
        :meth:`~repro.runtime.spmd.SpmdExecutor.map`.  Returns the
        number of undrained slots (always 0; a stall raises).
        """
        while remaining:
            wave = []
            for stage in range(self.n_stages):
                if cursors[stage] < len(self.schedule[stage]):
                    task = self.schedule[stage][cursors[stage]]
                    if self._ready(task, stage, boundary, losses):
                        wave.append((task, stage))
            if not wave:
                raise RuntimeError("pipeline execution deadlocked")

            def slot(item):
                task, stage = item
                self._run_task(task, stage, micros, boundary,
                               aux_carry, losses)

            if len(wave) > 1:
                self.executor.map(slot, wave, tracer=self.world.tracer)
            else:
                slot(wave[0])
            for _, stage in wave:
                cursors[stage] += 1
            remaining -= len(wave)
        return remaining

    def _ready(self, task, stage, boundary, losses) -> bool:
        if task.phase == "F":
            return stage == 0 or (stage - 1, task.micro_batch) in boundary
        # Backward is driven by autograd at the end; a stage's "B" task
        # is ready once the loss for that micro-batch exists.
        return task.micro_batch in losses

    def _run_task(self, task, stage, micros, boundary, aux_carry,
                  losses) -> None:
        """Execute one schedule slot, traced as a stage-boundary span."""
        tracer = self.world.tracer
        if tracer is None or task.phase != "F":
            self._execute_task(task, stage, micros, boundary, aux_carry,
                               losses)
            return
        with tracer.span(f"stage{stage}/F{task.micro_batch}",
                         cat="pp.stage", stream=f"stage{stage}",
                         phase="F", stage=stage,
                         micro=task.micro_batch,
                         layers=len(self.stages[stage])):
            self._execute_task(task, stage, micros, boundary, aux_carry,
                               losses)

    def _execute_task(self, task, stage, micros, boundary, aux_carry,
                      losses) -> None:
        m = task.micro_batch
        if task.phase != "F":
            return  # gradient work happens in the single backward sweep
        if stage == 0:
            hidden, aux = self._stage_forward(stage, None, micros[m])
        else:
            hidden_in = boundary[(stage - 1, m)]
            self._record_p2p(hidden_in.size, stage - 1, stage,
                             f"pp_fwd:{m}")
            hidden, aux = self._stage_forward(stage, hidden_in,
                                              micros[m])
            prev_aux = aux_carry.get((stage - 1, m))
            if prev_aux is not None:
                aux = prev_aux if aux is None else prev_aux + aux
        if stage == self.n_stages - 1:
            losses[m] = self._stage_loss(hidden, micros[m], aux)
            # Backward activation gradients retrace every boundary.
            for s in range(self.n_stages - 1):
                self._record_p2p(boundary[(s, m)].size, s + 1, s,
                                 f"pp_bwd:{m}")
        else:
            boundary[(stage, m)] = hidden
            aux_carry[(stage, m)] = aux


