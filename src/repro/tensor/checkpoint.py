"""Gradient checkpointing (activation rematerialization) for the tape.

The numerical counterpart of §4.1: a checkpointed segment stores only
its *inputs* during the forward pass and re-runs the segment under grad
mode when the backward sweep reaches it.  Combined with
:func:`tape_live_bytes` (which measures what the tape actually retains),
this lets tests verify the Appendix A.2 memory claims on real tensors
instead of formulas.

Semantics match ``torch.utils.checkpoint``: the recomputation must be
deterministic (our engine has no hidden RNG state inside segments), and
gradients are exact because the same operations are replayed.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

import numpy as np

from .tensor import Tensor, no_grad

__all__ = ["checkpoint_segment", "tape_live_bytes", "tape_saved_arrays"]


def checkpoint_segment(fn: Callable[..., Tensor],
                       *inputs: Tensor) -> Tensor:
    """Run ``fn(*inputs)`` storing only the inputs for backward.

    Forward executes under ``no_grad`` — no intermediate tape nodes (or
    the arrays their closures capture) survive.  Backward re-executes
    ``fn`` with gradients enabled on detached copies of the inputs,
    back-propagates through the fresh subgraph, and returns the input
    gradients; parameter gradients produced inside the segment
    accumulate on the parameters as usual during the replay.
    """
    with no_grad():
        out_value = fn(*inputs)
    if not isinstance(out_value, Tensor):
        raise TypeError("checkpoint_segment expects fn to return a Tensor")

    def backward(grad_out: np.ndarray) -> Tuple:
        replay_inputs = [
            Tensor(t.data, requires_grad=t.requires_grad)
            for t in inputs
        ]
        out = fn(*replay_inputs)
        out.backward(grad_out)
        return tuple(
            t.grad if t.requires_grad else None for t in replay_inputs
        )

    return Tensor.from_op(out_value.data, list(inputs), backward,
                          "checkpoint")


def tape_saved_arrays(root: Tensor,
                      exclude: Sequence[np.ndarray] = ()
                      ) -> List[np.ndarray]:
    """Distinct ndarrays retained by the tape reachable from ``root``.

    Walks tensors and the arrays captured in their backward closures —
    the live set that must stay in memory between forward and backward.
    ``exclude`` removes arrays that would be resident anyway (model
    parameters), so the result measures *activation* memory as Appendix
    A.2 counts it.
    """
    excluded_ids = {id(a) for a in exclude}
    seen_tensors: Set[int] = set()
    arrays: dict = {}
    stack = [root]
    while stack:
        t = stack.pop()
        if id(t) in seen_tensors:
            continue
        seen_tensors.add(id(t))
        arrays[id(t.data)] = t.data
        if t.node is None:
            continue
        for cell in getattr(t.node.backward_fn, "__closure__", None) \
                or ():
            value = cell.cell_contents
            if isinstance(value, np.ndarray):
                arrays[id(value)] = value
            elif isinstance(value, Tensor):
                stack.append(value)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, np.ndarray):
                        arrays[id(item)] = item
                    elif isinstance(item, Tensor):
                        stack.append(item)
        for inp in t.node.inputs:
            stack.append(inp)
    return [a for key, a in arrays.items() if key not in excluded_ids]


def tape_live_bytes(root: Tensor,
                    exclude: Sequence[np.ndarray] = ()) -> float:
    """Bytes retained by the tape reachable from ``root``."""
    return float(sum(a.nbytes
                     for a in tape_saved_arrays(root, exclude)))
