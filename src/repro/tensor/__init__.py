"""Tape-based autograd engine and NN operators."""

from .tensor import Node, Tensor, is_grad_enabled, no_grad
from .ops import (
    concat,
    cross_entropy,
    dropout,
    embedding,
    index_add_rows,
    log_softmax,
    masked_fill,
    precision_cast,
    put_rows,
    rmsnorm,
    rope_rotate,
    scaled_dot_product_attention,
    softmax,
    split,
    stack,
    take_rows,
)

__all__ = [
    "Node",
    "Tensor",
    "is_grad_enabled",
    "no_grad",
    "concat",
    "cross_entropy",
    "dropout",
    "embedding",
    "index_add_rows",
    "log_softmax",
    "masked_fill",
    "precision_cast",
    "put_rows",
    "rmsnorm",
    "rope_rotate",
    "scaled_dot_product_attention",
    "softmax",
    "split",
    "stack",
    "take_rows",
]
