"""A small tape-based reverse-mode autodiff engine over numpy.

MegaScale-MoE's key scheduling idea is that an MoE layer is *decomposed
into operators* whose forward and backward passes can be reordered and
overlapped (Section 4).  Reproducing the numerical experiments therefore
needs an autograd substrate where each operator's backward is an explicit,
schedulable unit — exactly what a tape of :class:`Node` records provides.

The engine is deliberately minimal: dense numpy arrays, float32/float64,
reverse-mode only.  Operator definitions live in :mod:`repro.tensor.ops`;
this module provides the :class:`Tensor` wrapper, broadcasting-aware
arithmetic, and the topological-sort backward pass.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["Tensor", "Node", "no_grad", "is_grad_enabled"]

ArrayLike = Union[np.ndarray, float, int, list, tuple, "Tensor"]

_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling tape recording (for eval / optimizers)."""

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled() -> bool:
    """True when operations record tape nodes."""
    return _GRAD_ENABLED[0]


class Node:
    """A tape record: the inputs of an op and its backward function.

    ``backward_fn(grad_out) -> tuple[grad_in, ...]`` must return one
    gradient array (or None) per entry of ``inputs``.
    """

    __slots__ = ("inputs", "backward_fn", "op_name")

    def __init__(self, inputs: Sequence["Tensor"],
                 backward_fn: Callable[[np.ndarray], Tuple], op_name: str):
        self.inputs = tuple(inputs)
        self.backward_fn = backward_fn
        self.op_name = op_name


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims numpy added.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dims that were broadcast from 1.
    for axis, dim in enumerate(shape):
        if dim == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """An array with an optional gradient and a tape pointer."""

    __slots__ = ("data", "grad", "requires_grad", "node", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 name: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float32)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self.node: Optional[Node] = None
        self.name = name

    # -- construction helpers -------------------------------------------

    @staticmethod
    def zeros(*shape: int, dtype=np.float32,
              requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad)

    @staticmethod
    def ones(*shape: int, dtype=np.float32,
             requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad)

    @staticmethod
    def from_op(data: np.ndarray, inputs: Sequence["Tensor"],
                backward_fn: Callable, op_name: str) -> "Tensor":
        """Create an op output, recording a tape node if needed."""
        requires = is_grad_enabled() and any(t.requires_grad for t in inputs)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out.node = Node(inputs, backward_fn, op_name)
        return out

    # -- basic properties -------------------------------------------------

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (no copy)."""
        return self.data

    def item(self) -> float:
        """The scalar value of a 1-element tensor."""
        return float(self.data)

    def detach(self) -> "Tensor":
        """A tape-free view of the same values."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """A leaf copy with the same data and grad flag."""
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad" if self.requires_grad else ""
        label = f" {self.name!r}" if self.name else ""
        return f"Tensor{label}(shape={self.shape}{grad_flag})"

    # -- autograd ----------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Reverse-mode sweep from this tensor through the tape."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a non-grad tensor")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order = self._topological_order()
        grads = {id(self): grad}
        for t in order:
            g_out = grads.pop(id(t), None)
            if g_out is None or t.node is None:
                if g_out is not None and t.node is None and t.requires_grad:
                    t.grad = g_out if t.grad is None else t.grad + g_out
                continue
            in_grads = t.node.backward_fn(g_out)
            if len(in_grads) != len(t.node.inputs):
                raise RuntimeError(
                    f"op {t.node.op_name!r} returned {len(in_grads)} "
                    f"gradients for {len(t.node.inputs)} inputs"
                )
            for inp, g in zip(t.node.inputs, in_grads):
                if g is None or not inp.requires_grad:
                    continue
                g = _unbroadcast(np.asarray(g, dtype=inp.data.dtype),
                                 inp.shape)
                if id(inp) in grads:
                    grads[id(inp)] = grads[id(inp)] + g
                else:
                    grads[id(inp)] = g

    def _topological_order(self) -> List["Tensor"]:
        """Tensors reachable from self, in reverse-topological order."""
        visited = set()
        order: List[Tensor] = []
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            t, processed = stack.pop()
            if processed:
                order.append(t)
                continue
            if id(t) in visited:
                continue
            visited.add(id(t))
            stack.append((t, True))
            if t.node is not None:
                for inp in t.node.inputs:
                    if id(inp) not in visited:
                        stack.append((inp, False))
        order.reverse()
        return order

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # -- arithmetic --------------------------------------------------------

    def _coerce(self, other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(
            np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self.data + other.data
        return Tensor.from_op(
            out, [self, other],
            lambda g: (g, g),
            "add",
        )

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        return Tensor.from_op(
            self.data - other.data, [self, other],
            lambda g: (g, -g),
            "sub",
        )

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        return Tensor.from_op(
            a * b, [self, other],
            lambda g: (g * b, g * a),
            "mul",
        )

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        return Tensor.from_op(
            a / b, [self, other],
            lambda g: (g / b, -g * a / (b * b)),
            "div",
        )

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        return Tensor.from_op(-self.data, [self], lambda g: (-g,), "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        a = self.data
        return Tensor.from_op(
            a ** exponent, [self],
            lambda g: (g * exponent * a ** (exponent - 1),),
            "pow",
        )

    def __matmul__(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        out = a @ b

        def backward(g):
            if b.ndim == 1:
                ga = np.outer(g, b) if a.ndim > 1 else g * b
                gb = a.T @ g if a.ndim > 1 else a * g
            elif a.ndim == 1:
                ga = g @ b.swapaxes(-1, -2)
                gb = np.outer(a, g)
            else:
                ga = g @ b.swapaxes(-1, -2)
                gb = a.swapaxes(-1, -2) @ g
            return ga, gb

        return Tensor.from_op(out, [self, other], backward, "matmul")

    # -- reductions / shaping ---------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Sum over the given axes."""
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.shape

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            if not keepdims:
                for ax in sorted(a % len(shape) for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor.from_op(out, [self], backward, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Mean over the given axes."""
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        """View with a new shape (same element count)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        old = self.shape
        return Tensor.from_op(
            self.data.reshape(shape), [self],
            lambda g: (g.reshape(old),),
            "reshape",
        )

    def transpose(self, *axes: int) -> "Tensor":
        """Permute axes (reversed by default)."""
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)
        return Tensor.from_op(
            self.data.transpose(axes), [self],
            lambda g: (g.transpose(inverse),),
            "transpose",
        )

    def swapaxes(self, a: int, b: int) -> "Tensor":
        """Exchange two axes."""
        return Tensor.from_op(
            self.data.swapaxes(a, b), [self],
            lambda g: (g.swapaxes(a, b),),
            "swapaxes",
        )

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]
        shape = self.shape

        def backward(g):
            full = np.zeros(shape, dtype=g.dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor.from_op(out, [self], backward, "getitem")

    # -- elementwise nonlinearities (the rest live in ops.py) -------------

    def exp(self) -> "Tensor":
        """Element-wise exponential."""
        out = np.exp(self.data)
        return Tensor.from_op(out, [self], lambda g: (g * out,), "exp")

    def log(self) -> "Tensor":
        """Element-wise natural logarithm."""
        a = self.data
        return Tensor.from_op(np.log(a), [self], lambda g: (g / a,), "log")

    def sqrt(self) -> "Tensor":
        """Element-wise square root."""
        out = np.sqrt(self.data)
        return Tensor.from_op(out, [self], lambda g: (g / (2 * out),), "sqrt")

    def tanh(self) -> "Tensor":
        """Element-wise hyperbolic tangent."""
        out = np.tanh(self.data)
        return Tensor.from_op(
            out, [self], lambda g: (g * (1 - out * out),), "tanh")

    def sigmoid(self) -> "Tensor":
        """Element-wise logistic sigmoid."""
        out = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor.from_op(
            out, [self], lambda g: (g * out * (1 - out),), "sigmoid")

    def relu(self) -> "Tensor":
        """Element-wise max(x, 0)."""
        mask = self.data > 0
        return Tensor.from_op(
            self.data * mask, [self], lambda g: (g * mask,), "relu")

    def silu(self) -> "Tensor":
        """SiLU / swish: ``x * sigmoid(x)`` (the SwiGLU building block)."""
        x = self.data
        sig = 1.0 / (1.0 + np.exp(-x))
        out = x * sig

        def backward(g):
            return (g * (sig * (1 + x * (1 - sig))),)

        return Tensor.from_op(out, [self], backward, "silu")
