"""Neural-network operators on :class:`~repro.tensor.tensor.Tensor`.

These are the operator-level building blocks that Figure 20 of the paper
enumerates for one MoE layer — RMSNorm, matmul projections, RoPE,
self-attention, SwiGLU, token scatter/gather — plus the loss functions and
the precision-cast op used to emulate BF16/FP8 mixed-precision training.
Each operator has an explicit backward so schedulers can treat forward and
backward as separately reorderable units.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "concat",
    "split",
    "stack",
    "softmax",
    "log_softmax",
    "rmsnorm",
    "embedding",
    "cross_entropy",
    "take_rows",
    "put_rows",
    "index_add_rows",
    "masked_fill",
    "rope_rotate",
    "scaled_dot_product_attention",
    "precision_cast",
    "dropout",
]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis``."""
    arrays = [t.data for t in tensors]
    out = np.concatenate(arrays, axis=axis)
    sizes = [a.shape[axis] for a in arrays]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        slicer = [slice(None)] * g.ndim
        grads = []
        for i in range(len(sizes)):
            slicer[axis] = slice(offsets[i], offsets[i + 1])
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor.from_op(out, list(tensors), backward, "concat")


def split(t: Tensor, sections: int, axis: int = 0) -> List[Tensor]:
    """Split ``t`` into ``sections`` equal parts along ``axis``."""
    if t.shape[axis] % sections != 0:
        raise ValueError(
            f"axis {axis} of size {t.shape[axis]} not divisible by "
            f"{sections}"
        )
    pieces = np.split(t.data, sections, axis=axis)
    outs = []
    for i, piece in enumerate(pieces):
        def backward(g, i=i, shape=t.shape, piece_shape=piece.shape):
            full = np.zeros(shape, dtype=g.dtype)
            slicer = [slice(None)] * len(shape)
            width = piece_shape[axis]
            slicer[axis] = slice(i * width, (i + 1) * width)
            full[tuple(slicer)] = g
            return (full,)

        outs.append(Tensor.from_op(piece.copy(), [t], backward, "split"))
    return outs


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis``."""
    out = np.stack([t.data for t in tensors], axis=axis)

    def backward(g):
        return tuple(np.take(g, i, axis=axis) for i in range(len(tensors)))

    return Tensor.from_op(out, list(tensors), backward, "stack")


def softmax(t: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    x = t.data
    shifted = x - x.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * out).sum(axis=axis, keepdims=True)
        return (out * (g - dot),)

    return Tensor.from_op(out, [t], backward, "softmax")


def log_softmax(t: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(t)) computed stably."""
    x = t.data
    shifted = x - x.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    probs = np.exp(out)

    def backward(g):
        return (g - probs * g.sum(axis=axis, keepdims=True),)

    return Tensor.from_op(out, [t], backward, "log_softmax")


def rmsnorm(t: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """Root-mean-square layer norm: ``x / rms(x) * weight``.

    The paper's MoE layer uses RMSNorm before attention and before the
    FFN (Fig. 20: ``ln1_out``, ``ln2_out``).
    """
    x = t.data
    w = weight.data
    ms = (x * x).mean(axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(ms + eps)
    normed = x * inv_rms
    out = normed * w

    def backward(g):
        h = x.shape[-1]
        gw = (g * normed).reshape(-1, h).sum(axis=0)
        gx_normed = g * w
        # d/dx of x * (mean(x^2)+eps)^-1/2
        dot = (gx_normed * x).sum(axis=-1, keepdims=True)
        gx = inv_rms * gx_normed - x * (inv_rms ** 3) * dot / h
        return gx, gw

    return Tensor.from_op(out, [t, weight], backward, "rmsnorm")


def embedding(weight: Tensor, ids: np.ndarray) -> Tensor:
    """Row lookup ``weight[ids]`` with sparse-gradient accumulation."""
    ids = np.asarray(ids)
    out = weight.data[ids]

    def backward(g):
        gw = np.zeros_like(weight.data)
        np.add.at(gw, ids, g)
        return (gw,)

    return Tensor.from_op(out, [weight], backward, "embedding")


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean token-level cross-entropy over the last axis.

    ``logits`` is ``[..., vocab]``; ``targets`` holds integer class ids
    with shape ``logits.shape[:-1]``.
    """
    targets = np.asarray(targets)
    x = logits.data
    vocab = x.shape[-1]
    flat = x.reshape(-1, vocab)
    tgt = targets.reshape(-1)
    if tgt.shape[0] != flat.shape[0]:
        raise ValueError(
            f"targets shape {targets.shape} does not match logits "
            f"{logits.shape}"
        )
    shifted = flat - flat.max(axis=-1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - lse
    n = flat.shape[0]
    loss = -log_probs[np.arange(n), tgt].mean()
    probs = np.exp(log_probs)

    def backward(g):
        grad = probs.copy()
        grad[np.arange(n), tgt] -= 1.0
        grad *= np.asarray(g) / n
        return (grad.reshape(x.shape),)

    return Tensor.from_op(np.asarray(loss, dtype=x.dtype), [logits],
                          backward, "cross_entropy")


def take_rows(t: Tensor, index: np.ndarray) -> Tensor:
    """Gather rows ``t[index]`` along axis 0 (indices may repeat).

    This is MegaScale-MoE's efficient *gather* operator (§3.2): the
    row-index mapping is precomputed from the routing result, and the op
    is a pure data movement whose backward is an index-add.
    """
    index = np.asarray(index)
    out = t.data[index]

    def backward(g):
        full = np.zeros_like(t.data)
        np.add.at(full, index, g)
        return (full,)

    return Tensor.from_op(out, [t], backward, "take_rows")


def put_rows(t: Tensor, index: np.ndarray, out_rows: int) -> Tensor:
    """Scatter rows of ``t`` to positions ``index`` of a fresh tensor.

    ``index`` must be a permutation-like assignment (duplicate targets
    accumulate).  This is the *scatter* counterpart of :func:`take_rows`.
    """
    index = np.asarray(index)
    out = np.zeros((out_rows,) + t.shape[1:], dtype=t.dtype)
    np.add.at(out, index, t.data)

    def backward(g):
        return (g[index],)

    return Tensor.from_op(out, [t], backward, "put_rows")


def index_add_rows(base: Tensor, index: np.ndarray, rows: Tensor) -> Tensor:
    """``base`` with ``rows`` accumulated at ``index`` along axis 0."""
    index = np.asarray(index)
    out = base.data.copy()
    np.add.at(out, index, rows.data)

    def backward(g):
        return g, g[index]

    return Tensor.from_op(out, [base, rows], backward, "index_add_rows")


def masked_fill(t: Tensor, mask: np.ndarray, value: float) -> Tensor:
    """Replace elements where ``mask`` is True with ``value``."""
    mask = np.asarray(mask, dtype=bool)
    out = np.where(mask, np.asarray(value, dtype=t.dtype), t.data)

    def backward(g):
        return (np.where(mask, 0.0, g),)

    return Tensor.from_op(out, [t], backward, "masked_fill")


def dropout(t: Tensor, p: float, rng: np.random.Generator,
            training: bool = True) -> Tensor:
    """Inverted dropout with keep-probability scaling."""
    if not training or p <= 0.0:
        return t
    keep = 1.0 - p
    mask = (rng.random(t.shape) < keep) / keep

    def backward(g):
        return (g * mask,)

    return Tensor.from_op(t.data * mask, [t], backward, "dropout")


@functools.lru_cache(maxsize=64)
def _rope_tables(seq_len: int, head_dim: int, base: float
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Memoized cos/sin tables for the default ``0..seq_len-1`` positions.

    Every layer and step re-derives identical tables, so this is a hot
    allocation in deep models.  The cached arrays are marked read-only —
    callers broadcast against them but must never write.  Thread-safe
    (``lru_cache`` takes its own lock).
    """
    half = head_dim // 2
    inv_freq = base ** (-np.arange(0, half, dtype=np.float64) / half)
    positions = np.arange(seq_len, dtype=np.float64)
    angles = np.outer(positions, inv_freq)  # [s, half]
    cos, sin = np.cos(angles), np.sin(angles)
    cos.setflags(write=False)
    sin.setflags(write=False)
    return cos, sin


def _rope_cache(seq_len: int, head_dim: int, base: float,
                positions: Optional[np.ndarray]) -> Tuple[np.ndarray,
                                                          np.ndarray]:
    if positions is None:
        # The common full-sequence case hits the memo table.
        return _rope_tables(int(seq_len), int(head_dim), float(base))
    half = head_dim // 2
    inv_freq = base ** (-np.arange(0, half, dtype=np.float64) / half)
    angles = np.outer(positions, inv_freq)  # [s, half]
    return np.cos(angles), np.sin(angles)


def rope_rotate(t: Tensor, base: float = 10000.0,
                positions: Optional[np.ndarray] = None) -> Tensor:
    """Rotary position embedding over the last axis.

    ``t`` is ``[batch, seq, heads, head_dim]``; pairs ``(x_i, x_{i+half})``
    are rotated by position-dependent angles.  ``positions`` overrides the
    default ``0..seq-1`` (needed when the sequence is SP-sharded).
    """
    b, s, nh, hd = t.shape
    if hd % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {hd}")
    cos, sin = _rope_cache(s, hd, base, positions)
    cos = cos[None, :, None, :]
    sin = sin[None, :, None, :]
    half = hd // 2
    x1 = t.data[..., :half]
    x2 = t.data[..., half:]
    out = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos], axis=-1)

    def backward(g):
        g1 = g[..., :half]
        g2 = g[..., half:]
        gx1 = g1 * cos + g2 * sin
        gx2 = -g1 * sin + g2 * cos
        return (np.concatenate([gx1, gx2], axis=-1),)

    return Tensor.from_op(out, [t], backward, "rope")


def scaled_dot_product_attention(
    q: Tensor, k: Tensor, v: Tensor, causal: bool = True
) -> Tensor:
    """Multi-head attention core on ``[batch, heads, seq, head_dim]``.

    Supports grouped-query attention: if ``k``/``v`` have fewer heads than
    ``q`` (by an integer factor ``m``), they are shared across groups of
    ``m`` query heads — the GQA pattern the paper's SP-communication
    formula (Eq. 2) exploits.
    """
    bq, hq, sq, dq = q.shape
    bk, hk, sk, dk = k.shape
    if hq % hk != 0:
        raise ValueError(f"query heads {hq} not a multiple of kv heads {hk}")
    m = hq // hk
    if m > 1:
        k = _repeat_heads(k, m)
        v = _repeat_heads(v, m)
    scale = 1.0 / np.sqrt(dq)
    scores = (q @ k.swapaxes(-1, -2)) * scale
    if causal:
        mask = np.triu(np.ones((sq, sk), dtype=bool), k=1)
        scores = masked_fill(scores, mask[None, None], -1e30)
    weights = softmax(scores, axis=-1)
    return weights @ v


def _repeat_heads(t: Tensor, m: int) -> Tensor:
    """Repeat each KV head ``m`` times along the head axis (GQA)."""
    b, h, s, d = t.shape
    out = np.repeat(t.data, m, axis=1)

    def backward(g):
        return (g.reshape(b, h, m, s, d).sum(axis=2),)

    return Tensor.from_op(out, [t], backward, "repeat_heads")


def precision_cast(t: Tensor, round_fn, grad_round_fn=None) -> Tensor:
    """Emulate a precision cast: round forward values, optionally round
    the backward gradient too.

    ``round_fn`` maps an ndarray to its low-precision-rounded values (see
    :mod:`repro.precision.formats`).  With ``grad_round_fn=None`` the
    gradient passes through unrounded (a pure storage cast); passing a
    rounding function emulates gradients that are themselves produced in
    low precision.
    """
    out = round_fn(t.data)

    def backward(g):
        if grad_round_fn is not None:
            g = grad_round_fn(g)
        return (g,)

    return Tensor.from_op(out, [t], backward, "precision_cast")
