"""Baseline systems the paper compares against."""

from .megatron import (
    MegatronTrainer,
    megatron_parallel_config,
    megatron_perf_model,
)

__all__ = ["MegatronTrainer", "megatron_parallel_config",
           "megatron_perf_model"]
