"""The Megatron-LM baseline, packaged.

The paper compares against Megatron-LM at commit ``f1f03922`` configured
with TP for both attention and experts, no fine-grained overlap, and
FP32 DP gradient communication (§6.1).  This module bundles that
characterization into one place:

* :func:`megatron_parallel_config` — TP+TP strategy assignment;
* :func:`megatron_perf_model` — the calibrated iteration-time model;
* :class:`MegatronTrainer` — a numerical trainer running the TP engines,
  API-compatible with :class:`~repro.core.trainer.MegaScaleTrainer` so
  ablations can swap systems with one line.
"""

from __future__ import annotations

from ..comm.group import World
from ..core.config import ParallelConfig, TrainConfig
from ..core.trainer import MegaScaleTrainer
from ..model.transformer import MoETransformer
from ..perf.systems import MegatronPerfModel, SystemPerfModel

__all__ = ["megatron_parallel_config", "megatron_perf_model",
           "MegatronTrainer"]


def megatron_parallel_config(model_parallel_size: int = 8,
                             pipeline_size: int = 1,
                             data_parallel_size: int = 1,
                             **kwargs) -> ParallelConfig:
    """TP attention + TP FFN, Megatron-LM's assignment (§6.1)."""
    return ParallelConfig.megatron(model_parallel_size, pipeline_size,
                                   data_parallel_size, **kwargs)


def megatron_perf_model(**overrides) -> SystemPerfModel:
    """The calibrated Megatron-LM iteration-time model."""
    return MegatronPerfModel(**overrides)


class MegatronTrainer(MegaScaleTrainer):
    """Numerical trainer wired with Megatron's TP+TP engines.

    Numerically equivalent to MegaScaleTrainer (both match the reference
    model); they differ in communication pattern and volume, which the
    ledger records — the point of the Eq. 1–4 comparisons.
    """

    def __init__(self, model: MoETransformer, world: World,
                 train: TrainConfig, **kwargs):
        parallel = megatron_parallel_config(
            model_parallel_size=world.size)
        super().__init__(model, world, parallel, train, **kwargs)
