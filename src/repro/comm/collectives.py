"""Data-moving collective operations over simulated ranks.

Each function takes a :class:`~repro.comm.group.ProcessGroup` and a list of
numpy arrays — one per rank, ordered like ``group.ranks`` — and returns the
per-rank results, exactly as NCCL would deliver them.  Because the "wire"
is a numpy copy, semantics are bit-exact; tests build every parallelism
engine on top of these primitives and compare against single-rank math.

Byte accounting
---------------
Every collective records the bytes each rank *sends* into the world's
:class:`~repro.comm.group.CommLedger`, assuming NCCL's standard algorithms:

* ring all-gather / reduce-scatter: each rank sends ``(n-1)`` shard-sizes;
* ring all-reduce: ``2 (n-1)`` shard-sizes (reduce-scatter + all-gather);
* all-to-all: each rank sends its ``n-1`` off-diagonal chunks.

Arrays are simulated in float32/float64 regardless of the precision being
modelled, so each function accepts ``elem_bytes`` to override the wire
element size (e.g. 2 for BF16, 1 for FP8) used in the ledger.

Fault injection
---------------
Every collective brackets its transfer with
:meth:`~repro.comm.group.ProcessGroup.pre_collective` (which may raise
an injected crash or timeout before any data moves) and
:meth:`~repro.comm.group.ProcessGroup.post_collective` (which may
bit-flip a delivered buffer, or raise a checksum fault).  Both are
no-ops unless a fault plan is attached to the world; see
:mod:`repro.ft.faults`.

Zero-copy fast paths
--------------------
When **no fault plan** is attached, the delivery buffers are never
mutated after the fact, so the per-rank "private copies" are pure
overhead.  ``all_gather`` / ``all_reduce`` then return the *same*
array object to every rank, ``reduce_scatter`` / ``all_to_all`` return
slice views, and ``all_to_all_uneven`` assembles each destination into
one preallocated buffer.  Consumers must treat delivered buffers as
read-only (all engine code does — see ``docs/INTERNALS.md`` §8).  With
a plan attached the private-copy path is kept, because
``FaultPlan.corrupt`` bit-flips one delivered buffer in place and each
rank must observe its own payload.  **Ledger byte accounting is
identical on both paths** — bytes model the wire, not the allocator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .group import ProcessGroup, tile_span

__all__ = [
    "all_gather",
    "reduce_scatter",
    "all_reduce",
    "all_to_all",
    "all_to_all_uneven",
    "broadcast",
    "gather",
    "scatter",
]


def _elem_bytes(arrays: Sequence[np.ndarray],
                elem_bytes: Optional[float]) -> float:
    if elem_bytes is not None:
        return float(elem_bytes)
    return float(arrays[0].itemsize)


def all_gather(
    group: ProcessGroup,
    shards: Sequence[np.ndarray],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[np.ndarray]:
    """Gather every rank's shard onto all ranks, concatenated along ``axis``.

    Returns ``n`` identical full tensors (independent copies, as each rank
    holds its own buffer).

    With ``tiled=True`` the gather is chunked per source rank (§4.2):
    shard ``i`` is copied into a preallocated full buffer and its wire
    bytes ledger-recorded one-hot as tile ``(i, n)``; tile bytes sum
    exactly to the untiled record and values are bitwise-identical.
    """
    group.check_shards(shards)
    group.pre_collective("all_gather", tag)
    n = group.size
    eb = _elem_bytes(shards, elem_bytes)
    per_rank = [s.size * eb * (n - 1) / 1.0 for s in shards]
    datas = [np.asarray(s) for s in shards]
    if tiled and n >= 2:
        sizes = [d.shape[axis] for d in datas]
        offsets = np.cumsum([0] + sizes)
        shape = list(datas[0].shape)
        shape[axis] = int(offsets[-1])
        full = np.empty(shape, dtype=np.result_type(*datas))
        slicer = [slice(None)] * full.ndim
        for i in range(n):
            with tile_span(group, tile_label, i, n):
                slicer[axis] = slice(offsets[i], offsets[i + 1])
                full[tuple(slicer)] = datas[i]
                group.record("all_gather",
                             [per_rank[i] if k == i else 0.0
                              for k in range(n)],
                             tag, tile=(i, n))
    else:
        full = np.concatenate(datas, axis=axis)
        group.record("all_gather", per_rank, tag)
    if group.world.fault_plan is None:
        out = [full] * n  # zero-copy: one shared read-only delivery
    else:
        out = [full.copy() for _ in range(n)]
    group.post_collective("all_gather", out, tag)
    return out


def reduce_scatter(
    group: ProcessGroup,
    tensors: Sequence[np.ndarray],
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[np.ndarray]:
    """Element-wise sum of all ranks' tensors, scattered along ``axis``.

    Rank ``i`` receives the ``i``-th equal slice of the reduced tensor.
    The sliced dimension must be divisible by the group size.

    With ``tiled=True`` the reduction is chunked per destination rank
    (§4.2): tile ``j`` reduces only slice ``j`` — elementwise over
    ranks, so bitwise-identical to slicing the whole reduction — and
    ledger-records its traffic one-hot as tile ``(j, n)``.
    """
    group.check_shards(tensors)
    n = group.size
    first = np.asarray(tensors[0])
    for t in tensors[1:]:
        if np.asarray(t).shape != first.shape:
            raise ValueError("reduce_scatter requires equal shapes per rank")
    dim = first.shape[axis]
    if dim % n != 0:
        raise ValueError(
            f"axis {axis} of size {dim} not divisible by group size {n}"
        )
    group.pre_collective("reduce_scatter", tag)
    eb = _elem_bytes(tensors, elem_bytes)
    shard_elems = first.size // n
    if tiled and n >= 2:
        width = dim // n
        pieces = []
        slicer = [slice(None)] * first.ndim
        for j in range(n):
            with tile_span(group, tile_label, j, n):
                slicer[axis] = slice(j * width, (j + 1) * width)
                pieces.append(np.sum(
                    [np.asarray(t, dtype=np.float64)[tuple(slicer)]
                     for t in tensors], axis=0))
                group.record("reduce_scatter",
                             [shard_elems * eb * (n - 1) if k == j else 0.0
                              for k in range(n)],
                             tag, tile=(j, n))
    else:
        total = np.sum([np.asarray(t, dtype=np.float64) for t in tensors],
                       axis=0)
        pieces = np.split(total, n, axis=axis)
        group.record("reduce_scatter", [shard_elems * eb * (n - 1)] * n, tag)
    if group.world.fault_plan is None:
        # Zero-copy: np.split pieces are views of the reduced tensor.
        out = [p.astype(first.dtype, copy=False) for p in pieces]
    else:
        out = [p.astype(first.dtype).copy() for p in pieces]
    group.post_collective("reduce_scatter", out, tag)
    return out


def all_reduce(
    group: ProcessGroup,
    tensors: Sequence[np.ndarray],
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[np.ndarray]:
    """Element-wise sum of all ranks' tensors, delivered to every rank."""
    group.check_shards(tensors)
    group.pre_collective("all_reduce", tag)
    n = group.size
    first = np.asarray(tensors[0])
    total = np.sum([np.asarray(t, dtype=np.float64) for t in tensors], axis=0)
    eb = _elem_bytes(tensors, elem_bytes)
    # Ring all-reduce = reduce-scatter + all-gather on 1/n shards.
    group.record("all_reduce", [2.0 * first.size / n * eb * (n - 1)] * n, tag)
    if group.world.fault_plan is None:
        shared = total.astype(first.dtype, copy=False)
        out = [shared] * n  # zero-copy: one shared read-only delivery
    else:
        out = [total.astype(first.dtype).copy() for _ in range(n)]
    group.post_collective("all_reduce", out, tag)
    return out


def all_to_all(
    group: ProcessGroup,
    chunk_lists: Sequence[Sequence[np.ndarray]],
    elem_bytes: Optional[float] = None,
    tag: str = "",
    tiled: bool = False,
    tile_label: str = "",
) -> List[List[np.ndarray]]:
    """General all-to-all: ``chunk_lists[i][j]`` goes from rank i to rank j.

    Returns ``received`` with ``received[j][i] == chunk_lists[i][j]``.
    Chunks may have arbitrary (even differing) shapes; only the self-chunk
    ``[i][i]`` stays local and costs no communication.

    With ``tiled=True`` delivery is chunked per *source* rank (chunk
    shapes may be ragged): tile ``i`` delivers rank ``i``'s chunks to
    every destination and ledger-records rank ``i``'s wire bytes
    one-hot as tile ``(i, n)``.
    """
    group.check_shards(chunk_lists)
    n = group.size
    for i, row in enumerate(chunk_lists):
        if len(row) != n:
            raise ValueError(
                f"rank {i} provided {len(row)} chunks, expected {n}"
            )
    group.pre_collective("all_to_all", tag)
    copy = group.world.fault_plan is not None
    eb = _elem_bytes([np.asarray(chunk_lists[0][0])], elem_bytes)
    per_rank = [
        sum(np.asarray(chunk_lists[i][j]).size * eb
            for j in range(n) if j != i)
        for i in range(n)
    ]
    received: List[List[np.ndarray]]
    if tiled and n >= 2:
        received = [[None] * n for _ in range(n)]
        for i in range(n):
            with tile_span(group, tile_label, i, n):
                for j in range(n):
                    chunk = np.asarray(chunk_lists[i][j])
                    received[j][i] = chunk.copy() if copy else chunk
                group.record("all_to_all",
                             [per_rank[i] if k == i else 0.0
                              for k in range(n)],
                             tag, tile=(i, n))
    elif copy:
        received = [
            [np.asarray(chunk_lists[i][j]).copy() for i in range(n)]
            for j in range(n)
        ]
        group.record("all_to_all", per_rank, tag)
    else:
        # Zero-copy: deliver the sender's chunks (usually slice views).
        received = [
            [np.asarray(chunk_lists[i][j]) for i in range(n)]
            for j in range(n)
        ]
        group.record("all_to_all", per_rank, tag)
    group.post_collective("all_to_all", received, tag)
    return received


def all_to_all_uneven(
    group: ProcessGroup,
    tensors: Sequence[np.ndarray],
    send_splits: Sequence[Sequence[int]],
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[np.ndarray]:
    """All-to-all over row-split tensors (``torch.distributed.all_to_all_single``
    with uneven splits).

    Rank ``i`` sends ``send_splits[i][j]`` rows of ``tensors[i]`` to rank
    ``j``; rank ``j`` receives the chunks concatenated in rank order.  This
    is the primitive behind MoE token dispatch.
    """
    group.check_shards(tensors)
    n = group.size
    arrays: List[np.ndarray] = []
    offset_table: List[np.ndarray] = []
    for i, (t, splits) in enumerate(zip(tensors, send_splits)):
        t = np.asarray(t)
        if len(splits) != n:
            raise ValueError(
                f"rank {i}: {len(splits)} splits for group of size {n}"
            )
        if sum(splits) != t.shape[0]:
            raise ValueError(
                f"rank {i}: splits {list(splits)} do not cover "
                f"{t.shape[0]} rows"
            )
        arrays.append(t)
        offset_table.append(np.cumsum([0] + list(splits)))

    if group.world.fault_plan is None:
        # Fast path: assemble each destination into one preallocated
        # buffer — no intermediate per-chunk copies, no np.concatenate
        # temporaries.  Wire bytes recorded exactly as the general path.
        group.pre_collective("all_to_all", tag)
        eb = _elem_bytes([arrays[0]], elem_bytes)
        row_elems = [
            int(np.prod(a.shape[1:], dtype=np.int64)) for a in arrays
        ]
        per_rank = [
            float(arrays[i].shape[0] - send_splits[i][i])
            * row_elems[i] * eb
            for i in range(n)
        ]
        group.record("all_to_all", per_rank, tag)
        dtype = np.result_type(*[a.dtype for a in arrays])
        trailing = arrays[0].shape[1:]
        out: List[np.ndarray] = []
        for j in range(n):
            rows = int(sum(send_splits[i][j] for i in range(n)))
            buf = np.empty((rows,) + trailing, dtype=dtype)
            cursor = 0
            for i in range(n):
                cnt = int(send_splits[i][j])
                off = offset_table[i]
                buf[cursor:cursor + cnt] = arrays[i][off[j]:off[j + 1]]
                cursor += cnt
            out.append(buf)
        group.post_collective("all_to_all", out, tag)
        return out

    chunk_lists: List[List[np.ndarray]] = [
        [arrays[i][offset_table[i][j]:offset_table[i][j + 1]]
         for j in range(n)]
        for i in range(n)
    ]
    received = all_to_all(group, chunk_lists, elem_bytes=elem_bytes, tag=tag)
    return [
        np.concatenate(chunks, axis=0) if chunks else np.empty((0,))
        for chunks in received
    ]


def broadcast(
    group: ProcessGroup,
    tensor: np.ndarray,
    root: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[np.ndarray]:
    """Send ``tensor`` from local rank ``root`` to all ranks in the group."""
    n = group.size
    if not 0 <= root < n:
        raise ValueError(f"root {root} out of range for group of size {n}")
    group.pre_collective("broadcast", tag)
    t = np.asarray(tensor)
    eb = _elem_bytes([t], elem_bytes)
    per_rank = [0.0] * n
    per_rank[root] = t.size * eb * (n - 1)
    group.record("broadcast", per_rank, tag)
    out = [t.copy() for _ in range(n)]
    group.post_collective("broadcast", out, tag)
    return out


def gather(
    group: ProcessGroup,
    shards: Sequence[np.ndarray],
    root: int = 0,
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> np.ndarray:
    """Collect all shards onto local rank ``root``, concatenated on ``axis``."""
    group.check_shards(shards)
    group.pre_collective("gather", tag)
    eb = _elem_bytes(shards, elem_bytes)
    per_rank = [np.asarray(s).size * eb if i != root else 0.0
                for i, s in enumerate(shards)]
    group.record("gather", per_rank, tag)
    out = np.concatenate([np.asarray(s) for s in shards], axis=axis)
    group.post_collective("gather", out, tag)
    return out


def scatter(
    group: ProcessGroup,
    tensor: np.ndarray,
    root: int = 0,
    axis: int = 0,
    elem_bytes: Optional[float] = None,
    tag: str = "",
) -> List[np.ndarray]:
    """Split ``tensor`` held by local rank ``root`` equally across ranks."""
    n = group.size
    t = np.asarray(tensor)
    if t.shape[axis] % n != 0:
        raise ValueError(
            f"axis {axis} of size {t.shape[axis]} not divisible by {n}"
        )
    group.pre_collective("scatter", tag)
    pieces = np.split(t, n, axis=axis)
    eb = _elem_bytes([t], elem_bytes)
    per_rank = [0.0] * n
    per_rank[root] = (t.size - pieces[root].size) * eb
    group.record("scatter", per_rank, tag)
    out = [p.copy() for p in pieces]
    group.post_collective("scatter", out, tag)
    return out
