"""Barrier rendezvous: the collective meeting point for concurrent ranks.

The sequential collectives in :mod:`repro.comm.collectives` and
:mod:`repro.parallel.dist_ops` are *whole-world* functions: one call
receives every rank's payload and returns every rank's result.  When
ranks run as real threads (:class:`repro.runtime.SpmdExecutor`), each
rank arrives at a collective independently, exactly as NCCL ranks block
on a communicator.  :class:`Rendezvous` bridges the two models:

1. every rank deposits its payload into its exchange slot and blocks on
   a shared :class:`threading.Barrier`;
2. the barrier *action* (executed by exactly one thread, after all
   ranks have arrived) runs the whole-world collective **once** over the
   rank-ordered slot list;
3. all ranks wake and read their share of the single result.

Determinism contract
--------------------
Because the leader executes the identical whole-world function over the
slots in rank order, the arithmetic — including the reduction order of
sums — is *the same code on the same operands* as the sequential path.
Threaded and sequential runs are therefore bitwise identical, and the
byte ledger, fault plan, and tracer observe exactly one collective call.

Error model
-----------
An exception raised by the collective (e.g. an injected
:class:`~repro.ft.faults.CommTimeout`) is captured by the leader and
re-raised *identically in every rank*, mirroring how a NCCL error
surfaces on every participant.  A rank that fails *outside* a
collective calls :meth:`Rendezvous.abort`; peers blocked on the barrier
then observe :class:`SpmdAbort` and unwind quietly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional

__all__ = ["Rendezvous", "SpmdAbort"]


class SpmdAbort(BaseException):
    """Raised in ranks whose rendezvous was torn down by a peer failure.

    Derives from :class:`BaseException` so ordinary ``except Exception``
    handlers inside rank functions cannot swallow the shutdown.
    """


class Rendezvous:
    """One barrier + exchange-slot set shared by ``size`` rank threads.

    A single instance serves any number of *successive* collectives: the
    barrier's generation counter guarantees that no rank can enter
    exchange ``k+1`` before every rank has read the result of exchange
    ``k``, so the slots and result fields are safely reused.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"rendezvous size must be >= 1, got {size}")
        self.size = size
        self._slots: List[Any] = [None] * size
        self._labels: List[Any] = [None] * size
        self._fn: Optional[Callable[[List[Any]], Any]] = None
        self._result: Any = None
        self._error: Optional[BaseException] = None
        self._barrier = threading.Barrier(size, action=self._leader)

    def _leader(self) -> None:
        """Barrier action: run the collective once over all slots.

        Exceptions are stored, never raised — an escaping action
        exception would permanently break the barrier.
        """
        try:
            labels = {repr(label) for label in self._labels}
            if len(labels) != 1:
                raise RuntimeError(
                    "collective mismatch across ranks: "
                    f"{sorted(labels)}"
                )
            fn = self._fn
            assert fn is not None
            self._error = None
            self._result = fn(list(self._slots))
        except BaseException as exc:  # noqa: BLE001 - re-raised per rank
            self._error = exc
            self._result = None

    def exchange(self, index: int, label: Any, payload: Any,
                 fn: Callable[[List[Any]], Any]) -> Any:
        """Deposit ``payload`` for rank ``index`` and run ``fn`` jointly.

        All ranks must pass the same ``label`` (mismatch detection) and
        an equivalent ``fn``; the one executed is arbitrary.  Returns
        ``fn``'s result (shared by all ranks) or re-raises its error.
        """
        self._slots[index] = payload
        self._labels[index] = label
        self._fn = fn
        try:
            self._barrier.wait()
        except threading.BrokenBarrierError:
            raise SpmdAbort(
                f"rendezvous aborted while rank {index} waited at "
                f"{label!r}"
            ) from None
        finally:
            self._slots[index] = None  # release payload references
        error = self._error
        if error is not None:
            raise error
        return self._result

    def abort(self) -> None:
        """Break the barrier; peers blocked in it raise :class:`SpmdAbort`."""
        self._barrier.abort()
