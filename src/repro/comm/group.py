"""Simulated process groups.

MegaScale-MoE runs on thousands of GPUs connected by NVLink (intra-node)
and RDMA (inter-node).  This reproduction replaces the cluster with a
*simulated world*: rank-``i``'s tensor is simply the ``i``-th numpy array
in a Python list, and collectives (see :mod:`repro.comm.collectives`) move
data between those arrays with exactly the semantics of their NCCL
counterparts.

Alongside the data movement we keep an exact ledger of bytes each rank
sends, per collective, assuming the standard algorithm NCCL would use
(ring for all-gather / reduce-scatter / all-reduce, pairwise exchange for
all-to-all).  Tests compare this ledger against the paper's closed-form
communication-volume formulas (Eqs. 1-4).

Fault-tolerance and observability hooks
---------------------------------------
A :class:`World` optionally carries a fault plan, a health monitor
(see :mod:`repro.ft`), and a tracer (see :mod:`repro.obs`).  All are
duck-typed so this module stays agnostic: the plan exposes
``before(op, tag)`` (may raise a fault before data moves),
``corrupt(op, tag, arrays)`` (bit-flips delivered payloads), and
``slow_factor(rank)`` (slow-link multipliers); the monitor exposes
``observe_collective(op, ranks, durations, tag)``; the tracer exposes
the :class:`~repro.obs.tracer.Tracer` span API.  Collectives call
:meth:`ProcessGroup.pre_collective` /
:meth:`ProcessGroup.post_collective` around every transfer (opening and
guarding a ``comm`` span), and :meth:`ProcessGroup.record` feeds bytes
to the ledger, per-rank timings to the monitor, and byte annotations to
the open span.

Long production runs can bound ledger memory with
``CommLedger(max_records=...)``: the newest records stay inspectable
while rotated-out ones collapse into exact per-``(op, tag)`` aggregates,
so byte totals and call counts never lose precision.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["CommRecord", "CommLedger", "ProcessGroup", "World",
           "tile_span"]


def tile_span(group: "ProcessGroup", label: str, index: int,
              count: int):
    """A ``dag.tile:<label>#t<index>`` span around one tile's movement.

    Chunked collectives wrap each tile's data movement + ledger record
    in one of these so :func:`repro.perf.estimator.calibrate_from_spans`
    can calibrate per-tile durations (prefix ``dag.tile:``).  Returns a
    no-op context when no tracer is attached or ``label`` is empty.
    """
    tracer = group.world.tracer
    if tracer is None or not label:
        from contextlib import nullcontext
        return nullcontext()
    name = f"{label}#t{index}"
    return tracer.span(f"dag.tile:{name}", cat="dag", stream="comm",
                       phase="fwd", ops=name, tile=[index, count])


def _flatten_arrays(outputs,
                    into: Optional[List[np.ndarray]] = None
                    ) -> List[np.ndarray]:
    """Flatten a possibly-nested list structure into its ndarrays.

    Appends into a single accumulator list instead of materializing an
    intermediate list per nesting level (this runs on the hot path of
    every fault-checked collective delivery).
    """
    if into is None:
        into = []
    if isinstance(outputs, np.ndarray):
        into.append(outputs)
        return into
    for item in outputs:
        _flatten_arrays(item, into)
    return into


@dataclass
class CommRecord:
    """One collective call as seen by the ledger."""

    op: str
    group_size: int
    #: Bytes sent by each participating rank (they are symmetric for the
    #: balanced collectives; all-to-all with uneven splits may differ).
    send_bytes_per_rank: List[float]
    tag: str = ""
    #: ``(index, count)`` when this record covers one tile of a
    #: chunked collective (§4.2 intra-op overlap); None for whole
    #: transfers.  Tile records of one logical collective share its
    #: tag, and their bytes sum exactly to the untiled transfer's.
    tile: Optional[Tuple[int, int]] = None

    @property
    def total_bytes(self) -> float:
        return float(sum(self.send_bytes_per_rank))

    @property
    def max_rank_bytes(self) -> float:
        return float(max(self.send_bytes_per_rank, default=0.0))


@dataclass
class CommLedger:
    """Accumulates :class:`CommRecord` entries for later inspection.

    With ``max_records`` set the ledger rotates: only the newest
    ``max_records`` entries are kept as full :class:`CommRecord` objects
    (for per-call inspection), while older entries are folded into exact
    per-``(op, tag)`` aggregates in :attr:`rolled`.  Byte totals, call
    counts, and filtered queries stay exact across rotation, so
    multi-thousand-step runs keep O(max_records) memory instead of
    growing without bound.
    """

    records: List[CommRecord] = field(default_factory=list)
    enabled: bool = True
    #: Keep at most this many full records (None = unbounded).
    max_records: Optional[int] = None
    #: Records rotated out of :attr:`records`, by count.
    dropped: int = 0
    #: Exact aggregates of rotated records, keyed ``(op, tag)``.
    rolled: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=dict, repr=False)
    #: Never-rotated cumulative totals keyed ``(op, tag)``.  Every
    #: record bumps these at accept time, so byte/count queries are
    #: O(distinct tags) and immune to rotation — consumers that need
    #: lifetime totals (the Eq. 1-4 auditor, hybrid-2D sync deltas)
    #: must read these, never the bounded :attr:`records` list.
    cumulative: Dict[Tuple[str, str], Dict[str, float]] = field(
        default_factory=dict, repr=False)
    #: Guards record/rotation when SPMD rank threads record concurrently
    #: (reads snapshot ``records`` under the GIL and stay lock-free).
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def __post_init__(self):
        if self.max_records is not None and self.max_records < 1:
            raise ValueError(
                f"max_records must be >= 1, got {self.max_records}"
            )

    def record(self, record: CommRecord) -> None:
        """Append one collective record (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            agg = self.cumulative.setdefault(
                (record.op, record.tag),
                {"total_bytes": 0.0, "per_rank_bytes": 0.0, "count": 0.0},
            )
            agg["total_bytes"] += record.total_bytes
            agg["per_rank_bytes"] += record.total_bytes / record.group_size
            # A chunked collective emits one record per tile but is
            # still one logical call: only its first tile bumps the
            # count, so counts() matches the untiled path exactly.
            if record.tile is None or record.tile[0] == 0:
                agg["count"] += 1.0
            self.records.append(record)
            if (self.max_records is not None
                    and len(self.records) > self.max_records):
                excess = len(self.records) - self.max_records
                for old in self.records[:excess]:
                    agg = self.rolled.setdefault(
                        (old.op, old.tag),
                        {"total_bytes": 0.0, "per_rank_bytes": 0.0,
                         "count": 0.0},
                    )
                    agg["total_bytes"] += old.total_bytes
                    agg["per_rank_bytes"] += (old.total_bytes
                                              / old.group_size)
                    agg["count"] += 1.0
                del self.records[:excess]
                self.dropped += excess

    def clear(self) -> None:
        """Drop all accumulated records, aggregates, and counters."""
        self.records.clear()
        self.rolled.clear()
        self.cumulative.clear()
        self.dropped = 0

    @property
    def record_count(self) -> int:
        """Total records ever accepted (live + rotated)."""
        return len(self.records) + self.dropped

    def _cumulative_matching(self, op: Optional[str],
                             tag: Optional[str]
                             ) -> List[Dict[str, float]]:
        return [
            agg for (r_op, r_tag), agg in self.cumulative.items()
            if (op is None or r_op == op) and (tag is None or r_tag == tag)
        ]

    def total_bytes(self, op: Optional[str] = None,
                    tag: Optional[str] = None) -> float:
        """Total bytes sent by all ranks, optionally filtered.

        Reads the cumulative counters, so the answer covers every
        record ever accepted regardless of ``max_records`` rotation.
        """
        return float(sum(agg["total_bytes"]
                         for agg in self._cumulative_matching(op, tag)))

    def per_rank_bytes(self, op: Optional[str] = None,
                       tag: Optional[str] = None) -> float:
        """Average per-rank bytes sent, optionally filtered."""
        return float(sum(agg["per_rank_bytes"]
                         for agg in self._cumulative_matching(op, tag)))

    def counts(self) -> Dict[str, int]:
        """Number of calls per collective op (lifetime, rotation-proof)."""
        out: Dict[str, int] = {}
        for (r_op, _), agg in self.cumulative.items():
            out[r_op] = out.get(r_op, 0) + int(agg["count"])
        return out

    def bytes_by_tag(self) -> Dict[str, float]:
        """Lifetime total bytes per tag, summed across ops.

        The rotation-proof query surface for consumers that bucket
        traffic by tag (the Eq. 1-4 comm auditor, hybrid-2D sync
        accounting): derived from :attr:`cumulative`, never from the
        bounded :attr:`records` list.
        """
        out: Dict[str, float] = {}
        with self._lock:
            for (_, r_tag), agg in self.cumulative.items():
                out[r_tag] = out.get(r_tag, 0.0) + agg["total_bytes"]
        return out


class World:
    """A simulated cluster of ``size`` ranks.

    Ranks are numbered ``0..size-1``.  ``ranks_per_node`` describes the
    NVLink-domain size so that sub-groups can be classified as intra- or
    inter-node; the collective *semantics* do not depend on it, but the
    ledger tags and the performance model do.
    """

    def __init__(self, size: int, ranks_per_node: int = 8,
                 max_ledger_records: Optional[int] = None):
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        if ranks_per_node < 1:
            raise ValueError(
                f"ranks_per_node must be >= 1, got {ranks_per_node}"
            )
        self.size = size
        self.ranks_per_node = ranks_per_node
        self.ledger = CommLedger(max_records=max_ledger_records)
        #: Optional fault plan (see :class:`repro.ft.FaultPlan`).
        self.fault_plan: Optional[Any] = None
        #: Optional health monitor (see :class:`repro.ft.HealthMonitor`).
        self.health: Optional[Any] = None
        #: Optional span tracer (see :class:`repro.obs.Tracer`).
        self.tracer: Optional[Any] = None
        #: Nominal link bandwidth (bytes/s) used to turn ledger bytes
        #: into the per-rank durations the straggler detector consumes.
        self.nominal_bandwidth = 100e9

    def attach_fault_plan(self, plan) -> "World":
        """Install a fault plan consulted around every collective."""
        self.fault_plan = plan
        return self

    def attach_health_monitor(self, monitor) -> "World":
        """Install a health monitor fed by every collective."""
        self.health = monitor
        return self

    def attach_tracer(self, tracer) -> "World":
        """Install a tracer that receives a span per collective."""
        self.tracer = tracer
        return self

    def node_of(self, rank: int) -> int:
        """Node index hosting ``rank``."""
        return rank // self.ranks_per_node

    def group(self, ranks: Sequence[int]) -> "ProcessGroup":
        """Create a process group over the given ranks."""
        return ProcessGroup(self, list(ranks))

    def full_group(self) -> "ProcessGroup":
        """A group spanning every rank in the world."""
        return self.group(range(self.size))

    def intra_node_groups(self) -> List["ProcessGroup"]:
        """One group per node, covering all ranks."""
        groups = []
        for start in range(0, self.size, self.ranks_per_node):
            end = min(start + self.ranks_per_node, self.size)
            groups.append(self.group(range(start, end)))
        return groups

    def cross_node_groups(self) -> List["ProcessGroup"]:
        """Groups of same-local-rank peers across nodes (for hierarchical
        collectives)."""
        n_nodes = -(-self.size // self.ranks_per_node)
        groups = []
        for local in range(self.ranks_per_node):
            ranks = [
                node * self.ranks_per_node + local
                for node in range(n_nodes)
                if node * self.ranks_per_node + local < self.size
            ]
            if ranks:
                groups.append(self.group(ranks))
        return groups


class ProcessGroup:
    """An ordered subset of a :class:`World`'s ranks.

    Collective functions in :mod:`repro.comm.collectives` take a group and
    a list of per-rank arrays whose order matches ``group.ranks``.
    """

    def __init__(self, world: World, ranks: List[int]):
        if not ranks:
            raise ValueError("process group must contain at least one rank")
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"duplicate ranks in group: {ranks}")
        for r in ranks:
            if not 0 <= r < world.size:
                raise ValueError(
                    f"rank {r} out of range for world of size {world.size}"
                )
        self.world = world
        self.ranks = list(ranks)

    @property
    def size(self) -> int:
        return len(self.ranks)

    @property
    def is_intra_node(self) -> bool:
        nodes = {self.world.node_of(r) for r in self.ranks}
        return len(nodes) == 1

    @property
    def comm_stream(self) -> str:
        """Trace-stream name: NVLink-domain vs NIC traffic lane."""
        return "comm/intra" if self.is_intra_node else "comm/inter"

    def record(self, op: str, send_bytes_per_rank: Sequence[float],
               tag: str = "",
               tile: Optional[Tuple[int, int]] = None) -> None:
        """Record one collective on this group into the world's ledger.

        Also feeds the health monitor, when one is attached: every
        rank's completion time for a collective is the max transfer
        over the nominal bandwidth, stretched by that rank's slow-link
        factor from the fault plan.  When a tracer is attached, the
        byte total lands on the ``comm`` span :meth:`pre_collective`
        opened (closing it); unbracketed records — backward-hook duals,
        fallback paths, and the per-tile records of chunked collectives
        (which pass ``tile=(i, T)``) — emit a self-contained span, so
        traced bytes still sum to ledger bytes exactly.
        """
        ledger = self.world.ledger
        if ledger.enabled:
            # Only materialize the CommRecord (and its list copy) when
            # the ledger will actually keep it.
            ledger.record(CommRecord(
                op=op,
                group_size=self.size,
                send_bytes_per_rank=list(send_bytes_per_rank),
                tag=tag,
                tile=tile,
            ))
        tracer = self.world.tracer
        if tracer is not None:
            total = float(sum(send_bytes_per_rank))
            current = tracer.current()
            if (tile is None and current is not None
                    and current.cat == "comm"
                    and current.attrs.get("op") == op
                    and current.attrs.get("tag") == tag):
                tracer.end(current, bytes=total)
            else:
                attrs = {} if tile is None else {"tile": list(tile)}
                span = tracer.begin(
                    op, cat="comm", stream=self.comm_stream,
                    op=op, tag=tag, group_size=self.size, bytes=total,
                    **attrs)
                tracer.end(span)
        health = self.world.health
        if health is not None:
            base = max(send_bytes_per_rank, default=0.0)
            base = float(base) / self.world.nominal_bandwidth
            if base > 0.0:
                plan = self.world.fault_plan
                durations = [
                    base * (plan.slow_factor(r) if plan is not None
                            else 1.0)
                    for r in self.ranks
                ]
                health.observe_collective(op, self.ranks, durations,
                                          tag)

    def pre_collective(self, op: str, tag: str = "") -> None:
        """Consult the fault plan before a collective moves data.

        May raise a fault (rank crash, timeout) from the plan; faults
        fire *before* the comm span opens (no data moved, no span), but
        leave an instant ``fault`` event in the trace.  With a tracer
        attached, opens the ``comm`` span that :meth:`record` closes.
        """
        plan = self.world.fault_plan
        tracer = self.world.tracer
        if plan is not None:
            try:
                plan.before(op, tag)
            except Exception as exc:
                if tracer is not None:
                    tracer.instant(
                        f"fault:{op}", cat="fault",
                        stream=self.comm_stream, op=op, tag=tag,
                        error=type(exc).__name__)
                raise
        if tracer is not None:
            tracer.begin(
                op, cat="comm", stream=self.comm_stream,
                op=op, tag=tag, group_size=self.size)

    def post_collective(self, op: str, outputs, tag: str = "") -> None:
        """Consult the fault plan after a collective delivered data.

        ``outputs`` is the (possibly nested) list of delivered arrays;
        a scheduled corruption bit-flips one of them in place, or
        raises a checksum fault when the plan verifies checksums.  The
        comm span was already closed by :meth:`record` (defensively
        closed here otherwise); checksum faults leave an instant event.
        """
        if self.world.tracer is None and self.world.fault_plan is None:
            return  # hot path: nothing to guard, nothing to corrupt
        tracer = self.world.tracer
        if tracer is not None:
            current = tracer.current()
            if (current is not None and current.cat == "comm"
                    and current.attrs.get("op") == op
                    and current.attrs.get("tag") == tag):
                tracer.end(current)
        plan = self.world.fault_plan
        if plan is not None:
            try:
                plan.corrupt(op, tag, _flatten_arrays(outputs))
            except Exception as exc:
                if tracer is not None:
                    tracer.instant(
                        f"fault:{op}", cat="fault",
                        stream=self.comm_stream, op=op, tag=tag,
                        error=type(exc).__name__)
                raise

    def check_shards(self, shards: Sequence[np.ndarray]) -> None:
        """Validate that a per-rank tensor list matches this group."""
        if len(shards) != self.size:
            raise ValueError(
                f"expected {self.size} shards (one per rank), got "
                f"{len(shards)}"
            )
