"""Hierarchical parameter/gradient synchronization (Appendix A.1, Fig. 5).

SP attention replicates the attention weights across the ``n`` ranks of a
node, so gradient synchronization nominally involves ``n×`` more data than
TP attention.  The paper shows this is cheap in practice because the extra
reduction happens *intra-node* over NVLink: the sync becomes a four-step
hierarchical collective

1. intra-node reduce-scatter (data of size ``P`` on ``n`` devices),
2. inter-node reduce-scatter (data of size ``P/n`` on ``d`` devices),
3. inter-node all-gather     (data of size ``P/n`` on ``d`` devices),
4. intra-node all-gather     (data of size ``P`` on ``n`` devices),

whose *inter-node* volume — the bottleneck — equals TP attention's
``2 P/n (d-1)/d``.  This module implements the data movement for both
schemes on simulated ranks and reports the volumes so tests and the
Fig. 14 bench can verify the equivalence.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .collectives import all_gather, reduce_scatter
from .group import World

__all__ = [
    "hierarchical_sync",
    "flat_sync",
    "hierarchical_inter_node_volume",
    "hierarchical_intra_node_volume",
    "tp_inter_node_volume",
]


def hierarchical_sync(
    world: World,
    grads: Sequence[np.ndarray],
    elem_bytes: float = 4.0,
    tag: str = "param_sync_sp",
) -> List[np.ndarray]:
    """All-reduce replicated gradients with the 4-step hierarchical scheme.

    Args:
        world: Simulated world; ``world.ranks_per_node`` is the replication
            degree ``n`` and the number of nodes is the DP degree ``d``.
        grads: One gradient tensor per rank (all the same shape), flattened
            internally.  ``grads[r]`` belongs to global rank ``r``.
        elem_bytes: Wire bytes per element for the ledger.

    Returns:
        Per-rank fully-reduced gradients with the original shape.
    """
    n = world.ranks_per_node
    if world.size % n != 0:
        raise ValueError(
            f"world size {world.size} not divisible by ranks_per_node {n}"
        )
    shape = np.asarray(grads[0]).shape
    flats = [np.asarray(g, dtype=np.float64).reshape(-1) for g in grads]
    numel = flats[0].size
    if numel % n != 0:
        pad = n - numel % n
        flats = [np.concatenate([f, np.zeros(pad)]) for f in flats]
    padded = flats[0].size

    # Step 1: intra-node reduce-scatter (size P over n ranks).
    intra_groups = world.intra_node_groups()
    shards: Dict[int, np.ndarray] = {}
    for g in intra_groups:
        outs = reduce_scatter(
            g, [flats[r] for r in g.ranks], elem_bytes=elem_bytes,
            tag=tag + ":intra_rs",
        )
        for local, r in enumerate(g.ranks):
            shards[r] = outs[local]

    # Steps 2+3: inter-node reduce-scatter + all-gather = all-reduce of the
    # P/n shard across same-local-rank peers.  Implemented as the two
    # explicit steps so the ledger separates them.
    cross_groups = world.cross_node_groups()
    for g in cross_groups:
        d = g.size
        shard = shards[g.ranks[0]].size
        if d > 1 and shard % d == 0:
            pieces = reduce_scatter(
                g, [shards[r] for r in g.ranks], elem_bytes=elem_bytes,
                tag=tag + ":inter_rs",
            )
            fulls = all_gather(
                g, pieces, elem_bytes=elem_bytes, tag=tag + ":inter_ag",
            )
        else:
            # Fallback for indivisible shard sizes: sum then copy.  Record
            # the equivalent ring all-reduce volume.
            total = np.sum([shards[r] for r in g.ranks], axis=0)
            fulls = [total.copy() for _ in g.ranks]
            if d > 1:
                g.record(
                    "all_reduce",
                    [2.0 * shard / d * elem_bytes * (d - 1)] * d,
                    tag + ":inter_fallback",
                )
        for local, r in enumerate(g.ranks):
            shards[r] = fulls[local]

    # Step 4: intra-node all-gather back to size P on every rank.
    results: Dict[int, np.ndarray] = {}
    for g in intra_groups:
        fulls = all_gather(
            g, [shards[r] for r in g.ranks], elem_bytes=elem_bytes,
            tag=tag + ":intra_ag",
        )
        for local, r in enumerate(g.ranks):
            results[r] = fulls[local]

    return [results[r][:numel].reshape(shape)
            for r in range(world.size)]


def flat_sync(
    world: World,
    grads: Sequence[np.ndarray],
    elem_bytes: float = 4.0,
    tag: str = "param_sync_tp",
) -> List[np.ndarray]:
    """TP-attention-style sync: inter-node RS + AG of the ``P/n`` shard.

    With TP each rank already holds a distinct ``P/n`` shard, replicated
    only across the ``d`` DP peers (one per node at the same local rank).
    """
    cross_groups = world.cross_node_groups()
    shape = np.asarray(grads[0]).shape
    results: Dict[int, np.ndarray] = {}
    for g in cross_groups:
        d = g.size
        flats = [np.asarray(grads[r], dtype=np.float64).reshape(-1)
                 for r in g.ranks]
        numel = flats[0].size
        if d > 1 and numel % d == 0:
            pieces = reduce_scatter(g, flats, elem_bytes=elem_bytes,
                                    tag=tag + ":inter_rs")
            fulls = all_gather(g, pieces, elem_bytes=elem_bytes,
                               tag=tag + ":inter_ag")
        else:
            total = np.sum(flats, axis=0)
            fulls = [total.copy() for _ in g.ranks]
            if d > 1:
                g.record(
                    "all_reduce",
                    [2.0 * numel / d * elem_bytes * (d - 1)] * d,
                    tag + ":inter_fallback",
                )
        for local, r in enumerate(g.ranks):
            results[r] = fulls[local].reshape(shape)
    return [results[r] for r in range(world.size)]


def hierarchical_inter_node_volume(param_bytes: float, n: int,
                                   d: int) -> float:
    """Per-rank inter-node bytes for hierarchical SP sync (Appendix A.1)."""
    if d <= 1:
        return 0.0
    return 2.0 * param_bytes / n * (d - 1) / d


def hierarchical_intra_node_volume(param_bytes: float, n: int) -> float:
    """Per-rank intra-node bytes for hierarchical SP sync (Appendix A.1)."""
    if n <= 1:
        return 0.0
    return 2.0 * param_bytes * (n - 1) / n


def tp_inter_node_volume(param_bytes: float, n: int, d: int) -> float:
    """Per-rank inter-node bytes for TP-attention sync (Appendix A.1)."""
    if d <= 1:
        return 0.0
    return 2.0 * (param_bytes / n) * (d - 1) / d
