"""Simulated NCCL substrate: process groups, collectives, cost models."""

from .group import CommLedger, CommRecord, ProcessGroup, World
from .collectives import (
    all_gather,
    all_reduce,
    all_to_all,
    all_to_all_uneven,
    broadcast,
    gather,
    reduce_scatter,
    scatter,
)
from .cost import (
    LinkSpec,
    all_to_all_time,
    broadcast_time,
    flat_sync_time,
    hierarchical_sync_time,
    ring_all_gather_time,
    ring_all_reduce_time,
    ring_reduce_scatter_time,
)
from .hierarchical import (
    flat_sync,
    hierarchical_inter_node_volume,
    hierarchical_intra_node_volume,
    hierarchical_sync,
    tp_inter_node_volume,
)

__all__ = [
    "CommLedger",
    "CommRecord",
    "ProcessGroup",
    "World",
    "all_gather",
    "all_reduce",
    "all_to_all",
    "all_to_all_uneven",
    "broadcast",
    "gather",
    "reduce_scatter",
    "scatter",
    "LinkSpec",
    "all_to_all_time",
    "broadcast_time",
    "flat_sync_time",
    "hierarchical_sync_time",
    "ring_all_gather_time",
    "ring_all_reduce_time",
    "ring_reduce_scatter_time",
    "flat_sync",
    "hierarchical_inter_node_volume",
    "hierarchical_intra_node_volume",
    "hierarchical_sync",
    "tp_inter_node_volume",
]
