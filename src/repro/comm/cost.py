"""Analytic (α–β) cost models for the simulated collectives.

These models turn "bytes on the wire" into seconds, and are the timing
backend for the performance model (:mod:`repro.perf`) that regenerates the
paper's tables and figures.  They follow the standard α–β formulation:
a collective over ``n`` ranks decomposes into communication *steps*, each
costing ``α`` (link latency) plus ``moved_bytes / β`` (bandwidth term).

Two empirical effects from the paper are modelled explicitly:

* **All-to-all inefficiency** (§3.2, Fig. 7): all-to-all requires each
  worker to talk to all others, whereas all-gather and reduce-scatter use
  a ring of neighbour transfers; in practice A2A achieves a lower fraction
  of link bandwidth.  ``LinkSpec.a2a_efficiency`` captures this.
* **Hierarchical pipelining** (Appendix A.1, Fig. 5b): the four steps of
  hierarchical parameter sync use distinct resources (NVLink vs NIC) and
  are chunked so the stages overlap; the pipelined time approaches the
  maximum stage time rather than the sum.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "LinkSpec",
    "ring_all_gather_time",
    "ring_reduce_scatter_time",
    "ring_all_reduce_time",
    "all_to_all_time",
    "broadcast_time",
    "hierarchical_sync_time",
    "flat_sync_time",
    "cross_node_fraction",
    "tiered_all_to_all_time",
    "tiered_ring_time",
]


@dataclass(frozen=True)
class LinkSpec:
    """A communication link as seen by one rank.

    Attributes:
        bandwidth: Unidirectional per-rank bandwidth in bytes/second.
        latency: Per-step base latency (α) in seconds.
        a2a_efficiency: Fraction of ``bandwidth`` achieved by all-to-all
            traffic patterns (ring patterns achieve ~1.0).
    """

    bandwidth: float
    latency: float = 1e-5
    a2a_efficiency: float = 0.6

    def __post_init__(self):
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if not 0 < self.a2a_efficiency <= 1:
            raise ValueError(
                f"a2a_efficiency must be in (0, 1], got {self.a2a_efficiency}"
            )


def ring_all_gather_time(total_bytes: float, n: int, link: LinkSpec) -> float:
    """Time to all-gather a tensor of ``total_bytes`` across ``n`` ranks.

    Ring algorithm: ``n-1`` steps, each moving one ``total/n`` shard.
    """
    if n <= 1:
        return 0.0
    shard = total_bytes / n
    return (n - 1) * (link.latency + shard / link.bandwidth)


def ring_reduce_scatter_time(total_bytes: float, n: int,
                             link: LinkSpec) -> float:
    """Time to reduce-scatter ``total_bytes`` across ``n`` ranks (ring)."""
    return ring_all_gather_time(total_bytes, n, link)


def ring_all_reduce_time(total_bytes: float, n: int, link: LinkSpec) -> float:
    """Ring all-reduce = reduce-scatter followed by all-gather."""
    if n <= 1:
        return 0.0
    return 2.0 * ring_all_gather_time(total_bytes, n, link)


def all_to_all_time(per_rank_send_bytes: float, n: int,
                    link: LinkSpec) -> float:
    """Time for an all-to-all where each rank sends ``per_rank_send_bytes``.

    The all-pairs traffic pattern reaches only ``a2a_efficiency`` of link
    bandwidth and pays one latency per peer.
    """
    if n <= 1:
        return 0.0
    effective_bw = link.bandwidth * link.a2a_efficiency
    return (n - 1) * link.latency + per_rank_send_bytes / effective_bw


def broadcast_time(total_bytes: float, n: int, link: LinkSpec) -> float:
    """Tree/pipeline broadcast of ``total_bytes`` to ``n-1`` peers."""
    if n <= 1:
        return 0.0
    return link.latency + total_bytes / link.bandwidth


def hierarchical_sync_time(
    param_bytes: float,
    n: int,
    d: int,
    intra: LinkSpec,
    inter: LinkSpec,
    pipelined: bool = True,
    chunks: int = 8,
) -> float:
    """Time for the 4-step hierarchical sync of ``param_bytes`` replicated
    over ``n`` intra-node ranks × ``d`` nodes (Appendix A.1).

    With ``pipelined=True`` the transfer is segmented into ``chunks``
    pieces whose stages overlap across the two resources (NVLink for
    the intra-node stages, NIC for the inter-node ones, Fig. 5b): the
    makespan approaches the busier *resource*'s total work, plus a
    fill/drain term that shrinks with the chunk count.  An explicit
    event simulation of the chunked pipeline validates this closed form
    (tests/test_hierarchical_pipeline_sim.py).
    """
    intra_rs = ring_reduce_scatter_time(param_bytes, n, intra)
    inter_rs = ring_reduce_scatter_time(param_bytes / max(n, 1), d, inter)
    inter_ag = ring_all_gather_time(param_bytes / max(n, 1), d, inter)
    intra_ag = ring_all_gather_time(param_bytes, n, intra)
    stages = [intra_rs, inter_rs, inter_ag, intra_ag]
    if not pipelined:
        return sum(stages)
    nvlink_busy = intra_rs + intra_ag
    nic_busy = inter_rs + inter_ag
    bottleneck = max(nvlink_busy, nic_busy)
    fill_drain = (sum(stages) - bottleneck) / max(chunks, 1)
    return bottleneck + fill_drain


def cross_node_fraction(group_size: int, gpus_per_node: int) -> float:
    """Fraction of all-to-all peer traffic that crosses node boundaries.

    A rank in a group of ``g`` spanning nodes of ``r`` ranks sends to
    ``g - 1`` peers, ``g - r`` of them off-node; with uniform routing
    that share of the bytes rides the inter-node tier.  Zero when the
    group fits inside one node.
    """
    g, r = group_size, gpus_per_node
    if g <= r or g <= 1:
        return 0.0
    return (g - r) / (g - 1)


def tiered_all_to_all_time(per_rank_send_bytes: float, n: int,
                           gpus_per_node: int, intra: LinkSpec,
                           inter: LinkSpec) -> float:
    """All-to-all over a group that may span node boundaries.

    The intra-node share of each rank's traffic moves on NVLink while
    the cross-node share moves on the NIC; the two resources transfer
    concurrently (MoNTA's overlapping of inter-/intra-node pipelines),
    so the makespan is the busier tier's time.  Collapses to
    :func:`all_to_all_time` on the intra tier for node-local groups.
    """
    if n <= 1:
        return 0.0
    cross = cross_node_fraction(n, gpus_per_node)
    if cross == 0.0:
        return all_to_all_time(per_rank_send_bytes, n, intra)
    local_peers = min(n, gpus_per_node) - 1
    remote_peers = (n - 1) - local_peers
    t_intra = (local_peers * intra.latency
               + per_rank_send_bytes * (1.0 - cross)
               / (intra.bandwidth * intra.a2a_efficiency))
    t_inter = (remote_peers * inter.latency
               + per_rank_send_bytes * cross
               / (inter.bandwidth * inter.a2a_efficiency))
    return max(t_intra, t_inter)


def tiered_ring_time(total_bytes: float, n: int, gpus_per_node: int,
                     intra: LinkSpec, inter: LinkSpec) -> float:
    """Ring AG/RS over a group that may span node boundaries.

    A synchronous ring is paced by its slowest hop: once the ring
    crosses nodes, every one of the ``n - 1`` shard steps waits for the
    NIC-bound crossings, so the whole collective prices at the
    inter-node tier (this is why the planner keeps TP/SP/EP groups
    inside the node whenever the model's shapes allow it).
    """
    link = inter if n > gpus_per_node else intra
    return ring_all_gather_time(total_bytes, n, link)


def flat_sync_time(param_bytes: float, n: int, d: int,
                   inter: LinkSpec) -> float:
    """Time for TP-attention sync: inter-node RS + AG of the ``P/n`` shard."""
    shard = param_bytes / max(n, 1)
    return (ring_reduce_scatter_time(shard, d, inter)
            + ring_all_gather_time(shard, d, inter))
