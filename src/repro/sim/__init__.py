"""Discrete-event stream/kernel simulator."""

from .engine import SimTask, TaskRecord, Timeline, simulate

__all__ = ["SimTask", "TaskRecord", "Timeline", "simulate"]
