"""Discrete-event stream/kernel simulator."""

from .engine import SimTask, StreamFailure, TaskRecord, Timeline, simulate

__all__ = ["SimTask", "StreamFailure", "TaskRecord", "Timeline",
           "simulate"]
