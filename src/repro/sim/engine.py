"""Discrete-event execution simulator for operator timelines.

Models the GPU as a set of in-order *streams* (like CUDA streams): each
task is queued on one stream, starts when both its stream predecessor and
all cross-stream dependencies have finished, and runs for a fixed
duration.  MegaScale-MoE's inter-operator overlap is exactly this —
communication kernels on dedicated streams executing concurrently with
independent computation (§4.1) — so the simulator turns a scheduled
operator graph plus per-op durations into a makespan and an
exposed-communication figure (the "Exposed Comm." bars of Fig. 12a).

Fault modelling: :func:`simulate` optionally takes per-stream
``slowdowns`` (a straggling rank stretches every kernel on its
streams) and :class:`StreamFailure` downtime windows (a crashed or
hung executor), so the makespan/exposed-comm impact of stragglers and
failures is directly measurable — see
``benchmarks/bench_fault_recovery.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["SimTask", "StreamFailure", "TaskRecord", "Timeline",
           "simulate"]


@dataclass(frozen=True)
class SimTask:
    """One unit of simulated work.

    Attributes:
        name: Unique task name.
        duration: Seconds of exclusive stream occupancy.
        stream: Stream (queue) the task executes on.
        deps: Names of tasks that must complete first (any stream).
        is_comm: Marks communication tasks for exposure accounting.
    """

    name: str
    duration: float
    stream: str
    deps: Tuple[str, ...] = ()
    is_comm: bool = False

    def __post_init__(self):
        if self.duration < 0:
            raise ValueError(
                f"task {self.name!r} has negative duration {self.duration}"
            )


@dataclass(frozen=True)
class StreamFailure:
    """A downtime window during which one stream cannot execute.

    Models a hung NIC, a paused executor, or a node swap: tasks cannot
    *start* inside ``[at, at + downtime)`` (they are pushed to the
    window's end), and a task already running when the window opens is
    paused — its completion slips by ``downtime``.

    Attributes:
        stream: The affected stream.
        at: Window start time (seconds).
        downtime: Window length (seconds).
    """

    stream: str
    at: float
    downtime: float

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at}")
        if self.downtime < 0:
            raise ValueError(
                f"downtime must be >= 0, got {self.downtime}"
            )


@dataclass(frozen=True)
class TaskRecord:
    """Execution interval of one task."""

    task: SimTask
    start: float
    end: float


@dataclass
class Timeline:
    """Result of a simulation run.

    A timeline is sealed once :func:`simulate` returns it, so the
    per-``(stream, is_comm)`` busy aggregates and the compute-interval
    union behind :attr:`exposed_comm` are precomputed — repeated queries
    (the regression harness and benchmarks poll these per scenario) stop
    rescanning the full record list.  The caches key on the record count
    and rebuild if a test mutates ``records`` after construction.
    """

    records: List[TaskRecord]
    makespan: float

    def __post_init__(self):
        self._seal()

    def _seal(self) -> None:
        """Precompute query aggregates from the current records."""
        busy: Dict[Tuple[str, bool], float] = {}
        for r in self.records:
            key = (r.task.stream, r.task.is_comm)
            busy[key] = busy.get(key, 0.0) + (r.end - r.start)
        self._busy_by = busy
        self._compute_union = self._interval_union(
            sorted((r.start, r.end) for r in self.records
                   if not r.task.is_comm))
        self._sealed_count = len(self.records)

    @staticmethod
    def _interval_union(intervals: List[Tuple[float, float]]) -> float:
        covered = 0.0
        cur_start, cur_end = None, None
        for start, end in intervals:
            if cur_end is None or start > cur_end:
                if cur_end is not None:
                    covered += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_end is not None:
            covered += cur_end - cur_start
        return covered

    def _aggregates(self) -> Dict[Tuple[str, bool], float]:
        if self._sealed_count != len(self.records):
            self._seal()
        return self._busy_by

    def busy_time(self, stream: Optional[str] = None,
                  comm: Optional[bool] = None) -> float:
        """Total occupied seconds, optionally filtered by stream/kind."""
        return sum(
            total for (s, c), total in self._aggregates().items()
            if (stream is None or s == stream)
            and (comm is None or c == comm)
        )

    @property
    def compute_time(self) -> float:
        return self.busy_time(comm=False)

    @property
    def comm_time(self) -> float:
        return self.busy_time(comm=True)

    @property
    def exposed_comm(self) -> float:
        """Time not covered by computation: ``makespan - union(compute)``.

        Computed from the union of compute-task intervals, so overlapping
        compute streams are not double-counted.
        """
        self._aggregates()  # refresh if records changed
        return self.makespan - self._compute_union

    def record_of(self, name: str) -> TaskRecord:
        """The execution record of one task by name."""
        for r in self.records:
            if r.task.name == name:
                return r
        raise KeyError(f"no task named {name!r}")

    def task_order(self, stream: Optional[str] = None,
                   comm: Optional[bool] = None) -> List[str]:
        """Task names in start order, optionally filtered by stream
        and/or comm kind.

        This is the projection the §4.2 parity checks use: simulating a
        tiled schedule and taking ``task_order(comm=True)`` yields the
        comm-tile stream timeline to compare against the ``dag.tile:*``
        order an execution actually traced.
        """
        recs = sorted(self.records,
                      key=lambda r: (r.start, r.task.stream))
        return [r.task.name for r in recs
                if (stream is None or r.task.stream == stream)
                and (comm is None or r.task.is_comm == comm)]


def _adjust_for_failures(start: float, duration: float,
                         windows: Sequence[StreamFailure]):
    """Push a task out of / pause it across downtime windows."""
    for f in windows:
        end = f.at + f.downtime
        if start >= end:
            continue
        if start >= f.at:
            start = end
        elif start + duration > f.at:
            duration += f.downtime
    return start, duration


def simulate(tasks: Sequence[SimTask], *,
             slowdowns: Optional[Dict[str, float]] = None,
             failures: Sequence[StreamFailure] = (),
             tracer: Optional[object] = None,
             trace_pid: str = "sim") -> Timeline:
    """Run tasks to completion; returns the :class:`Timeline`.

    Stream order is the order tasks appear in ``tasks`` (per stream).
    Raises ``ValueError`` on unknown dependencies or deadlock (circular
    waits across streams).

    Args:
        slowdowns: Per-stream duration multipliers (``>= 1``); a
            straggling rank is modelled by slowing its streams.
        failures: :class:`StreamFailure` downtime windows.
        tracer: Optional :class:`~repro.obs.Tracer` (duck-typed via
            ``ingest_timeline``); the finished timeline's task records
            land as closed spans on the ``trace_pid`` process lane.
        trace_pid: Trace process lane for the ingested spans.
    """
    slowdowns = slowdowns or {}
    for stream, factor in slowdowns.items():
        if factor < 1.0:
            raise ValueError(
                f"slowdown for stream {stream!r} must be >= 1, got "
                f"{factor}"
            )
    fail_windows: Dict[str, List[StreamFailure]] = {}
    for f in failures:
        fail_windows.setdefault(f.stream, []).append(f)
    for windows in fail_windows.values():
        windows.sort(key=lambda f: f.at)
    by_name = {}
    for t in tasks:
        if t.name in by_name:
            raise ValueError(f"duplicate task name {t.name!r}")
        by_name[t.name] = t
    for t in tasks:
        for dep in t.deps:
            if dep not in by_name:
                raise ValueError(
                    f"task {t.name!r} depends on unknown task {dep!r}"
                )

    streams: Dict[str, List[SimTask]] = {}
    for t in tasks:
        streams.setdefault(t.stream, []).append(t)

    cursor = {s: 0 for s in streams}
    stream_free = {s: 0.0 for s in streams}
    finish: Dict[str, float] = {}
    records: List[TaskRecord] = []

    remaining = len(tasks)
    while remaining:
        progressed = False
        # Start every stream-head task whose dependencies are done.
        for s, queue in streams.items():
            while cursor[s] < len(queue):
                task = queue[cursor[s]]
                if not all(dep in finish for dep in task.deps):
                    break
                start = max(stream_free[s],
                            max((finish[d] for d in task.deps),
                                default=0.0))
                duration = task.duration * slowdowns.get(s, 1.0)
                start, duration = _adjust_for_failures(
                    start, duration, fail_windows.get(s, ()))
                end = start + duration
                stream_free[s] = end
                finish[task.name] = end
                records.append(TaskRecord(task, start, end))
                cursor[s] += 1
                remaining -= 1
                progressed = True
        if not progressed:
            stuck = [
                streams[s][cursor[s]].name for s in streams
                if cursor[s] < len(streams[s])
            ]
            raise ValueError(
                f"simulation deadlocked; blocked stream heads: {stuck}"
            )

    makespan = max((r.end for r in records), default=0.0)
    records.sort(key=lambda r: (r.start, r.task.stream))
    timeline = Timeline(records=records, makespan=makespan)
    if tracer is not None:
        tracer.ingest_timeline(timeline, pid=trace_pid)
    return timeline
