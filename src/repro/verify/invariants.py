"""The invariant registry: what "numerically equivalent" means, checked.

Every parallel plan in this repo claims some equivalence to the plain
single-rank model — bitwise where the design promises it (threaded vs
sequential execution, PR 3's contract), tolerance-banded where comm is
compressed (§5 FP8), and always subject to conservation laws (tokens
through dispatch/combine, router probability mass, ledger bytes vs the
Eq. 1–4 closed forms) and finiteness.  This module encodes each claim
as a named :class:`Invariant` with an ``applies`` predicate and a
``check`` that returns violations; the engine evaluates every
registered invariant against a case's :class:`~repro.verify.engine.
RunArtifacts`.

Tolerance policy (per precision format)
---------------------------------------
Bands derive from :mod:`repro.precision.formats`:

* uncompressed comm (``fp32``/``bf16`` cases move float64 on the wire):
  collectives are arithmetic identities, so losses/grads/params must
  match the golden model to near machine precision
  (``rtol = 1e-9 .. 1e-8``).
* ``fp8`` compressed comm: per-token E4M3 quantization carries at most
  ``epsilon/2`` relative error per element (``epsilon = 2^-3``).  The
  per-step loss must stay within ``rtol = epsilon``; the first step's
  gradients (taken before trajectories diverge) within
  ``rtol = 4 * epsilon`` of the per-tensor golden max — the factor 4
  covers error accumulation through layers and the backward dual
  (measured headroom is ~4x on the smoke models).  Beyond the first
  step the *trajectory* legitimately diverges (Adam amplifies
  direction changes), so param/grad closeness is only enforced for
  uncompressed cases.

Adding an invariant: build an :class:`Invariant` and pass it to
:func:`register_invariant`; see docs/INTERNALS.md §9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List

import numpy as np

from ..obs.audit import audit_comm_volumes
from ..precision.formats import FP8_E4M3

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .cases import VerifyCase
    from .engine import RunArtifacts

__all__ = [
    "ToleranceBand",
    "tolerance_for_precision",
    "Invariant",
    "InvariantResult",
    "register_invariant",
    "registered_invariants",
    "default_registry",
    "register_serve_invariant",
    "registered_serve_invariants",
    "default_serve_registry",
]


@dataclass(frozen=True)
class ToleranceBand:
    """``|a - b| <= atol + rtol * scale`` closeness band."""

    rtol: float
    atol: float

    def close(self, a: float, b: float, scale: float) -> bool:
        """Whether a and b agree within the band at this scale."""
        return abs(a - b) <= self.atol + self.rtol * abs(scale)


#: Per-precision bands for (per-step loss, first-step grads, final
#: params).  fp32/bf16 cases move uncompressed float64 on the wire;
#: fp8 bands scale with the E4M3 format epsilon (see module docstring).
_EPS8 = FP8_E4M3.epsilon
_BANDS: Dict[str, Dict[str, ToleranceBand]] = {
    "fp32": {
        "loss": ToleranceBand(rtol=1e-9, atol=1e-12),
        "grads": ToleranceBand(rtol=1e-8, atol=1e-12),
        "params": ToleranceBand(rtol=1e-8, atol=1e-12),
    },
    "bf16": {
        "loss": ToleranceBand(rtol=1e-9, atol=1e-12),
        "grads": ToleranceBand(rtol=1e-8, atol=1e-12),
        "params": ToleranceBand(rtol=1e-8, atol=1e-12),
    },
    "fp8": {
        "loss": ToleranceBand(rtol=_EPS8, atol=1e-12),
        "grads": ToleranceBand(rtol=4.0 * _EPS8, atol=1e-12),
        "params": ToleranceBand(rtol=4.0 * _EPS8, atol=1e-12),
    },
}


def tolerance_for_precision(precision: str, kind: str) -> ToleranceBand:
    """The closeness band for one precision and comparison kind."""
    try:
        return _BANDS[precision][kind]
    except KeyError:
        raise KeyError(
            f"no tolerance band for precision={precision!r} "
            f"kind={kind!r}"
        ) from None


@dataclass(frozen=True)
class Invariant:
    """One named equivalence/conservation claim.

    ``applies(case)`` gates the check (inapplicable invariants report
    ``skip`` in the matrix); ``check(artifacts)`` returns a list of
    human-readable violation strings — empty means the claim held.
    """

    name: str
    description: str
    applies: Callable[["VerifyCase"], bool]
    check: Callable[["RunArtifacts"], List[str]]


@dataclass(frozen=True)
class InvariantResult:
    """One invariant's outcome for one case."""

    name: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status != "fail"


_REGISTRY: Dict[str, Invariant] = {}


def register_invariant(invariant: Invariant) -> Invariant:
    """Add (or replace) an invariant in the global registry."""
    _REGISTRY[invariant.name] = invariant
    return invariant


def registered_invariants() -> List[Invariant]:
    """All registered invariants, in registration order."""
    return list(_REGISTRY.values())


# -- built-in checks ---------------------------------------------------------


def _check_finiteness(art: "RunArtifacts") -> List[str]:
    violations = []
    for step, loss in enumerate(art.losses):
        if not math.isfinite(loss):
            violations.append(f"step {step} loss is {loss}")
    for step, norm in enumerate(art.grad_norms):
        if not math.isfinite(norm):
            violations.append(f"step {step} grad norm is {norm}")
    for name, value in art.params.items():
        if not np.isfinite(value).all():
            violations.append(f"param {name} has non-finite entries")
    for name, grad in art.final_grads.items():
        if grad is not None and not np.isfinite(grad).all():
            violations.append(f"grad {name} has non-finite entries")
    return violations


def _check_golden_loss(art: "RunArtifacts") -> List[str]:
    band = tolerance_for_precision(art.case.precision, "loss")
    violations = []
    for step, (got, want) in enumerate(zip(art.losses,
                                           art.golden.losses)):
        if not band.close(got, want, want):
            violations.append(
                f"step {step} loss {got:.10g} vs golden {want:.10g} "
                f"(rel err {abs(got - want) / max(abs(want), 1e-300):.3g}"
                f" > rtol {band.rtol:g})"
            )
    return violations


def _check_golden_grads(art: "RunArtifacts") -> List[str]:
    band = tolerance_for_precision(art.case.precision, "grads")
    # FP8 comm noise is absolute, set by the quantized *activation*
    # scale — a tensor whose own gradients happen to be tiny still
    # receives noise at the global gradient scale, so the band must be
    # anchored to the largest golden gradient, not each tensor's own.
    global_scale = max(
        (float(np.abs(g).max()) for g
         in art.golden.first_step_grads.values() if g.size),
        default=0.0,
    )
    per_tensor_scale = art.case.precision != "fp8"
    violations = []
    for name, want in art.golden.first_step_grads.items():
        got = art.first_step_grads.get(name)
        if got is None:
            violations.append(f"first-step grad {name} missing")
            continue
        if per_tensor_scale:
            scale = float(np.abs(want).max()) if want.size else 0.0
        else:
            scale = global_scale
        err = float(np.abs(got - want).max()) if want.size else 0.0
        if err > band.atol + band.rtol * scale:
            violations.append(
                f"first-step grad {name}: max |Δ| {err:.3g} > "
                f"{band.atol:g} + {band.rtol:g} * max|golden| {scale:.3g}"
            )
    return violations


def _check_golden_params(art: "RunArtifacts") -> List[str]:
    band = tolerance_for_precision(art.case.precision, "params")
    violations = []
    for name, want in art.golden.params.items():
        got = art.params.get(name)
        if got is None:
            violations.append(f"param {name} missing")
            continue
        scale = float(np.abs(want).max()) if want.size else 0.0
        err = float(np.abs(got - want).max()) if want.size else 0.0
        if err > band.atol + band.rtol * scale:
            violations.append(
                f"final param {name}: max |Δ| {err:.3g} > "
                f"{band.atol:g} + {band.rtol:g} * max|golden| {scale:.3g}"
            )
    return violations


def _check_threaded_bitwise(art: "RunArtifacts") -> List[str]:
    twin = art.twin
    violations = []
    if art.losses != twin.losses:
        violations.append(
            f"per-step losses differ: {art.losses} vs {twin.losses}"
        )
    for name, want in twin.params.items():
        got = art.params.get(name)
        if got is None or not np.array_equal(got, want):
            violations.append(f"param {name} not bitwise-equal to the "
                              "sequential twin")
    if art.ledger_total_bytes != twin.ledger_total_bytes:
        violations.append(
            f"ledger bytes differ: {art.ledger_total_bytes} vs "
            f"{twin.ledger_total_bytes}"
        )
    if art.ledger_counts != twin.ledger_counts:
        violations.append(
            f"collective counts differ: {art.ledger_counts} vs "
            f"{twin.ledger_counts}"
        )
    return violations


def _check_dag_bitwise(art: "RunArtifacts") -> List[str]:
    """DAG-executed results must be bitwise-identical to the legacy
    engine path (same execution mode, same seeds)."""
    twin = art.engine_twin
    violations = []
    if art.losses != twin.losses:
        violations.append(
            f"per-step losses differ: {art.losses} vs {twin.losses}"
        )
    for name, want in twin.params.items():
        got = art.params.get(name)
        if got is None or not np.array_equal(got, want):
            violations.append(f"param {name} not bitwise-equal to the "
                              "engine-backend twin")
    if art.ledger_total_bytes != twin.ledger_total_bytes:
        violations.append(
            f"ledger bytes differ: {art.ledger_total_bytes} vs "
            f"{twin.ledger_total_bytes}"
        )
    if art.ledger_counts != twin.ledger_counts:
        violations.append(
            f"collective counts differ: {art.ledger_counts} vs "
            f"{twin.ledger_counts}"
        )
    return violations


def _check_dag_conformance(art: "RunArtifacts") -> List[str]:
    """The executed op sequence must be a valid topological order of
    both the op graph and the overlap schedule's task list."""
    from ..core.executor_bindings import layer_program
    from ..runtime.dag_executor import schedule_conformance_problems

    case = art.case
    if not art.executed_ops:
        return ["no executed op sequences recorded for a DAG-backend "
                "run"]
    program = layer_program(case.model_config(), case.parallel_config(),
                            case.batch, case.seq,
                            tile_tokens=case.tile_tokens)
    violations = []
    for layer, executed in enumerate(art.executed_ops):
        for problem in schedule_conformance_problems(program, executed):
            violations.append(f"layer {layer}: {problem}")
    return violations


def _check_tile_conformance(art: "RunArtifacts") -> List[str]:
    """A tiled run's executed tile stream must be a permutation of the
    tile graph's sub-ops in a valid topological (and, per §4.2, rank-
    swizzled/ascending-chunk) order."""
    from ..core.executor_bindings import layer_program
    from ..runtime.dag_executor import tile_conformance_problems

    case = art.case
    program = layer_program(case.model_config(), case.parallel_config(),
                            case.batch, case.seq,
                            tile_tokens=case.tile_tokens)
    if not program.tiled:
        return [f"tile_tokens={case.tile_tokens} produced no tiled "
                "program (no fused group decomposed)"]
    if not art.executed_tiles:
        return ["no executed tile streams recorded for a tiled "
                "DAG-backend run"]
    violations = []
    for layer, stream in enumerate(art.executed_tiles):
        for problem in tile_conformance_problems(program, stream):
            violations.append(f"layer {layer}: {problem}")
    return violations


def _check_token_conservation(art: "RunArtifacts") -> List[str]:
    # Absent telemetry on a layer that should have produced it is a
    # failure, not a free pass: conservation cannot be claimed on
    # evidence that was never recorded.
    violations = [f"telemetry missing: {msg}"
                  for msg in art.telemetry_missing]
    for layer, tele in enumerate(art.telemetry):
        if tele is None:
            continue
        if tele["input_shapes"] != tele["output_shapes"]:
            violations.append(
                f"layer {layer}: combine returned shapes "
                f"{tele['output_shapes']} != dispatched "
                f"{tele['input_shapes']}"
            )
        total_in = sum(tele["tokens_in"])
        total_kept = sum(tele["kept_pairs"])
        if total_kept > total_in * tele["top_k"]:
            violations.append(
                f"layer {layer}: {total_kept} kept (token, slot) pairs "
                f"exceed {total_in} tokens x top_k={tele['top_k']}"
            )
        if tele["mode"] == "a2a":
            # tokens_per_rank is each rank's kept pair count; dispatch
            # must move exactly those rows and combine must return them.
            for rank, (sent, kept) in enumerate(
                    zip(tele["tokens_per_rank"], tele["kept_pairs"])):
                if sent != kept:
                    violations.append(
                        f"layer {layer} rank {rank}: dispatched {sent} "
                        f"rows but routing kept {kept} pairs"
                    )
            splits = tele["send_splits"]
            if splits is not None:
                for rank, row in enumerate(splits):
                    if sum(row) != tele["kept_pairs"][rank]:
                        violations.append(
                            f"layer {layer} rank {rank}: send splits "
                            f"{row} sum to {sum(row)}, expected "
                            f"{tele['kept_pairs'][rank]} kept pairs"
                        )
        else:  # ag_rs: every rank contributes its full token shard
            if tele["tokens_per_rank"] != tele["tokens_in"]:
                violations.append(
                    f"layer {layer}: AG/RS shard sizes "
                    f"{tele['tokens_per_rank']} != input token counts "
                    f"{tele['tokens_in']}"
                )
    return violations


def _check_router_mass(art: "RunArtifacts") -> List[str]:
    violations = [f"telemetry missing: {msg}"
                  for msg in art.telemetry_missing]
    for layer, tele in enumerate(art.telemetry):
        if tele is None:
            continue
        for rank, (mass, full) in enumerate(zip(tele["gate_mass"],
                                                tele["fully_kept"])):
            if mass.size == 0:
                continue
            if float(mass.min()) < -1e-12 or float(mass.max()) > 1.0 + 1e-9:
                violations.append(
                    f"layer {layer} routing[{rank}]: combine-weight "
                    f"mass outside [0, 1] "
                    f"(min {mass.min():.3g}, max {mass.max():.3g})"
                )
            kept_mass = mass[full]
            if kept_mass.size and (np.abs(kept_mass - 1.0) > 1e-9).any():
                violations.append(
                    f"layer {layer} routing[{rank}]: fully-kept tokens "
                    f"have combine mass != 1 (worst "
                    f"{kept_mass[np.abs(kept_mass - 1.0).argmax()]:.12g})"
                )
    return violations


def _check_comm_audit(art: "RunArtifacts") -> List[str]:
    case = art.case
    report = audit_comm_volumes(
        art.ledger, b=case.batch, s=case.seq, h=case.hidden,
        n=case.ranks, m=case.gqa_ratio, k=case.top_k,
        elem_bytes=8.0, passes=case.layers * case.steps,
    )
    violations = []
    for entry in report.entries:
        if case.precision == "fp8" and entry.mechanism == "ep_ffn_ag_rs":
            # FP8 comm ships 1-byte payloads + FP32 scales on the
            # AG/RS FFN collectives (the A2A path stays uncompressed);
            # the float64 closed forms only bound the uncompressed
            # volume.  Still enforce the bound direction: compressed
            # must never exceed the uncompressed prediction.
            if entry.measured_bytes > entry.expected_bytes * (1 + 1e-9):
                violations.append(
                    f"{entry.mechanism}: compressed bytes "
                    f"{entry.measured_bytes:.0f} exceed the "
                    f"uncompressed {entry.equation} volume "
                    f"{entry.expected_bytes:.0f}"
                )
            continue
        tolerance = entry.tolerance
        if entry.hard_bound_bytes is not None:
            # The A2A volume is a binomial sum over routed (token,
            # slot) pairs, each remote with p = (n-1)/n; widen the
            # expectation band to 4 standard errors so small fuzzed
            # cases don't trip on routing noise.  The all-remote hard
            # bound stays exact at any size (``entry.within_bound``).
            pairs = (case.batch * case.seq * case.top_k
                     * case.layers * case.steps)
            p_remote = (case.ranks - 1) / case.ranks
            rel_std = math.sqrt(
                (1.0 - p_remote) / (p_remote * max(pairs, 1)))
            tolerance = max(tolerance, 4.0 * rel_std)
            if not entry.within_bound:
                violations.append(
                    f"{entry.mechanism}: measured "
                    f"{entry.measured_bytes:.0f} B exceed the "
                    f"all-remote hard bound "
                    f"{entry.hard_bound_bytes:.0f} B"
                )
                continue
        if entry.rel_error > tolerance:
            violations.append(
                f"{entry.mechanism} ({entry.equation}): measured "
                f"{entry.measured_bytes:.0f} B vs expected "
                f"{entry.expected_bytes:.0f} B "
                f"(rel err {entry.rel_error:.4f} > {tolerance:g})"
            )
    if not report.entries:
        violations.append("no audited mechanisms found in the ledger")
    return violations


def _check_elastic_resume(art: "RunArtifacts") -> List[str]:
    """The resize-injected elastic run must execute every step and
    land on the fixed-size run's loss trajectory within the
    precision band (resharding is exact; only collective summation
    order may differ across world sizes)."""
    case = art.case
    elastic = art.elastic
    if elastic is None:
        return ["no elastic artifacts recorded for a resize case"]
    violations = []
    scheduled = [step for step, _ in case.resize]
    if elastic.resizes != scheduled:
        violations.append(
            f"resizes fired at {elastic.resizes}, scheduled "
            f"{scheduled}"
        )
    final = elastic.final_losses()
    missing = [s for s in range(case.steps) if s not in final]
    if missing:
        violations.append(f"steps never executed: {missing}")
    # Each resize whose target world differs from the world it leaves
    # must have gone through exactly one re-partition.
    worlds = [case.ranks] + [r for _, r in case.resize]
    expected_reshards = sum(
        1 for prev, new in zip(worlds, worlds[1:]) if prev != new)
    if len(elastic.reshard_reports) != expected_reshards:
        violations.append(
            f"{len(elastic.reshard_reports)} reshards performed, "
            f"expected {expected_reshards}"
        )
    band = tolerance_for_precision(case.precision, "loss")
    for step, want in enumerate(art.losses):
        got = final.get(step)
        if got is None:
            continue  # already reported as missing
        if not band.close(got, want, want):
            violations.append(
                f"step {step} elastic loss {got:.10g} vs fixed-size "
                f"{want:.10g} (rel err "
                f"{abs(got - want) / max(abs(want), 1e-300):.3g} > "
                f"rtol {band.rtol:g})"
            )
    return violations


# -- serving invariants ------------------------------------------------------
#
# Serving runs produce ServeArtifacts (see repro.verify.engine), not
# RunArtifacts, so they live in their own registry: the training matrix
# never evaluates them and vice versa.

_SERVE_REGISTRY: Dict[str, Invariant] = {}


def register_serve_invariant(invariant: Invariant) -> Invariant:
    """Add (or replace) an invariant in the serving registry."""
    _SERVE_REGISTRY[invariant.name] = invariant
    return invariant


def registered_serve_invariants() -> List[Invariant]:
    """All serving invariants, in registration order."""
    return list(_SERVE_REGISTRY.values())


def _check_serve_golden(art) -> List[str]:
    """Continuous-batched decode must complete every admitted request
    with tokens *and* per-step logits bitwise-equal to the unbatched
    sequential golden decode of the same trace."""
    violations = []
    want_ids = {r.request_id for r in art.requests}
    got_ids = set(art.result.results)
    missing = sorted(want_ids - got_ids)
    if missing:
        violations.append(f"requests never completed: {missing}")
    gold_ids = set(art.golden.results)
    for rid in sorted(want_ids & got_ids & gold_ids):
        got = art.result.results[rid]
        want = art.golden.results[rid]
        if got.generated != want.generated:
            violations.append(
                f"request {rid}: tokens {got.generated} != golden "
                f"{want.generated}"
            )
            continue
        for step, (a, b) in enumerate(zip(got.logits, want.logits)):
            if not np.array_equal(a, b):
                violations.append(
                    f"request {rid} step {step}: logits not "
                    f"bitwise-equal to golden (max |Δ| "
                    f"{float(np.abs(a - b).max()):.3g})"
                )
                break
    return violations


def _check_serve_comm_balance(art) -> List[str]:
    """Every dispatched byte comes back: the serve:dispatch_a2a and
    serve:combine_a2a ledger buckets must balance exactly, and no serve
    traffic may leak into the training (Eq. 1-4 audited) buckets."""
    violations = []
    by_tag = art.ledger_by_tag
    dispatch = by_tag.get("serve:dispatch_a2a", 0.0)
    combine = by_tag.get("serve:combine_a2a", 0.0)
    if dispatch != combine:
        violations.append(
            f"dispatch bytes {dispatch:.0f} != combine bytes "
            f"{combine:.0f}"
        )
    if dispatch == 0.0 and art.result.n_iterations > 0:
        violations.append(
            "no serve:dispatch_a2a traffic recorded despite "
            f"{art.result.n_iterations} iterations"
        )
    stray = [tag for tag in by_tag if not tag.startswith("serve:")]
    if stray:
        violations.append(
            f"serving run recorded traffic under non-serve tags: "
            f"{sorted(stray)!r}"
        )
    n_dispatch = art.ledger_counts.get("all_to_all", 0)
    if n_dispatch % 2 != 0:
        violations.append(
            f"odd all_to_all count {n_dispatch}: a dispatch is "
            "missing its combine"
        )
    return violations


def _check_serve_leaks(art) -> List[str]:
    """Scheduler shutdown frees every paged KV block and leaves every
    tracer span stack empty."""
    violations = []
    alloc = art.allocator
    if alloc["in_use"]:
        violations.append(
            f"{alloc['in_use']} KV blocks still held after shutdown"
        )
    if alloc["allocated_total"] != alloc["freed_total"]:
        violations.append(
            f"KV accounting imbalance: allocated "
            f"{alloc['allocated_total']}, freed {alloc['freed_total']}"
        )
    open_stacks = {tid: d for tid, d in art.thread_stacks.items() if d}
    if open_stacks:
        violations.append(
            f"tracer span stacks still open: {open_stacks}"
        )
    if art.shutdown_error:
        violations.append(f"shutdown raised: {art.shutdown_error}")
    return violations


def default_serve_registry() -> List[Invariant]:
    """(Re)register and return the built-in serving invariants."""
    builtins = [
        Invariant(
            name="serve_golden",
            description="continuous-batched decode completes every "
                        "request with tokens and logits bitwise-equal "
                        "to the unbatched sequential golden",
            applies=lambda case: True,
            check=_check_serve_golden,
        ),
        Invariant(
            name="serve_comm_balance",
            description="serve:dispatch_a2a and serve:combine_a2a "
                        "ledger bytes balance exactly and stay out of "
                        "the training audit buckets",
            # A crash aborts an iteration between dispatch and combine,
            # legitimately leaving one unpaired dispatch record.
            applies=lambda case: case.crash_at_call is None,
            check=_check_serve_comm_balance,
        ),
        Invariant(
            name="serve_leaks",
            description="every paged KV block allocated is freed and "
                        "every tracer span stack is empty at shutdown",
            applies=lambda case: True,
            check=_check_serve_leaks,
        ),
    ]
    for invariant in builtins:
        register_serve_invariant(invariant)
    return builtins


def default_registry() -> List[Invariant]:
    """(Re)register and return the built-in invariants."""
    builtins = [
        Invariant(
            name="finiteness",
            description="every loss, grad norm, parameter, and "
                        "gradient is finite",
            applies=lambda case: True,
            check=_check_finiteness,
        ),
        Invariant(
            name="golden_loss",
            description="per-step loss matches the single-rank golden "
                        "model within the precision band",
            applies=lambda case: case.dropout == 0.0,
            check=_check_golden_loss,
        ),
        Invariant(
            name="golden_grads",
            description="first-step gradients match golden within the "
                        "precision band",
            applies=lambda case: case.dropout == 0.0,
            check=_check_golden_grads,
        ),
        Invariant(
            name="golden_params",
            description="final parameters match golden (uncompressed "
                        "comm only: FP8 trajectories legitimately "
                        "diverge)",
            applies=lambda case: (case.dropout == 0.0
                                  and case.precision != "fp8"),
            check=_check_golden_params,
        ),
        Invariant(
            name="threaded_bitwise",
            description="threaded execution is bitwise-identical to "
                        "the sequential twin (losses, params, ledger)",
            applies=lambda case: case.execution == "threaded",
            check=_check_threaded_bitwise,
        ),
        Invariant(
            name="dag_bitwise",
            description="DAG-executed results are bitwise-identical "
                        "to the legacy engine path (losses, params, "
                        "ledger)",
            applies=lambda case: case.backend == "dag",
            check=_check_dag_bitwise,
        ),
        Invariant(
            name="dag_schedule_conformance",
            description="the DAG backend's executed op sequence is a "
                        "valid topological order of both the op graph "
                        "and the overlap schedule",
            applies=lambda case: case.backend == "dag",
            check=_check_dag_conformance,
        ),
        Invariant(
            name="tile_conformance",
            description="the tiled DAG backend's executed tile stream "
                        "is a valid interleaving of the §4.2 tile "
                        "graph (intra-group tile deps and swizzled "
                        "chunk order respected)",
            applies=lambda case: (case.backend == "dag"
                                  and case.tile_tokens is not None),
            check=_check_tile_conformance,
        ),
        Invariant(
            name="token_conservation",
            description="token counts are conserved through EP "
                        "dispatch and combine",
            applies=lambda case: case.ffn == "ep",
            check=_check_token_conservation,
        ),
        Invariant(
            name="router_mass",
            description="router combine-weight mass is in [0, 1] and "
                        "exactly 1 for fully-kept tokens",
            applies=lambda case: case.ffn == "ep",
            check=_check_router_mass,
        ),
        Invariant(
            name="comm_audit",
            description="CommLedger bytes match the Eq. 1-4 closed "
                        "forms",
            # Eq. 1-4 describe inter-rank traffic: at world size 1
            # every closed form is zero and the ledger is empty.
            applies=lambda case: (case.attention == "sp"
                                  and case.ffn == "ep"
                                  and case.ranks > 1),
            check=_check_comm_audit,
        ),
        Invariant(
            name="elastic_resume",
            description="a resize-injected elastic run executes every "
                        "step and its loss trajectory matches the "
                        "fixed-size run within the precision band",
            applies=lambda case: bool(case.resize),
            check=_check_elastic_resume,
        ),
    ]
    for invariant in builtins:
        register_invariant(invariant)
    return builtins


default_registry()
default_serve_registry()
