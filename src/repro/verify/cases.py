"""Verification cases: one (model, plan, precision, execution) tuple.

A :class:`VerifyCase` pins everything a differential run needs — model
dimensions, rank count, parallel strategies, EP dispatch mode, comm
precision, execution engine, dropout, step count, and the data seed —
as a frozen, hashable value.  The conformance engine
(:mod:`repro.verify.engine`) turns a case into several runs (the case
itself, its single-rank golden reference, a sequential twin for
threaded cases, and a legacy-engine twin for DAG-backend — including
vectorized — cases) and the fuzzer (:mod:`repro.verify.fuzz`) samples
and shrinks cases, which is why immutability and cheap equality
matter.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..core.config import ModelConfig, ParallelConfig, TrainConfig

__all__ = ["VerifyCase", "ServeCase", "smoke_matrix", "elastic_matrix",
           "serve_matrix", "plan_conformance_cases"]

#: Execution modes × EP dispatch × comm precision of the CI smoke grid.
SMOKE_EXECUTIONS = ("sequential", "threaded", "vectorized")
SMOKE_DISPATCHES = ("a2a", "ag_rs")
SMOKE_PRECISIONS = ("fp32", "fp8")


@dataclass(frozen=True)
class VerifyCase:
    """One fully-specified differential verification run."""

    ranks: int = 4
    layers: int = 2
    hidden: int = 32
    heads: int = 8
    gqa_ratio: int = 2
    ffn_hidden: int = 48
    experts: int = 8
    top_k: int = 2
    vocab: int = 64
    batch: int = 2
    seq: int = 16
    attention: str = "sp"
    ffn: str = "ep"
    ep_dispatch: str = "a2a"
    precision: str = "fp32"
    execution: str = "sequential"
    #: Numeric backend: "engine" (legacy per-engine call chains) or
    #: "dag" (schedule-ordered DAG executor).
    backend: str = "engine"
    #: §4.2 tile-granular execution: token-chunk width for fused-group
    #: tile decomposition (None = untiled).  Requires the DAG backend
    #: and must divide the per-rank sequence shard ``seq // ranks``.
    tile_tokens: Optional[int] = None
    dropout: float = 0.0
    steps: int = 2
    seed: int = 0
    #: Cluster resize schedule: ``((step, new_ranks), ...)`` — at each
    #: listed step the injected :class:`~repro.ft.faults.ResizeEvent`
    #: re-forms the world at ``new_ranks`` before the step trains.
    #: Empty = fixed-size run.  When set, the engine additionally runs
    #: the case through an :class:`~repro.elastic.runner.ElasticRunner`
    #: and the ``elastic_resume`` invariant compares trajectories.
    resize: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self):
        if self.ranks < 1:
            raise ValueError(f"ranks must be >= 1, got {self.ranks}")
        if self.heads % self.ranks != 0:
            raise ValueError(
                f"heads={self.heads} not divisible by ranks={self.ranks}"
            )
        if self.heads % self.gqa_ratio != 0:
            raise ValueError(
                f"heads={self.heads} not divisible by "
                f"gqa_ratio={self.gqa_ratio}"
            )
        if (self.heads // self.gqa_ratio) % self.ranks != 0:
            raise ValueError(
                f"kv heads={self.heads // self.gqa_ratio} not divisible "
                f"by ranks={self.ranks}"
            )
        if self.hidden % self.heads != 0:
            raise ValueError(
                f"hidden={self.hidden} not divisible by "
                f"heads={self.heads}"
            )
        if self.ffn == "ep" and self.experts % self.ranks != 0:
            raise ValueError(
                f"experts={self.experts} not divisible by "
                f"ranks={self.ranks}"
            )
        if self.top_k > self.experts:
            raise ValueError(
                f"top_k={self.top_k} > experts={self.experts}"
            )
        if self.seq % self.ranks != 0:
            raise ValueError(
                f"seq={self.seq} not divisible by ranks={self.ranks}"
            )
        if self.ep_dispatch not in ("a2a", "ag_rs", "adaptive"):
            raise ValueError(f"unknown ep_dispatch {self.ep_dispatch!r}")
        if self.precision not in ("fp32", "bf16", "fp8"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.execution not in ("sequential", "threaded",
                                  "vectorized"):
            raise ValueError(f"unknown execution {self.execution!r}")
        if self.backend not in ("engine", "dag"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.execution == "vectorized" and self.backend != "dag":
            raise ValueError(
                "execution='vectorized' runs through the DAG executor; "
                "it requires backend='dag'"
            )
        if self.tile_tokens is not None:
            if self.backend != "dag":
                raise ValueError(
                    "tile_tokens requires backend='dag' (tile-granular "
                    "execution only exists in the DAG executor)"
                )
            local = self.seq // self.ranks
            if self.tile_tokens < 1 or local % self.tile_tokens != 0:
                raise ValueError(
                    f"tile_tokens={self.tile_tokens} must divide the "
                    f"per-rank shard seq//ranks={local}"
                )
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(f"dropout must be in [0, 1), got "
                             f"{self.dropout}")
        if self.resize:
            if self.dropout != 0.0:
                # Per-rank dropout masks are a function of the world
                # size; trajectories across a resize would legitimately
                # diverge and the invariant would be vacuous.
                raise ValueError("resize requires dropout == 0")
            normalized = []
            last_step = 0
            for entry in self.resize:
                try:
                    step, new_ranks = entry
                except (TypeError, ValueError):
                    raise ValueError(
                        f"resize entries must be (step, new_ranks) "
                        f"pairs, got {entry!r}"
                    ) from None
                step, new_ranks = int(step), int(new_ranks)
                if not 1 <= step < self.steps:
                    raise ValueError(
                        f"resize step {step} outside [1, "
                        f"{self.steps - 1}]"
                    )
                if step <= last_step:
                    raise ValueError(
                        "resize steps must be strictly increasing"
                    )
                last_step = step
                # The target world must satisfy every divisibility
                # constraint this case imposes at its own rank count.
                try:
                    dataclasses.replace(self, ranks=new_ranks,
                                        resize=())
                except ValueError as exc:
                    raise ValueError(
                        f"resize target ranks={new_ranks} invalid: "
                        f"{exc}"
                    ) from None
                normalized.append((step, new_ranks))
            object.__setattr__(self, "resize", tuple(normalized))

    @property
    def case_id(self) -> str:
        """Compact stable identifier used in the conformance matrix."""
        parts = [
            self.attention, self.ffn, self.ep_dispatch, self.precision,
            {"threaded": "thr",
             "vectorized": "vec"}.get(self.execution, "seq"),
            f"r{self.ranks}", f"l{self.layers}", f"b{self.batch}",
            f"s{self.seq}", f"e{self.experts}", f"k{self.top_k}",
            f"st{self.steps}",
        ]
        if self.backend != "engine":
            parts.append(self.backend)
        if self.tile_tokens is not None:
            parts.append(f"tt{self.tile_tokens}")
        for step, new_ranks in self.resize:
            parts.append(f"rz{step}x{new_ranks}")
        if self.dropout > 0.0:
            parts.append(f"do{self.dropout:g}")
        if self.seed != 0:
            parts.append(f"sd{self.seed}")
        return "-".join(parts)

    # -- config builders -----------------------------------------------------

    def model_config(self) -> ModelConfig:
        """The case's model dimensions as a ModelConfig."""
        return ModelConfig(
            f"verify-{self.case_id}", self.layers, self.hidden,
            self.heads, self.gqa_ratio, self.ffn_hidden, self.experts,
            self.top_k, vocab_size=self.vocab, seq_len=self.seq,
        )

    def parallel_config(self) -> ParallelConfig:
        """The case's parallel plan as a ParallelConfig."""
        return ParallelConfig(
            self.ranks, attention=self.attention, ffn=self.ffn,
            ep_dispatch=self.ep_dispatch,
        )

    def train_config(self) -> TrainConfig:
        """The case's training schedule as a TrainConfig."""
        return TrainConfig(
            global_batch_size=self.batch, micro_batch_size=self.batch,
            seq_len=self.seq, learning_rate=1e-2,
            aux_loss_coeff=0.01, precision=self.precision,
            execution=self.execution, backend=self.backend,
            tile_tokens=self.tile_tokens,
            dropout=self.dropout,
            dropout_seed=self.seed + 1,
        )

    def replace(self, **changes) -> "VerifyCase":
        """A copy with fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def twin_sequential(self) -> "VerifyCase":
        """The sequential twin of a threaded case."""
        return self.replace(execution="sequential")

    def twin_engine(self) -> "VerifyCase":
        """The legacy-backend twin of a DAG-backend case.

        Vectorized cases have no engine-backend sibling (the rank-stacked
        kernels only exist in the DAG executor), so their twin is the
        sequential legacy-engine run — the strictest possible reference:
        the bitwise comparison then spans both the backend and the
        execution mode at once.

        The twin is always untiled: tile-granular execution is a DAG
        feature, so a tiled case's bitwise comparison spans the tiling
        as well.
        """
        if self.execution == "vectorized":
            return self.replace(backend="engine",
                                execution="sequential",
                                tile_tokens=None)
        return self.replace(backend="engine", tile_tokens=None)


def _backend_for(execution: str) -> str:
    """Default backend an execution mode pairs with in the grids.

    Vectorized execution only exists in the DAG executor; the other
    modes default to the legacy engine (the DAG backend is exercised
    against them by ``twin_engine`` and the ``--backend dag`` override).
    """
    return "dag" if execution == "vectorized" else "engine"


#: Token-chunk width of the tiled smoke cases (seq=16 / ranks=4 → the
#: per-rank shard is 4 tokens; width 2 gives two tiles per A2A group).
SMOKE_TILE_TOKENS = 2


def plan_conformance_cases(attention: str = "sp", ffn: str = "ep",
                           ep_dispatch: str = "a2a",
                           precision: str = "bf16",
                           seed: int = 0) -> List[VerifyCase]:
    """Map a winning plan onto the small conformance shapes.

    The plan-space optimizer (:func:`repro.core.planner.plan_cluster`)
    emits a strategy tuple for a production-scale model; this projects
    that tuple onto the 4-rank default shapes so ``repro plan
    --verify`` can prove the chosen configuration is numerically live
    on both execution backends.  ``adaptive`` dispatch resolves to the
    concrete modes it can pick between.
    """
    dispatches = (("a2a", "ag_rs") if ep_dispatch == "adaptive"
                  else (ep_dispatch,))
    return [
        VerifyCase(attention=attention, ffn=ffn, ep_dispatch=dispatch,
                   precision=precision, backend=backend, seed=seed)
        for dispatch in dispatches
        for backend in ("engine", "dag")
    ]


def smoke_matrix(seed: int = 0) -> List[VerifyCase]:
    """The seeded CI grid: execution × EP dispatch × precision, plus a
    tiled (§4.2 tile-granular) DAG leg per execution × dispatch."""

    def cases() -> Iterator[VerifyCase]:
        for execution in SMOKE_EXECUTIONS:
            for dispatch in SMOKE_DISPATCHES:
                for precision in SMOKE_PRECISIONS:
                    yield VerifyCase(
                        ep_dispatch=dispatch, precision=precision,
                        execution=execution,
                        backend=_backend_for(execution), seed=seed,
                    )
                yield VerifyCase(
                    ep_dispatch=dispatch, execution=execution,
                    backend="dag", tile_tokens=SMOKE_TILE_TOKENS,
                    seed=seed,
                )

    return list(cases())


@dataclass(frozen=True)
class ServeCase:
    """One continuous-batching serving conformance run.

    The serve engine decodes a seeded arrival trace under a
    disaggregated attention/expert placement; the conformance engine
    replays the same trace through the unbatched sequential golden
    decoder and checks the ``serve_*`` invariants (bitwise per-request
    equality, dispatch/combine ledger balance, KV/span leak freedom).
    """

    attention_ranks: int = 2
    expert_ranks: int = 2
    layers: int = 2
    hidden: int = 32
    heads: int = 8
    gqa_ratio: int = 2
    ffn_hidden: int = 48
    experts: int = 8
    top_k: int = 2
    vocab: int = 64
    kv_block_size: int = 4
    kv_blocks: int = 64
    max_batch_size: int = 3
    execution: str = "sequential"
    #: Arrival process of the request trace.
    trace: str = "poisson"
    n_requests: int = 6
    #: Collective call index at which a scheduled RankCrash fires
    #: (None = fault-free run).
    crash_at_call: Optional[int] = None
    seed: int = 0

    def __post_init__(self):
        if self.attention_ranks < 1 or self.expert_ranks < 1:
            raise ValueError(
                "attention_ranks and expert_ranks must be >= 1"
            )
        if self.heads % self.gqa_ratio != 0:
            raise ValueError(
                f"heads={self.heads} not divisible by "
                f"gqa_ratio={self.gqa_ratio}"
            )
        if self.hidden % self.heads != 0:
            raise ValueError(
                f"hidden={self.hidden} not divisible by "
                f"heads={self.heads}"
            )
        if self.experts % self.expert_ranks != 0:
            raise ValueError(
                f"experts={self.experts} not divisible by "
                f"expert_ranks={self.expert_ranks}"
            )
        if self.top_k > self.experts:
            raise ValueError(
                f"top_k={self.top_k} > experts={self.experts}"
            )
        if self.execution not in ("sequential", "threaded"):
            raise ValueError(
                f"unknown serve execution {self.execution!r}"
            )
        if self.trace not in ("poisson", "bursty"):
            raise ValueError(f"unknown trace kind {self.trace!r}")
        if self.n_requests < 1:
            raise ValueError(
                f"n_requests must be >= 1, got {self.n_requests}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got "
                f"{self.max_batch_size}"
            )
        if self.crash_at_call is not None and self.crash_at_call < 1:
            raise ValueError(
                f"crash_at_call must be >= 1, got {self.crash_at_call}"
            )

    @property
    def case_id(self) -> str:
        parts = [
            "serve", self.trace,
            {"threaded": "thr"}.get(self.execution, "seq"),
            f"a{self.attention_ranks}", f"x{self.expert_ranks}",
            f"b{self.max_batch_size}", f"n{self.n_requests}",
            f"g{self.gqa_ratio}",
        ]
        if self.crash_at_call is not None:
            parts.append(f"cr{self.crash_at_call}")
        if self.seed != 0:
            parts.append(f"sd{self.seed}")
        return "-".join(parts)

    def model_config(self) -> ModelConfig:
        """The case's model dimensions as a ModelConfig."""
        return ModelConfig(
            f"serve-{self.case_id}", self.layers, self.hidden,
            self.heads, self.gqa_ratio, self.ffn_hidden, self.experts,
            self.top_k, vocab_size=self.vocab, seq_len=64,
        )

    def serve_config(self):
        """The case's placement/KV/batching knobs as a ServeConfig."""
        from ..core.config import ServeConfig
        return ServeConfig(
            attention_ranks=self.attention_ranks,
            expert_ranks=self.expert_ranks,
            kv_block_size=self.kv_block_size,
            kv_blocks=self.kv_blocks,
            max_batch_size=self.max_batch_size,
            execution=self.execution,
        )

    def requests(self):
        """The seeded request trace of the case's arrival process."""
        from ..serve.arrivals import bursty_trace, poisson_trace
        if self.trace == "bursty":
            return bursty_trace(self.n_requests, burst_size=3,
                                burst_gap=2.0, vocab=self.vocab,
                                seed=self.seed)
        return poisson_trace(self.n_requests, rate=2.0,
                             vocab=self.vocab, seed=self.seed)

    def replace(self, **changes) -> "ServeCase":
        """A copy of the case with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def serve_matrix(seed: int = 0) -> List[ServeCase]:
    """The serving conformance grid: both execution modes over both
    arrival processes, a wider-GQA leg, a tight-KV eviction leg, and a
    mid-stream rank-crash leg per execution mode."""

    def cases() -> Iterator[ServeCase]:
        for execution in ("sequential", "threaded"):
            for trace in ("poisson", "bursty"):
                yield ServeCase(execution=execution, trace=trace,
                                seed=seed)
            yield ServeCase(execution=execution, gqa_ratio=4,
                            seed=seed)
            yield ServeCase(execution=execution, crash_at_call=5,
                            seed=seed)
        yield ServeCase(kv_blocks=5, max_batch_size=4, seed=seed)

    return list(cases())


def elastic_matrix(seed: int = 0) -> List[VerifyCase]:
    """The resize conformance grid: shrink at 1, grow back at 2.

    Every case starts at 4 ranks, shrinks the SP×EP world to 2 at
    step 1, and grows back to 4 at step 2 — the ISSUE's acceptance
    scenario — across both execution modes, both EP dispatch modes,
    and both smoke precisions.
    """

    def cases() -> Iterator[VerifyCase]:
        for execution in SMOKE_EXECUTIONS:
            for dispatch in SMOKE_DISPATCHES:
                for precision in SMOKE_PRECISIONS:
                    yield VerifyCase(
                        ep_dispatch=dispatch, precision=precision,
                        execution=execution,
                        backend=_backend_for(execution), seed=seed,
                        steps=3, resize=((1, 2), (2, 4)),
                    )

    return list(cases())
