"""Config fuzzer + shrinker for the conformance engine.

Random (model, plan, precision, execution) tuples catch interaction
bugs no hand-written matrix covers; when a case fails, the raw config
is rarely the story you want to debug.  :func:`shrink` greedily
minimizes a failing case — fewer ranks, layers, steps, tokens, experts
— while re-running the failure predicate, returning the smallest
configuration that still violates an invariant (the property-testing
"minimal reproducer" discipline, applied to parallel-training plans).
"""

from __future__ import annotations

from typing import Callable, Iterator, Optional

import numpy as np

from .cases import VerifyCase
from .engine import ConformanceReport, run_case, run_matrix

__all__ = [
    "sample_case",
    "fuzz",
    "shrink",
    "corrupting_world_setup",
    "shrink_seeded_violation",
]


def sample_case(rng: np.random.Generator) -> VerifyCase:
    """One random valid case from the constrained config space."""
    ranks = int(rng.choice([2, 4]))
    gqa = int(rng.choice([1, 2]))
    heads = ranks * gqa * int(rng.choice([1, 2]))
    hidden = heads * int(rng.choice([2, 4]))
    experts = ranks * int(rng.choice([1, 2]))
    case = VerifyCase(
        ranks=ranks,
        layers=int(rng.choice([1, 2])),
        hidden=hidden,
        heads=heads,
        gqa_ratio=gqa,
        ffn_hidden=int(rng.choice([16, 32, 48])),
        experts=experts,
        top_k=int(rng.choice([1, min(2, experts)])),
        vocab=int(rng.choice([32, 64])),
        batch=int(rng.choice([1, 2])),
        seq=ranks * int(rng.choice([2, 4])),
        ep_dispatch=str(rng.choice(["a2a", "ag_rs"])),
        precision=str(rng.choice(["fp32", "fp8"])),
        execution=(execution := str(rng.choice(
            ["sequential", "threaded", "vectorized"]))),
        # Vectorized execution only exists in the DAG executor.
        backend=("dag" if execution == "vectorized"
                 else str(rng.choice(["engine", "engine", "dag"]))),
        # Dropout cases exercise the per-rank RNG contract (threaded
        # bitwise identity); golden closeness is skipped for them.
        dropout=float(rng.choice([0.0, 0.0, 0.0, 0.1])),
        steps=int(rng.choice([1, 2])),
        seed=int(rng.integers(0, 1_000_000)),
    )
    # DAG-backend cases sometimes run tile-granular (§4.2): sample a
    # token-chunk width from the divisors of the per-rank shard.
    if case.backend == "dag" and float(rng.random()) < 0.5:
        local = case.seq // case.ranks
        divisors = [d for d in range(1, local + 1) if local % d == 0]
        case = case.replace(tile_tokens=int(rng.choice(divisors)))
    # Sometimes inject a cluster resize: fuzz over the resize step and
    # the old→new layout pair (any target world the model dimensions
    # admit).  Drawn after the base fields so the non-resize portion
    # of the case space is sampled exactly as before.
    if case.dropout == 0.0 and case.steps >= 2 \
            and float(rng.random()) < 0.3:
        step = int(rng.integers(1, case.steps))
        for target in rng.permutation(
                [r for r in (1, 2, 4, 8) if r != case.ranks]):
            try:
                return case.replace(resize=((step, int(target)),))
            except ValueError:
                continue
    return case


def fuzz(n_cases: int, seed: int = 0,
         progress: Optional[Callable] = None) -> ConformanceReport:
    """Sample and run ``n_cases`` random cases from one fuzzer seed."""
    rng = np.random.default_rng(seed)
    cases = [sample_case(rng) for _ in range(n_cases)]
    return run_matrix(cases, progress=progress)


def _shrink_candidates(case: VerifyCase) -> Iterator[VerifyCase]:
    """Strictly-smaller neighbor configs, most aggressive first.

    Invalid combinations (divisibility violations) are filtered by the
    :class:`VerifyCase` validator at construction time.
    """

    def attempt(**changes) -> Optional[VerifyCase]:
        try:
            return case.replace(**changes)
        except ValueError:
            return None

    # Dropping the resize schedule first: it removes three extra
    # trainer builds per evaluation, the biggest single reduction.
    if case.resize:
        yield from filter(None, [attempt(resize=())])
        if len(case.resize) > 1:
            yield from filter(None, [attempt(resize=case.resize[:1])])
    # Untiling early: it halves the DAG surface under test (no tile
    # graph, no chunked collectives) without touching the model, and
    # it unlocks the seq/ranks shrinks a tile width would forbid.
    if case.tile_tokens is not None:
        yield from filter(None, [attempt(tile_tokens=None)])
    if case.ranks > 1:
        yield from filter(None, [attempt(ranks=case.ranks // 2)])
    if case.layers > 1:
        yield from filter(None, [attempt(layers=1)])
    if case.steps > 1:
        yield from filter(None, [attempt(steps=1)])
    if case.batch > 1:
        yield from filter(None, [attempt(batch=1)])
    if case.seq > case.ranks:
        yield from filter(None, [attempt(seq=case.seq // 2)])
    if case.experts > case.ranks:
        yield from filter(None, [attempt(experts=case.ranks,
                                         top_k=min(case.top_k,
                                                   case.ranks))])
    min_heads = case.ranks * case.gqa_ratio
    if case.heads > min_heads:
        head_dim = case.hidden // case.heads
        yield from filter(None, [attempt(heads=min_heads,
                                         hidden=min_heads * head_dim)])
    if case.ffn_hidden > 16:
        yield from filter(None, [attempt(ffn_hidden=16)])
    if case.top_k > 1:
        yield from filter(None, [attempt(top_k=1)])
    if case.vocab > 32:
        yield from filter(None, [attempt(vocab=32)])
    if case.dropout > 0.0:
        yield from filter(None, [attempt(dropout=0.0)])
    # Shrink toward the plainest execution stack: sequential first
    # (a vectorized case keeps its DAG backend and stays valid), then
    # the legacy engine backend (invalid for vectorized cases, which
    # the attempt() validator filters out).
    if case.execution != "sequential":
        yield from filter(None, [attempt(execution="sequential")])
    if case.backend != "engine":
        yield from filter(None, [attempt(backend="engine",
                                         tile_tokens=None)])
        if case.execution != "sequential":
            yield from filter(None, [attempt(execution="sequential",
                                             backend="engine",
                                             tile_tokens=None)])


def shrink(case: VerifyCase,
           fails: Callable[[VerifyCase], bool],
           max_evals: int = 64) -> VerifyCase:
    """Greedily minimize ``case`` while ``fails`` stays True.

    ``fails`` must be True for ``case`` itself (the caller found a
    failure); the returned case is a local minimum — no single
    candidate reduction still fails — reached within ``max_evals``
    predicate evaluations.
    """
    evals = 0
    current = case
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _shrink_candidates(current):
            evals += 1
            if fails(candidate):
                current = candidate
                improved = True
                break
            if evals >= max_evals:
                break
    return current


def corrupting_world_setup(seed: int = 0, at_call: int = 0):
    """A world hook injecting one bit-flip corruption (for tests/demo).

    Attach via ``run_case(case, world_setup=...)``: the perturbation
    hits only the case run, so the conformance engine must *catch* it
    against the golden model or the clean sequential twin.
    """
    from ..ft.faults import FaultPlan, FaultSpec

    def setup(world) -> None:
        # verify_checksums=False delivers the corrupted payload
        # silently — the point is that the *invariants* must flag it.
        world.attach_fault_plan(
            FaultPlan([FaultSpec("corrupt", at_call=at_call)],
                      seed=seed, verify_checksums=False))

    return setup


def shrink_seeded_violation(seed: int = 0):
    """End-to-end demo: inject a bit-flip, catch it, shrink it.

    Returns ``(original, minimal, result)`` — the starting threaded
    case, the shrunk minimal reproducer, and the minimal case's
    :class:`~repro.verify.engine.CaseResult` (which still fails).
    """
    original = VerifyCase(execution="threaded", ep_dispatch="a2a",
                          seed=seed)

    def fails(case: VerifyCase) -> bool:
        return not run_case(
            case, world_setup=corrupting_world_setup(seed)).ok

    if not fails(original):  # pragma: no cover - seeded determinism
        raise RuntimeError("seeded corruption was not caught")
    minimal = shrink(original, fails)
    result = run_case(minimal, world_setup=corrupting_world_setup(seed))
    return original, minimal, result
