"""The differential conformance engine: run a case, check every claim.

For one :class:`~repro.verify.cases.VerifyCase` the engine runs up to
three trainings from identical seeds —

1. the **case run**: the parallel plan under its configured execution
   engine and comm precision (optionally with an injected fault plan,
   which is how tests prove the invariants catch real perturbations);
2. the **golden run**: the plain single-rank
   :meth:`~repro.model.transformer.MoETransformer.language_model_loss`
   model with the same optimizer schedule (skipped when dropout > 0 —
   a full-sequence model cannot reproduce per-rank dropout masks);
3. the **sequential twin** (threaded cases only): the identical plan
   under the sequential rank loop, for the bitwise-identity contract —

then evaluates every registered invariant and folds the outcomes into
a :class:`CaseResult`.  :func:`run_matrix` maps this over a case list
and renders the conformance matrix `repro verify` prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..comm.group import World
from ..core.trainer import MegaScaleTrainer
from ..model.transformer import MoETransformer
from ..precision.optimizer import AdamW, clip_grad_norm
from .cases import VerifyCase
from .invariants import InvariantResult, registered_invariants

__all__ = [
    "GoldenArtifacts",
    "ElasticArtifacts",
    "RunArtifacts",
    "ServeArtifacts",
    "CaseResult",
    "ConformanceReport",
    "run_case",
    "run_matrix",
    "run_serve_case",
    "run_serve_matrix",
]

#: Learning-rate / clip schedule shared by the case and golden runs.
_LEARNING_RATE = 1e-2
_GRAD_CLIP = 1.0
_AUX_COEFF = 0.01


def _batches(case: VerifyCase) -> List[np.ndarray]:
    """The case's deterministic token batches (seeded, one per step)."""
    rng = np.random.default_rng(case.seed)
    return [
        rng.integers(0, case.vocab, size=(case.batch, case.seq + 1))
        for _ in range(case.steps)
    ]


@dataclass
class GoldenArtifacts:
    """What the single-rank reference run produced."""

    losses: List[float]
    first_step_grads: Dict[str, np.ndarray]
    final_grads: Dict[str, Optional[np.ndarray]]
    params: Dict[str, np.ndarray]


@dataclass
class ElasticArtifacts:
    """What the resize-injected elastic run produced."""

    #: Raw step/loss history (replayed steps appear twice).
    steps: List[int]
    losses: List[float]
    #: Steps at which a ResizeEvent fired and was absorbed.
    resizes: List[int]
    #: One report per actual re-partition (size-changing resumes).
    reshard_reports: List[object]
    reshard_bytes: float
    reshard_seconds: float

    def final_losses(self) -> Dict[int, float]:
        """Last recorded loss per step (replays overwrite)."""
        final: Dict[int, float] = {}
        for step, loss in zip(self.steps, self.losses):
            final[step] = loss
        return final


@dataclass
class RunArtifacts:
    """Everything the invariants inspect about one case run."""

    case: VerifyCase
    losses: List[float]
    lm_losses: List[float]
    aux_losses: List[float]
    grad_norms: List[float]
    first_step_grads: Dict[str, np.ndarray]
    final_grads: Dict[str, Optional[np.ndarray]]
    params: Dict[str, np.ndarray]
    ledger: object
    ledger_total_bytes: float
    ledger_counts: Dict[str, int]
    #: Per-layer EP dispatch telemetry (None for non-EP layers).
    telemetry: List[Optional[dict]] = field(default_factory=list)
    #: Loud diagnostics for layers that *should* have produced
    #: telemetry but didn't (EP cases after a forward ran).  The
    #: telemetry-consuming invariants fail on these instead of passing
    #: vacuously on an all-``None`` telemetry list.
    telemetry_missing: List[str] = field(default_factory=list)
    #: Per-layer op execution order from the DAG backend (empty for
    #: engine-backend runs) — checked against the overlap schedule by
    #: the ``dag_schedule_conformance`` invariant.
    executed_ops: List[List[str]] = field(default_factory=list)
    #: Per-layer tile-granular execution streams (``<op>#t<i>`` names,
    #: §4.2) from tiled DAG runs — checked by ``tile_conformance``.
    #: Empty for untiled/engine-backend runs.
    executed_tiles: List[List[str]] = field(default_factory=list)
    golden: Optional[GoldenArtifacts] = None
    twin: Optional["RunArtifacts"] = None
    #: The legacy-backend twin of a DAG-backend case run.
    engine_twin: Optional["RunArtifacts"] = None
    #: The resize-injected elastic run of a ``case.resize`` case.
    elastic: Optional[ElasticArtifacts] = None


@dataclass
class CaseResult:
    """One case's conformance outcome across all invariants."""

    case: VerifyCase
    outcomes: List[InvariantResult]

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def failures(self) -> List[InvariantResult]:
        """The invariant outcomes that failed for this case."""
        return [o for o in self.outcomes if o.status == "fail"]

    def outcome(self, name: str) -> InvariantResult:
        """This case's outcome for one invariant name."""
        for o in self.outcomes:
            if o.name == name:
                return o
        raise KeyError(f"no invariant {name!r} in this result")


@dataclass
class ConformanceReport:
    """The conformance matrix over a list of cases."""

    results: List[CaseResult]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def failures(self) -> List[CaseResult]:
        """The cases with at least one failing invariant."""
        return [r for r in self.results if not r.ok]

    def render(self) -> str:
        """Cases × invariants matrix (pass/FAIL/skip) for terminals."""
        if not self.results:
            return "(no cases run)"
        names = [o.name for o in self.results[0].outcomes]
        id_width = max(len("case"),
                       max(len(r.case.case_id) for r in self.results))
        col_widths = [max(len(n), 4) for n in names]
        lines = ["=== conformance matrix ==="]
        header = f"{'case':{id_width}s}"
        for name, width in zip(names, col_widths):
            header += f" {name:>{width}s}"
        lines.append(header)
        marks = {"pass": "pass", "fail": "FAIL", "skip": "-"}
        for result in self.results:
            row = f"{result.case.case_id:{id_width}s}"
            for outcome, width in zip(result.outcomes, col_widths):
                row += f" {marks[outcome.status]:>{width}s}"
            lines.append(row)
        lines.append(
            f"{len(self.results)} cases, "
            f"{sum(1 for r in self.results if r.ok)} conformant, "
            f"{len(self.failures())} failing"
        )
        for result in self.failures():
            for outcome in result.failures():
                lines.append(
                    f"FAIL {result.case.case_id} :: {outcome.name}: "
                    f"{outcome.detail}"
                )
        return "\n".join(lines)


def _snapshot_grads(model) -> Dict[str, Optional[np.ndarray]]:
    return {
        name: (None if p.grad is None else p.grad.copy())
        for name, p in model.named_parameters()
    }


def _snapshot_params(model) -> Dict[str, np.ndarray]:
    return {name: p.data.copy() for name, p in model.named_parameters()}


def _run_parallel(case: VerifyCase,
                  world_setup: Optional[Callable[[World], None]] = None
                  ) -> RunArtifacts:
    """Run the case's parallel plan and capture artifacts."""
    model = MoETransformer(case.model_config(), seed=case.seed,
                           dtype=np.float64)
    world = World(case.ranks, case.ranks)
    if world_setup is not None:
        world_setup(world)
    train = case.train_config()
    trainer = MegaScaleTrainer(
        model, world, case.parallel_config(), train,
        optimizer=AdamW(model.parameters(), lr=_LEARNING_RATE),
    )
    losses: List[float] = []
    lm_losses: List[float] = []
    aux_losses: List[float] = []
    grad_norms: List[float] = []
    first_grads: Dict[str, np.ndarray] = {}
    for step, batch in enumerate(_batches(case)):
        result = trainer.train_step(batch)
        losses.append(result.loss)
        lm_losses.append(result.lm_loss)
        aux_losses.append(result.aux_loss)
        grad_norms.append(result.grad_norm)
        if step == 0:
            first_grads = {
                name: grad for name, grad
                in _snapshot_grads(model).items() if grad is not None
            }
    telemetry: List[Optional[dict]] = []
    telemetry_missing: List[str] = []
    for layer, engine in enumerate(trainer.engines):
        ffn_engine = getattr(engine, "ffn_engine", None)
        tele = getattr(ffn_engine, "last_telemetry", None)
        telemetry.append(tele)
        # EP layers must surface dispatch telemetry once a forward has
        # run; a silent ``None`` here used to make the token/router
        # conservation invariants pass vacuously.
        if case.ffn == "ep" and losses and tele is None:
            telemetry_missing.append(
                f"layer {layer}: "
                f"{type(engine).__name__}.ffn_engine "
                f"({type(ffn_engine).__name__}) exposed no dispatch "
                f"telemetry after {len(losses)} training steps"
            )
    executed_ops = [
        list(engine.last_executed_ops)
        for engine in trainer.engines
        if getattr(engine, "last_executed_ops", None)
    ]
    executed_tiles = [
        list(engine.last_executed_tiles)
        for engine in trainer.engines
        if getattr(engine, "last_executed_tiles", None)
    ]
    return RunArtifacts(
        case=case,
        losses=losses,
        lm_losses=lm_losses,
        aux_losses=aux_losses,
        grad_norms=grad_norms,
        first_step_grads=first_grads,
        final_grads=_snapshot_grads(model),
        params=_snapshot_params(model),
        ledger=world.ledger,
        ledger_total_bytes=world.ledger.total_bytes(),
        ledger_counts=world.ledger.counts(),
        telemetry=telemetry,
        telemetry_missing=telemetry_missing,
        executed_ops=executed_ops,
        executed_tiles=executed_tiles,
    )


def _run_golden(case: VerifyCase) -> GoldenArtifacts:
    """The single-rank reference: same seeds, same optimizer schedule."""
    model = MoETransformer(case.model_config(), seed=case.seed,
                           dtype=np.float64)
    optimizer = AdamW(model.parameters(), lr=_LEARNING_RATE)
    losses: List[float] = []
    first_grads: Dict[str, np.ndarray] = {}
    for step, batch in enumerate(_batches(case)):
        model.zero_grad()
        loss = model.language_model_loss(batch, aux_coeff=_AUX_COEFF)
        loss.backward()
        clip_grad_norm(model.parameters(), _GRAD_CLIP)
        if step == 0:
            first_grads = {
                name: grad for name, grad
                in _snapshot_grads(model).items() if grad is not None
            }
        optimizer.step()
        losses.append(loss.item())
    return GoldenArtifacts(
        losses=losses,
        first_step_grads=first_grads,
        final_grads=_snapshot_grads(model),
        params=_snapshot_params(model),
    )


def _run_elastic(case: VerifyCase) -> ElasticArtifacts:
    """Run the case's resize schedule through an ElasticRunner.

    Same model seed, same batches, same optimizer schedule as the
    fixed-size case run — only the world shrinks and grows per
    ``case.resize``, so any trajectory difference beyond summation
    order is a resharding bug.
    """
    import shutil
    import tempfile

    from ..core.config import ParallelConfig
    from ..core.runner import FaultInjector
    from ..elastic.layout import ParallelLayout
    from ..elastic.runner import ElasticRunner

    def layout_at(ranks: int) -> ParallelLayout:
        return ParallelLayout.from_parallel_config(ParallelConfig(
            ranks, attention=case.attention, ffn=case.ffn,
            ep_dispatch=case.ep_dispatch,
        ))

    def factory(layout: ParallelLayout):
        sized = case.replace(ranks=layout.world_size, resize=())
        model = MoETransformer(case.model_config(), seed=case.seed,
                               dtype=np.float64)
        return MegaScaleTrainer(
            model, World(sized.ranks, sized.ranks),
            sized.parallel_config(), sized.train_config(),
            optimizer=AdamW(model.parameters(), lr=_LEARNING_RATE),
        )

    tmpdir = tempfile.mkdtemp(prefix="repro-elastic-")
    try:
        runner = ElasticRunner(factory, layout_at(case.ranks), tmpdir,
                               checkpoint_interval=1)
        injector = FaultInjector(resize_steps={
            step: layout_at(new_ranks)
            for step, new_ranks in case.resize
        })
        metrics = runner.run(_batches(case), injector)
        return ElasticArtifacts(
            steps=list(metrics.steps),
            losses=list(metrics.losses),
            resizes=list(metrics.resizes),
            reshard_reports=list(runner.reshard_reports),
            reshard_bytes=metrics.reshard_bytes,
            reshard_seconds=metrics.reshard_seconds,
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


def run_case(case: VerifyCase,
             world_setup: Optional[Callable[[World], None]] = None,
             ) -> CaseResult:
    """Run one case differentially and evaluate every invariant.

    ``world_setup`` (e.g. attaching a
    :class:`~repro.ft.faults.FaultPlan`) applies to the case run only —
    the golden run has no world and the sequential twin stays clean, so
    an injected perturbation must be *caught* by the invariants rather
    than silently reproduced on both sides of the diff.
    """
    artifacts = _run_parallel(case, world_setup)
    if case.dropout == 0.0:
        artifacts.golden = _run_golden(case)
    if case.execution == "threaded":
        artifacts.twin = _run_parallel(case.twin_sequential())
    if case.backend == "dag":
        artifacts.engine_twin = _run_parallel(case.twin_engine())
    if case.resize:
        artifacts.elastic = _run_elastic(case)
    outcomes: List[InvariantResult] = []
    for invariant in registered_invariants():
        if not invariant.applies(case):
            outcomes.append(InvariantResult(invariant.name, "skip"))
            continue
        violations = invariant.check(artifacts)
        if violations:
            outcomes.append(InvariantResult(
                invariant.name, "fail", "; ".join(violations)))
        else:
            outcomes.append(InvariantResult(invariant.name, "pass"))
    return CaseResult(case=case, outcomes=outcomes)


@dataclass
class ServeArtifacts:
    """Everything the serve invariants inspect about one serving run."""

    case: object
    requests: List[object]
    #: The continuous-batched run under the case's placement/faults.
    result: object
    #: The unbatched sequential golden replay of the same trace.
    golden: object
    ledger_by_tag: Dict[str, float]
    ledger_counts: Dict[str, int]
    #: Post-shutdown KV block accounting (in_use / allocated / freed).
    allocator: Dict[str, int]
    #: Per-thread open-span depth at shutdown.
    thread_stacks: Dict[int, int]
    shutdown_error: str = ""


def run_serve_case(case) -> CaseResult:
    """Run one :class:`~repro.verify.cases.ServeCase` differentially.

    The case's trace runs through the continuous batcher (with the
    case's fault plan, if any), then through the unbatched sequential
    golden decoder; the ``serve_*`` registry checks per-request bitwise
    equality, ledger balance, and the leak contract.
    """
    from ..obs.tracer import Tracer
    from ..serve.arrivals import VirtualClock
    from ..serve.scheduler import ServeEngine, golden_decode
    from .invariants import registered_serve_invariants

    model = MoETransformer(case.model_config(), seed=case.seed,
                           dtype=np.float64)
    serve_config = case.serve_config()
    world = World(serve_config.world_size)
    if case.crash_at_call is not None:
        from ..ft import FaultPlan, FaultSpec
        world.attach_fault_plan(FaultPlan([
            FaultSpec(kind="crash", at_call=case.crash_at_call)
        ]))
    clock = VirtualClock()
    tracer = Tracer(clock=clock)
    engine = ServeEngine(model, serve_config, world=world,
                         tracer=tracer, clock=clock)
    requests = case.requests()
    result = engine.run(requests)
    shutdown_error = ""
    try:
        engine.shutdown()
    except Exception as exc:  # leak contract feeds the invariant
        shutdown_error = f"{type(exc).__name__}: {exc}"
    golden = golden_decode(model, serve_config, requests)
    artifacts = ServeArtifacts(
        case=case,
        requests=list(requests),
        result=result,
        golden=golden,
        ledger_by_tag=dict(world.ledger.bytes_by_tag()),
        ledger_counts=dict(world.ledger.counts()),
        allocator={
            "in_use": engine.pool.allocator.in_use,
            "allocated_total": engine.pool.allocator.allocated_total,
            "freed_total": engine.pool.allocator.freed_total,
        },
        thread_stacks=dict(tracer.thread_stacks()),
        shutdown_error=shutdown_error,
    )
    outcomes: List[InvariantResult] = []
    for invariant in registered_serve_invariants():
        if not invariant.applies(case):
            outcomes.append(InvariantResult(invariant.name, "skip"))
            continue
        violations = invariant.check(artifacts)
        if violations:
            outcomes.append(InvariantResult(
                invariant.name, "fail", "; ".join(violations)))
        else:
            outcomes.append(InvariantResult(invariant.name, "pass"))
    return CaseResult(case=case, outcomes=outcomes)


def run_serve_matrix(cases: Sequence[object],
                     progress: Optional[Callable[[CaseResult], None]]
                     = None) -> ConformanceReport:
    """Run every serve case; ``progress`` receives results as they
    land.  Returns the same matrix report shape as :func:`run_matrix`
    so `repro verify --serve` renders identically."""
    results = []
    for case in cases:
        result = run_serve_case(case)
        if progress is not None:
            progress(result)
        results.append(result)
    return ConformanceReport(results=results)


def run_matrix(cases: Sequence[VerifyCase],
               progress: Optional[Callable[[CaseResult], None]] = None,
               ) -> ConformanceReport:
    """Run every case; ``progress`` receives each result as it lands."""
    results = []
    for case in cases:
        result = run_case(case)
        if progress is not None:
            progress(result)
        results.append(result)
    return ConformanceReport(results=results)
