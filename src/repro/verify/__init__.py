"""Differential verification: cross-strategy conformance checking.

Every parallel plan in this repo claims to compute the same model as
the single-rank reference.  This package makes that claim executable:

- :mod:`~repro.verify.cases` — frozen :class:`VerifyCase` configs and
  the seeded CI :func:`smoke_matrix`;
- :mod:`~repro.verify.invariants` — the registry of conformance
  invariants (golden closeness with per-format tolerance bands,
  threaded bitwise identity, token/router conservation, Eq. 1–4 comm
  audit, finiteness);
- :mod:`~repro.verify.engine` — runs a case differentially (case run,
  golden run, sequential twin) and evaluates the registry;
- :mod:`~repro.verify.fuzz` — random case sampling plus a greedy
  shrinker that reduces failing configs to minimal reproducers.

Entry point: ``python -m repro verify --smoke``.
"""

from .cases import (
    ServeCase,
    VerifyCase,
    plan_conformance_cases,
    serve_matrix,
    smoke_matrix,
)
from .engine import (
    CaseResult,
    ConformanceReport,
    GoldenArtifacts,
    RunArtifacts,
    ServeArtifacts,
    run_case,
    run_matrix,
    run_serve_case,
    run_serve_matrix,
)
from .fuzz import fuzz, sample_case, shrink
from .invariants import (
    Invariant,
    InvariantResult,
    ToleranceBand,
    register_invariant,
    register_serve_invariant,
    registered_invariants,
    registered_serve_invariants,
    tolerance_for_precision,
)

__all__ = [
    "VerifyCase",
    "ServeCase",
    "smoke_matrix",
    "serve_matrix",
    "plan_conformance_cases",
    "CaseResult",
    "ConformanceReport",
    "GoldenArtifacts",
    "RunArtifacts",
    "ServeArtifacts",
    "run_case",
    "run_matrix",
    "run_serve_case",
    "run_serve_matrix",
    "fuzz",
    "sample_case",
    "shrink",
    "Invariant",
    "InvariantResult",
    "ToleranceBand",
    "register_invariant",
    "register_serve_invariant",
    "registered_invariants",
    "registered_serve_invariants",
    "tolerance_for_precision",
]
