"""MFU, throughput, and training-time accounting (§6.1, Table 3).

Small helpers shared by the benchmark harness: convert between iteration
time, tokens/second, Model FLOPs Utilization, and "days to train 1T
tokens" — the four columns of Table 3.
"""

from __future__ import annotations

from ..core.config import GPUSpec, ModelConfig

__all__ = ["tokens_per_second", "mfu", "days_for_tokens"]

SECONDS_PER_DAY = 86400.0


def tokens_per_second(global_batch_tokens: float,
                      iteration_time: float) -> float:
    """Training throughput from one iteration's tokens and duration."""
    if iteration_time <= 0:
        raise ValueError(f"iteration_time must be > 0, got {iteration_time}")
    return global_batch_tokens / iteration_time


def mfu(model: ModelConfig, gpu: GPUSpec, n_gpus: int,
        throughput_tokens_per_s: float) -> float:
    """Model FLOPs Utilization: achieved training FLOPs over peak."""
    achieved = model.train_flops_per_token() * throughput_tokens_per_s
    return achieved / (n_gpus * gpu.peak_flops)


def days_for_tokens(throughput_tokens_per_s: float,
                    total_tokens: float = 1e12) -> float:
    """Wall-clock days to process ``total_tokens`` (Table 3's last
    column, default 1T)."""
    return total_tokens / throughput_tokens_per_s / SECONDS_PER_DAY
