"""Performance model: kernel timing, system models, MFU accounting."""

from .estimator import (
    AnchorCalibration,
    CalibrationReport,
    KernelModel,
    calibrate_from_spans,
    calibrated_durations,
)
from .mfu import days_for_tokens, mfu, tokens_per_second
from .sm_allocation import (
    SMAllocation,
    fused_kernel_time,
    optimal_sm_fraction,
)
from .systems import (
    IterationBreakdown,
    MegaScalePerfModel,
    MegatronPerfModel,
    SystemPerfModel,
)

__all__ = [
    "KernelModel",
    "AnchorCalibration",
    "CalibrationReport",
    "calibrate_from_spans",
    "calibrated_durations",
    "SMAllocation",
    "fused_kernel_time",
    "optimal_sm_fraction",
    "days_for_tokens",
    "mfu",
    "tokens_per_second",
    "IterationBreakdown",
    "MegaScalePerfModel",
    "MegatronPerfModel",
    "SystemPerfModel",
]
