"""Performance model: kernel timing, system models, MFU accounting."""

from .estimator import KernelModel
from .mfu import days_for_tokens, mfu, tokens_per_second
from .sm_allocation import (
    SMAllocation,
    fused_kernel_time,
    optimal_sm_fraction,
)
from .systems import (
    IterationBreakdown,
    MegaScalePerfModel,
    MegatronPerfModel,
    SystemPerfModel,
)

__all__ = [
    "KernelModel",
    "SMAllocation",
    "fused_kernel_time",
    "optimal_sm_fraction",
    "days_for_tokens",
    "mfu",
    "tokens_per_second",
    "IterationBreakdown",
    "MegaScalePerfModel",
    "MegatronPerfModel",
    "SystemPerfModel",
]
