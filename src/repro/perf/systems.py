"""End-to-end iteration-time models for MegaScale-MoE and Megatron-LM.

Assembles the per-layer operator graphs (:mod:`repro.core.operators`),
the kernel/collective duration oracle (:mod:`repro.perf.estimator`), the
holistic scheduler (:mod:`repro.core.schedule`) and the event simulator
(:mod:`repro.sim.engine`) into one number per training iteration, plus
the breakdown Fig. 12a plots (FlashAttention / GEMM / exposed comm /
others / bubble / DP).

The two systems differ exactly where the paper says they differ:

===============  =========================  ==========================
                 Megatron-LM                MegaScale-MoE
===============  =========================  ==========================
parallelism      TP attention + TP FFN      SP attention + EP FFN
overlap          none (torch.autograd)      inter- + intra-operator
scatter/gather   torch.scatter_add (slow)   custom index-mapped kernels
DP gradients     FP32 reduce-scatter        BF16 all-to-all (§5)
remat            stores all activations     selective remat (§4.1)
===============  =========================  ==========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from typing import Optional

from ..core.cluster import ClusterSpec
from ..core.config import (
    GPUSpec,
    ModelConfig,
    ParallelConfig,
    TrainConfig,
)
from ..core.operators import build_backward_graph, build_forward_graph
from ..core.schedule import HolisticScheduler, OverlapConfig
from ..sim.engine import simulate
from .estimator import CalibrationReport, KernelModel, calibrated_durations

__all__ = ["IterationBreakdown", "SystemPerfModel", "MegatronPerfModel",
           "MegaScalePerfModel"]


@dataclass
class IterationBreakdown:
    """One training iteration, decomposed (seconds, per GPU timeline)."""

    system: str
    iteration_time: float
    attn_time: float
    gemm_time: float
    memory_op_time: float
    exposed_comm_time: float
    bubble_time: float
    dp_exposed_time: float
    optimizer_time: float
    global_batch_tokens: float
    n_gpus: int
    #: Raw per-layer makespans, for debugging and ablations.
    layer_fwd_time: float = 0.0
    layer_bwd_time: float = 0.0

    @property
    def tokens_per_second(self) -> float:
        return self.global_batch_tokens / self.iteration_time

    def mfu(self, model: ModelConfig, gpu: GPUSpec) -> float:
        """Model FLOPs Utilization for this iteration."""
        flops = model.train_flops_per_token() * self.global_batch_tokens
        return flops / (self.iteration_time * self.n_gpus
                        * gpu.peak_flops)

    def fraction(self, attr: str) -> float:
        """One component's share of the iteration time."""
        return getattr(self, attr) / self.iteration_time


@dataclass
class SystemPerfModel:
    """Common machinery; subclasses pin the paper's system differences."""

    name: str = "generic"
    overlap: OverlapConfig = field(default_factory=OverlapConfig.full)
    mem_eff: float = 0.80
    grad_elem_bytes: float = 4.0
    selective_remat: bool = False
    #: Re-run the full layer forward during backward (Megatron's
    #: ``--recompute-granularity full``, needed to fit 352B-scale
    #: activations without selective rematerialization).
    full_recompute: bool = False
    dp_overlap_fraction: float = 0.5
    elem_bytes: float = 2.0
    #: Optional cluster description: collectives then price against the
    #: link tier their group actually crosses, and model-parallel
    #: groups larger than a node spill onto the RDMA tier.
    cluster: Optional[ClusterSpec] = None
    #: Optional span-derived corrections (execute → trace → calibrate):
    #: per-anchor measured/modeled scales applied to every duration the
    #: scheduler and simulator consume.
    calibration: Optional[CalibrationReport] = None

    # -- per-layer -----------------------------------------------------------

    def kernel_model(self, gpu: GPUSpec,
                     mp_group_size: int = 0) -> KernelModel:
        """Duration oracle with this system's memory-op efficiency."""
        return KernelModel(gpu, mem_eff=self.mem_eff,
                           cluster=self.cluster,
                           mp_group_size=mp_group_size)

    def _durations(self, km: KernelModel, graph) -> Dict[str, float]:
        """Modeled durations, calibrated when a report is installed."""
        if self.calibration is not None:
            return calibrated_durations(km, graph, self.calibration)
        return km.durations(graph)

    def layer_timelines(self, model: ModelConfig, parallel: ParallelConfig,
                        micro_batch: int, gpu: GPUSpec):
        """(fwd timeline, bwd timeline) for one MoE layer on one rank."""
        km = self.kernel_model(gpu, parallel.model_parallel_size)
        scheduler = HolisticScheduler(self.overlap)
        fwd = build_forward_graph(model, parallel, micro_batch,
                                  self.elem_bytes)
        bwd = build_backward_graph(model, parallel, micro_batch,
                                   self.elem_bytes,
                                   selective_remat=self.selective_remat)
        tl_fwd = simulate(scheduler.schedule(fwd, self._durations(km, fwd)))
        tl_bwd = simulate(scheduler.schedule(bwd, self._durations(km, bwd)))
        return fwd, bwd, tl_fwd, tl_bwd

    def _kind_times(self, graph, km: KernelModel) -> Dict[str, float]:
        out = {"attn": 0.0, "gemm": 0.0, "memory": 0.0, "comm": 0.0}
        for op in graph:
            out[op.kind if op.kind in out else "memory"] += \
                km.op_duration(op)
        return out

    # -- iteration ------------------------------------------------------------

    def iteration(self, model: ModelConfig, parallel: ParallelConfig,
                  train: TrainConfig, gpu: GPUSpec) -> IterationBreakdown:
        """Full iteration-time model for one (system, job) pair."""
        p = parallel.pipeline_size
        v = parallel.virtual_pipeline_size
        d = parallel.data_parallel_size
        n = parallel.model_parallel_size
        n_gpus = parallel.total_gpus
        micro = train.micro_batch_size
        if train.global_batch_size % (d * micro) != 0:
            raise ValueError(
                f"global batch {train.global_batch_size} not divisible by "
                f"dp×micro = {d}×{micro}"
            )
        m = train.global_batch_size // (d * micro)
        layers_per_stage = model.n_layers / p

        km = self.kernel_model(gpu, parallel.model_parallel_size)
        fwd, bwd, tl_fwd, tl_bwd = self.layer_timelines(
            model, parallel, micro, gpu)
        kinds_f = self._kind_times(fwd, km)
        kinds_b = self._kind_times(bwd, km)
        if self.full_recompute:
            for kind, t in kinds_f.items():
                kinds_b[kind] += t

        # Embedding + LM head on the boundary stages (vocab-parallel).
        tokens_local = micro * model.seq_len / n
        head_flops = 2 * tokens_local * model.hidden_size \
            * model.vocab_size / max(n, 1) * n  # vocab sharded over n
        head_time = head_flops / (gpu.peak_flops * km.gemm_max_eff)
        extras = 3.0 * head_time  # fwd + 2× in backward

        bwd_makespan = tl_bwd.makespan
        if self.full_recompute:
            bwd_makespan += tl_fwd.makespan
        period = (tl_fwd.makespan + bwd_makespan) * layers_per_stage
        period_last = period + extras
        eff_period = max(period, period_last)

        pp_time = eff_period * m
        bubble = eff_period * (p - 1) / max(v, 1)
        compute_total = pp_time + bubble

        # Data-parallel gradient sync across nodes (Appendix A.1 keeps
        # inter-node volume identical for SP and TP attention).
        from ..core.analysis import param_memory_per_gpu
        params_bytes = param_memory_per_gpu(model, parallel)["params"] \
            / 2.0  # params stored at 2 B each, back to parameter count
        grad_bytes = params_bytes * self.grad_elem_bytes
        dp_link = km.inter_link()
        dp_time = (2.0 * grad_bytes * (d - 1) / max(d, 1)
                   / dp_link.bandwidth) if d > 1 else 0.0
        dp_exposed = dp_time * (1.0 - self.dp_overlap_fraction)

        # Optimizer: streaming 18 bytes/param through HBM.
        opt_time = params_bytes * 18.0 / gpu.memory_bandwidth

        total = compute_total + dp_exposed + opt_time

        scale = layers_per_stage * m
        return IterationBreakdown(
            system=self.name,
            iteration_time=total,
            attn_time=(kinds_f["attn"] + kinds_b["attn"]) * scale,
            gemm_time=(kinds_f["gemm"] + kinds_b["gemm"]) * scale
            + extras * m,
            memory_op_time=(kinds_f["memory"] + kinds_b["memory"]) * scale,
            exposed_comm_time=(tl_fwd.exposed_comm + tl_bwd.exposed_comm)
            * scale,
            bubble_time=bubble,
            dp_exposed_time=dp_exposed,
            optimizer_time=opt_time,
            global_batch_tokens=train.global_batch_size * model.seq_len,
            n_gpus=n_gpus,
            layer_fwd_time=tl_fwd.makespan,
            layer_bwd_time=tl_bwd.makespan,
        )


def MegatronPerfModel(**overrides) -> SystemPerfModel:
    """The Megatron-LM baseline as characterized in §3 and §6.1."""
    defaults = dict(
        name="megatron-lm",
        overlap=OverlapConfig.none(),
        mem_eff=0.50,            # torch.scatter_add / torch.gather
        grad_elem_bytes=4.0,     # FP32 gradient reduce-scatter
        selective_remat=False,
        full_recompute=True,     # fits activations at 352B scale
        dp_overlap_fraction=0.5,
    )
    defaults.update(overrides)
    return SystemPerfModel(**defaults)


def MegaScalePerfModel(**overrides) -> SystemPerfModel:
    """MegaScale-MoE with all communication optimizations enabled."""
    defaults = dict(
        name="megascale-moe",
        overlap=OverlapConfig.full(),
        mem_eff=0.85,            # custom CUDA scatter/gather (§3.2)
        grad_elem_bytes=2.0,     # BF16 all-to-all DP compression (§5)
        selective_remat=True,
        dp_overlap_fraction=0.5,
    )
    defaults.update(overrides)
    return SystemPerfModel(**defaults)
