"""SM allocation for fused communication kernels (§4.2).

The paper's A2A+GEMM kernels dedicate "a small number of SMs" to
communication because all-to-all needs SM-driven data movement (unlike
AG/RS, which ride the copy engines), and notes that this number "is
tuned to make communication and computation exhibit similar latency".

This module makes that trade-off explicit:

* giving the comm side a fraction ``f`` of the SMs slows computation to
  ``(1-f)`` of peak while comm throughput scales with ``f`` up to the
  link bandwidth;
* the fused kernel finishes when both sides do, so its duration is
  ``max(compute(f), comm(f))``;
* :func:`optimal_sm_fraction` finds the equalizing ``f`` in closed form
  and :func:`fused_kernel_time` evaluates any allocation, enabling the
  tuning sweep the paper performed by hand.

AG/RS-fused kernels (copy-engine driven) keep all SMs for compute:
``fused_kernel_time(..., copy_engine=True)`` models that case.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.config import GPUSpec

__all__ = ["SMAllocation", "fused_kernel_time", "optimal_sm_fraction"]

#: Per-SM share of peak link throughput an SM-driven copy loop achieves;
#: a handful of SMs saturate NVLink (measured behaviour of Flux-style
#: kernels), so the comm side needs only a small allocation.
SM_COMM_SATURATION_FRACTION = 0.10


@dataclass(frozen=True)
class SMAllocation:
    """One evaluated allocation point."""

    sm_fraction: float
    compute_time: float
    comm_time: float

    @property
    def duration(self) -> float:
        return max(self.compute_time, self.comm_time)


def fused_kernel_time(
    comm_bytes: float,
    flops: float,
    gpu: GPUSpec,
    sm_fraction: float,
    compute_eff: float = 0.35,
    link_eff: float = 0.5,
    copy_engine: bool = False,
) -> SMAllocation:
    """Duration of a tile-fused kernel under an SM split.

    Args:
        comm_bytes: Wire bytes the kernel moves.
        flops: Arithmetic work it performs.
        gpu: Hardware model (peak FLOPs, SM count, NVLink bandwidth).
        sm_fraction: Fraction of SMs given to communication.
        compute_eff: Achieved fraction of peak for the GEMM side.
        link_eff: Achievable fraction of spec NVLink bandwidth.
        copy_engine: If True the transfer rides the copy engines (AG/RS
            case): comm speed is SM-independent and compute keeps every
            SM.
    """
    if not 0.0 <= sm_fraction < 1.0:
        raise ValueError(
            f"sm_fraction must be in [0, 1), got {sm_fraction}"
        )
    bandwidth = gpu.nvlink_bandwidth * link_eff
    if copy_engine:
        compute = flops / (gpu.peak_flops * compute_eff)
        comm = comm_bytes / bandwidth
        return SMAllocation(0.0, compute, comm)

    if sm_fraction == 0.0 and comm_bytes > 0:
        return SMAllocation(0.0, flops / (gpu.peak_flops * compute_eff),
                            float("inf"))
    compute = flops / (gpu.peak_flops * compute_eff * (1 - sm_fraction))
    comm_rate = bandwidth * min(
        1.0, sm_fraction / SM_COMM_SATURATION_FRACTION)
    comm = comm_bytes / comm_rate if comm_bytes else 0.0
    return SMAllocation(sm_fraction, compute, comm)


def optimal_sm_fraction(
    comm_bytes: float,
    flops: float,
    gpu: GPUSpec,
    compute_eff: float = 0.35,
    link_eff: float = 0.5,
) -> SMAllocation:
    """The equalizing allocation (§4.2's hand-tuned operating point).

    Below saturation, comm time falls and compute time rises with
    ``f``; the minimum of their max is where they cross (or at the comm
    saturation point if compute still dominates there).
    """
    sat = SM_COMM_SATURATION_FRACTION
    at_sat = fused_kernel_time(comm_bytes, flops, gpu, sat,
                               compute_eff, link_eff)
    if at_sat.comm_time >= at_sat.compute_time:
        # Comm-bound even with the link saturated: more SMs can't speed
        # the transfer and would only slow compute — stay at saturation.
        return at_sat
    # Compute-bound at saturation: shrink the comm allocation until the
    # two sides balance.  Solve compute(f) == comm(f) on f < sat:
    #   A / (1 - f) = B * sat / f  with A = base compute, B = base comm.
    a = flops / (gpu.peak_flops * compute_eff)
    b = comm_bytes / (gpu.nvlink_bandwidth * link_eff)
    f = b * sat / (a + b * sat)
    f = min(max(f, 1e-6), 0.99)
    return fused_kernel_time(comm_bytes, flops, gpu, f, compute_eff,
                             link_eff)
