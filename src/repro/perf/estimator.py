"""Kernel and collective duration estimation from GPU specifications.

Times every :class:`~repro.core.operators.Op` on a given
:class:`~repro.core.config.GPUSpec` with a roofline model:

* GEMMs run at ``min(peak·eff, mem_bw·intensity)`` — thin shards (e.g.
  TP slicing each expert's intermediate dimension) automatically lose
  efficiency because their arithmetic intensity drops, reproducing the
  GEMM-efficiency argument of §3.2 without a hand-tuned penalty.
* Attention (FlashAttention-style) has its own efficiency cap.
* Memory-bound ops move their bytes at a fraction of HBM bandwidth;
  the fraction is a knob because MegaScale-MoE's custom CUDA
  scatter/gather ops beat ``torch.scatter_add`` (§3.2).
* Collectives use the α–β models of :mod:`repro.comm.cost`; all-to-all
  pays the all-pairs efficiency penalty (Fig. 7); ``comm_scope``
  selects NVLink vs NIC.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from ..comm.cost import (
    LinkSpec,
    tiered_all_to_all_time,
    tiered_ring_time,
)
from ..core.cluster import ClusterSpec
from ..core.config import GPUSpec
from ..core.operators import Op, OpGraph

__all__ = [
    "KernelModel",
    "AnchorCalibration",
    "CalibrationReport",
    "DAG_SPAN_PREFIX",
    "TILE_SPAN_PREFIX",
    "calibrate_from_spans",
    "calibrated_durations",
]


@dataclass
class KernelModel:
    """Per-op duration oracle for one GPU model.

    Attributes:
        gpu: Hardware specification (Table 4).
        gemm_max_eff: Peak fraction a well-shaped GEMM reaches.
        attn_eff: Peak fraction for FlashAttention kernels.
        mem_eff: HBM-bandwidth fraction for memory-bound ops (lower for
            stock ``torch.scatter_add``-style kernels, higher for the
            paper's custom scatter/gather).
        link_eff: Achievable fraction of the spec'd NVLink bandwidth.
        a2a_eff: Additional all-to-all inefficiency vs ring collectives.
        kernel_latency: Fixed launch/dispatch overhead per op.
        cluster: Optional cluster description; when set, collectives
            price against the link tier their group actually crosses
            (MoNTA-style) instead of deriving both tiers from ``gpu``.
        mp_group_size: Size of the model-parallel group the graph's
            "intra"-scoped collectives run over; a group larger than
            the cluster's node size spills onto the inter-node tier.
            0 means "fits in the node" (the legacy assumption).
    """

    gpu: GPUSpec
    gemm_max_eff: float = 0.55
    attn_eff: float = 0.35
    mem_eff: float = 0.80
    link_eff: float = 0.42
    a2a_eff: float = 0.60
    kernel_latency: float = 5e-6
    cluster: Optional[ClusterSpec] = None
    mp_group_size: int = 0
    #: Tile-quantization constants of the shape-efficiency factor
    #: d/(d+c), separately for the row (M) and the weight (N/K)
    #: dimensions: few rows per expert (micro-batch 1) dominate the
    #: grouped-GEMM inefficiency, while thin TP weight shards add a
    #: smaller penalty.  Calibrated once against Table 3's 240-GPU rows.
    shape_tile_rows: float = 512.0
    shape_tile_weights: float = 128.0

    def intra_link(self) -> LinkSpec:
        """The NVLink link as the cost models see it."""
        if self.cluster is not None:
            return self.cluster.intra_link
        return LinkSpec(
            bandwidth=self.gpu.nvlink_bandwidth * self.link_eff,
            latency=1e-5,
            a2a_efficiency=self.a2a_eff,
        )

    def inter_link(self) -> LinkSpec:
        """The inter-node NIC link as the cost models see it."""
        if self.cluster is not None:
            return self.cluster.inter_link
        return LinkSpec(
            bandwidth=self.gpu.nic_bandwidth,
            latency=2e-5,
            a2a_efficiency=self.a2a_eff,
        )

    def _mp_spans_nodes(self) -> bool:
        """Does the model-parallel group spill past the NVLink domain?"""
        return (self.cluster is not None and self.mp_group_size
                > self.cluster.gpus_per_node)

    def op_duration(self, op: Op) -> float:
        """Seconds for one op on one rank."""
        if op.kind == "comm":
            return self._comm_duration(op)
        if op.kind == "gemm":
            eff = self.gemm_max_eff * self._shape_factor(op.gemm_shape)
            compute = op.flops / (self.gpu.peak_flops * eff)
            memory = op.mem_bytes / self.gpu.memory_bandwidth
            return max(compute, memory) + self.kernel_latency
        if op.kind == "attn":
            compute = op.flops / (self.gpu.peak_flops * self.attn_eff)
            memory = op.mem_bytes / self.gpu.memory_bandwidth
            return max(compute, memory) + self.kernel_latency
        # memory-bound
        return (op.mem_bytes / (self.gpu.memory_bandwidth * self.mem_eff)
                + self.kernel_latency)

    def _comm_duration(self, op: Op) -> float:
        if op.comm_scope != "inter" and self._mp_spans_nodes():
            # An "intra"-scoped collective whose group spans nodes pays
            # the tier each byte actually crosses (MoNTA accounting).
            assert self.cluster is not None
            n, r = self.mp_group_size, self.cluster.gpus_per_node
            intra, inter = self.intra_link(), self.inter_link()
            if op.comm_pattern == "a2a":
                return tiered_all_to_all_time(op.comm_bytes, n, r,
                                              intra, inter)
            # comm_bytes = (n-1) × shard; recover the full tensor size
            # the tiered ring model expects.
            total = op.comm_bytes * n / max(n - 1, 1)
            return tiered_ring_time(total, n, r, intra, inter)
        link = (self.inter_link() if op.comm_scope == "inter"
                else self.intra_link())
        if op.comm_pattern == "a2a":
            # comm_bytes already includes the (n-1)/n self-exclusion.
            return (op.comm_bytes / (link.bandwidth * link.a2a_efficiency)
                    + link.latency)
        # Ring AG/RS/AR: comm_bytes = (n-1) × shard, moved at link speed.
        return op.comm_bytes / link.bandwidth + link.latency

    def durations(self, graph: OpGraph) -> Dict[str, float]:
        """Duration map for a whole operator graph."""
        return {op.name: self.op_duration(op) for op in graph}

    def _shape_factor(self, shape) -> float:
        m, k, n = shape
        if not (m and k and n):
            return 1.0
        cm, cw = self.shape_tile_rows, self.shape_tile_weights
        return (m / (m + cm)) * (k / (k + cw)) * (n / (n + cw))

    def gemm_efficiency(self, rows: float, k_dim: float,
                        n_dim: float) -> float:
        """Achieved peak fraction of an ``[rows,k]×[k,n]`` GEMM.

        Combines the shape (tile-quantization) factor with the roofline:
        thin shards — e.g. TP slicing ``h_ffn`` to ``h_ffn/n`` — lose
        efficiency on both counts, which is the §3.2 argument for EP.
        """
        flops = 2.0 * rows * k_dim * n_dim
        bytes_moved = 2.0 * (rows * k_dim + k_dim * n_dim + rows * n_dim)
        intensity = flops / bytes_moved
        roof = intensity * self.gpu.memory_bandwidth / self.gpu.peak_flops
        return min(self.gemm_max_eff * self._shape_factor(
            (rows, k_dim, n_dim)), roof)


# -- span-driven calibration --------------------------------------------------
#
# The DAG executor emits one tracer span per binding ("dag.op:<anchor>"
# with an ``ops`` attribute listing the graph ops the binding covers).
# These spans measure what actually ran, so they can pull the roofline
# model toward reality: per-anchor measured/predicted ratios become
# multiplicative corrections on the modeled durations the scheduler and
# simulator consume.  On this numpy testbed the "measured" times are
# wall-clock of the simulation itself — the value here is the closed
# loop (execute → trace → calibrate → re-simulate), which is exactly
# how the real system would be tuned against profiler output.

#: Span-name prefix the DAG executor uses for per-binding spans.
DAG_SPAN_PREFIX = "dag.op:"

#: Span-name prefix the chunked collectives use for per-tile spans
#: (``dag.tile:<op>#t<i>``, §4.2).  Calibrating a *tile graph* against
#: these spans fits each comm tile sub-op directly; ``dag.op:`` spans
#: whose covered base ops were tile-decomposed expand to all their
#: sub-ops, so atomic compute bindings calibrate their tiles too.
TILE_SPAN_PREFIX = "dag.tile:"


def _expand_to_graph_ops(graph: OpGraph, names) -> Tuple[str, ...]:
    """Map span-attr op names onto graph members, expanding a base op
    that was tile-decomposed (absent, but with ``<name>#t0`` present)
    to all its tile sub-ops."""
    from ..core.operators import tile_name
    ops = []
    for o in names:
        if o in graph:
            ops.append(o)
            continue
        i = 0
        while tile_name(o, i) in graph:
            ops.append(tile_name(o, i))
            i += 1
    return tuple(ops)


@dataclass(frozen=True)
class AnchorCalibration:
    """Measured-vs-modeled timing for one executed binding anchor."""

    anchor: str
    ops: Tuple[str, ...]
    samples: int
    measured: float  #: mean measured seconds per occurrence
    predicted: float  #: modeled seconds summed over the covered ops

    @property
    def scale(self) -> float:
        """Multiplicative correction measured/predicted (1.0 if
        the model predicts zero time)."""
        if self.predicted <= 0.0:
            return 1.0
        return self.measured / self.predicted


@dataclass
class CalibrationReport:
    """Per-anchor corrections derived from one traced DAG run."""

    anchors: Dict[str, AnchorCalibration] = field(default_factory=dict)
    #: op name -> owning anchor (ops never traced fall back to the
    #: median scale across anchors).
    op_anchor: Dict[str, str] = field(default_factory=dict)

    @property
    def default_scale(self) -> float:
        """Median anchor scale — the fallback for untraced ops."""
        scales = [a.scale for a in self.anchors.values()]
        return statistics.median(scales) if scales else 1.0

    def scale_for(self, op_name: str) -> float:
        """The correction factor to apply to one op's modeled time."""
        anchor = self.op_anchor.get(op_name)
        if anchor is None:
            return self.default_scale
        return self.anchors[anchor].scale


def calibrate_from_spans(model: KernelModel, graph: OpGraph,
                         spans: Iterable,
                         prefix: str = DAG_SPAN_PREFIX
                         ) -> CalibrationReport:
    """Fit per-anchor corrections from DAG-executor tracer spans.

    ``spans`` is any iterable of closed
    :class:`~repro.obs.tracer.Span`-like objects (``name``,
    ``duration``, ``attrs``); spans whose name does not start with
    ``prefix`` are ignored, so the whole ``tracer.spans`` list can be
    passed directly.  Multiple occurrences of one anchor (layers,
    steps) average into a single measurement.
    """
    measured: Dict[str, list] = {}
    covered: Dict[str, Tuple[str, ...]] = {}
    for span in spans:
        name = getattr(span, "name", "")
        if not name.startswith(prefix) or not getattr(span, "closed",
                                                     True):
            continue
        anchor = name[len(prefix):]
        measured.setdefault(anchor, []).append(float(span.duration))
        ops = _expand_to_graph_ops(
            graph, str(span.attrs.get("ops", anchor)).split(","))
        covered[anchor] = ops or covered.get(anchor, ())
    report = CalibrationReport()
    for anchor, durations in sorted(measured.items()):
        ops = covered.get(anchor, ())
        predicted = sum(model.op_duration(graph[o]) for o in ops)
        report.anchors[anchor] = AnchorCalibration(
            anchor=anchor, ops=ops, samples=len(durations),
            measured=sum(durations) / len(durations),
            predicted=predicted,
        )
        for op_name in ops:
            report.op_anchor[op_name] = anchor
    return report


def calibrated_durations(model: KernelModel, graph: OpGraph,
                         report: CalibrationReport) -> Dict[str, float]:
    """:meth:`KernelModel.durations` with per-anchor corrections
    applied — drop-in for the scheduler/simulator duration map."""
    return {
        op.name: model.op_duration(op) * report.scale_for(op.name)
        for op in graph
    }
