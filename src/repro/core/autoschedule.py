"""Automatic operator scheduling — the §7 future-work direction.

The paper invests "substantial engineering efforts in inter-operator
communication-computation overlap, including determining operator
execution order, concurrency ... As training progresses and experience
accumulates, we seek to automate operator scheduling within the search
space ... We leave automatic optimization for future work."

This module implements that future work for the simulated substrate: a
randomized local-search scheduler that perturbs operator priorities and
keeps improvements, using the event simulator as its objective.  It is
seeded and budgeted, and — by construction — never returns a schedule
worse than the hand-tailored holistic one it starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..sim.engine import SimTask, simulate
from .cluster import ClusterSpec
from .config import ModelConfig, TrainConfig
from .operators import OpGraph, build_backward_graph, build_forward_graph
from .schedule import HolisticScheduler, OverlapConfig

__all__ = ["AutoScheduler", "AutoScheduleResult", "PlanScheduleResult",
           "optimize_plan"]


@dataclass
class AutoScheduleResult:
    """Outcome of a search run."""

    tasks: List[SimTask]
    makespan: float
    baseline_makespan: float
    evaluations: int
    improved: bool

    @property
    def gain(self) -> float:
        if self.baseline_makespan == 0:
            return 0.0
        return 1.0 - self.makespan / self.baseline_makespan


class AutoScheduler:
    """Priority-perturbation local search over stream orderings.

    The schedule space is parameterized by a per-op priority vector: a
    deterministic list scheduler orders each stream's queue by priority
    (respecting dependencies), and the event simulator scores the
    result.  Search = iterated random perturbation with greedy
    acceptance, seeded for reproducibility.
    """

    def __init__(self, overlap: OverlapConfig = OverlapConfig.full(),
                 budget: int = 200, seed: int = 0,
                 perturbation: float = 0.25):
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.overlap = overlap
        self.budget = budget
        self.seed = seed
        self.perturbation = perturbation

    def optimize(self, graph: OpGraph,
                 durations: Dict[str, float]) -> AutoScheduleResult:
        """Search for a faster schedule than the holistic baseline."""
        baseline_tasks = HolisticScheduler(self.overlap).schedule(
            graph, durations)
        baseline = simulate(baseline_tasks).makespan

        rng = np.random.default_rng(self.seed)
        names = [t.name for t in baseline_tasks]
        base_priority = {name: float(i) for i, name in enumerate(names)}

        best_tasks = baseline_tasks
        best = baseline
        evaluations = 1
        priority = dict(base_priority)
        for _ in range(self.budget):
            candidate = {
                name: p + rng.normal(0.0, self.perturbation * len(names))
                for name, p in priority.items()
            }
            tasks = _reorder_by_priority(baseline_tasks, candidate)
            if tasks is None:
                continue
            makespan = simulate(tasks).makespan
            evaluations += 1
            if makespan < best:
                best = makespan
                best_tasks = tasks
                priority = candidate  # walk from the improvement
        return AutoScheduleResult(
            tasks=best_tasks,
            makespan=best,
            baseline_makespan=baseline,
            evaluations=evaluations,
            improved=best < baseline - 1e-12,
        )


def _reorder_by_priority(tasks: List[SimTask],
                         priority: Dict[str, float]
                         ) -> Optional[List[SimTask]]:
    """Topological order honoring priorities; None if infeasible."""
    by_name = {t.name: t for t in tasks}
    indegree = {t.name: 0 for t in tasks}
    children: Dict[str, List[str]] = {t.name: [] for t in tasks}
    for t in tasks:
        for dep in t.deps:
            if dep not in by_name:
                return None
            indegree[t.name] += 1
            children[dep].append(t.name)

    ready = [name for name, deg in indegree.items() if deg == 0]
    out: List[SimTask] = []
    while ready:
        # Tie-break equal priorities by name: dict insertion order is
        # an accident of graph construction and made search results
        # unstable across runs.
        ready.sort(key=lambda n: (priority.get(n, 0.0), n))
        name = ready.pop(0)
        out.append(by_name[name])
        for child in children[name]:
            indegree[child] -= 1
            if indegree[child] == 0:
                ready.append(child)
    if len(out) != len(tasks):
        return None
    return out


@dataclass
class PlanScheduleResult:
    """Best plan, then best schedule within it (§7 composed search).

    ``plan`` is the winning point of the plan space; ``fwd``/``bwd``
    are the op-priority local-search results over that plan's layer
    graphs, evaluated with the same (optionally span-calibrated)
    durations the plan was priced with.
    """

    plan: object  # PlanSearchResult
    fwd: AutoScheduleResult
    bwd: AutoScheduleResult
    calibrated: bool = False

    @property
    def layer_gain(self) -> float:
        """Fractional layer-time reduction over the holistic baseline."""
        base = self.fwd.baseline_makespan + self.bwd.baseline_makespan
        if base == 0:
            return 0.0
        return 1.0 - (self.fwd.makespan + self.bwd.makespan) / base


def optimize_plan(
    model: ModelConfig,
    cluster: ClusterSpec,
    train: Optional[TrainConfig] = None,
    budget: int = 200,
    seed: int = 0,
    spans=None,
    calibration=None,
) -> PlanScheduleResult:
    """Search the plan space, then the schedule space of the winner.

    Composes :func:`~repro.core.planner.plan_cluster` (which plan?)
    with :class:`AutoScheduler` (which op order within it?).  When
    ``spans`` from a traced DAG run are supplied, a
    :class:`~repro.perf.estimator.CalibrationReport` is fitted first
    and both searches use calibrated durations — closing the §7
    execute → trace → calibrate → plan loop.
    """
    from ..perf.estimator import calibrate_from_spans, \
        calibrated_durations
    from ..perf.systems import MegaScalePerfModel
    from .planner import plan_cluster

    train = train or TrainConfig()
    probe_cand = None
    if spans is not None and calibration is None:
        # Fit the correction against the hand plan's graph: the span
        # anchors (attention, dispatch, experts, ...) are shared by
        # every candidate's graphs.
        from .planner import enumerate_plans
        feasible = enumerate_plans(model, cluster, train)
        if feasible:
            probe_cand = feasible[0]
            perf = MegaScalePerfModel(cluster=cluster)
            km = perf.kernel_model(
                cluster.bottleneck_gpu(),
                probe_cand.parallel.model_parallel_size)
            graph = build_forward_graph(model, probe_cand.parallel,
                                        train.micro_batch_size,
                                        probe_cand.elem_bytes)
            calibration = calibrate_from_spans(km, graph, spans)

    plan = plan_cluster(model, cluster, train, calibration=calibration)
    best = plan.best.candidate

    perf = MegaScalePerfModel(
        cluster=cluster,
        selective_remat=best.remat == "selective",
        elem_bytes=best.elem_bytes,
    )
    km = perf.kernel_model(cluster.bottleneck_gpu(),
                           best.parallel.model_parallel_size)
    fwd = build_forward_graph(model, best.parallel,
                              train.micro_batch_size, best.elem_bytes)
    bwd = build_backward_graph(model, best.parallel,
                               train.micro_batch_size, best.elem_bytes,
                               selective_remat=best.remat == "selective")

    def _durations(graph: OpGraph) -> Dict[str, float]:
        if calibration is not None:
            return calibrated_durations(km, graph, calibration)
        return km.durations(graph)

    scheduler = AutoScheduler(budget=budget, seed=seed)
    return PlanScheduleResult(
        plan=plan,
        fwd=scheduler.optimize(fwd, _durations(fwd)),
        bwd=scheduler.optimize(bwd, _durations(bwd)),
        calibrated=calibration is not None,
    )
