"""Cluster description for the plan-space optimizer.

A :class:`ClusterSpec` is the typed "describe cluster" input of the
``repro plan`` pipeline: nodes × :class:`~repro.core.config.GPUSpec`
with the two link tiers every collective crosses — intra-node NVLink
and inter-node RDMA — as explicit :class:`~repro.comm.cost.LinkSpec`
values.  Heterogeneous fleets (mixed H800/A100/H20 nodes, Table 4 of
the Megatron Core efficiency report) are first-class: a node list may
mix GPU models, and synchronous training is paced by the slowest
member, so :meth:`ClusterSpec.bottleneck_gpu` is what the cost models
price compute against.

The tier selection rule is MoNTA's network-traffic-aware view: a
communication group that fits inside one node crosses only NVLink; a
group that spans nodes pays the RDMA tier for its cross-node share
(:meth:`cross_node_fraction`), which is why the planner prefers expert
placements that keep all-to-all traffic inside the node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from ..comm.cost import LinkSpec
from .config import GPU_SPECS, GPUSpec

__all__ = ["ClusterSpec", "default_intra_link", "default_inter_link"]

#: Achievable fraction of spec'd NVLink bandwidth (matches
#: :class:`~repro.perf.estimator.KernelModel.link_eff`).
_NVLINK_EFF = 0.42
#: All-to-all efficiency vs ring traffic (§3.2, Fig. 7).
_A2A_EFF = 0.60


def default_intra_link(gpu: GPUSpec) -> LinkSpec:
    """The NVLink tier a GPU model offers, as the cost models see it."""
    return LinkSpec(bandwidth=gpu.nvlink_bandwidth * _NVLINK_EFF,
                    latency=1e-5, a2a_efficiency=_A2A_EFF)


def default_inter_link(gpu: GPUSpec) -> LinkSpec:
    """The inter-node RDMA tier a GPU model's NIC offers."""
    return LinkSpec(bandwidth=gpu.nic_bandwidth, latency=2e-5,
                    a2a_efficiency=_A2A_EFF)


@dataclass(frozen=True)
class ClusterSpec:
    """One training cluster: nodes × GPUs with tiered links.

    Attributes:
        name: Human-readable cluster label.
        gpus_per_node: Ranks per node (the NVLink domain size).
        node_gpus: GPU model name per node, in node order; mixed models
            describe a heterogeneous fleet.  Names resolve through
            :data:`~repro.core.config.GPU_SPECS`.
        intra_link: The NVLink tier (per-rank effective bandwidth).
        inter_link: The RDMA/NIC tier crossing node boundaries.
    """

    name: str
    gpus_per_node: int
    node_gpus: Tuple[str, ...]
    intra_link: LinkSpec = field(default=None)  # type: ignore[assignment]
    inter_link: LinkSpec = field(default=None)  # type: ignore[assignment]

    def __post_init__(self):
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if not self.node_gpus:
            raise ValueError("node_gpus must name at least one node")
        unknown = sorted(set(self.node_gpus) - set(GPU_SPECS))
        if unknown:
            raise ValueError(
                f"unknown GPU models {unknown}; known: "
                f"{sorted(GPU_SPECS)}"
            )
        # Default link tiers derive from the slowest member's hardware
        # (a mixed ring runs at its weakest link).
        if self.intra_link is None:
            object.__setattr__(
                self, "intra_link", default_intra_link(
                    self.bottleneck_gpu()))
        if self.inter_link is None:
            object.__setattr__(
                self, "inter_link", default_inter_link(
                    self.bottleneck_gpu()))

    # -- shape ---------------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self.node_gpus)

    @property
    def n_gpus(self) -> int:
        return self.n_nodes * self.gpus_per_node

    @property
    def is_heterogeneous(self) -> bool:
        return len(set(self.node_gpus)) > 1

    def gpu(self, node: int) -> GPUSpec:
        """The GPU model installed in one node."""
        return GPU_SPECS[self.node_gpus[node]]

    def bottleneck_gpu(self) -> GPUSpec:
        """The spec synchronous training actually runs at.

        Lock-step data/pipeline parallelism is paced by the slowest
        participant, and capacity is bounded by the smallest HBM, so a
        heterogeneous fleet prices as the element-wise minimum of its
        members (Megatron Core report, Table 4 mixed-fleet rows).
        """
        gpus = [GPU_SPECS[name] for name in set(self.node_gpus)]
        if len(gpus) == 1:
            return gpus[0]
        return GPUSpec(
            name="min(" + ",".join(sorted(set(self.node_gpus))) + ")",
            peak_flops=min(g.peak_flops for g in gpus),
            memory_bytes=min(g.memory_bytes for g in gpus),
            memory_bandwidth=min(g.memory_bandwidth for g in gpus),
            nvlink_bandwidth=min(g.nvlink_bandwidth for g in gpus),
            nic_bandwidth=min(g.nic_bandwidth for g in gpus),
            sm_count=min(g.sm_count for g in gpus),
        )

    # -- tier selection (MoNTA) ----------------------------------------------

    def spans_nodes(self, group_size: int) -> bool:
        """Does a communication group of this size cross node boundaries?"""
        return group_size > self.gpus_per_node

    def link_for_group(self, group_size: int) -> LinkSpec:
        """The link tier a group's collectives actually cross."""
        return (self.inter_link if self.spans_nodes(group_size)
                else self.intra_link)

    def cross_node_fraction(self, group_size: int) -> float:
        """Fraction of a group's all-to-all peer traffic crossing nodes.

        A rank in a group of ``g`` spanning nodes of ``r`` ranks talks
        to ``g - 1`` peers, of which ``g - r`` sit on other nodes; with
        uniform routing that share of the dispatch bytes pays the RDMA
        tier.  Zero for groups that fit inside a node.
        """
        g, r = group_size, self.gpus_per_node
        if g <= r or g <= 1:
            return 0.0
        return (g - r) / (g - 1)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def homogeneous(gpu: str = "h800", n_nodes: int = 1,
                    gpus_per_node: int = 8,
                    name: str = "") -> "ClusterSpec":
        """A uniform fleet of one GPU model with derived link tiers."""
        return ClusterSpec(
            name=name or f"{n_nodes}x{gpus_per_node}x{gpu}",
            gpus_per_node=gpus_per_node,
            node_gpus=(gpu,) * n_nodes,
        )

    def replace(self, **changes) -> "ClusterSpec":
        """A copy with fields replaced (validation re-runs)."""
        return replace(self, **changes)

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "gpus_per_node": self.gpus_per_node,
            "node_gpus": list(self.node_gpus),
            "intra_link": _link_to_dict(self.intra_link),
            "inter_link": _link_to_dict(self.inter_link),
        }

    @staticmethod
    def from_dict(payload: Dict) -> "ClusterSpec":
        """Build a spec from a :meth:`to_dict`-shaped payload."""
        try:
            node_gpus = tuple(payload["node_gpus"])
            gpus_per_node = int(payload["gpus_per_node"])
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"cluster spec needs 'node_gpus' and 'gpus_per_node': "
                f"{exc}"
            ) from None
        return ClusterSpec(
            name=str(payload.get("name", "cluster")),
            gpus_per_node=gpus_per_node,
            node_gpus=node_gpus,
            intra_link=_link_from_dict(payload.get("intra_link")),
            inter_link=_link_from_dict(payload.get("inter_link")),
        )

    def to_json(self) -> str:
        """The spec as pretty-printed JSON (``--cluster`` file format)."""
        return json.dumps(self.to_dict(), indent=1, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> "ClusterSpec":
        """Parse a spec from :meth:`to_json` output."""
        return ClusterSpec.from_dict(json.loads(text))

    @staticmethod
    def load(path: str) -> "ClusterSpec":
        with open(path) as handle:
            return ClusterSpec.from_dict(json.load(handle))

    def describe(self) -> str:
        """One-line cluster summary for plan output."""
        models = ",".join(sorted(set(self.node_gpus)))
        tier = (f"NVLink {self.intra_link.bandwidth / 1e9:.0f}GB/s / "
                f"RDMA {self.inter_link.bandwidth / 1e9:.0f}GB/s")
        kind = "mixed" if self.is_heterogeneous else "uniform"
        return (f"{self.name}: {self.n_nodes} nodes x "
                f"{self.gpus_per_node} GPUs ({kind}: {models}; {tier})")


def _link_to_dict(link: LinkSpec) -> Dict:
    return {"bandwidth": link.bandwidth, "latency": link.latency,
            "a2a_efficiency": link.a2a_efficiency}


def _link_from_dict(payload) -> LinkSpec:
    if payload is None:
        return None  # type: ignore[return-value]
    return LinkSpec(
        bandwidth=float(payload["bandwidth"]),
        latency=float(payload.get("latency", 1e-5)),
        a2a_efficiency=float(payload.get("a2a_efficiency", _A2A_EFF)),
    )
