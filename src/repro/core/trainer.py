"""End-to-end distributed MoE training on simulated ranks.

:class:`MegaScaleTrainer` runs a full :class:`~repro.model.MoETransformer`
through the parallel engines — SP (or TP) attention and EP (or TP) FFN
per layer, sequence-sharded activations, replicated embeddings/heads —
exactly as §3 describes the per-layer data flow, and applies the
optimizer to the shared parameter set.  Because the collectives are
numerically exact, a MegaScaleTrainer step produces the same loss and
gradients as the single-rank reference, which the test suite asserts.

The trainer composes with:

* :class:`~repro.precision.policy.PrecisionPolicy` for BF16/FP8
  emulation (Fig. 18),
* :class:`~repro.parallel.dp.DataParallelTrainer` for DP-level gradient
  sync with optional compression (Fig. 17),
* checkpoints (:meth:`state_dict` / :meth:`load_state_dict`) for the
  continued-training and restart experiments (Figs. 18, 19),
* :class:`~repro.ft.health.HealthMonitor` for NaN/inf guards on step
  results and per-collective straggler timings (the detection half of
  the Fig. 19 restart machinery),
* :class:`~repro.obs.Observability` for span tracing (a ``train.step``
  span nesting ``forward``/``backward``/``optimizer``, with every
  collective a child ``comm`` span) and step/loss/byte metrics.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass
from typing import ContextManager, Dict, Optional

import numpy as np

from ..comm.group import ProcessGroup, World
from ..model.transformer import MoETransformer
from ..parallel.block import ParallelBlockEngine
from ..precision.optimizer import AdamW, clip_grad_norm
from ..precision.policy import PrecisionPolicy
from ..runtime import backward as runtime_backward
from ..runtime import make_executor, resolve_backend, resolve_execution
from ..tensor import Tensor, ops
from .config import ParallelConfig, TrainConfig

__all__ = ["MegaScaleTrainer", "TrainStepResult"]


@dataclass
class TrainStepResult:
    """Telemetry from one training step."""

    loss: float
    lm_loss: float
    aux_loss: float
    grad_norm: float
    tokens: int


class MegaScaleTrainer:
    """Trains one model replica across a model-parallel group."""

    def __init__(
        self,
        model: MoETransformer,
        world: World,
        parallel: ParallelConfig,
        train: TrainConfig,
        optimizer: Optional[AdamW] = None,
        policy: Optional[PrecisionPolicy] = None,
        vocab_parallel: bool = False,
        health: Optional[object] = None,
        obs: Optional[object] = None,
    ):
        n = parallel.model_parallel_size
        if world.size != n:
            raise ValueError(
                f"world size {world.size} != model parallel size {n}"
            )
        self.model = model
        self.world = world
        #: Optional :class:`~repro.ft.health.HealthMonitor`: validates
        #: every step result (NaN/inf guard) and, attached to the
        #: world, receives per-collective timings for straggler
        #: detection.
        self.health = health
        if health is not None:
            world.attach_health_monitor(health)
        #: Optional :class:`~repro.obs.Observability` bundle: its
        #: tracer is attached to the world (per-collective comm spans)
        #: and wraps each step in nested phase spans; its metrics
        #: registry accumulates step/loss/token/byte statistics.
        self.obs = obs
        if obs is not None:
            world.attach_tracer(obs.tracer)
        self.group: ProcessGroup = world.full_group()
        self.parallel = parallel
        self.train_cfg = train
        #: Resolved execution mode (config > ``REPRO_EXECUTION`` env >
        #: sequential): "sequential", "threaded", or "vectorized" —
        #: all bitwise-identical (docs/INTERNALS.md §8, §12).
        self.execution = resolve_execution(train.execution)
        #: SPMD executor for ``execution="threaded"`` (None = classic
        #: sequential rank loops; vectorized mode is single-threaded).
        self.executor = make_executor(self.execution)
        #: Numeric backend (config > ``REPRO_BACKEND`` env > "engine").
        #: "dag" compiles one LayerProgram — forward IR + overlap
        #: schedule — and runs every layer through the DagExecutor in
        #: schedule order, bitwise-identical to the engine path.
        self.backend = resolve_backend(train.backend)
        if self.execution == "vectorized":
            if train.backend == "engine":
                raise ValueError(
                    "execution='vectorized' requires the DAG backend; "
                    "backend='engine' cannot batch ranks"
                )
            # The rank-stacked kernels live behind the DAG executor's
            # op bindings, so the mode implies the "dag" backend.
            self.backend = "dag"
        #: §4.2 tile-granular execution: token-chunk width for fused
        #: groups (config > ``REPRO_TILE_TOKENS`` env > off).  Part of
        #: the program cache key, so toggling it can never serve a
        #: stale untiled (or differently-tiled) LayerProgram.
        self.tile_tokens = train.tile_tokens
        if self.tile_tokens is None:
            env_tiles = os.environ.get("REPRO_TILE_TOKENS")
            if env_tiles:
                self.tile_tokens = int(env_tiles)
        if self.tile_tokens is not None and self.backend != "dag":
            raise ValueError(
                "tile_tokens requires the DAG backend; tiled fused "
                "groups only exist in the scheduled operator graph"
            )
        self._dag_programs: Dict[tuple, object] = {}
        self.remat_plan = None
        if self.backend == "dag" and train.selective_remat:
            from .remat import default_remat_plan
            self.remat_plan = default_remat_plan()
        self.policy = policy
        self.optimizer = optimizer or AdamW(
            model.parameters(), lr=train.learning_rate,
            betas=(train.adam_beta1, train.adam_beta2),
            eps=train.adam_eps, weight_decay=train.weight_decay,
        )
        # FP8 training turns on §5's communication compression on the
        # FFN collectives (per-token forward, grouped-channel backward).
        fp8_comm = train.precision == "fp8"
        # Dropout randomness: one child stream per rank, spawned from a
        # single seed, so threaded rank threads never share a generator
        # and both execution modes draw identical per-rank masks.
        self.rng_pool = None
        if train.dropout > 0.0:
            from ..runtime.rng import RankRngPool
            self.rng_pool = RankRngPool(train.dropout_seed, n)
        self.engines = [
            ParallelBlockEngine(self.group, block, parallel.attention,
                                parallel.ffn, parallel.ep_dispatch,
                                fp8_comm=fp8_comm,
                                dropout=train.dropout,
                                rng_pool=self.rng_pool)
            for block in model.blocks
        ]
        #: Shard the LM head columns across the group and compute the
        #: loss without materializing full logits (Megatron-style).
        self.vocab_parallel = vocab_parallel
        self.head_shards = None
        if vocab_parallel:
            from ..parallel.vocab_parallel import shard_lm_head
            self.head_shards = shard_lm_head(
                model.lm_head.weight.data, n)
        self.step_count = 0

    # -- forward/backward --------------------------------------------------

    def dag_program_for(self, seq_len: int):
        """The layer's compiled IR + overlap schedule for one seq_len.

        One program serves every layer (identical shapes); cached so
        the scheduler runs once per distinct (sequence length,
        tile width) pair.
        """
        key = (seq_len, self.tile_tokens)
        program = self._dag_programs.get(key)
        if program is None:
            from .executor_bindings import layer_program
            program = layer_program(
                self.model.config, self.parallel,
                self.train_cfg.micro_batch_size, seq_len,
                tile_tokens=self.tile_tokens)
            self._dag_programs[key] = program
        return program

    def loss(self, token_ids: np.ndarray) -> tuple:
        """Distributed forward; returns (total, lm, aux) loss Tensors.

        ``token_ids`` is ``[batch, seq+1]``; the sequence dimension after
        dropping the label shift must divide the group size.
        """
        token_ids = np.asarray(token_ids)
        n = self.group.size
        inputs = token_ids[:, :-1]
        labels = token_ids[:, 1:]
        seq = inputs.shape[1]
        if seq % n != 0:
            raise ValueError(
                f"sequence length {seq} not divisible by group size {n}"
            )
        width = seq // n

        shards = [
            ops.embedding(self.model.embedding,
                          inputs[:, r * width:(r + 1) * width])
            for r in range(n)
        ]
        dag_program = (self.dag_program_for(seq)
                       if self.backend == "dag" else None)
        aux_total: Optional[Tensor] = None
        vectorized = self.execution == "vectorized"
        for engine in self.engines:
            shards, aux = engine.forward(shards, seq,
                                         executor=self.executor,
                                         dag_program=dag_program,
                                         remat_plan=self.remat_plan,
                                         vectorized=vectorized)
            aux_total = aux if aux_total is None else aux_total + aux

        if self.vocab_parallel:
            from ..parallel.vocab_parallel import vocab_parallel_loss
            normed = [self.model.final_norm(s) for s in shards]
            # Labels in the gathered (rank-major) token order.
            reordered = np.concatenate([
                labels[:, r * width:(r + 1) * width].reshape(-1)
                for r in range(n)
            ])
            lm_loss = vocab_parallel_loss(self.group, normed,
                                          self.head_shards, reordered)
        else:
            lm_loss = None
            for r, shard in enumerate(shards):
                normed = self.model.final_norm(shard)
                logits = self.model.lm_head(normed)
                piece = ops.cross_entropy(
                    logits, labels[:, r * width:(r + 1) * width])
                lm_loss = piece if lm_loss is None else lm_loss + piece
            lm_loss = lm_loss * (1.0 / n)

        total = lm_loss
        if self.train_cfg.aux_loss_coeff > 0:
            total = total + aux_total * self.train_cfg.aux_loss_coeff
        return total, lm_loss, aux_total

    def _span(self, name: str, **attrs) -> ContextManager:
        """A tracer span, or a no-op context when untraced."""
        if self.obs is None:
            return nullcontext()
        return self.obs.tracer.span(name, cat="train", stream="main",
                                    **attrs)

    def train_step(self, token_ids: np.ndarray) -> TrainStepResult:
        """One forward/backward/update over a token batch."""
        with self._span("train.step", phase="step",
                        step=self.step_count):
            self.model.zero_grad()
            with self._span("forward", phase="forward"):
                if self.policy is not None:
                    with self.policy:
                        total, lm, aux = self.loss(token_ids)
                else:
                    total, lm, aux = self.loss(token_ids)
            with self._span("backward", phase="backward"):
                runtime_backward(
                    total, executor=self.executor,
                    fault_plan=self.world.fault_plan,
                    tracer=self.world.tracer)
                for engine in self.engines:
                    engine.sync_grads_to_reference()
                if self.vocab_parallel:
                    self._sync_head_grads()
            with self._span("optimizer", phase="optimizer"):
                norm = clip_grad_norm(self.model.parameters(),
                                      self.train_cfg.grad_clip)
                self.optimizer.step()
                for engine in self.engines:
                    engine.refresh_shards()
                if self.vocab_parallel:
                    self._refresh_head_shards()
            self.step_count += 1
            result = TrainStepResult(
                loss=total.item(),
                lm_loss=lm.item(),
                aux_loss=aux.item(),
                grad_norm=norm,
                tokens=int(np.prod(token_ids[:, 1:].shape)),
            )
        if self.obs is not None:
            metrics = self.obs.metrics
            metrics.inc("train.steps")
            metrics.inc("train.tokens", result.tokens)
            metrics.set("train.loss", result.loss)
            metrics.set("train.grad_norm", result.grad_norm)
            metrics.observe("train.step.loss", result.lm_loss)
            metrics.ingest_ledger(self.world.ledger)
        if self.health is not None:
            self.health.on_step_result(result)
        return result

    def _sync_head_grads(self) -> None:
        """Assemble vocab-shard gradients onto the reference LM head."""
        weight = self.model.lm_head.weight
        grad = np.zeros_like(weight.data)
        width = weight.data.shape[1] // self.group.size
        for r, shard in enumerate(self.head_shards):
            if shard.grad is not None:
                grad[:, r * width:(r + 1) * width] = shard.grad
        weight.grad = grad if weight.grad is None else weight.grad + grad

    def _refresh_head_shards(self) -> None:
        weight = self.model.lm_head.weight.data
        width = weight.shape[1] // self.group.size
        for r, shard in enumerate(self.head_shards):
            shard.data = weight[:, r * width:(r + 1) * width].copy()
            shard.grad = None

    def eval_loss(self, token_ids: np.ndarray) -> float:
        """LM loss without gradient tracking, updates, or dropout."""
        from ..tensor import no_grad
        attn_engines = [e.attn_engine for e in self.engines
                        if hasattr(e.attn_engine, "training")]
        previous = [a.training for a in attn_engines]
        for a in attn_engines:
            a.training = False
        try:
            with no_grad():
                if self.policy is not None:
                    with self.policy:
                        _, lm, _ = self.loss(token_ids)
                else:
                    _, lm, _ = self.loss(token_ids)
        finally:
            for a, prev in zip(attn_engines, previous):
                a.training = prev
        return lm.item()

    # -- checkpointing -----------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Model parameters plus optimizer moments (restart-complete).

        A production restart must restore Adam state or the first
        post-restart steps diverge; keys are namespaced so the model
        part stays a valid model state dict.
        """
        state = {f"model/{k}": v
                 for k, v in self.model.state_dict().items()}
        state["opt/step_count"] = np.asarray(self.optimizer.step_count)
        for i, (m, v) in enumerate(zip(self.optimizer.m,
                                       self.optimizer.v)):
            state[f"opt/m/{i}"] = m.copy()
            state[f"opt/v/{i}"] = v.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore model (+ optimizer when present).

        Accepts both the namespaced format from :meth:`state_dict` and a
        bare model state dict (checkpoint of weights only).
        """
        if any(k.startswith("model/") for k in state):
            model_state = {k[len("model/"):]: v for k, v in state.items()
                           if k.startswith("model/")}
            self.model.load_state_dict(model_state)
            if "opt/step_count" in state:
                self.optimizer.step_count = int(state["opt/step_count"])
                for i in range(len(self.optimizer.m)):
                    self.optimizer.m[i] = state[f"opt/m/{i}"].copy()
                    self.optimizer.v[i] = state[f"opt/v/{i}"].copy()
        else:
            self.model.load_state_dict(state)
        for engine in self.engines:
            engine.refresh_shards()
