"""The paper's primary contribution: configs, analysis, planning,
scheduling, rematerialization, and the end-to-end trainer."""

from .analysis import (
    ActivationBudget,
    activation_budget,
    activation_elements_full,
    activation_elements_remat,
    attention_comm_volume,
    ep_ffn_comm_volume,
    ffn_comm_volume,
    param_memory_per_gpu,
    scale_up_ratio,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
    tp_ffn_comm_volume,
)
from .config import (
    GPU_SPECS,
    MODEL_ZOO,
    AttentionParallelism,
    FFNParallelism,
    GPUSpec,
    ModelConfig,
    ParallelConfig,
    TrainConfig,
)
from .autoschedule import AutoScheduleResult, AutoScheduler
from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .operators import Op, OpGraph, build_backward_graph, \
    build_forward_graph
from .planner import (
    PlanDecision,
    dispatch_crossover_top_k,
    dispatch_mode_times,
    plan_parallelism,
)
from .remat import (
    ActivationSpec,
    RematPlan,
    activation_table,
    default_remat_plan,
    no_remat_plan,
)
from .schedule import FusedKernel, HolisticScheduler, OverlapConfig
from .trainer import MegaScaleTrainer, TrainStepResult

__all__ = [
    "ActivationBudget",
    "activation_budget",
    "activation_elements_full",
    "activation_elements_remat",
    "attention_comm_volume",
    "ep_ffn_comm_volume",
    "ffn_comm_volume",
    "param_memory_per_gpu",
    "scale_up_ratio",
    "sp_attention_comm_volume",
    "tp_attention_comm_volume",
    "tp_ffn_comm_volume",
    "GPU_SPECS",
    "MODEL_ZOO",
    "AttentionParallelism",
    "FFNParallelism",
    "GPUSpec",
    "ModelConfig",
    "ParallelConfig",
    "TrainConfig",
    "Op",
    "OpGraph",
    "build_backward_graph",
    "build_forward_graph",
    "PlanDecision",
    "dispatch_crossover_top_k",
    "dispatch_mode_times",
    "plan_parallelism",
    "ActivationSpec",
    "RematPlan",
    "activation_table",
    "default_remat_plan",
    "no_remat_plan",
    "FusedKernel",
    "HolisticScheduler",
    "OverlapConfig",
    "MegaScaleTrainer",
    "TrainStepResult",
    "AutoScheduleResult",
    "AutoScheduler",
    "CheckpointError",
    "load_checkpoint",
    "save_checkpoint",
]
