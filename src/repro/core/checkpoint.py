"""Checkpointing: save/restore model and optimizer state to disk.

The production runs of §7 span months and "different colors indicate
training restarts" (Fig. 19) — restartability is a first-class feature.
Checkpoints are single ``.npz`` files holding every named parameter,
the Adam moments, the step counter, and a config fingerprint that is
validated on load so a checkpoint cannot silently restore into a
mismatched model.
"""

from __future__ import annotations

import json
import os
from typing import Optional

import numpy as np

from ..core.config import ModelConfig
from ..model.layers import Module
from ..precision.optimizer import AdamW

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "atomic_write",
    "CheckpointError",
]

FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised when a checkpoint is missing, corrupt, or mismatched."""


def _fsync_directory(path: str) -> None:
    """Best-effort fsync of a file's parent directory.

    ``os.replace`` makes the rename atomic but not durable: on a crash
    the directory entry may still point at the old file.  Syncing the
    directory pins the rename; platforms that cannot fsync a directory
    (some network filesystems) degrade gracefully.
    """
    parent = os.path.dirname(os.path.abspath(path)) or "."
    try:
        dirfd = os.open(parent, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dirfd)
    except OSError:
        pass
    finally:
        os.close(dirfd)


def atomic_write(path: str, write_payload, text: bool = False) -> None:
    """Write ``path`` atomically: tmp file → flush → fsync → rename.

    ``write_payload(handle)`` receives the open tmp-file handle.  The
    data is fsynced *before* the rename, so a crash at any point leaves
    either the previous complete file or a stray ``*.tmp`` — never a
    truncated file at the final name (a truncated "latest" checkpoint
    would otherwise poison every recovery until swept by hand).
    """
    tmp = path + ".tmp"
    with open(tmp, "w" if text else "wb") as handle:
        write_payload(handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_directory(path)


def _fingerprint(config: ModelConfig) -> str:
    fields = {
        "n_layers": config.n_layers,
        "hidden_size": config.hidden_size,
        "n_heads": config.n_heads,
        "gqa_ratio": config.gqa_ratio,
        "ffn_hidden_size": config.ffn_hidden_size,
        "n_experts": config.n_experts,
        "top_k": config.top_k,
        "vocab_size": config.vocab_size,
    }
    return json.dumps(fields, sort_keys=True)


def save_checkpoint(path: str, model: Module, config: ModelConfig,
                    optimizer: Optional[AdamW] = None,
                    step: int = 0) -> None:
    """Write a checkpoint atomically (tmp file + fsync + rename)."""
    payload = {
        "__meta__": np.frombuffer(
            json.dumps({
                "version": FORMAT_VERSION,
                "fingerprint": _fingerprint(config),
                "step": step,
                "has_optimizer": optimizer is not None,
            }).encode(), dtype=np.uint8),
    }
    for name, param in model.named_parameters():
        payload[f"param/{name}"] = param.data
    if optimizer is not None:
        payload["opt/step_count"] = np.asarray(optimizer.step_count)
        for i, (m, v) in enumerate(zip(optimizer.m, optimizer.v)):
            payload[f"opt/m/{i}"] = m
            payload[f"opt/v/{i}"] = v

    atomic_write(path, lambda handle: np.savez(handle, **payload))


def load_checkpoint(path: str, model: Module, config: ModelConfig,
                    optimizer: Optional[AdamW] = None) -> int:
    """Restore a checkpoint; returns the saved step.

    Raises :class:`CheckpointError` on version or config mismatch, and
    when optimizer state is requested but absent from the file.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at {path}")
    with np.load(path) as data:
        try:
            meta = json.loads(bytes(data["__meta__"]).decode())
        except (KeyError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"corrupt checkpoint {path}") from exc
        if meta["version"] != FORMAT_VERSION:
            raise CheckpointError(
                f"checkpoint version {meta['version']} != "
                f"{FORMAT_VERSION}"
            )
        if meta["fingerprint"] != _fingerprint(config):
            raise CheckpointError(
                "checkpoint was written for a different model "
                "configuration"
            )

        state = {}
        for key in data.files:
            if key.startswith("param/"):
                state[key[len("param/"):]] = data[key]
        model.load_state_dict(state)

        if optimizer is not None:
            if not meta["has_optimizer"]:
                raise CheckpointError(
                    "checkpoint has no optimizer state"
                )
            optimizer.step_count = int(data["opt/step_count"])
            for i in range(len(optimizer.m)):
                optimizer.m[i] = data[f"opt/m/{i}"].copy()
                optimizer.v[i] = data[f"opt/v/{i}"].copy()
        return int(meta["step"])
