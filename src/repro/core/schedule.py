"""Holistic operator scheduling (§4.1) and intra-operator fusion (§4.2).

Turns an :class:`~repro.core.operators.OpGraph` plus per-op durations
into a stream-assigned task list for the event simulator:

* **No overlap** — everything on one stream in graph order (the
  fine-grained-overlap-free baseline of Fig. 15).
* **Inter-operator overlap** — communication ops run on dedicated
  streams (one per scope, mirroring NVLink vs NIC resources); compute
  ops are list-scheduled so dependency-free work (wgrad GEMMs,
  rematerialization) fills communication bubbles.
* **Intra-operator overlap** — ops sharing a ``fuse_group`` (e.g.
  A2A+GEMM, AG+scatter+GroupedGEMM) are fused into one tile-pipelined
  kernel whose duration is ``max(comm, compute)`` plus a fill/drain
  overhead, emulating the device-memory-barrier kernels of §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..sim.engine import SimTask
from .operators import Op, OpGraph

__all__ = ["OverlapConfig", "HolisticScheduler", "FusedKernel"]

#: Fraction of the shorter member's time lost to tile pipeline
#: fill/drain in a fused kernel.
FUSION_FILL_DRAIN = 0.10


@dataclass(frozen=True)
class OverlapConfig:
    """Which overlap mechanisms are enabled."""

    inter_op: bool = True
    intra_op: bool = True

    @staticmethod
    def none() -> "OverlapConfig":
        return OverlapConfig(inter_op=False, intra_op=False)

    @staticmethod
    def full() -> "OverlapConfig":
        return OverlapConfig(inter_op=True, intra_op=True)


@dataclass
class FusedKernel:
    """A tile-fused comm+compute kernel (§4.2)."""

    name: str
    members: List[Op]
    comm_time: float
    compute_time: float

    @property
    def duration(self) -> float:
        longer = max(self.comm_time, self.compute_time)
        shorter = min(self.comm_time, self.compute_time)
        return longer + FUSION_FILL_DRAIN * shorter

    @property
    def sequential_duration(self) -> float:
        return self.comm_time + self.compute_time


class HolisticScheduler:
    """Produces simulator task lists from operator graphs."""

    def __init__(self, overlap: OverlapConfig = OverlapConfig.full()):
        self.overlap = overlap

    def schedule(self, graph: OpGraph,
                 durations: Dict[str, float]) -> List[SimTask]:
        """Assign streams and order; returns tasks ready to simulate.

        With both overlap levels enabled, the scheduler behaves
        holistically (§4.1): it evaluates the timeline with and without
        tile fusion and keeps whichever is faster — fusing comm into a
        compute kernel pays a fill/drain cost that is only worthwhile
        when inter-operator overlap cannot already hide that comm.
        """
        if self.overlap.intra_op and self.overlap.inter_op:
            from ..sim.engine import simulate
            fused = self._schedule(graph, durations, intra=True)
            unfused = self._schedule(graph, durations, intra=False)
            if simulate(fused).makespan <= simulate(unfused).makespan:
                return fused
            return unfused
        return self._schedule(graph, durations,
                              intra=self.overlap.intra_op)

    def _schedule(self, graph: OpGraph, durations: Dict[str, float],
                  intra: bool) -> List[SimTask]:
        for op in graph:
            if op.name not in durations:
                raise KeyError(f"no duration for op {op.name!r}")

        if intra:
            units, dep_map = self._fuse(graph, durations)
        else:
            units = [(op.name, durations[op.name],
                      op.kind == "comm", op.comm_scope, tuple(op.deps))
                     for op in graph]
            dep_map = {op.name: op.name for op in graph}

        resolved = []
        for name, dur, is_comm, scope, deps in units:
            mapped = tuple(dict.fromkeys(
                dep_map[d] for d in deps if dep_map[d] != name))
            resolved.append((name, dur, is_comm, scope, mapped))

        if not self.overlap.inter_op:
            return [
                SimTask(name, dur, "main", deps, is_comm)
                for name, dur, is_comm, scope, deps in resolved
            ]

        ordered = self._list_schedule(resolved)
        tasks = []
        for name, dur, is_comm, scope, deps in ordered:
            stream = f"comm_{scope}" if is_comm else "compute"
            tasks.append(SimTask(name, dur, stream, deps, is_comm))
        return tasks

    # -- intra-op fusion --------------------------------------------------

    def _fuse(self, graph: OpGraph, durations: Dict[str, float]):
        """Collapse fuse groups into single tile-pipelined units.

        Groups whose members are already per-tile sub-ops (from
        :func:`~repro.core.operators.tile_forward_graph`) are left
        alone: their pipeline overlap is expressed explicitly by the
        tile dependency structure, so collapsing them into an analytic
        :class:`FusedKernel` would double-count the fusion win.
        """
        groups: Dict[str, List[Op]] = {}
        for op in graph:
            if op.fuse_group:
                groups.setdefault(op.fuse_group + "/" + op.phase,
                                  []).append(op)
        fusable = {
            key: members for key, members in groups.items()
            if any(m.kind == "comm" for m in members)
            and any(m.kind != "comm" for m in members)
            and not any(m.tile is not None for m in members)
        }

        member_to_unit: Dict[str, str] = {}
        for key, members in fusable.items():
            unit_name = "fused:" + key
            for m in members:
                member_to_unit[m.name] = unit_name

        units = []
        emitted = set()
        for op in graph:
            if op.name in member_to_unit:
                unit = member_to_unit[op.name]
                if unit in emitted:
                    continue
                key = unit[len("fused:"):]
                members = fusable[key]
                comm_t = sum(durations[m.name] for m in members
                             if m.kind == "comm")
                comp_t = sum(durations[m.name] for m in members
                             if m.kind != "comm")
                kernel = FusedKernel(unit, members, comm_t, comp_t)
                ext_deps = tuple(dict.fromkeys(
                    d for m in members for d in m.deps
                    if member_to_unit.get(d) != unit
                ))
                scope = next((m.comm_scope for m in members
                              if m.kind == "comm"), "intra")
                # A fused kernel occupies compute SMs; count it as
                # compute for exposure accounting.
                units.append((unit, kernel.duration, False, scope,
                              ext_deps))
                emitted.add(unit)
            else:
                units.append((op.name, durations[op.name],
                              op.kind == "comm", op.comm_scope,
                              tuple(op.deps)))

        dep_map = {op.name: member_to_unit.get(op.name, op.name)
                   for op in graph}
        return units, dep_map

    # -- list scheduling ----------------------------------------------------

    @staticmethod
    def _list_schedule(units):
        """Greedy earliest-start ordering with critical-path tie-break.

        Orders units so that per-stream queues never block a ready task
        behind one still waiting on a long dependency — the essence of
        the hand-tailored holistic schedule.
        """
        by_name = {u[0]: u for u in units}
        children: Dict[str, List[str]] = {u[0]: [] for u in units}
        for name, _, _, _, deps in units:
            for d in deps:
                if d not in children:
                    raise ValueError(
                        f"unit {name!r} depends on unknown unit {d!r}"
                    )
                children[d].append(name)

        # Longest path to sink (criticality) over a topological order
        # computed here — fusion can emit units out of graph order.
        out_degree = {u[0]: len(children[u[0]]) for u in units}
        ready = [name for name, deg in out_degree.items() if deg == 0]
        crit: Dict[str, float] = {}
        while ready:
            name = ready.pop()
            dur = by_name[name][1]
            crit[name] = dur + max((crit[c] for c in children[name]),
                                   default=0.0)
            for dep in by_name[name][4]:
                out_degree[dep] -= 1
                if out_degree[dep] == 0:
                    ready.append(dep)
        if len(crit) != len(units):
            stuck = sorted(set(by_name) - set(crit))
            raise ValueError(
                f"cyclic dependencies among schedule units: {stuck[:5]}"
            )

        finish: Dict[str, float] = {}
        stream_free: Dict[str, float] = {}
        pending = list(units)
        ordered = []
        while pending:
            best = None
            best_key = None
            for u in pending:
                name, dur, is_comm, scope, deps = u
                if any(d not in finish for d in deps):
                    continue
                stream = (f"comm_{scope}" if is_comm else "compute")
                start = max(stream_free.get(stream, 0.0),
                            max((finish[d] for d in deps), default=0.0))
                key = (start, -crit[name])
                if best_key is None or key < best_key:
                    best, best_key = u, key
            if best is None:
                raise ValueError("cyclic dependencies in schedule units")
            name, dur, is_comm, scope, deps = best
            stream = f"comm_{scope}" if is_comm else "compute"
            start = best_key[0]
            finish[name] = start + dur
            stream_free[stream] = start + dur
            ordered.append(best)
            pending.remove(best)
        return ordered
