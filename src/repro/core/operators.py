"""Operator-level decomposition of an MoE layer (§4, Fig. 20).

MegaScale-MoE's overlap machinery works because each MoE layer is broken
into *operators that run as GPU kernels* rather than a monolithic
autograd module.  This module builds that operator DAG for any strategy
combination (SP/TP attention × EP/TP FFN), for both the forward and the
backward pass, annotated with everything the scheduler and performance
model need:

* ``flops``       — arithmetic work (GEMMs, attention);
* ``mem_bytes``   — HBM traffic (memory-bound ops: norms, RoPE, SwiGLU,
  scatter/gather — the ops §6.1 blames for MoE's lower MFU);
* ``comm_bytes``  — per-rank wire bytes, with pattern and scope;
* ``deps``        — data dependencies (activation producers);
* ``fuse_group``  — which intra-operator overlap kernel the op belongs
  to (§4.2: A2A+GEMM, GEMM+A2A, AG+scatter+GroupedGEMM,
  GroupedGEMM+gather+RS).

Element sizes default to BF16 (2 bytes) as in the paper's training.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .config import ModelConfig, ParallelConfig

__all__ = ["Op", "OpGraph", "build_forward_graph", "build_backward_graph"]

COMPUTE_KINDS = ("gemm", "attn", "memory")
COMM_PATTERNS = ("a2a", "ag", "rs", "ar")


@dataclass(frozen=True)
class Op:
    """One schedulable unit of work on a rank.

    ``comm_bytes`` is what this rank sends; for ring collectives that is
    ``(n-1)``× the shard, matching the ledger conventions.
    """

    name: str
    kind: str                      # "gemm" | "attn" | "memory" | "comm"
    flops: float = 0.0
    mem_bytes: float = 0.0
    comm_bytes: float = 0.0
    comm_pattern: str = ""         # a2a | ag | rs | ar
    comm_scope: str = "intra"      # intra-node (NVLink) or inter (NIC)
    deps: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    fuse_group: str = ""
    phase: str = "fwd"             # fwd | bwd | remat
    #: GEMM tile shape (per-expert for grouped GEMMs) for the
    #: shape-aware efficiency model; 0 means "not a GEMM".
    gemm_shape: Tuple[float, float, float] = (0.0, 0.0, 0.0)

    def __post_init__(self):
        if self.kind == "comm":
            if self.comm_pattern not in COMM_PATTERNS:
                raise ValueError(
                    f"comm op {self.name!r} needs a pattern from "
                    f"{COMM_PATTERNS}, got {self.comm_pattern!r}"
                )
        elif self.kind not in COMPUTE_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")


class OpGraph:
    """A validated DAG of :class:`Op` records in topological order."""

    def __init__(self, ops: Sequence[Op]):
        self.ops: List[Op] = list(ops)
        self._by_name: Dict[str, Op] = {}
        self.validate()

    def validate(self) -> None:
        """Check the op list is a well-formed DAG in topological order.

        Raises :class:`ValueError` on duplicate op names, dependencies
        on unknown ops, dependency cycles, and list orderings that
        place an op before one of its dependencies — in that check
        order, so the most specific diagnosis wins (a cycle is reported
        as a cycle, not as a misordering).
        """
        self._by_name = {}
        for op in self.ops:
            if op.name in self._by_name:
                raise ValueError(f"duplicate op name {op.name!r}")
            self._by_name[op.name] = op
        for op in self.ops:
            for dep in op.deps:
                if dep not in self._by_name:
                    raise ValueError(
                        f"op {op.name!r} depends on unknown op {dep!r}"
                    )
        self._check_acyclic()
        self._check_topological()

    def _check_acyclic(self) -> None:
        """Kahn's algorithm; any op never reaching in-degree 0 is cyclic."""
        indegree = {op.name: len(op.deps) for op in self.ops}
        consumers: Dict[str, List[str]] = {op.name: [] for op in self.ops}
        for op in self.ops:
            for dep in op.deps:
                consumers[dep].append(op.name)
        ready = [name for name, deg in indegree.items() if deg == 0]
        resolved = 0
        while ready:
            name = ready.pop()
            resolved += 1
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if resolved != len(self.ops):
            stuck = sorted(n for n, deg in indegree.items() if deg > 0)
            raise ValueError(
                f"dependency cycle involving ops {stuck}"
            )

    def _check_topological(self) -> None:
        seen = set()
        for op in self.ops:
            for dep in op.deps:
                if dep not in seen:
                    raise ValueError(
                        f"op {op.name!r} appears before its dependency "
                        f"{dep!r}"
                    )
            seen.add(op.name)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self):
        return len(self.ops)

    def __getitem__(self, name: str) -> Op:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def total(self, attr: str, kind: Optional[str] = None,
              phase: Optional[str] = None) -> float:
        """Sum an op attribute over the graph, optionally filtered."""
        return sum(
            getattr(op, attr) for op in self.ops
            if (kind is None or op.kind == kind)
            and (phase is None or op.phase == phase)
        )

    def comm_ops(self) -> List[Op]:
        """All communication ops, in graph order."""
        return [op for op in self.ops if op.kind == "comm"]

    def compute_ops(self) -> List[Op]:
        """All non-communication ops, in graph order."""
        return [op for op in self.ops if op.kind != "comm"]


# ---------------------------------------------------------------------------
# Forward graph
# ---------------------------------------------------------------------------

def build_forward_graph(
    model: ModelConfig,
    parallel: ParallelConfig,
    micro_batch: int,
    elem_bytes: float = 2.0,
    seq_len: Optional[int] = None,
) -> OpGraph:
    """Operator DAG for one MoE layer's forward pass on one rank."""
    dims = _Dims(model, parallel, micro_batch, elem_bytes,
                 seq_len or model.seq_len)
    ops: List[Op] = []
    ops += _attention_forward(dims)
    ops += _ffn_forward(dims)
    graph = OpGraph(ops)
    graph.validate()
    return graph


class _Dims:
    """Shared size arithmetic for graph builders."""

    def __init__(self, model: ModelConfig, parallel: ParallelConfig,
                 micro_batch: int, elem_bytes: float, seq_len: int):
        self.model = model
        self.parallel = parallel
        self.b = micro_batch
        self.s = seq_len
        self.h = model.hidden_size
        self.n = parallel.model_parallel_size
        self.m = model.gqa_ratio
        self.k = model.top_k
        self.fh = model.ffn_hidden_size
        self.E = model.n_experts
        self.eb = elem_bytes
        # Tokens this rank is responsible for in the SP region.
        self.local_tokens = self.b * self.s / self.n
        self.total_tokens = self.b * self.s

    @property
    def ep_mode(self) -> str:
        mode = self.parallel.ep_dispatch
        if mode == "adaptive":
            from ..parallel.ep_ffn import choose_dispatch_mode
            mode = choose_dispatch_mode(self.k, self.n)
        return mode

    def ring_send(self, full_elements: float) -> float:
        """Per-rank bytes for a ring AG/RS whose full tensor has
        ``full_elements``."""
        return full_elements / self.n * (self.n - 1) * self.eb

    def a2a_send(self, local_elements: float) -> float:
        """Per-rank bytes for an A2A where this rank redistributes
        ``local_elements``."""
        return local_elements * (self.n - 1) / self.n * self.eb


def _attention_forward(d: _Dims) -> List[Op]:
    qkv_width = d.model.qkv_output_size
    t_loc = d.local_tokens
    ops: List[Op] = [
        Op("ln1", "memory",
           mem_bytes=2 * t_loc * d.h * d.eb,
           deps=(), produces=("ln1_out",)),
    ]
    if d.parallel.attention == "sp":
        ops += [
            Op("qkv_proj", "gemm",
               flops=2 * t_loc * d.h * qkv_width,
               mem_bytes=(t_loc * (d.h + qkv_width)
                          + d.h * qkv_width) * d.eb,
               deps=("ln1",), produces=("qkv",),
               fuse_group="gemm+a2a",
               gemm_shape=(t_loc, d.h, qkv_width)),
            Op("rope", "memory",
               mem_bytes=2 * t_loc * (d.h + d.h / d.m) * d.eb,
               deps=("qkv_proj",), produces=("q_rope", "k_rope")),
            Op("qkv_a2a", "comm",
               comm_bytes=d.a2a_send(t_loc * qkv_width),
               comm_pattern="a2a",
               deps=("rope",), produces=("qkv_a2a",),
               fuse_group="a2a+attn"),
            Op("attention", "attn",
               flops=2 * 2 * d.b * d.s * (d.s / 2) * d.h / d.n,
               mem_bytes=d.total_tokens * qkv_width / d.n * d.eb,
               deps=("qkv_a2a",), produces=("attn",),
               fuse_group="a2a+attn"),
            Op("attn_a2a", "comm",
               comm_bytes=d.a2a_send(d.total_tokens * d.h / d.n),
               comm_pattern="a2a",
               deps=("attention",), produces=("attn_a2a",),
               fuse_group="a2a+gemm"),
            Op("out_proj", "gemm",
               flops=2 * t_loc * d.h * d.h,
               mem_bytes=(2 * t_loc * d.h + d.h * d.h) * d.eb,
               deps=("attn_a2a",), produces=("attn_out",),
               fuse_group="a2a+gemm",
               gemm_shape=(t_loc, d.h, d.h)),
        ]
    else:  # Megatron TP attention: AG in, RS out (Eq. 1 volume).
        ops += [
            Op("attn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln1",), produces=("ln1_out_full",),
               fuse_group="attn_ag+gemm"),
            Op("qkv_proj", "gemm",
               flops=2 * d.total_tokens * d.h * qkv_width / d.n,
               mem_bytes=(d.total_tokens * (d.h + qkv_width / d.n)
                          + d.h * qkv_width / d.n) * d.eb,
               deps=("attn_ag",), produces=("qkv",),
               fuse_group="attn_ag+gemm",
               gemm_shape=(d.total_tokens, d.h, qkv_width / d.n)),
            Op("rope", "memory",
               mem_bytes=2 * d.total_tokens * (d.h + d.h / d.m)
               / d.n * d.eb,
               deps=("qkv_proj",), produces=("q_rope", "k_rope")),
            Op("attention", "attn",
               flops=2 * 2 * d.b * d.s * (d.s / 2) * d.h / d.n,
               mem_bytes=d.total_tokens * qkv_width / d.n * d.eb,
               deps=("rope",), produces=("attn",)),
            Op("out_proj", "gemm",
               flops=2 * d.total_tokens * d.h * d.h / d.n,
               mem_bytes=(d.total_tokens * (d.h / d.n + d.h)
                          + d.h * d.h / d.n) * d.eb,
               deps=("attention",), produces=("attn_partial",),
               fuse_group="attn_gemm+rs",
               gemm_shape=(d.total_tokens, d.h / d.n, d.h)),
            Op("attn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("out_proj",), produces=("attn_out",),
               fuse_group="attn_gemm+rs"),
        ]
    ops.append(Op("residual1", "memory",
                  mem_bytes=3 * d.local_tokens * d.h * d.eb,
                  deps=(ops[-1].name,), produces=("ln2_in",)))
    return ops


def _ffn_forward(d: _Dims) -> List[Op]:
    ops: List[Op] = [
        Op("ln2", "memory",
           mem_bytes=2 * d.local_tokens * d.h * d.eb,
           deps=("residual1",), produces=("ln2_out",)),
    ]
    routed = d.total_tokens * d.k / d.n  # rows per rank after dispatch

    # In A2A mode the router gates this rank's local tokens before
    # dispatch; in the AG-based modes every rank routes the *gathered*
    # batch (the gate is replicated, so decisions are identical), so the
    # router joins the fused AG+scatter kernel and depends on the AG —
    # the IR mirrors what the numeric executor actually runs.
    if d.parallel.ffn == "ep" and d.ep_mode == "ag_rs":
        ops += [
            Op("ffn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln2",), produces=("ln2_out_ag",),
               fuse_group="ag+scatter+ggemm"),
            Op("router", "gemm",
               flops=2 * d.total_tokens * d.h * d.E,
               mem_bytes=d.total_tokens * (d.h + d.E) * d.eb,
               deps=("ffn_ag",), produces=("routing",),
               fuse_group="ag+scatter+ggemm",
               gemm_shape=(d.total_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=(d.total_tokens * d.h + routed * d.h) * d.eb,
               deps=("ffn_ag", "router"), produces=("ffn_in",),
               fuse_group="ag+scatter+ggemm"),
        ]
        gemm_dep = "scatter"
    elif d.parallel.ffn == "ep":  # a2a dispatch
        ops += [
            Op("router", "gemm",
               flops=2 * d.local_tokens * d.h * d.E,
               mem_bytes=d.local_tokens * (d.h + d.E) * d.eb,
               deps=("ln2",), produces=("routing",),
               gemm_shape=(d.local_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=2 * d.local_tokens * d.k * d.h * d.eb,
               deps=("ln2", "router"), produces=("send_rows",)),
            Op("dispatch_a2a", "comm",
               comm_bytes=d.a2a_send(d.local_tokens * d.k * d.h),
               comm_pattern="a2a",
               deps=("scatter",), produces=("ffn_in",),
               fuse_group="a2a+ggemm"),
        ]
        gemm_dep = "dispatch_a2a"
    else:  # TP FFN: AG in, every rank runs all routed rows on shards.
        ops += [
            Op("ffn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln2",), produces=("ln2_out_ag",),
               fuse_group="tp_ffn_ag+gemm"),
            Op("router", "gemm",
               flops=2 * d.total_tokens * d.h * d.E,
               mem_bytes=d.total_tokens * (d.h + d.E) * d.eb,
               deps=("ffn_ag",), produces=("routing",),
               fuse_group="tp_ffn_ag+gemm",
               gemm_shape=(d.total_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=(d.total_tokens * d.h
                          + d.total_tokens * d.k * d.h) * d.eb,
               deps=("ffn_ag", "router"), produces=("ffn_in",),
               fuse_group="tp_ffn_ag+gemm"),
        ]
        gemm_dep = "scatter"

    if d.parallel.ffn == "ep":
        rows, width, experts_here = routed, d.fh, d.E / d.n
        ggemm_fuse = ("ag+scatter+ggemm" if d.ep_mode == "ag_rs"
                      else "a2a+ggemm")
    else:
        rows, width, experts_here = d.total_tokens * d.k, d.fh / d.n, d.E
        ggemm_fuse = "tp_ffn_ag+gemm"

    weight_bytes = experts_here * d.h * width * d.eb
    rows_per_expert = rows / max(experts_here, 1)
    ops += [
        Op("fc1", "gemm",
           flops=2 * rows * d.h * width,
           mem_bytes=(rows * (d.h + width)) * d.eb + weight_bytes,
           deps=(gemm_dep,), produces=("fc1_out",),
           fuse_group=ggemm_fuse,
           gemm_shape=(rows_per_expert, d.h, width)),
        Op("fc3", "gemm",
           flops=2 * rows * d.h * width,
           mem_bytes=(rows * (d.h + width)) * d.eb + weight_bytes,
           deps=(gemm_dep,), produces=("fc3_out",),
           gemm_shape=(rows_per_expert, d.h, width)),
        Op("swiglu", "memory",
           mem_bytes=3 * rows * width * d.eb,
           deps=("fc1", "fc3"), produces=("fc2_in",)),
        Op("fc2", "gemm",
           flops=2 * rows * width * d.h,
           mem_bytes=(rows * (width + d.h)) * d.eb + weight_bytes,
           deps=("swiglu",), produces=("fc2_out",),
           fuse_group="ggemm+gather+rs" if d.parallel.ffn == "ep"
           and d.ep_mode == "ag_rs" else (
               "tp_ffn_gemm+rs" if d.parallel.ffn == "tp" else ""),
           gemm_shape=(rows_per_expert, width, d.h)),
    ]

    if d.parallel.ffn == "ep" and d.ep_mode == "ag_rs":
        ops += [
            Op("gather", "memory",
               mem_bytes=(routed * d.h + d.total_tokens * d.h) * d.eb,
               deps=("fc2",), produces=("fc2_out_full",),
               fuse_group="ggemm+gather+rs"),
            Op("ffn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("gather",), produces=("ffn_out",),
               fuse_group="ggemm+gather+rs"),
        ]
        last = "ffn_rs"
    elif d.parallel.ffn == "ep":
        ops += [
            Op("combine_a2a", "comm",
               comm_bytes=d.a2a_send(d.local_tokens * d.k * d.h),
               comm_pattern="a2a",
               deps=("fc2",), produces=("combined_rows",),
               fuse_group="ggemm+a2a"),
            Op("weighted_sum", "memory",
               mem_bytes=2 * d.local_tokens * d.k * d.h * d.eb,
               deps=("combine_a2a",), produces=("ffn_out",)),
        ]
        last = "weighted_sum"
    else:
        ops += [
            Op("gather", "memory",
               mem_bytes=(d.total_tokens * d.k * d.h
                          + d.total_tokens * d.h) * d.eb,
               deps=("fc2",), produces=("fc2_out_full",),
               fuse_group="tp_ffn_gemm+rs"),
            Op("ffn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("gather",), produces=("ffn_out",),
               fuse_group="tp_ffn_gemm+rs"),
        ]
        last = "ffn_rs"

    ops.append(Op("residual2", "memory",
                  mem_bytes=3 * d.local_tokens * d.h * d.eb,
                  deps=(last,), produces=("hidden_next",)))
    return ops


# ---------------------------------------------------------------------------
# Backward graph
# ---------------------------------------------------------------------------

def build_backward_graph(
    model: ModelConfig,
    parallel: ParallelConfig,
    micro_batch: int,
    elem_bytes: float = 2.0,
    seq_len: Optional[int] = None,
    selective_remat: bool = True,
    remat_plan: Optional[object] = None,
) -> OpGraph:
    """Operator DAG for one MoE layer's backward pass on one rank.

    Built by mirroring the forward graph: every GEMM becomes a dgrad and
    a wgrad GEMM (same FLOPs each), every collective becomes its dual,
    memory ops double their traffic.  With ``selective_remat`` the
    recompute/re-communicate ops of Fig. 8b are inserted (phase
    ``"remat"``) with dependencies that let the scheduler overlap them;
    ``remat_plan`` (a :class:`~repro.core.remat.RematPlan`) selects
    which activations are recreated, defaulting to the paper's plan.
    """
    fwd = build_forward_graph(model, parallel, micro_batch, elem_bytes,
                              seq_len)
    dual = {"ag": "rs", "rs": "ag", "a2a": "a2a", "ar": "ar"}

    ops: List[Op] = []
    prev_name: Optional[str] = None
    for op in reversed(list(fwd)):
        deps = (prev_name,) if prev_name else ()
        if op.kind == "comm":
            bwd = Op(f"{op.name}.bwd", "comm",
                     comm_bytes=op.comm_bytes,
                     comm_pattern=dual[op.comm_pattern],
                     comm_scope=op.comm_scope,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name
        elif op.kind == "gemm":
            dgrad = Op(f"{op.name}.dgrad", "gemm",
                       flops=op.flops, mem_bytes=op.mem_bytes,
                       deps=deps, produces=(f"d_{op.name}_in",),
                       fuse_group=op.fuse_group, phase="bwd",
                       gemm_shape=op.gemm_shape)
            wgrad = Op(f"{op.name}.wgrad", "gemm",
                       flops=op.flops, mem_bytes=op.mem_bytes,
                       deps=deps, produces=(f"d_{op.name}_w",),
                       phase="bwd", gemm_shape=op.gemm_shape)
            ops += [dgrad, wgrad]
            prev_name = dgrad.name
        elif op.kind == "attn":
            bwd = Op(f"{op.name}.bwd", "attn",
                     flops=2.5 * op.flops, mem_bytes=2 * op.mem_bytes,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name
        else:
            bwd = Op(f"{op.name}.bwd", "memory",
                     mem_bytes=2 * op.mem_bytes,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name

    if selective_remat:
        # The remat transform lives in core.remat so the sim schedule
        # and the numeric DAG executor share one RematPlan semantics
        # (lazy import: remat imports Op from this module).
        from .remat import insert_remat_ops
        ops = insert_remat_ops(fwd, ops, remat_plan)
    graph = OpGraph(ops)
    graph.validate()
    return graph
