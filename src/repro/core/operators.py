"""Operator-level decomposition of an MoE layer (§4, Fig. 20).

MegaScale-MoE's overlap machinery works because each MoE layer is broken
into *operators that run as GPU kernels* rather than a monolithic
autograd module.  This module builds that operator DAG for any strategy
combination (SP/TP attention × EP/TP FFN), for both the forward and the
backward pass, annotated with everything the scheduler and performance
model need:

* ``flops``       — arithmetic work (GEMMs, attention);
* ``mem_bytes``   — HBM traffic (memory-bound ops: norms, RoPE, SwiGLU,
  scatter/gather — the ops §6.1 blames for MoE's lower MFU);
* ``comm_bytes``  — per-rank wire bytes, with pattern and scope;
* ``deps``        — data dependencies (activation producers);
* ``fuse_group``  — which intra-operator overlap kernel the op belongs
  to (§4.2: A2A+GEMM, GEMM+A2A, AG+scatter+GroupedGEMM,
  GroupedGEMM+gather+RS).

Element sizes default to BF16 (2 bytes) as in the paper's training.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .config import ModelConfig, ParallelConfig

__all__ = [
    "Op",
    "OpGraph",
    "build_forward_graph",
    "build_backward_graph",
    "TilePlan",
    "TILE_SEP",
    "tile_name",
    "base_op_name",
    "fusable_groups",
    "plan_tiles",
    "tile_forward_graph",
    "tiled_members",
]

COMPUTE_KINDS = ("gemm", "attn", "memory")
COMM_PATTERNS = ("a2a", "ag", "rs", "ar")


@dataclass(frozen=True)
class Op:
    """One schedulable unit of work on a rank.

    ``comm_bytes`` is what this rank sends; for ring collectives that is
    ``(n-1)``× the shard, matching the ledger conventions.
    """

    name: str
    kind: str                      # "gemm" | "attn" | "memory" | "comm"
    flops: float = 0.0
    mem_bytes: float = 0.0
    comm_bytes: float = 0.0
    comm_pattern: str = ""         # a2a | ag | rs | ar
    comm_scope: str = "intra"      # intra-node (NVLink) or inter (NIC)
    deps: Tuple[str, ...] = ()
    produces: Tuple[str, ...] = ()
    fuse_group: str = ""
    phase: str = "fwd"             # fwd | bwd | remat
    #: GEMM tile shape (per-expert for grouped GEMMs) for the
    #: shape-aware efficiency model; 0 means "not a GEMM".
    gemm_shape: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    #: ``(index, count)`` when this op is one tile of a decomposed
    #: fused-group member (§4.2 intra-operator overlap); None for
    #: whole ops.  Tile index order is the swizzled execution order:
    #: ascending source rank for AG/RS groups, ascending token chunk
    #: for A2A-adjacent groups.
    tile: Optional[Tuple[int, int]] = None
    #: Name of the whole op this tile was split from ("" for whole ops).
    tile_of: str = ""

    def __post_init__(self):
        if self.kind == "comm":
            if self.comm_pattern not in COMM_PATTERNS:
                raise ValueError(
                    f"comm op {self.name!r} needs a pattern from "
                    f"{COMM_PATTERNS}, got {self.comm_pattern!r}"
                )
        elif self.kind not in COMPUTE_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}")


class OpGraph:
    """A validated DAG of :class:`Op` records in topological order."""

    def __init__(self, ops: Sequence[Op]):
        self.ops: List[Op] = list(ops)
        self._by_name: Dict[str, Op] = {}
        self.validate()

    def validate(self) -> None:
        """Check the op list is a well-formed DAG in topological order.

        Raises :class:`ValueError` on duplicate op names, dependencies
        on unknown ops, dependency cycles, and list orderings that
        place an op before one of its dependencies — in that check
        order, so the most specific diagnosis wins (a cycle is reported
        as a cycle, not as a misordering).
        """
        self._by_name = {}
        for op in self.ops:
            if op.name in self._by_name:
                raise ValueError(f"duplicate op name {op.name!r}")
            self._by_name[op.name] = op
        for op in self.ops:
            for dep in op.deps:
                if dep not in self._by_name:
                    raise ValueError(
                        f"op {op.name!r} depends on unknown op {dep!r}"
                    )
        self._check_acyclic()
        self._check_topological()

    def _check_acyclic(self) -> None:
        """Kahn's algorithm; any op never reaching in-degree 0 is cyclic."""
        indegree = {op.name: len(op.deps) for op in self.ops}
        consumers: Dict[str, List[str]] = {op.name: [] for op in self.ops}
        for op in self.ops:
            for dep in op.deps:
                consumers[dep].append(op.name)
        ready = [name for name, deg in indegree.items() if deg == 0]
        resolved = 0
        while ready:
            name = ready.pop()
            resolved += 1
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if resolved != len(self.ops):
            stuck = sorted(n for n, deg in indegree.items() if deg > 0)
            raise ValueError(
                f"dependency cycle involving ops {stuck}"
            )

    def _check_topological(self) -> None:
        seen = set()
        for op in self.ops:
            for dep in op.deps:
                if dep not in seen:
                    raise ValueError(
                        f"op {op.name!r} appears before its dependency "
                        f"{dep!r}"
                    )
            seen.add(op.name)

    def __iter__(self):
        return iter(self.ops)

    def __len__(self):
        return len(self.ops)

    def __getitem__(self, name: str) -> Op:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def total(self, attr: str, kind: Optional[str] = None,
              phase: Optional[str] = None) -> float:
        """Sum an op attribute over the graph, optionally filtered."""
        return sum(
            getattr(op, attr) for op in self.ops
            if (kind is None or op.kind == kind)
            and (phase is None or op.phase == phase)
        )

    def comm_ops(self) -> List[Op]:
        """All communication ops, in graph order."""
        return [op for op in self.ops if op.kind == "comm"]

    def compute_ops(self) -> List[Op]:
        """All non-communication ops, in graph order."""
        return [op for op in self.ops if op.kind != "comm"]


# ---------------------------------------------------------------------------
# Forward graph
# ---------------------------------------------------------------------------

def build_forward_graph(
    model: ModelConfig,
    parallel: ParallelConfig,
    micro_batch: int,
    elem_bytes: float = 2.0,
    seq_len: Optional[int] = None,
) -> OpGraph:
    """Operator DAG for one MoE layer's forward pass on one rank."""
    dims = _Dims(model, parallel, micro_batch, elem_bytes,
                 seq_len or model.seq_len)
    ops: List[Op] = []
    ops += _attention_forward(dims)
    ops += _ffn_forward(dims)
    graph = OpGraph(ops)
    graph.validate()
    return graph


class _Dims:
    """Shared size arithmetic for graph builders."""

    def __init__(self, model: ModelConfig, parallel: ParallelConfig,
                 micro_batch: int, elem_bytes: float, seq_len: int):
        self.model = model
        self.parallel = parallel
        self.b = micro_batch
        self.s = seq_len
        self.h = model.hidden_size
        self.n = parallel.model_parallel_size
        self.m = model.gqa_ratio
        self.k = model.top_k
        self.fh = model.ffn_hidden_size
        self.E = model.n_experts
        self.eb = elem_bytes
        # Tokens this rank is responsible for in the SP region.
        self.local_tokens = self.b * self.s / self.n
        self.total_tokens = self.b * self.s

    @property
    def ep_mode(self) -> str:
        mode = self.parallel.ep_dispatch
        if mode == "adaptive":
            from ..parallel.ep_ffn import choose_dispatch_mode
            mode = choose_dispatch_mode(self.k, self.n)
        return mode

    def ring_send(self, full_elements: float) -> float:
        """Per-rank bytes for a ring AG/RS whose full tensor has
        ``full_elements``."""
        return full_elements / self.n * (self.n - 1) * self.eb

    def a2a_send(self, local_elements: float) -> float:
        """Per-rank bytes for an A2A where this rank redistributes
        ``local_elements``."""
        return local_elements * (self.n - 1) / self.n * self.eb


def _attention_forward(d: _Dims) -> List[Op]:
    qkv_width = d.model.qkv_output_size
    t_loc = d.local_tokens
    ops: List[Op] = [
        Op("ln1", "memory",
           mem_bytes=2 * t_loc * d.h * d.eb,
           deps=(), produces=("ln1_out",)),
    ]
    if d.parallel.attention == "sp":
        ops += [
            Op("qkv_proj", "gemm",
               flops=2 * t_loc * d.h * qkv_width,
               mem_bytes=(t_loc * (d.h + qkv_width)
                          + d.h * qkv_width) * d.eb,
               deps=("ln1",), produces=("qkv",),
               fuse_group="gemm+a2a",
               gemm_shape=(t_loc, d.h, qkv_width)),
            Op("rope", "memory",
               mem_bytes=2 * t_loc * (d.h + d.h / d.m) * d.eb,
               deps=("qkv_proj",), produces=("q_rope", "k_rope")),
            Op("qkv_a2a", "comm",
               comm_bytes=d.a2a_send(t_loc * qkv_width),
               comm_pattern="a2a",
               deps=("rope",), produces=("qkv_a2a",),
               fuse_group="a2a+attn"),
            Op("attention", "attn",
               flops=2 * 2 * d.b * d.s * (d.s / 2) * d.h / d.n,
               mem_bytes=d.total_tokens * qkv_width / d.n * d.eb,
               deps=("qkv_a2a",), produces=("attn",),
               fuse_group="a2a+attn"),
            Op("attn_a2a", "comm",
               comm_bytes=d.a2a_send(d.total_tokens * d.h / d.n),
               comm_pattern="a2a",
               deps=("attention",), produces=("attn_a2a",),
               fuse_group="a2a+gemm"),
            Op("out_proj", "gemm",
               flops=2 * t_loc * d.h * d.h,
               mem_bytes=(2 * t_loc * d.h + d.h * d.h) * d.eb,
               deps=("attn_a2a",), produces=("attn_out",),
               fuse_group="a2a+gemm",
               gemm_shape=(t_loc, d.h, d.h)),
        ]
    else:  # Megatron TP attention: AG in, RS out (Eq. 1 volume).
        ops += [
            Op("attn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln1",), produces=("ln1_out_full",),
               fuse_group="attn_ag+gemm"),
            Op("qkv_proj", "gemm",
               flops=2 * d.total_tokens * d.h * qkv_width / d.n,
               mem_bytes=(d.total_tokens * (d.h + qkv_width / d.n)
                          + d.h * qkv_width / d.n) * d.eb,
               deps=("attn_ag",), produces=("qkv",),
               fuse_group="attn_ag+gemm",
               gemm_shape=(d.total_tokens, d.h, qkv_width / d.n)),
            Op("rope", "memory",
               mem_bytes=2 * d.total_tokens * (d.h + d.h / d.m)
               / d.n * d.eb,
               deps=("qkv_proj",), produces=("q_rope", "k_rope")),
            Op("attention", "attn",
               flops=2 * 2 * d.b * d.s * (d.s / 2) * d.h / d.n,
               mem_bytes=d.total_tokens * qkv_width / d.n * d.eb,
               deps=("rope",), produces=("attn",)),
            Op("out_proj", "gemm",
               flops=2 * d.total_tokens * d.h * d.h / d.n,
               mem_bytes=(d.total_tokens * (d.h / d.n + d.h)
                          + d.h * d.h / d.n) * d.eb,
               deps=("attention",), produces=("attn_partial",),
               fuse_group="attn_gemm+rs",
               gemm_shape=(d.total_tokens, d.h / d.n, d.h)),
            Op("attn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("out_proj",), produces=("attn_out",),
               fuse_group="attn_gemm+rs"),
        ]
    ops.append(Op("residual1", "memory",
                  mem_bytes=3 * d.local_tokens * d.h * d.eb,
                  deps=(ops[-1].name,), produces=("ln2_in",)))
    return ops


def _ffn_forward(d: _Dims) -> List[Op]:
    ops: List[Op] = [
        Op("ln2", "memory",
           mem_bytes=2 * d.local_tokens * d.h * d.eb,
           deps=("residual1",), produces=("ln2_out",)),
    ]
    routed = d.total_tokens * d.k / d.n  # rows per rank after dispatch

    # In A2A mode the router gates this rank's local tokens before
    # dispatch; in the AG-based modes every rank routes the *gathered*
    # batch (the gate is replicated, so decisions are identical), so the
    # router joins the fused AG+scatter kernel and depends on the AG —
    # the IR mirrors what the numeric executor actually runs.
    if d.parallel.ffn == "ep" and d.ep_mode == "ag_rs":
        ops += [
            Op("ffn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln2",), produces=("ln2_out_ag",),
               fuse_group="ag+scatter+ggemm"),
            Op("router", "gemm",
               flops=2 * d.total_tokens * d.h * d.E,
               mem_bytes=d.total_tokens * (d.h + d.E) * d.eb,
               deps=("ffn_ag",), produces=("routing",),
               fuse_group="ag+scatter+ggemm",
               gemm_shape=(d.total_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=(d.total_tokens * d.h + routed * d.h) * d.eb,
               deps=("ffn_ag", "router"), produces=("ffn_in",),
               fuse_group="ag+scatter+ggemm"),
        ]
        gemm_dep = "scatter"
    elif d.parallel.ffn == "ep":  # a2a dispatch
        ops += [
            Op("router", "gemm",
               flops=2 * d.local_tokens * d.h * d.E,
               mem_bytes=d.local_tokens * (d.h + d.E) * d.eb,
               deps=("ln2",), produces=("routing",),
               gemm_shape=(d.local_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=2 * d.local_tokens * d.k * d.h * d.eb,
               deps=("ln2", "router"), produces=("send_rows",)),
            Op("dispatch_a2a", "comm",
               comm_bytes=d.a2a_send(d.local_tokens * d.k * d.h),
               comm_pattern="a2a",
               deps=("scatter",), produces=("ffn_in",),
               fuse_group="a2a+ggemm"),
        ]
        gemm_dep = "dispatch_a2a"
    else:  # TP FFN: AG in, every rank runs all routed rows on shards.
        ops += [
            Op("ffn_ag", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="ag",
               deps=("ln2",), produces=("ln2_out_ag",),
               fuse_group="tp_ffn_ag+gemm"),
            Op("router", "gemm",
               flops=2 * d.total_tokens * d.h * d.E,
               mem_bytes=d.total_tokens * (d.h + d.E) * d.eb,
               deps=("ffn_ag",), produces=("routing",),
               fuse_group="tp_ffn_ag+gemm",
               gemm_shape=(d.total_tokens, d.h, d.E)),
            Op("scatter", "memory",
               mem_bytes=(d.total_tokens * d.h
                          + d.total_tokens * d.k * d.h) * d.eb,
               deps=("ffn_ag", "router"), produces=("ffn_in",),
               fuse_group="tp_ffn_ag+gemm"),
        ]
        gemm_dep = "scatter"

    if d.parallel.ffn == "ep":
        rows, width, experts_here = routed, d.fh, d.E / d.n
        ggemm_fuse = ("ag+scatter+ggemm" if d.ep_mode == "ag_rs"
                      else "a2a+ggemm")
    else:
        rows, width, experts_here = d.total_tokens * d.k, d.fh / d.n, d.E
        ggemm_fuse = "tp_ffn_ag+gemm"

    weight_bytes = experts_here * d.h * width * d.eb
    rows_per_expert = rows / max(experts_here, 1)
    ops += [
        Op("fc1", "gemm",
           flops=2 * rows * d.h * width,
           mem_bytes=(rows * (d.h + width)) * d.eb + weight_bytes,
           deps=(gemm_dep,), produces=("fc1_out",),
           fuse_group=ggemm_fuse,
           gemm_shape=(rows_per_expert, d.h, width)),
        Op("fc3", "gemm",
           flops=2 * rows * d.h * width,
           mem_bytes=(rows * (d.h + width)) * d.eb + weight_bytes,
           deps=(gemm_dep,), produces=("fc3_out",),
           gemm_shape=(rows_per_expert, d.h, width)),
        Op("swiglu", "memory",
           mem_bytes=3 * rows * width * d.eb,
           deps=("fc1", "fc3"), produces=("fc2_in",)),
        Op("fc2", "gemm",
           flops=2 * rows * width * d.h,
           mem_bytes=(rows * (width + d.h)) * d.eb + weight_bytes,
           deps=("swiglu",), produces=("fc2_out",),
           fuse_group="ggemm+gather+rs" if d.parallel.ffn == "ep"
           and d.ep_mode == "ag_rs" else (
               "tp_ffn_gemm+rs" if d.parallel.ffn == "tp" else ""),
           gemm_shape=(rows_per_expert, width, d.h)),
    ]

    if d.parallel.ffn == "ep" and d.ep_mode == "ag_rs":
        ops += [
            Op("gather", "memory",
               mem_bytes=(routed * d.h + d.total_tokens * d.h) * d.eb,
               deps=("fc2",), produces=("fc2_out_full",),
               fuse_group="ggemm+gather+rs"),
            Op("ffn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("gather",), produces=("ffn_out",),
               fuse_group="ggemm+gather+rs"),
        ]
        last = "ffn_rs"
    elif d.parallel.ffn == "ep":
        ops += [
            Op("combine_a2a", "comm",
               comm_bytes=d.a2a_send(d.local_tokens * d.k * d.h),
               comm_pattern="a2a",
               deps=("fc2",), produces=("combined_rows",),
               fuse_group="ggemm+a2a"),
            Op("weighted_sum", "memory",
               mem_bytes=2 * d.local_tokens * d.k * d.h * d.eb,
               deps=("combine_a2a",), produces=("ffn_out",)),
        ]
        last = "weighted_sum"
    else:
        ops += [
            Op("gather", "memory",
               mem_bytes=(d.total_tokens * d.k * d.h
                          + d.total_tokens * d.h) * d.eb,
               deps=("fc2",), produces=("fc2_out_full",),
               fuse_group="tp_ffn_gemm+rs"),
            Op("ffn_rs", "comm",
               comm_bytes=d.ring_send(d.total_tokens * d.h),
               comm_pattern="rs",
               deps=("gather",), produces=("ffn_out",),
               fuse_group="tp_ffn_gemm+rs"),
        ]
        last = "ffn_rs"

    ops.append(Op("residual2", "memory",
                  mem_bytes=3 * d.local_tokens * d.h * d.eb,
                  deps=(last,), produces=("hidden_next",)))
    return ops


# ---------------------------------------------------------------------------
# Backward graph
# ---------------------------------------------------------------------------

def build_backward_graph(
    model: ModelConfig,
    parallel: ParallelConfig,
    micro_batch: int,
    elem_bytes: float = 2.0,
    seq_len: Optional[int] = None,
    selective_remat: bool = True,
    remat_plan: Optional[object] = None,
) -> OpGraph:
    """Operator DAG for one MoE layer's backward pass on one rank.

    Built by mirroring the forward graph: every GEMM becomes a dgrad and
    a wgrad GEMM (same FLOPs each), every collective becomes its dual,
    memory ops double their traffic.  With ``selective_remat`` the
    recompute/re-communicate ops of Fig. 8b are inserted (phase
    ``"remat"``) with dependencies that let the scheduler overlap them;
    ``remat_plan`` (a :class:`~repro.core.remat.RematPlan`) selects
    which activations are recreated, defaulting to the paper's plan.
    """
    fwd = build_forward_graph(model, parallel, micro_batch, elem_bytes,
                              seq_len)
    dual = {"ag": "rs", "rs": "ag", "a2a": "a2a", "ar": "ar"}

    ops: List[Op] = []
    prev_name: Optional[str] = None
    for op in reversed(list(fwd)):
        deps = (prev_name,) if prev_name else ()
        if op.kind == "comm":
            bwd = Op(f"{op.name}.bwd", "comm",
                     comm_bytes=op.comm_bytes,
                     comm_pattern=dual[op.comm_pattern],
                     comm_scope=op.comm_scope,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name
        elif op.kind == "gemm":
            dgrad = Op(f"{op.name}.dgrad", "gemm",
                       flops=op.flops, mem_bytes=op.mem_bytes,
                       deps=deps, produces=(f"d_{op.name}_in",),
                       fuse_group=op.fuse_group, phase="bwd",
                       gemm_shape=op.gemm_shape)
            wgrad = Op(f"{op.name}.wgrad", "gemm",
                       flops=op.flops, mem_bytes=op.mem_bytes,
                       deps=deps, produces=(f"d_{op.name}_w",),
                       phase="bwd", gemm_shape=op.gemm_shape)
            ops += [dgrad, wgrad]
            prev_name = dgrad.name
        elif op.kind == "attn":
            bwd = Op(f"{op.name}.bwd", "attn",
                     flops=2.5 * op.flops, mem_bytes=2 * op.mem_bytes,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name
        else:
            bwd = Op(f"{op.name}.bwd", "memory",
                     mem_bytes=2 * op.mem_bytes,
                     deps=deps, produces=(f"d_{op.name}",),
                     fuse_group=op.fuse_group, phase="bwd")
            ops.append(bwd)
            prev_name = bwd.name

    if selective_remat:
        # The remat transform lives in core.remat so the sim schedule
        # and the numeric DAG executor share one RematPlan semantics
        # (lazy import: remat imports Op from this module).
        from .remat import insert_remat_ops
        ops = insert_remat_ops(fwd, ops, remat_plan)
    graph = OpGraph(ops)
    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# Tile decomposition (§4.2 intra-operator overlap)
# ---------------------------------------------------------------------------

#: Separator between a base op name and its tile index ("qkv_a2a#t0").
TILE_SEP = "#t"


def tile_name(base: str, index: int) -> str:
    """The sub-op name of one tile of a decomposed fused-group op."""
    return f"{base}{TILE_SEP}{index}"


def base_op_name(name: str) -> str:
    """The whole-op name a (possibly tiled) op name refers to."""
    head, sep, tail = name.rpartition(TILE_SEP)
    if sep and tail.isdigit():
        return head
    return name


@dataclass(frozen=True)
class TilePlan:
    """How a forward graph's fused groups decompose into tiles.

    ``group_tiles`` maps ``"<fuse_group>/<phase>"`` keys (the same keys
    the scheduler fuses on) to tile counts ``T >= 2``; groups absent
    from the map stay whole.  AG/RS-adjacent groups tile per source
    rank (``T = n``, ascending-rank swizzle), dense A2A-adjacent groups
    tile by token chunks of ``tile_tokens`` sequence positions per
    rank, and the ragged EP dispatch group tiles per source rank.
    """

    tile_tokens: int
    group_tiles: Mapping[str, int]

    def tiles_of(self, op: Op) -> int:
        """Tile count for one op (1 = stays whole)."""
        if not op.fuse_group or op.phase != "fwd":
            return 1
        return self.group_tiles.get(f"{op.fuse_group}/{op.phase}", 1)


def fusable_groups(graph: OpGraph) -> Dict[str, List[str]]:
    """Groups the scheduler would fuse: >= 1 comm and >= 1 compute op.

    Returns ``{"<fuse_group>/<phase>": [member names in graph order]}``
    — the same keying :class:`~repro.core.schedule.HolisticScheduler`
    uses, so the tile transform and the fusion pass agree on which
    groups are §4.2 fused kernels.
    """
    groups: Dict[str, List[str]] = {}
    for op in graph:
        if op.fuse_group:
            groups.setdefault(
                f"{op.fuse_group}/{op.phase}", []).append(op.name)
    return {
        key: names for key, names in groups.items()
        if any(graph[n].kind == "comm" for n in names)
        and any(graph[n].kind != "comm" for n in names)
    }


def plan_tiles(graph: OpGraph, parallel_size: int, seq_len: int,
               tile_tokens: int) -> TilePlan:
    """Choose per-group tile counts for one forward graph.

    ``tile_tokens`` is the token-chunk width (sequence positions per
    rank) for dense A2A-adjacent groups; it must divide the local
    sequence shard ``seq_len / parallel_size`` exactly — tiles never
    pad, so an uneven split is a configuration error.  AG/RS and the
    ragged EP-dispatch groups always use ``parallel_size`` tiles (one
    per source rank, the paper's swizzled ordering).
    """
    if tile_tokens < 1:
        raise ValueError(f"tile_tokens must be >= 1, got {tile_tokens}")
    if seq_len % parallel_size != 0:
        raise ValueError(
            f"sequence length {seq_len} not divisible by "
            f"{parallel_size} ranks")
    local_seq = seq_len // parallel_size
    if local_seq % tile_tokens != 0:
        raise ValueError(
            f"tile_tokens={tile_tokens} must divide the local "
            f"sequence shard {local_seq} (= {seq_len}/{parallel_size}); "
            f"valid values: divisors of {local_seq}")
    token_tiles = local_seq // tile_tokens
    group_tiles: Dict[str, int] = {}
    for key, members in fusable_groups(graph).items():
        patterns = {graph[n].comm_pattern
                    for n in members if graph[n].kind == "comm"}
        if patterns & {"ag", "rs"}:
            tiles = parallel_size          # source/dest-rank swizzle
        elif "ggemm" in key:
            tiles = parallel_size          # ragged dispatch: per rank
        else:
            tiles = token_tiles            # dense A2A: token chunks
        if tiles >= 2:
            group_tiles[key] = tiles
    return TilePlan(tile_tokens=tile_tokens, group_tiles=group_tiles)


def tile_forward_graph(graph: OpGraph, plan: TilePlan) -> OpGraph:
    """Decompose fused groups of a forward graph into per-tile sub-ops.

    Every member of a planned group becomes ``T`` sub-ops named
    ``<op>#t<i>`` with work attributes split ``1/T`` each and deps that
    encode the §4.2 pipeline: tile ``i`` depends on tile ``i`` of each
    same-group producer (comm tile → consumer tile), on tile ``i-1`` of
    itself (in-order streams, the source-rank-sorted order), and on the
    *last* tile of any tiled producer outside its group.  Untiled
    consumers of a tiled op wait for its last tile.  The result is a
    valid :class:`OpGraph` whose topological orders are exactly the
    legal tile interleavings the ``tile_conformance`` invariant
    accepts.
    """
    tiles_of = {op.name: plan.tiles_of(op) for op in graph}
    tiled_ops: List[Op] = []
    for op in graph:
        count = tiles_of[op.name]
        if count < 2:
            deps = tuple(
                tile_name(d, tiles_of[d] - 1) if tiles_of[d] >= 2 else d
                for d in op.deps)
            tiled_ops.append(op if deps == op.deps
                             else replace(op, deps=deps))
            continue
        m, k, n = op.gemm_shape
        for i in range(count):
            deps = []
            for dep in op.deps:
                dep_op = graph[dep]
                if (tiles_of[dep] == count
                        and dep_op.fuse_group == op.fuse_group):
                    deps.append(tile_name(dep, i))
                elif tiles_of[dep] >= 2:
                    deps.append(tile_name(dep, tiles_of[dep] - 1))
                else:
                    deps.append(dep)
            if i > 0:
                deps.append(tile_name(op.name, i - 1))
            tiled_ops.append(replace(
                op,
                name=tile_name(op.name, i),
                flops=op.flops / count,
                mem_bytes=op.mem_bytes / count,
                comm_bytes=op.comm_bytes / count,
                deps=tuple(deps),
                produces=tuple(tile_name(p, i) for p in op.produces),
                gemm_shape=(m / count, k, n),
                tile=(i, count),
                tile_of=op.name,
            ))
    tiled = OpGraph(tiled_ops)
    tiled.validate()
    return tiled


def tiled_members(graph: OpGraph) -> Dict[str, List[str]]:
    """``{base op name: [tile sub-op names, ascending]}`` of a graph."""
    members: Dict[str, List[str]] = {}
    for op in graph:
        if op.tile is not None:
            members.setdefault(op.tile_of, []).append(op.name)
    return members
