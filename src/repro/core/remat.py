"""Selective activation rematerialization (§4.1, Fig. 8, Appendix A.2).

MegaScale-MoE keeps only activations that are *computationally expensive*
to recreate and recomputes (or re-communicates) the rest during backward,
hiding the re-work under independent communication.  This module holds:

* the Fig. 20 activation table with exact element counts,
* :class:`RematPlan` — which activations to retain, with memory
  accounting that reproduces the Appendix A.2 formulas,
* the paper's default plan (retain ``hidden``, ``qkv_a2a``,
  ``attn_a2a``, ``ln2_in``, ``fc1_out``, ``fc3_out``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, FrozenSet, List, Optional

from .config import ModelConfig, ParallelConfig

if TYPE_CHECKING:  # lazy at runtime: operators lazily imports us back
    from .operators import Op, OpGraph

__all__ = [
    "ActivationSpec",
    "activation_table",
    "RematPlan",
    "default_remat_plan",
    "insert_remat_ops",
    "no_remat_plan",
]


@dataclass(frozen=True)
class ActivationSpec:
    """One row of Fig. 20.

    ``share`` is the element count in units of ``b·s·h/n`` as a function
    of (n, m, k, f); ``source`` documents the producing operator and
    ``recreate`` how the activation can be rebuilt in backward:
    ``"recompute"`` (cheap memory-bound op), ``"recommunicate"``
    (repeat a collective), or ``"expensive"`` (GEMM/attention output —
    these are the retention candidates).
    """

    name: str
    source: str
    recreate: str

    def share(self, n: int, m: int, k: int, f: float) -> float:
        """Element count in units of ``b·s·h/n`` for given (n, m, k, f)."""
        return _SHARES[self.name](n, m, k, f)


_SHARES = {
    "hidden":      lambda n, m, k, f: 1.0,
    "ln1_out":     lambda n, m, k, f: 1.0,
    "qkv":         lambda n, m, k, f: 1.0 + 2.0 / m,
    "q_rope":      lambda n, m, k, f: 1.0,
    "k_rope":      lambda n, m, k, f: 1.0 / m,
    "qkv_a2a":     lambda n, m, k, f: 1.0 + 2.0 / m,
    "attn":        lambda n, m, k, f: 1.0,
    "attn_a2a":    lambda n, m, k, f: 1.0,
    "attn_out":    lambda n, m, k, f: 1.0,
    "ln2_in":      lambda n, m, k, f: 1.0,
    "ln2_out":     lambda n, m, k, f: 1.0,
    "ln2_out_ag":  lambda n, m, k, f: float(n),
    "ffn_in":      lambda n, m, k, f: float(k),
    "fc1_out":     lambda n, m, k, f: k * f,
    "fc3_out":     lambda n, m, k, f: k * f,
    "fc2_in":      lambda n, m, k, f: k * f,
    "fc2_out":     lambda n, m, k, f: float(k),
    "fc2_out_rs":  lambda n, m, k, f: float(n),
    "ffn_out":     lambda n, m, k, f: 1.0,
    "hidden_next": lambda n, m, k, f: 1.0,
}


def activation_table() -> List[ActivationSpec]:
    """The full Fig. 20 activation list for one MoE layer."""
    rows = [
        ("hidden",      "layer input",                    "expensive"),
        ("ln1_out",     "RMSNorm(hidden)",                "recompute"),
        ("qkv",         "MatMul(ln1_out, qkv_weight)",    "expensive"),
        ("q_rope",      "RopeEmbedding(q)",               "recompute"),
        ("k_rope",      "RopeEmbedding(k)",               "recompute"),
        ("qkv_a2a",     "All-to-All(q_rope, k_rope, v)",  "recommunicate"),
        ("attn",        "SelfAttention(qkv_a2a)",         "expensive"),
        ("attn_a2a",    "All-to-All(attn)",               "recommunicate"),
        ("attn_out",    "MatMul(attn_a2a, out_weight)",   "expensive"),
        ("ln2_in",      "Add(hidden, attn_out)",          "recompute"),
        ("ln2_out",     "RMSNorm(ln2_in)",                "recompute"),
        ("ln2_out_ag",  "All-Gather(ln2_out)",            "recommunicate"),
        ("ffn_in",      "Scatter(ln2_out_ag)",            "recompute"),
        ("fc1_out",     "GroupedGEMM(ffn_in, fc1_w)",     "expensive"),
        ("fc3_out",     "GroupedGEMM(ffn_in, fc3_w)",     "expensive"),
        ("fc2_in",      "SiLU(fc1_out, fc3_out)",         "recompute"),
        ("fc2_out",     "GroupedGEMM(fc2_in, fc2_w)",     "expensive"),
        ("fc2_out_rs",  "Gather(fc2_out)",                "recompute"),
        ("ffn_out",     "Reduce-Scatter(fc2_out_rs)",     "recommunicate"),
        ("hidden_next", "Add(ln2_in, ffn_out)",           "expensive"),
    ]
    return [ActivationSpec(*row) for row in rows]


#: The paper's retained set: sums to ``(2kf + 4 + 2/m)·bsh/n``.
PAPER_RETAINED: FrozenSet[str] = frozenset(
    {"hidden", "qkv_a2a", "attn_a2a", "ln2_in", "fc1_out", "fc3_out"}
)



@dataclass(frozen=True)
class RematPlan:
    """A retention decision over the Fig. 20 activation set."""

    retained: FrozenSet[str]

    def __post_init__(self):
        unknown = self.retained - set(_SHARES)
        if unknown:
            raise ValueError(f"unknown activations: {sorted(unknown)}")

    def retained_elements(self, model: ModelConfig,
                          parallel: ParallelConfig,
                          micro_batch: int) -> float:
        """Elements stored between forward and backward per layer."""
        n, m, k = (parallel.model_parallel_size, model.gqa_ratio,
                   model.top_k)
        f = model.ffn_hidden_size / model.hidden_size
        unit = micro_batch * model.seq_len * model.hidden_size / n
        return unit * sum(
            spec.share(n, m, k, f) for spec in activation_table()
            if spec.name in self.retained
        )

    def recreated(self) -> List[ActivationSpec]:
        """Activations that backward must rebuild."""
        return [spec for spec in activation_table()
                if spec.name not in self.retained]

    def recompute_names(self) -> List[str]:
        """Recreated activations rebuilt by re-running compute."""
        return [s.name for s in self.recreated()
                if s.recreate == "recompute"]

    def recommunicate_names(self) -> List[str]:
        """Recreated activations rebuilt by repeating a collective."""
        return [s.name for s in self.recreated()
                if s.recreate == "recommunicate"]

    def savings_vs_full(self, model: ModelConfig,
                        parallel: ParallelConfig,
                        micro_batch: int) -> float:
        """Fraction of per-layer activation memory this plan saves."""
        full = no_remat_plan().retained_elements(model, parallel,
                                                 micro_batch)
        mine = self.retained_elements(model, parallel, micro_batch)
        return 1.0 - mine / full if full else 0.0


def default_remat_plan() -> RematPlan:
    """The paper's plan: keep GEMM/attention-adjacent activations only.

    Retained shares sum to ``2kf + 4 + 2/m`` — the Appendix A.2 reduced
    formula.  Everything recomputed is memory-bound (RMSNorm, SwiGLU,
    scatter) or a repeatable collective (all-gather), so backward can
    hide the re-work under gradient communication (Fig. 8b).
    """
    return RematPlan(PAPER_RETAINED)


def no_remat_plan() -> RematPlan:
    """Store every Fig. 20 activation: the ``(2n+2k+3kf+12+5/m)`` total."""
    return RematPlan(frozenset(_SHARES))


# ---------------------------------------------------------------------------
# Graph transform
# ---------------------------------------------------------------------------

def insert_remat_ops(fwd: "OpGraph", bwd_ops: List["Op"],
                     plan: Optional[RematPlan] = None) -> List["Op"]:
    """Insert Fig. 8b rematerialization ops before their consumers.

    The one remat transform shared by the sim schedule
    (:func:`~repro.core.operators.build_backward_graph`) and the numeric
    DAG executor (:meth:`~repro.runtime.dag_executor.DagRunResult.apply_remat`):
    every activation the ``plan`` does *not* retain and that backward
    consumes shows up as a ``remat.*`` op — re-run RMSNorm1/RMSNorm2,
    re-all-gather the FFN input, re-apply SwiGLU to recover ``fc2_in``.
    Each carries no ordering dependency on the backward chain, so the
    scheduler is free to hide it under communication.  With the default
    (paper) plan this reproduces the Fig. 8b op set exactly; a plan that
    retains everything inserts nothing.
    """
    from .operators import Op

    if plan is None:
        plan = default_remat_plan()

    def recreates(name: str) -> bool:
        """Whether activation ``name`` must be rebuilt under ``plan``."""
        return name in _SHARES and name not in plan.retained

    out: List[Op] = []
    inserted = set()

    def remat_for(consumer: str) -> List[Op]:
        extra: List[Op] = []
        if consumer == "fc2.dgrad" and "swiglu" in fwd \
                and recreates("fc2_in"):
            src = fwd["swiglu"]
            extra.append(Op("remat.swiglu", "memory",
                            mem_bytes=src.mem_bytes,
                            produces=("fc2_in",), phase="remat"))
        if consumer in ("fc1.dgrad", "fc1.wgrad") and "ln2" in fwd:
            if recreates("ln2_out"):
                src = fwd["ln2"]
                extra.append(Op("remat.ln2", "memory",
                                mem_bytes=src.mem_bytes,
                                produces=("ln2_out",), phase="remat"))
            if "ffn_ag" in fwd and recreates("ln2_out_ag"):
                ag = fwd["ffn_ag"]
                extra.append(Op("remat.ffn_ag", "comm",
                                comm_bytes=ag.comm_bytes,
                                comm_pattern="ag",
                                comm_scope=ag.comm_scope,
                                deps=("remat.ln2",)
                                if recreates("ln2_out") else (),
                                produces=("ln2_out_ag",), phase="remat"))
            if "scatter" in fwd and recreates("ffn_in"):
                sc = fwd["scatter"]
                if "ffn_ag" in fwd and recreates("ln2_out_ag"):
                    deps = ("remat.ffn_ag",)
                elif recreates("ln2_out"):
                    deps = ("remat.ln2",)
                else:
                    deps = ()
                extra.append(Op("remat.scatter", "memory",
                                mem_bytes=sc.mem_bytes,
                                deps=deps,
                                produces=("ffn_in",), phase="remat"))
        if consumer == "qkv_proj.wgrad" and "ln1" in fwd \
                and recreates("ln1_out"):
            extra.append(Op("remat.ln1", "memory",
                            mem_bytes=fwd["ln1"].mem_bytes,
                            produces=("ln1_out",), phase="remat"))
        return [e for e in extra if e.name not in inserted]

    for op in bwd_ops:
        for extra in remat_for(op.name):
            out.append(extra)
            inserted.add(extra.name)
        if op.name in ("fc2.dgrad", "fc2.wgrad") and \
                "remat.swiglu" in inserted:
            op = replace(op, deps=op.deps + ("remat.swiglu",))
        if op.name in ("fc1.dgrad", "fc1.wgrad", "fc3.dgrad",
                       "fc3.wgrad") and "remat.scatter" in inserted:
            op = replace(op, deps=op.deps + ("remat.scatter",))
        elif op.name in ("fc1.dgrad", "fc1.wgrad", "fc3.dgrad",
                         "fc3.wgrad") and "remat.ln2" in inserted \
                and "remat.scatter" not in inserted:
            op = replace(op, deps=op.deps + ("remat.ln2",))
        # remat.ln1 recreates qkv_proj's GEMM input; wgrad is its one
        # consumer, so it needs the edge or the op dangles unconsumed.
        if op.name == "qkv_proj.wgrad" and "remat.ln1" in inserted:
            op = replace(op, deps=op.deps + ("remat.ln1",))
        out.append(op)
    return out
