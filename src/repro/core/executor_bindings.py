"""Bindings from the operator IR to numeric execution.

One :class:`~repro.core.operators.OpGraph` drives three things in this
repo: the overlap schedule (:mod:`repro.core.schedule`), the event
simulation (:mod:`repro.sim`), and — through this module — the actual
numeric forward pass.  Each :class:`OpBinding` attaches a numeric
handler to one forward-graph op (or a small *covers* group of ops that
one engine method computes together, e.g. the grouped-GEMM chain
``fc1``/``fc3``/``swiglu``/``fc2``), in two flavors:

* ``seq`` — the whole-world callable used by the sequential backend:
  it sees every rank's activations and issues the classic ``dist_*``
  collectives;
* ``rank`` — the per-rank callable used by the thread-per-rank backend:
  it sees one rank's activations and a
  :class:`~repro.runtime.spmd.RankComm` whose collectives rendezvous
  with the peer threads;
* ``vec`` (optional) — the all-ranks-at-once callable used by the
  vectorized backend (:mod:`repro.runtime.vectorized`): it sees every
  rank's activations stacked on a leading rank axis and runs one
  batched numpy kernel, with collectives reduced to axis permutations.
  Bindings without a ``vec`` handler fall back to ``seq`` inside the
  same vectorized run.

The ``seq``/``rank`` flavors call the *same* per-op engine methods
(``SPAttentionEngine.op_qkv``, ``EPFFNEngine.op_scatter_a2a``, …), so
the autograd tape they build is structurally identical to the legacy
engine path — which is why ``repro verify`` can demand bitwise equality
between the two.  The ``vec`` flavor builds a *different* (batched)
tape whose per-rank slices and gradient-accumulation order are
nonetheless bitwise-identical to the per-rank tapes — the
``dag_bitwise`` invariant pins this too.

:func:`layer_program` closes the loop with the scheduler: it builds the
forward graph, prices it with the :class:`~repro.perf.KernelModel`,
runs the :class:`~repro.core.schedule.HolisticScheduler`, and flattens
the task list (expanding ``fused:`` kernels back to member ops in graph
order) into the op-level execution order the
:class:`~repro.runtime.dag_executor.DagExecutor` follows.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .config import GPU_SPECS, ModelConfig, ParallelConfig
from .operators import (OpGraph, TilePlan, build_forward_graph,
                        plan_tiles, tile_forward_graph)
from .schedule import HolisticScheduler, OverlapConfig

__all__ = [
    "LayerProgram",
    "OpBinding",
    "build_layer_bindings",
    "expand_task",
    "forward_binding",
    "layer_program",
    "per_rank",
    "unit_map",
    "with_vec",
]


def _dist_ops():
    # Imported lazily: repro.parallel builds on repro.core.
    from ..parallel import dist_ops
    return dist_ops


def _group_tiles(tile_plan: Optional[TilePlan], fuse_group: str) -> int:
    """Planned tile count for one forward fuse group (1 = whole)."""
    if tile_plan is None:
        return 1
    return tile_plan.group_tiles.get(fuse_group + "/fwd", 1)


# ---------------------------------------------------------------------------
# Binding model
# ---------------------------------------------------------------------------

class _SeqCtx:
    """Whole-world view for the sequential backend."""

    __slots__ = ("group", "env")

    def __init__(self, group: Any, env: Dict[str, List[Any]]):
        self.group = group
        #: anchor name -> per-rank value list.
        self.env = env


class _RankCtx:
    """One rank's view for the thread-per-rank backend."""

    __slots__ = ("comm", "env")

    def __init__(self, comm: Any, env: Dict[str, Any]):
        self.comm = comm
        #: anchor name -> this rank's value.
        self.env = env

    def get(self, name: str) -> Any:
        return self.env[name]


@dataclass(frozen=True)
class OpBinding:
    """Numeric handler for one forward-graph op (or covers group).

    Attributes:
        op: Anchor op name — the binding executes when the DAG
            executor's order reaches the first op in ``covers``.
        covers: Graph ops this handler computes in one call.  Covers
            groups exist where one engine method spans several IR ops
            (the grouped-GEMM experts chain); every graph op must be
            covered by exactly one binding.
        reads: Anchor names (or layer inputs) whose values the handler
            consumes.  Must all be produced earlier in any valid
            topological execution order — the executor checks this.
        seq: Whole-world handler; returns the per-rank value list.
        rank: Per-rank handler; returns this rank's value.
        vec: Optional rank-stacked handler for the vectorized backend;
            returns the stacked value (or a tuple of stacked values).
            ``None`` means the vectorized executor falls back to
            ``seq`` for this binding.
    """

    op: str
    covers: Tuple[str, ...]
    reads: Tuple[str, ...]
    seq: Callable[[_SeqCtx], List[Any]]
    rank: Callable[[_RankCtx], Any]
    vec: Optional[Callable[[Any], Any]] = None


def with_vec(binding: OpBinding,
             fn: Callable[[Any], Any]) -> OpBinding:
    """Attach a vectorized handler to an existing binding."""
    return replace(binding, vec=fn)


def forward_binding(op: str, reads: Sequence[str],
                    fn: Callable[[_SeqCtx], List[Any]],
                    covers: Optional[Sequence[str]] = None) -> OpBinding:
    """A sequential-only binding for forward-only (serving) programs.

    Inference decode graphs run through the DAG executor's sequential
    path exclusively — there is no per-rank-thread flavor (the serve
    scheduler owns its own worker pool for the batch axis), so the
    ``rank`` handler raises if a threaded-SPMD run ever reaches it.
    """
    covers_t = tuple(covers) if covers is not None else (op,)

    def no_rank(ctx: _RankCtx) -> Any:
        raise NotImplementedError(
            f"binding {op!r} is forward-only; it has no per-rank-thread "
            "handler"
        )

    return OpBinding(op, covers_t, tuple(reads), fn, no_rank)


def per_rank(op: str, reads: Sequence[str],
             fn: Callable[[int, Callable[[str], Any]], Any],
             covers: Optional[Sequence[str]] = None) -> OpBinding:
    """Lift one per-rank function into both backend flavors.

    ``fn(r, get)`` computes rank ``r``'s value from ``get(name)`` — the
    rank's slice of an earlier anchor's value.  The sequential backend
    loops ranks in order; the threaded backend calls it once per rank
    thread.  Only valid for ops with no communication.
    """
    covers_t = tuple(covers) if covers is not None else (op,)

    def seq(ctx: _SeqCtx) -> List[Any]:
        out = []
        for r in range(ctx.group.size):
            def get(name: str, _r: int = r) -> Any:
                return ctx.env[name][_r]
            out.append(fn(r, get))
        return out

    def rank(ctx: _RankCtx) -> Any:
        return fn(ctx.comm.index, ctx.get)

    return OpBinding(op, covers_t, tuple(reads), seq, rank)


# ---------------------------------------------------------------------------
# Strategy binding factories
# ---------------------------------------------------------------------------

def _sp_attention_bindings(engine: Any, seq_len: int,
                           tile_plan: Optional[TilePlan] = None
                           ) -> List[OpBinding]:
    """SP (Ulysses) attention: qkv_proj → rope → A2A → attn → A2A →
    out_proj, replicated weights (§3.1, Fig. 20)."""
    eng = engine.attn_engine
    group = engine.group
    local_s = seq_len // group.size
    eb = eng.elem_bytes
    # Token-chunked A2As (§4.2): every (source, dest) chunk's sequence
    # extent is the local shard, tiled into `tile_tokens` slices.
    t_qkv = _group_tiles(tile_plan, "a2a+attn")
    t_attn = _group_tiles(tile_plan, "a2a+gemm")

    def seq_qkv_a2a(ctx: _SeqCtx) -> List[Any]:
        d = _dist_ops()
        triples = ctx.env["rope"]
        q_full = d.dist_all_to_all(group, [t[0] for t in triples],
                                   split_axis=2, concat_axis=1,
                                   elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                   tiles=t_qkv, tile_axis=1,
                                   tile_label="qkv_a2a")
        k_full = d.dist_all_to_all(group, [t[1] for t in triples],
                                   split_axis=2, concat_axis=1,
                                   elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                   tiles=t_qkv, tile_axis=1,
                                   tile_label="qkv_a2a")
        v_full = d.dist_all_to_all(group, [t[2] for t in triples],
                                   split_axis=2, concat_axis=1,
                                   elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                   tiles=t_qkv, tile_axis=1,
                                   tile_label="qkv_a2a")
        return list(zip(q_full, k_full, v_full))

    def rank_qkv_a2a(ctx: _RankCtx) -> Any:
        q, k, v = ctx.get("rope")
        comm = ctx.comm
        q_full = comm.all_to_all(q, split_axis=2, concat_axis=1,
                                 elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                 tiles=t_qkv, tile_axis=1,
                                 tile_label="qkv_a2a")
        k_full = comm.all_to_all(k, split_axis=2, concat_axis=1,
                                 elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                 tiles=t_qkv, tile_axis=1,
                                 tile_label="qkv_a2a")
        v_full = comm.all_to_all(v, split_axis=2, concat_axis=1,
                                 elem_bytes=eb, tag="sp_attn:qkv_a2a",
                                 tiles=t_qkv, tile_axis=1,
                                 tile_label="qkv_a2a")
        return q_full, k_full, v_full

    def seq_attn_a2a(ctx: _SeqCtx) -> List[Any]:
        return _dist_ops().dist_all_to_all(
            group, ctx.env["attention"], split_axis=1, concat_axis=2,
            elem_bytes=eb, tag="sp_attn:attn_a2a",
            tiles=t_attn, tile_axis=1, tile_label="attn_a2a")

    def rank_attn_a2a(ctx: _RankCtx) -> Any:
        return ctx.comm.all_to_all(
            ctx.get("attention"), split_axis=1, concat_axis=2,
            elem_bytes=eb, tag="sp_attn:attn_a2a",
            tiles=t_attn, tile_axis=1, tile_label="attn_a2a")

    # Vectorized flavors: the whole SP chain runs rank-stacked, with
    # the two all-to-alls reduced to axis permutations (same tags, same
    # ledger bytes; q/k/v in the same call order as the seq path).
    def vec_qkv_a2a(ctx: Any) -> Any:
        from ..runtime.vectorized import vec_all_to_all
        q, k, v = ctx.stacked("rope")
        return tuple(
            vec_all_to_all(t, split_axis=2, concat_axis=1, group=group,
                           elem_bytes=eb, tag="sp_attn:qkv_a2a",
                           tiles=t_qkv, tile_label="qkv_a2a")
            for t in (q, k, v))

    def vec_attn_a2a(ctx: Any) -> Any:
        from ..runtime.vectorized import vec_all_to_all
        return vec_all_to_all(
            ctx.stacked("attention"), split_axis=1, concat_axis=2,
            group=group, elem_bytes=eb, tag="sp_attn:attn_a2a",
            tiles=t_attn, tile_label="attn_a2a")

    return [
        with_vec(per_rank("qkv_proj", ("ln1",),
                          lambda r, get: eng.op_qkv(get("ln1"))),
                 lambda ctx: eng.vec_qkv(ctx.stacked("ln1"))),
        with_vec(per_rank("rope", ("qkv_proj",),
                          lambda r, get: eng.op_rope(get("qkv_proj"),
                                                     r, local_s)),
                 lambda ctx: eng.vec_rope(ctx.stacked("qkv_proj"),
                                          local_s)),
        OpBinding("qkv_a2a", ("qkv_a2a",), ("rope",),
                  seq_qkv_a2a, rank_qkv_a2a, vec=vec_qkv_a2a),
        with_vec(per_rank("attention", ("qkv_a2a",),
                          lambda r, get: eng.op_attention(
                              get("qkv_a2a"))),
                 lambda ctx: eng.vec_attention(ctx.stacked("qkv_a2a"))),
        OpBinding("attn_a2a", ("attn_a2a",), ("attention",),
                  seq_attn_a2a, rank_attn_a2a, vec=vec_attn_a2a),
        with_vec(per_rank("out_proj", ("attn_a2a",),
                          lambda r, get: eng.op_out_proj(
                              get("attn_a2a"), r)),
                 lambda ctx: eng.vec_out_proj(ctx.stacked("attn_a2a"))),
    ]


def _tp_attention_bindings(engine: Any,
                           tile_plan: Optional[TilePlan] = None
                           ) -> List[OpBinding]:
    """TP (Megatron) attention: AG in, head-sharded compute, RS out."""
    eng = engine.attn_engine
    group = engine.group
    eb = eng.elem_bytes
    ag_tiled = _group_tiles(tile_plan, "attn_ag+gemm") >= 2
    rs_tiled = _group_tiles(tile_plan, "attn_gemm+rs") >= 2

    def seq_ag(ctx: _SeqCtx) -> List[Any]:
        return _dist_ops().dist_all_gather(
            group, ctx.env["ln1"], axis=1, elem_bytes=eb,
            tag="tp_attn:ag", tiled=ag_tiled, tile_label="attn_ag")

    def rank_ag(ctx: _RankCtx) -> Any:
        return ctx.comm.all_gather(ctx.get("ln1"), axis=1,
                                   elem_bytes=eb, tag="tp_attn:ag",
                                   tiled=ag_tiled,
                                   tile_label="attn_ag")

    def seq_rs(ctx: _SeqCtx) -> List[Any]:
        return _dist_ops().dist_reduce_scatter(
            group, ctx.env["out_proj"], axis=1, elem_bytes=eb,
            tag="tp_attn:rs", tiled=rs_tiled, tile_label="attn_rs")

    def rank_rs(ctx: _RankCtx) -> Any:
        return ctx.comm.reduce_scatter(ctx.get("out_proj"), axis=1,
                                       elem_bytes=eb, tag="tp_attn:rs",
                                       tiled=rs_tiled,
                                       tile_label="attn_rs")

    def vec_ag(ctx: Any) -> Any:
        from ..runtime.vectorized import vec_all_gather
        return vec_all_gather(ctx.stacked("ln1"), axis=1, group=group,
                              elem_bytes=eb, tag="tp_attn:ag",
                              tiled=ag_tiled, tile_label="attn_ag")

    def vec_rs(ctx: Any) -> Any:
        from ..runtime.vectorized import vec_reduce_scatter
        return vec_reduce_scatter(ctx.stacked("out_proj"), axis=1,
                                  group=group, elem_bytes=eb,
                                  tag="tp_attn:rs", tiled=rs_tiled,
                                  tile_label="attn_rs")

    return [
        with_vec(OpBinding("attn_ag", ("attn_ag",), ("ln1",),
                           seq_ag, rank_ag), vec_ag),
        with_vec(per_rank("qkv_proj", ("attn_ag",),
                          lambda r, get: eng.op_qkv(get("attn_ag"), r)),
                 lambda ctx: eng.vec_qkv(ctx.stacked("attn_ag"))),
        with_vec(per_rank("rope", ("qkv_proj",),
                          lambda r, get: eng.op_rope(get("qkv_proj"))),
                 lambda ctx: eng.vec_rope(ctx.stacked("qkv_proj"))),
        with_vec(per_rank("attention", ("rope",),
                          lambda r, get: eng.op_attention(get("rope"))),
                 lambda ctx: eng.vec_attention(ctx.stacked("rope"))),
        with_vec(per_rank("out_proj", ("attention",),
                          lambda r, get: eng.op_out_proj(
                              get("attention"), r)),
                 lambda ctx: eng.vec_out_proj(ctx.stacked("attention"))),
        with_vec(OpBinding("attn_rs", ("attn_rs",), ("out_proj",),
                           seq_rs, rank_rs), vec_rs),
    ]


def _ep_a2a_bindings(engine: Any,
                     tile_plan: Optional[TilePlan] = None
                     ) -> List[OpBinding]:
    """EP FFN with A2A dispatch (§3.2 Eq. 3): route local tokens, send
    kept rows to their experts' ranks, return and gate-combine."""
    ffn = engine.ffn_engine
    group = engine.group
    n = group.size
    eb = ffn.elem_bytes
    # Ragged dispatch tiles per source rank (§4.2 swizzled order); the
    # return A2A ("ggemm+a2a") has no downstream compute to overlap
    # with and stays whole.
    dispatch_tiled = _group_tiles(tile_plan, "a2a+ggemm") >= 2

    def seq_router(ctx: _SeqCtx) -> List[Any]:
        flats = ffn._flatten(ctx.env["ln2"])
        routings, weight_ts = [], []
        for flat in flats:
            routing, weights = ffn.op_route(flat)
            routings.append(routing)
            weight_ts.append(weights)
        aux = ffn._global_aux_loss(flats, routings)
        return [(flat, routing, weights, aux)
                for flat, routing, weights
                in zip(flats, routings, weight_ts)]

    def rank_router(ctx: _RankCtx) -> Any:
        flat = ffn._flatten([ctx.get("ln2")])[0]
        routing, weights = ffn.op_route(flat)
        aux = ctx.comm.exchange(
            ("ep_ffn", "aux"), (flat, routing),
            lambda slots: ffn._global_aux_loss(
                [s[0] for s in slots], [s[1] for s in slots]))
        return flat, routing, weights, aux

    def seq_scatter(ctx: _SeqCtx) -> List[Any]:
        return [ffn.op_scatter_a2a(flat, routing)
                for flat, routing, _, _ in ctx.env["router"]]

    def rank_scatter(ctx: _RankCtx) -> Any:
        flat, routing, _, _ = ctx.get("router")
        rows, meta, splits = ffn.op_scatter_a2a(flat, routing)
        # Peers' metadata — the sequential backend reads it straight
        # out of the whole-world scatter values.
        shared = ctx.comm.gossip("ep_ffn:meta", (meta, splits))
        metas = [s[0] for s in shared]
        all_splits = [s[1] for s in shared]
        return rows, meta, splits, metas, all_splits

    def seq_dispatch(ctx: _SeqCtx) -> List[Any]:
        send_rows = [v[0] for v in ctx.env["scatter"]]
        send_splits = [v[2] for v in ctx.env["scatter"]]
        ffn._last_send_splits = [list(s) for s in send_splits]
        return _dist_ops().dist_all_to_all_uneven(
            group, send_rows, send_splits, elem_bytes=eb,
            tag="ep_ffn:dispatch_a2a", tiled=dispatch_tiled,
            tile_label="dispatch_a2a")

    def rank_dispatch(ctx: _RankCtx) -> Any:
        rows, _, splits = ctx.get("scatter")[:3]
        return ctx.comm.all_to_all_uneven(
            rows, splits, elem_bytes=eb, tag="ep_ffn:dispatch_a2a",
            tiled=dispatch_tiled, tile_label="dispatch_a2a")

    def seq_experts(ctx: _SeqCtx) -> List[Any]:
        metas = [v[1] for v in ctx.env["scatter"]]
        all_splits = [v[2] for v in ctx.env["scatter"]]
        return [
            ffn.op_experts_a2a(ctx.env["dispatch_a2a"][j], metas,
                               all_splits, j)
            for j in range(n)
        ]

    def rank_experts(ctx: _RankCtx) -> Any:
        metas, all_splits = ctx.get("scatter")[3:5]
        return ffn.op_experts_a2a(ctx.get("dispatch_a2a"), metas,
                                  all_splits, ctx.comm.index)

    def seq_combine(ctx: _SeqCtx) -> List[Any]:
        all_splits = [v[2] for v in ctx.env["scatter"]]
        back_splits = [[all_splits[i][j] for i in range(n)]
                       for j in range(n)]
        return _dist_ops().dist_all_to_all_uneven(
            group, ctx.env["fc1"], back_splits, elem_bytes=eb,
            tag="ep_ffn:combine_a2a")

    def rank_combine(ctx: _RankCtx) -> Any:
        all_splits = ctx.get("scatter")[4]
        j = ctx.comm.index
        back_splits = [all_splits[i][j] for i in range(n)]
        return ctx.comm.all_to_all_uneven(
            ctx.get("fc1"), back_splits, elem_bytes=eb,
            tag="ep_ffn:combine_a2a")

    def weighted(r: int, get: Callable[[str], Any]) -> Any:
        flat, _, weights, _ = get("router")
        meta = get("scatter")[1]
        return ffn.op_combine_weighted(get("combine_a2a"), meta,
                                       weights, flat.shape[0],
                                       get("ln2").shape)

    return [
        OpBinding("router", ("router",), ("ln2",),
                  seq_router, rank_router),
        OpBinding("scatter", ("scatter",), ("ln2", "router"),
                  seq_scatter, rank_scatter),
        OpBinding("dispatch_a2a", ("dispatch_a2a",), ("scatter",),
                  seq_dispatch, rank_dispatch),
        OpBinding("fc1", ("fc1", "fc3", "swiglu", "fc2"),
                  ("dispatch_a2a", "scatter"),
                  seq_experts, rank_experts),
        OpBinding("combine_a2a", ("combine_a2a",), ("fc1", "scatter"),
                  seq_combine, rank_combine),
        per_rank("weighted_sum",
                 ("combine_a2a", "scatter", "router", "ln2"), weighted),
    ]


def _ag_ffn_bindings(engine: Any, flavor: str,
                     tile_plan: Optional[TilePlan] = None
                     ) -> List[OpBinding]:
    """The two AG-based FFN paths share one shape (§3.2 Eq. 4):
    all-gather tokens, route the full batch, local scatter + experts,
    weighted full-size contribution, reduce-scatter.

    ``flavor`` is ``"ep"`` (AG/RS expert dispatch — whole experts per
    rank) or ``"tp"`` (Megatron FFN — every expert's intermediate dim
    sharded); they differ only in tags and the expert handler.
    """
    ffn = engine.ffn_engine
    group = engine.group
    eb = ffn.elem_bytes
    if flavor == "ep":
        ag_tag, rs_tag = "ep_ffn:dispatch_ag", "ep_ffn:combine_rs"
        gossip_label = "ep_ffn:t_local"
        ag_key, rs_key = "ag+scatter+ggemm", "ggemm+gather+rs"
    else:
        ag_tag, rs_tag = "tp_ffn:ag", "tp_ffn:rs"
        gossip_label = "tp_ffn:t_local"
        ag_key, rs_key = "tp_ffn_ag+gemm", "tp_ffn_gemm+rs"
    # Source/dest-rank tile swizzle (§4.2); the FP8-wire collectives
    # keep their fused quantize-transfer kernels whole.
    ag_tiled = (not ffn.fp8_comm
                and _group_tiles(tile_plan, ag_key) >= 2)
    rs_tiled = (not ffn.fp8_comm
                and _group_tiles(tile_plan, rs_key) >= 2)

    def seq_ag(ctx: _SeqCtx) -> List[Any]:
        if flavor == "ep":
            flats = ffn._flatten(ctx.env["ln2"])
        else:
            flats = [s.reshape(-1, s.shape[-1]) if s.ndim == 3 else s
                     for s in ctx.env["ln2"]]
        t_locals = [f.shape[0] for f in flats]
        if ffn.fp8_comm:
            from ..parallel.dist_ops_fp8 import dist_all_gather_fp8
            fulls = dist_all_gather_fp8(group, flats, tag=ag_tag)
        else:
            fulls = _dist_ops().dist_all_gather(
                group, flats, axis=0, elem_bytes=eb, tag=ag_tag,
                tiled=ag_tiled, tile_label="ffn_ag")
        return [(full, t_locals) for full in fulls]

    def rank_ag(ctx: _RankCtx) -> Any:
        shard = ctx.get("ln2")
        flat = shard.reshape(-1, shard.shape[-1]) if shard.ndim == 3 \
            else shard
        t_locals = ctx.comm.gossip(gossip_label, flat.shape[0])
        if ffn.fp8_comm:
            from ..parallel.dist_ops_fp8 import dist_all_gather_fp8
            full = ctx.comm.collective(dist_all_gather_fp8, flat,
                                       tag=ag_tag)
        else:
            full = ctx.comm.all_gather(flat, axis=0, elem_bytes=eb,
                                       tag=ag_tag, tiled=ag_tiled,
                                       tile_label="ffn_ag")
        return full, t_locals

    def route(r: int, get: Callable[[str], Any]) -> Any:
        return ffn.op_route_full(get("ffn_ag")[0])

    def scatter(r: int, get: Callable[[str], Any]) -> Any:
        full, t_locals = get("ffn_ag")
        routing = get("router")[0]
        if flavor == "ep":
            source_rank = np.concatenate([
                np.full(t, i) for i, t in enumerate(t_locals)])
            return ffn.op_scatter_ag(full, routing, r, source_rank)
        return ffn.op_scatter(full, routing)

    def experts(r: int, get: Callable[[str], Any]) -> Any:
        plan, ffn_in = get("scatter")
        if flavor == "ep":
            return ffn.op_experts_ag(ffn_in, plan, r)
        return ffn.op_experts(ffn_in, plan, r)

    def gather(r: int, get: Callable[[str], Any]) -> Any:
        plan = get("scatter")[0]
        weights = get("router")[1]
        t_total = sum(get("ffn_ag")[1])
        if flavor == "ep":
            return ffn.op_gather_ag(get("fc1"), plan, weights, t_total)
        return ffn.op_gather(get("fc1"), plan, weights, t_total)

    def seq_rs(ctx: _SeqCtx) -> List[Any]:
        if ffn.fp8_comm:
            from ..parallel.dist_ops_fp8 import dist_reduce_scatter_fp8
            out_flats = dist_reduce_scatter_fp8(
                group, ctx.env["gather"], tag=rs_tag)
        else:
            out_flats = _dist_ops().dist_reduce_scatter(
                group, ctx.env["gather"], axis=0, elem_bytes=eb,
                tag=rs_tag, tiled=rs_tiled, tile_label="ffn_rs")
        return [flat.reshape(*shard.shape)
                for flat, shard in zip(out_flats, ctx.env["ln2"])]

    def rank_rs(ctx: _RankCtx) -> Any:
        if ffn.fp8_comm:
            from ..parallel.dist_ops_fp8 import dist_reduce_scatter_fp8
            out_flat = ctx.comm.collective(dist_reduce_scatter_fp8,
                                           ctx.get("gather"),
                                           tag=rs_tag)
        else:
            out_flat = ctx.comm.reduce_scatter(
                ctx.get("gather"), axis=0, elem_bytes=eb, tag=rs_tag,
                tiled=rs_tiled, tile_label="ffn_rs")
        return out_flat.reshape(*ctx.get("ln2").shape)

    return [
        OpBinding("ffn_ag", ("ffn_ag",), ("ln2",), seq_ag, rank_ag),
        per_rank("router", ("ffn_ag",), route),
        per_rank("scatter", ("ffn_ag", "router"), scatter),
        per_rank("fc1", ("scatter",), experts,
                 covers=("fc1", "fc3", "swiglu", "fc2")),
        per_rank("gather", ("fc1", "scatter", "router", "ffn_ag"),
                 gather),
        OpBinding("ffn_rs", ("ffn_rs",), ("gather", "ln2"),
                  seq_rs, rank_rs),
    ]


def build_layer_bindings(engine: Any, seq_len: int,
                         tile_plan: Optional[TilePlan] = None
                         ) -> List[OpBinding]:
    """All bindings for one :class:`ParallelBlockEngine` layer.

    The set matches the forward graph that
    :func:`~repro.core.operators.build_forward_graph` emits for the
    engine's strategy combination — the DAG executor validates the
    covers partition against the graph at construction time.

    ``tile_plan`` (from :func:`~repro.core.operators.plan_tiles`)
    switches the fused groups' collectives to chunked per-tile
    transfers; compute handlers are unchanged — all of a tiled GEMM's
    tiles execute in its one whole-tensor call, never splitting a BLAS
    reduction, which keeps results bitwise-identical to untiled.
    """
    block = engine.block

    def vec_norm(norm: Any, read: str) -> Callable[[Any], Any]:
        def fn(ctx: Any) -> Any:
            from ..runtime.vectorized import vec_rmsnorm
            return vec_rmsnorm(ctx.stacked(read), norm.weight, norm.eps)
        return fn

    def vec_add(a: str, b: str) -> Callable[[Any], Any]:
        return lambda ctx: ctx.stacked(a) + ctx.stacked(b)

    bindings = [
        with_vec(per_rank("ln1", ("hidden",),
                          lambda r, get: block.ln1(get("hidden"))),
                 vec_norm(block.ln1, "hidden")),
    ]
    if engine.attention == "sp":
        bindings += _sp_attention_bindings(engine, seq_len, tile_plan)
        attn_out = "out_proj"
    else:
        bindings += _tp_attention_bindings(engine, tile_plan)
        attn_out = "attn_rs"
    bindings += [
        with_vec(per_rank("residual1", ("hidden", attn_out),
                          lambda r, get, _a=attn_out:
                          get("hidden") + get(_a)),
                 vec_add("hidden", attn_out)),
        with_vec(per_rank("ln2", ("residual1",),
                          lambda r, get: block.ln2(get("residual1"))),
                 vec_norm(block.ln2, "residual1")),
    ]
    if engine.ffn == "ep" and engine.ffn_engine.mode == "a2a":
        bindings += _ep_a2a_bindings(engine, tile_plan)
        ffn_out = "weighted_sum"
    elif engine.ffn == "ep":
        bindings += _ag_ffn_bindings(engine, "ep", tile_plan)
        ffn_out = "ffn_rs"
    else:
        bindings += _ag_ffn_bindings(engine, "tp", tile_plan)
        ffn_out = "ffn_rs"
    bindings.append(
        with_vec(per_rank("residual2", ("residual1", ffn_out),
                          lambda r, get, _f=ffn_out:
                          get("residual1") + get(_f)),
                 vec_add("residual1", ffn_out)))
    return bindings


# ---------------------------------------------------------------------------
# Schedule → execution order
# ---------------------------------------------------------------------------

def expand_task(graph: OpGraph, task_name: str) -> List[str]:
    """Member op names of one scheduled task, in graph order.

    A ``fused:<group>/<phase>`` task expands to every graph op with
    that fuse group and phase; a plain task is its own single member.
    """
    if task_name.startswith("fused:"):
        key = task_name[len("fused:"):]
        fuse_group, phase = key.rsplit("/", 1)
        return [op.name for op in graph
                if op.fuse_group == fuse_group and op.phase == phase]
    return [task_name]


def unit_map(graph: OpGraph, tasks: Sequence[Any]) -> Dict[str, str]:
    """Map each graph op name to the scheduled task (unit) running it."""
    mapping: Dict[str, str] = {}
    for task in tasks:
        for name in expand_task(graph, task.name):
            mapping[name] = task.name
    return mapping


@dataclass
class LayerProgram:
    """One layer's IR, its overlap schedule, and the flattened order.

    ``order`` is the op-level execution order the numeric DAG executor
    follows: the scheduler's task list with fused kernels expanded back
    to member ops in graph order.  Because the task list is
    topologically ordered over task dependencies and fused members are
    contiguous, ``order`` is a valid topological order of the op graph
    — the executor re-validates this on construction.
    """

    graph: OpGraph
    tasks: List[Any]
    order: List[str]
    durations: Dict[str, float] = field(default_factory=dict)
    #: Tile-granular companion program (§4.2), present when the layer
    #: was built with ``tile_tokens``: the forward graph with fused
    #: groups decomposed into per-tile sub-ops, its own schedule, and
    #: the flattened tile-level order the simulator/conformance checks
    #: compare executed tile streams against.
    tile_graph: Optional[OpGraph] = None
    tile_tasks: Optional[List[Any]] = None
    tile_order: Optional[List[str]] = None
    tile_plan: Optional[TilePlan] = None
    tile_durations: Dict[str, float] = field(default_factory=dict)

    def task_of(self) -> Dict[str, str]:
        """Op name → scheduled unit name."""
        return unit_map(self.graph, self.tasks)

    @property
    def tiled(self) -> bool:
        """Whether this program carries a tile-granular decomposition."""
        return self.tile_graph is not None


def layer_program(model: ModelConfig, parallel: ParallelConfig,
                  micro_batch: int, seq_len: int,
                  gpu: str = "h800",
                  overlap: Optional[OverlapConfig] = None,
                  tile_tokens: Optional[int] = None
                  ) -> LayerProgram:
    """Build the graph → price it → schedule it → flatten the order.

    ``tile_tokens`` additionally plans the §4.2 tile decomposition and
    attaches the tiled graph/schedule/order to the program (validating
    that the tile width divides the local sequence shard).
    """
    from ..perf.estimator import KernelModel
    graph = build_forward_graph(model, parallel, micro_batch,
                                seq_len=seq_len)
    kernel_model = KernelModel(GPU_SPECS[gpu])
    durations = kernel_model.durations(graph)
    scheduler = HolisticScheduler(overlap or OverlapConfig.full())
    tasks = scheduler.schedule(graph, durations)
    order = [name for task in tasks
             for name in expand_task(graph, task.name)]
    program = LayerProgram(graph=graph, tasks=tasks, order=order,
                           durations=durations)
    if tile_tokens is not None:
        plan = plan_tiles(graph, parallel.model_parallel_size, seq_len,
                          tile_tokens)
        if plan.group_tiles:
            tile_graph = tile_forward_graph(graph, plan)
            tile_durations = kernel_model.durations(tile_graph)
            tile_tasks = scheduler.schedule(tile_graph, tile_durations)
            program.tile_graph = tile_graph
            program.tile_tasks = tile_tasks
            program.tile_order = [
                name for task in tile_tasks
                for name in expand_task(tile_graph, task.name)]
            program.tile_plan = plan
            program.tile_durations = tile_durations
    return program
