"""Parallelism planning (§3, Fig. 4).

Chooses the communication-efficient strategy combination for a model on
a cluster the way MegaScale-MoE does:

* pipeline parallelism across nodes (inter-node), never TP/EP;
* SP (Ulysses) for attention inside the node, falling back to TP when
  head counts don't divide;
* EP for experts, with the adaptive dispatch mode of §3.2 — all-to-all
  for small top-k, all-gather/reduce-scatter once top-k approaches the
  EP size (the Fig. 7 crossover);
* DP outermost.

Also provides the Fig. 7 timing comparison of the three dispatch
collectives and the Eq. 5–9 scale-up check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..comm.cost import (
    LinkSpec,
    all_to_all_time,
    ring_all_gather_time,
    ring_reduce_scatter_time,
)
from .analysis import scale_up_ratio
from .config import GPUSpec, ModelConfig, ParallelConfig

__all__ = ["PlanDecision", "plan_parallelism", "dispatch_mode_times",
           "dispatch_crossover_top_k"]


@dataclass
class PlanDecision:
    """A chosen configuration plus the reasoning behind each choice."""

    parallel: ParallelConfig
    rationale: Dict[str, str]
    scale_up_ratio: float

    def explain(self) -> str:
        """Human-readable summary of the plan and its rationale."""
        lines = [f"strategy = {self.parallel.strategy_name} "
                 f"(PP={self.parallel.pipeline_size}, "
                 f"DP={self.parallel.data_parallel_size})"]
        lines += [f"  {key}: {why}" for key, why in self.rationale.items()]
        lines.append(f"  scale-up ratio R = {self.scale_up_ratio:.2f} "
                     f"({'>' if self.scale_up_ratio > 1 else '<='} 1)")
        return "\n".join(lines)


def plan_parallelism(
    model: ModelConfig,
    n_gpus: int,
    gpu: GPUSpec,
    ranks_per_node: int = 8,
    pipeline_size: Optional[int] = None,
) -> PlanDecision:
    """Pick the MegaScale-MoE parallelism for a (model, cluster) pair."""
    if n_gpus % ranks_per_node != 0:
        raise ValueError(
            f"n_gpus={n_gpus} not divisible by ranks_per_node="
            f"{ranks_per_node}"
        )
    n = ranks_per_node
    rationale: Dict[str, str] = {}

    # Attention: SP unless the head counts don't divide the node.
    if model.n_heads % n == 0 and model.n_kv_heads % n == 0:
        attention = "sp"
        rationale["attention"] = (
            f"SP: A2A volume shrinks with n and GQA ratio m={model.gqa_ratio}"
            f" (Eq. 2), ~{(2 + 2 / model.gqa_ratio) / n:.2f}× of TP's"
        )
    else:
        attention = "tp"
        rationale["attention"] = (
            f"TP fallback: heads ({model.n_heads}/{model.n_kv_heads}) do "
            f"not divide the node size {n}"
        )

    # FFN: EP unless experts don't divide the node.
    if model.n_experts % n == 0:
        ffn = "ep"
        mode = ("a2a" if model.top_k < 0.75 * n else "ag_rs")
        rationale["ffn"] = (
            f"EP with {mode} dispatch: top-k={model.top_k} vs EP size {n} "
            f"(Fig. 7 crossover near k≈6 on 8 GPUs)"
        )
    else:
        ffn = "tp"
        mode = "adaptive"
        rationale["ffn"] = (
            f"TP fallback: {model.n_experts} experts do not divide the "
            f"node size {n}"
        )

    # Pipeline: the *shallowest* pipeline whose per-GPU memory fits —
    # deeper pipelines only add bubbles (Table 3's MFU decline), so PP
    # is sized by parameter pressure, not preference.
    nodes = n_gpus // n
    if pipeline_size is None:
        candidates = [p for p in range(1, min(nodes, model.n_layers) + 1)
                      if nodes % p == 0 and model.n_layers % p == 0]
        pipeline_size = candidates[-1]
        for p in candidates:
            if _memory_fits(model, n, p, nodes // p, gpu):
                pipeline_size = p
                break
    dp = nodes // pipeline_size
    rationale["pipeline"] = (
        f"PP={pipeline_size} across nodes: shallowest pipeline whose "
        f"per-GPU memory fits (deeper pipelines only add bubbles, §3)"
    )

    ratio = scale_up_ratio(model.ffn_hidden_size, gpu.nvlink_bandwidth,
                           gpu.peak_flops, n)
    parallel = ParallelConfig(
        model_parallel_size=n,
        attention=attention,
        ffn=ffn,
        pipeline_size=pipeline_size,
        data_parallel_size=dp,
        ep_dispatch=mode if ffn == "ep" else "adaptive",
    )
    return PlanDecision(parallel=parallel, rationale=rationale,
                        scale_up_ratio=ratio)


def _memory_fits(model: ModelConfig, n: int, p: int, d: int,
                 gpu: GPUSpec, headroom: float = 0.9) -> bool:
    """Static + in-flight activation bytes under SAR vs HBM capacity."""
    from .analysis import param_memory_per_gpu
    from .remat import default_remat_plan

    pc = ParallelConfig.megascale(n, pipeline_size=p,
                                  data_parallel_size=max(d, 1))
    static = param_memory_per_gpu(model, pc)["total"]
    layers_per_stage = model.n_layers / p
    activations = default_remat_plan().retained_elements(model, pc, 1) \
        * 2.0 * layers_per_stage * p  # p micro-batches in flight (1F1B)
    return static + activations < gpu.memory_bytes * headroom


def dispatch_mode_times(
    model: ModelConfig,
    top_k: int,
    n: int,
    link: LinkSpec,
    micro_batch: int = 1,
    elem_bytes: float = 2.0,
) -> Dict[str, float]:
    """Fig. 7 — dispatch time per collective choice for a given top-k.

    Returns seconds for ``a2a`` (uneven all-to-all of routed rows),
    ``ag`` (all-gather of all tokens) and ``rs`` (reduce-scatter of the
    combined tensor).  Dispatch under AG/RS mode costs ``ag``; combine
    costs ``rs``; A2A mode pays ``a2a`` both ways.
    """
    tokens = micro_batch * model.seq_len
    h = model.hidden_size
    a2a_bytes = tokens * top_k / n * h * (n - 1) / n * elem_bytes
    full_bytes = tokens * h * elem_bytes
    return {
        "a2a": all_to_all_time(a2a_bytes, n, link),
        "ag": ring_all_gather_time(full_bytes, n, link),
        "rs": ring_reduce_scatter_time(full_bytes, n, link),
    }


def dispatch_crossover_top_k(model: ModelConfig, n: int,
                             link: LinkSpec) -> int:
    """Smallest top-k at which AG/RS dispatch beats A2A (Fig. 7)."""
    for k in range(1, model.n_experts + 1):
        times = dispatch_mode_times(model, k, n, link)
        if times["ag"] + times["rs"] <= 2 * times["a2a"]:
            return k
    return model.n_experts + 1
