"""Parallelism planning (§3, Fig. 4).

Chooses the communication-efficient strategy combination for a model on
a cluster the way MegaScale-MoE does:

* pipeline parallelism across nodes (inter-node), never TP/EP;
* SP (Ulysses) for attention inside the node, falling back to TP when
  head counts don't divide;
* EP for experts, with the adaptive dispatch mode of §3.2 — all-to-all
  for small top-k, all-gather/reduce-scatter once top-k approaches the
  EP size (the Fig. 7 crossover);
* DP outermost.

Also provides the Fig. 7 timing comparison of the three dispatch
collectives and the Eq. 5–9 scale-up check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..comm.cost import (
    LinkSpec,
    all_to_all_time,
    ring_all_gather_time,
    ring_reduce_scatter_time,
)
from .analysis import (
    attention_comm_volume,
    ep_ffn_comm_volume,
    ffn_comm_volume,
    param_memory_per_gpu,
    scale_up_ratio,
    sp_attention_comm_volume,
    tp_attention_comm_volume,
)
from .cluster import ClusterSpec
from .config import GPUSpec, ModelConfig, ParallelConfig, TrainConfig

__all__ = ["PlanDecision", "plan_parallelism", "dispatch_mode_times",
           "dispatch_crossover_top_k", "NoFeasiblePlan", "PlanCandidate",
           "ScoredPlan", "PlanSearchResult", "enumerate_plans",
           "plan_cluster"]

#: Wire bytes per element for each training precision policy (§5).
_PRECISION_BYTES = {"bf16": 2.0, "fp8": 1.0, "fp32": 4.0}


@dataclass
class PlanDecision:
    """A chosen configuration plus the reasoning behind each choice."""

    parallel: ParallelConfig
    rationale: Dict[str, str]
    scale_up_ratio: float

    def explain(self) -> str:
        """Human-readable summary of the plan and its rationale."""
        lines = [f"strategy = {self.parallel.strategy_name} "
                 f"(PP={self.parallel.pipeline_size}, "
                 f"DP={self.parallel.data_parallel_size})"]
        lines += [f"  {key}: {why}" for key, why in self.rationale.items()]
        lines.append(f"  scale-up ratio R = {self.scale_up_ratio:.2f} "
                     f"({'>' if self.scale_up_ratio > 1 else '<='} 1)")
        return "\n".join(lines)


def plan_parallelism(
    model: ModelConfig,
    n_gpus: int,
    gpu: GPUSpec,
    ranks_per_node: int = 8,
    pipeline_size: Optional[int] = None,
) -> PlanDecision:
    """Pick the MegaScale-MoE parallelism for a (model, cluster) pair."""
    if n_gpus % ranks_per_node != 0:
        raise ValueError(
            f"n_gpus={n_gpus} not divisible by ranks_per_node="
            f"{ranks_per_node}"
        )
    n = ranks_per_node
    rationale: Dict[str, str] = {}

    # Attention: SP unless the head counts don't divide the node.
    if model.n_heads % n == 0 and model.n_kv_heads % n == 0:
        attention = "sp"
        rationale["attention"] = (
            f"SP: A2A volume shrinks with n and GQA ratio m={model.gqa_ratio}"
            f" (Eq. 2), ~{(2 + 2 / model.gqa_ratio) / n:.2f}× of TP's"
        )
    else:
        attention = "tp"
        rationale["attention"] = (
            f"TP fallback: heads ({model.n_heads}/{model.n_kv_heads}) do "
            f"not divide the node size {n}"
        )

    # FFN: EP unless experts don't divide the node.
    if model.n_experts % n == 0:
        ffn = "ep"
        mode = ("a2a" if model.top_k < 0.75 * n else "ag_rs")
        rationale["ffn"] = (
            f"EP with {mode} dispatch: top-k={model.top_k} vs EP size {n} "
            f"(Fig. 7 crossover near k≈6 on 8 GPUs)"
        )
    else:
        ffn = "tp"
        mode = "adaptive"
        rationale["ffn"] = (
            f"TP fallback: {model.n_experts} experts do not divide the "
            f"node size {n}"
        )

    # Pipeline: the *shallowest* pipeline whose per-GPU memory fits —
    # deeper pipelines only add bubbles (Table 3's MFU decline), so PP
    # is sized by parameter pressure, not preference.
    nodes = n_gpus // n
    if pipeline_size is None:
        candidates = [p for p in range(1, min(nodes, model.n_layers) + 1)
                      if nodes % p == 0 and model.n_layers % p == 0]
        pipeline_size = candidates[-1]
        for p in candidates:
            if _memory_fits(model, n, p, nodes // p, gpu):
                pipeline_size = p
                break
    dp = nodes // pipeline_size
    rationale["pipeline"] = (
        f"PP={pipeline_size} across nodes: shallowest pipeline whose "
        f"per-GPU memory fits (deeper pipelines only add bubbles, §3)"
    )

    ratio = scale_up_ratio(model.ffn_hidden_size, gpu.nvlink_bandwidth,
                           gpu.peak_flops, n)
    parallel = ParallelConfig(
        model_parallel_size=n,
        attention=attention,
        ffn=ffn,
        pipeline_size=pipeline_size,
        data_parallel_size=dp,
        ep_dispatch=mode if ffn == "ep" else "adaptive",
    )
    return PlanDecision(parallel=parallel, rationale=rationale,
                        scale_up_ratio=ratio)


def _memory_fits(model: ModelConfig, n: int, p: int, d: int,
                 gpu: GPUSpec, headroom: float = 0.9) -> bool:
    """Static + in-flight activation bytes under SAR vs HBM capacity."""
    from .analysis import param_memory_per_gpu
    from .remat import default_remat_plan

    pc = ParallelConfig.megascale(n, pipeline_size=p,
                                  data_parallel_size=max(d, 1))
    static = param_memory_per_gpu(model, pc)["total"]
    layers_per_stage = model.n_layers / p
    activations = default_remat_plan().retained_elements(model, pc, 1) \
        * 2.0 * layers_per_stage * p  # p micro-batches in flight (1F1B)
    return static + activations < gpu.memory_bytes * headroom


def dispatch_mode_times(
    model: ModelConfig,
    top_k: int,
    n: int,
    link: LinkSpec,
    micro_batch: int = 1,
    elem_bytes: float = 2.0,
    precision: Optional[str] = None,
) -> Dict[str, float]:
    """Fig. 7 — dispatch time per collective choice for a given top-k.

    Returns seconds for ``a2a`` (uneven all-to-all of routed rows),
    ``ag`` (all-gather of all tokens) and ``rs`` (reduce-scatter of the
    combined tensor).  Dispatch under AG/RS mode costs ``ag``; combine
    costs ``rs``; A2A mode pays ``a2a`` both ways.

    ``precision`` threads the training precision policy onto the wire.
    Under ``"fp8"`` the AG/RS payloads travel FP8-E4M3 with one 4-byte
    per-token scale, exactly the wire format of
    :mod:`repro.parallel.dist_ops_fp8`, while the uneven all-to-all
    stays in the training activation format — so fp8 shifts the
    crossover toward smaller top-k (a uniform element-size rescale
    would cancel out of the comparison entirely).
    """
    tokens = micro_batch * model.seq_len
    h = model.hidden_size
    a2a_elem = ring_elem = elem_bytes
    if precision == "fp8":
        # AG/RS legs are fp8-compressed (1 byte/elem + a 4-byte scale
        # per token row); the uneven a2a keeps the training format.
        ring_elem = _PRECISION_BYTES["fp8"] + 4.0 / h
    elif precision is not None:
        a2a_elem = ring_elem = _PRECISION_BYTES[precision]
    a2a_bytes = tokens * top_k / n * h * (n - 1) / n * a2a_elem
    full_bytes = tokens * h * ring_elem
    return {
        "a2a": all_to_all_time(a2a_bytes, n, link),
        "ag": ring_all_gather_time(full_bytes, n, link),
        "rs": ring_reduce_scatter_time(full_bytes, n, link),
    }


def dispatch_crossover_top_k(model: ModelConfig, n: int,
                             link: LinkSpec,
                             precision: Optional[str] = None) -> int:
    """Smallest top-k at which AG/RS dispatch beats A2A (Fig. 7)."""
    for k in range(1, model.n_experts + 1):
        times = dispatch_mode_times(model, k, n, link,
                                    precision=precision)
        if times["ag"] + times["rs"] <= 2 * times["a2a"]:
            return k
    return model.n_experts + 1


# ---------------------------------------------------------------------------
# Plan-space optimizer: describe cluster → enumerate → price → emit.
# ---------------------------------------------------------------------------


class NoFeasiblePlan(RuntimeError):
    """No candidate satisfies divisibility + memory on this cluster.

    Raised (instead of silently emitting an OOM plan) when every
    enumerated combination either fails a shape-divisibility check or
    does not fit the bottleneck GPU's HBM even with full remat.
    """

    def __init__(self, message: str, n_enumerated: int = 0):
        super().__init__(message)
        self.n_enumerated = n_enumerated


@dataclass(frozen=True)
class PlanCandidate:
    """One point of the plan space the enumerator walks.

    Combines the parallelism assignment with the precision policy and
    the rematerialization plan — the three axes that change what moves
    on the wire and what stays in HBM.
    """

    parallel: ParallelConfig
    precision: str = "bf16"
    remat: str = "selective"

    def __post_init__(self):
        if self.precision not in _PRECISION_BYTES:
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.remat not in ("selective", "none"):
            raise ValueError(f"unknown remat plan {self.remat!r}")

    @property
    def elem_bytes(self) -> float:
        """Wire bytes per activation element under this precision."""
        return _PRECISION_BYTES[self.precision]

    def describe(self) -> str:
        """One-line label, e.g. ``SP+EP n=8 pp=1 dp=4 a2a fp8 ...``."""
        p = self.parallel
        return (f"{p.strategy_name} n={p.model_parallel_size} "
                f"pp={p.pipeline_size} dp={p.data_parallel_size} "
                f"{p.ep_dispatch} {self.precision} remat={self.remat}")


@dataclass
class ScoredPlan:
    """A candidate plus its price tags.

    ``analytic_time`` is the cheap closed-form pre-score every
    candidate gets; ``iteration`` is the full
    :class:`~repro.perf.systems.SystemPerfModel` simulation the
    shortlist gets.  ``cross_node_a2a_bytes`` is the MoNTA accounting:
    per-iteration dispatch bytes that cross node boundaries.
    """

    candidate: PlanCandidate
    analytic_time: float
    cross_node_a2a_bytes: float = 0.0
    iteration: object = None  # IterationBreakdown once simulated
    rationale: Dict[str, str] = field(default_factory=dict)

    @property
    def iteration_time(self) -> float:
        """Best available price: simulated when priced, else analytic."""
        if self.iteration is not None:
            return self.iteration.iteration_time
        return self.analytic_time


@dataclass
class PlanSearchResult:
    """Outcome of one plan-space search over a described cluster."""

    model: ModelConfig
    cluster: ClusterSpec
    train: TrainConfig
    best: ScoredPlan
    ranked: List[ScoredPlan]
    n_enumerated: int
    n_feasible: int
    n_simulated: int
    scale_up_ratio: float

    def explain(self) -> str:
        """Human-readable winner summary with per-choice rationale."""
        best = self.best
        lines = [
            self.cluster.describe(),
            f"plan space: {self.n_enumerated} combinations, "
            f"{self.n_feasible} feasible, "
            f"{self.n_simulated} simulated",
            f"strategy = {best.candidate.parallel.strategy_name} "
            f"(PP={best.candidate.parallel.pipeline_size}, "
            f"DP={best.candidate.parallel.data_parallel_size})",
        ]
        lines += [f"  {key}: {why}"
                  for key, why in best.rationale.items()]
        lines.append(f"  scale-up ratio R = {self.scale_up_ratio:.2f} "
                     f"({'>' if self.scale_up_ratio > 1 else '<='} 1)")
        lines.append(f"  simulated iteration time = "
                     f"{best.iteration_time * 1e3:.1f} ms")
        return "\n".join(lines)


def _divisors(x: int) -> List[int]:
    return [d for d in range(1, x + 1) if x % d == 0]


def _raw_candidates(model: ModelConfig, cluster: ClusterSpec,
                    train: TrainConfig) -> List[PlanCandidate]:
    """Every shape-divisible combination, before the memory gate."""
    out: List[PlanCandidate] = []
    n_gpus = cluster.n_gpus
    micro = train.micro_batch_size
    for n in _divisors(n_gpus):
        attentions = []
        if model.n_heads % n == 0 and model.n_kv_heads % n == 0:
            attentions.append("sp")
        if model.n_heads % n == 0 and model.hidden_size % n == 0:
            attentions.append("tp")
        if n == 1:
            attentions = ["sp"]  # degenerate: no MP communication
        ffns: List[Tuple[str, str]] = []
        if model.n_experts % n == 0:
            if n == 1:
                ffns.append(("ep", "a2a"))
            else:
                ffns.append(("ep", "a2a"))
                ffns.append(("ep", "ag_rs"))
        if model.ffn_hidden_size % n == 0 and n > 1:
            ffns.append(("tp", "adaptive"))
        if n == 1 and not ffns:
            ffns.append(("ep", "a2a"))
        for p in _divisors(n_gpus // n):
            if model.n_layers % p != 0:
                continue
            d = n_gpus // (n * p)
            if train.global_batch_size % (d * micro) != 0:
                continue
            for attention in attentions:
                for ffn, mode in ffns:
                    for precision in ("bf16", "fp8"):
                        for remat in ("selective", "none"):
                            out.append(PlanCandidate(
                                parallel=ParallelConfig(
                                    model_parallel_size=n,
                                    attention=attention,
                                    ffn=ffn,
                                    pipeline_size=p,
                                    data_parallel_size=d,
                                    ep_dispatch=mode,
                                ),
                                precision=precision,
                                remat=remat,
                            ))
    return out


def _candidate_fits(model: ModelConfig, cluster: ClusterSpec,
                    cand: PlanCandidate, micro: int,
                    headroom: float = 0.9) -> bool:
    """Static + in-flight activation bytes vs the bottleneck HBM."""
    from .remat import default_remat_plan, no_remat_plan

    gpu = cluster.bottleneck_gpu()
    par = cand.parallel
    static = param_memory_per_gpu(model, par)["total"]
    plan = (default_remat_plan() if cand.remat == "selective"
            else no_remat_plan())
    layers_per_stage = model.n_layers / par.pipeline_size
    activations = plan.retained_elements(model, par, micro) \
        * cand.elem_bytes * layers_per_stage * par.pipeline_size
    return static + activations < gpu.memory_bytes * headroom


def enumerate_plans(model: ModelConfig, cluster: ClusterSpec,
                    train: Optional[TrainConfig] = None
                    ) -> List[PlanCandidate]:
    """Feasibility-filtered plan enumeration for a described cluster.

    Walks (MP degree, TP/SP attention, EP/TP FFN, dispatch mode, PP,
    DP, precision, remat) subject to shape divisibility, batch
    divisibility, and the bottleneck GPU's memory capacity.
    """
    train = train or TrainConfig()
    return [c for c in _raw_candidates(model, cluster, train)
            if _candidate_fits(model, cluster, c,
                               train.micro_batch_size)]


def _a2a_effective_bw(cluster: ClusterSpec, n: int) -> float:
    """Per-rank effective all-to-all bandwidth over the tier mix."""
    intra, inter = cluster.intra_link, cluster.inter_link
    cross = cluster.cross_node_fraction(n)
    if cross <= 0.0:
        return intra.bandwidth * intra.a2a_efficiency
    tiers = [inter.bandwidth * inter.a2a_efficiency / cross]
    if cross < 1.0:
        tiers.append(intra.bandwidth * intra.a2a_efficiency
                     / (1.0 - cross))
    return min(tiers)  # concurrent tiers: the busier one paces


def _cross_node_a2a_bytes(model: ModelConfig, cluster: ClusterSpec,
                          cand: PlanCandidate,
                          train: TrainConfig) -> float:
    """MoNTA accounting: per-iteration a2a bytes crossing nodes."""
    par = cand.parallel
    n = par.model_parallel_size
    cross = cluster.cross_node_fraction(n)
    if cross == 0.0:
        return 0.0
    b = train.micro_batch_size
    s, h = model.seq_len, model.hidden_size
    vol = 0.0
    if par.attention == "sp":
        vol += sp_attention_comm_volume(b, s, h, n, model.gqa_ratio)
    if par.ffn == "ep" and par.ep_dispatch == "a2a":
        vol += ep_ffn_comm_volume(b, s, h, n, model.top_k)
    m = train.global_batch_size // (par.data_parallel_size * b)
    # fwd + bwd passes, every layer, every micro-batch.
    return vol * cand.elem_bytes * cross * 2.0 * model.n_layers * m


def _analytic_time(model: ModelConfig, cluster: ClusterSpec,
                   cand: PlanCandidate, train: TrainConfig) -> float:
    """Closed-form pre-score: overlapped layer time × pipeline shape.

    Deliberately coarse — its only job is to rank candidates well
    enough that the full simulator shortlist contains the winner.
    """
    gpu = cluster.bottleneck_gpu()
    par = cand.parallel
    n, p, d = (par.model_parallel_size, par.pipeline_size,
               par.data_parallel_size)
    micro = train.micro_batch_size
    m = train.global_batch_size // (d * micro)
    tokens = micro * model.seq_len

    # Per-layer fwd+bwd compute, sharded n ways at ~50% of peak.
    flops = model.train_flops_per_token() * tokens / model.n_layers
    compute = flops / (n * gpu.peak_flops * 0.5)

    # Per-layer communication priced against the tier it crosses.
    attn_bytes = attention_comm_volume(model, par, micro) \
        * cand.elem_bytes
    ffn_bytes = ffn_comm_volume(model, par, micro) * cand.elem_bytes
    ring_bw = cluster.link_for_group(n).bandwidth
    a2a_bw = _a2a_effective_bw(cluster, n)
    attn_t = attn_bytes / (a2a_bw if par.attention == "sp" else ring_bw)
    uses_a2a = par.ffn == "ep" and par.ep_dispatch != "ag_rs"
    ffn_t = ffn_bytes / (a2a_bw if uses_a2a else ring_bw)
    comm = 2.0 * (attn_t + ffn_t)  # fwd + bwd passes

    # Holistic overlap hides the smaller of the two streams.
    layer = max(compute, comm) + 0.15 * min(compute, comm)
    layers_per_stage = model.n_layers / p
    period = layer * layers_per_stage
    pipeline = period * (m + p - 1)

    # Exposed DP gradient sync (half-overlapped, inter-node ring).
    params = param_memory_per_gpu(model, par)["params"] / 2.0
    dp = (2.0 * params * 2.0 * (d - 1) / d
          / cluster.inter_link.bandwidth * 0.5) if d > 1 else 0.0
    return pipeline + dp


def _rationale(model: ModelConfig, cluster: ClusterSpec,
               cand: PlanCandidate, train: TrainConfig) -> Dict[str, str]:
    """Per-choice reasoning for one scored plan."""
    par = cand.parallel
    n = par.model_parallel_size
    b, s, h = train.micro_batch_size, model.seq_len, model.hidden_size
    out: Dict[str, str] = {}
    sp_vol = sp_attention_comm_volume(b, s, h, n, model.gqa_ratio)
    tp_vol = tp_attention_comm_volume(b, s, h, n)
    if par.attention == "sp":
        ratio = sp_vol / tp_vol if tp_vol else 0.0
        out["attention"] = (
            f"SP (Ulysses): a2a volume is {ratio:.2f}x of TP's ring "
            f"volume at n={n}, GQA m={model.gqa_ratio} (Eq. 2)")
    else:
        out["attention"] = (
            f"TP: heads {model.n_heads}/{model.n_kv_heads} constrain "
            f"SP at n={n}, or TP simply priced faster here (Eq. 1)")
    if par.ffn == "ep":
        out["ffn"] = (
            f"EP with {par.ep_dispatch} dispatch: top-k={model.top_k} "
            f"vs EP size {n} (Fig. 7 crossover)")
    else:
        out["ffn"] = f"TP FFN: priced faster than EP at n={n} (Eq. 4)"
    cross = cluster.cross_node_fraction(n)
    if cross > 0.0:
        out["placement"] = (
            f"MP group of {n} spans nodes of {cluster.gpus_per_node}: "
            f"{cross * 100:.0f}% of dispatch bytes ride the RDMA tier")
    else:
        out["placement"] = (
            f"MP group of {n} fits inside the {cluster.gpus_per_node}-"
            f"GPU NVLink domain: zero cross-node dispatch traffic")
    out["pipeline"] = (
        f"PP={par.pipeline_size}, DP={par.data_parallel_size}: fits "
        f"{cluster.bottleneck_gpu().name} HBM with remat={cand.remat}")
    out["precision"] = (
        f"{cand.precision}: {cand.elem_bytes:.0f} B/elem on the wire"
        + (" (§5 fp8 communication compression)"
           if cand.precision == "fp8" else ""))
    return out


def plan_cluster(
    model: ModelConfig,
    cluster: ClusterSpec,
    train: Optional[TrainConfig] = None,
    top: int = 5,
    sim_top: int = 32,
    calibration=None,
) -> PlanSearchResult:
    """Search the plan space for a model on a described cluster.

    Two-stage pricing: every feasible candidate gets the closed-form
    analytic score; the best ``sim_top`` by that score are priced by
    the full :class:`~repro.perf.systems.SystemPerfModel` event
    simulation (calibrated when a :class:`CalibrationReport` from
    ``calibrate_from_spans`` is supplied).  Returns the ``top`` ranked
    plans with the winner's per-choice rationale.

    Raises:
        NoFeasiblePlan: when no combination passes the divisibility
            and memory gates.
    """
    from ..perf.systems import MegaScalePerfModel

    train = train or TrainConfig()
    raw = _raw_candidates(model, cluster, train)
    feasible = [c for c in raw
                if _candidate_fits(model, cluster, c,
                                   train.micro_batch_size)]
    if not feasible:
        raise NoFeasiblePlan(
            f"no feasible plan for {model.name} on "
            f"{cluster.describe()}: {len(raw)} combinations enumerated"
            f", all fail shape or memory constraints",
            n_enumerated=len(raw),
        )

    scored = [ScoredPlan(
        candidate=c,
        analytic_time=_analytic_time(model, cluster, c, train),
        cross_node_a2a_bytes=_cross_node_a2a_bytes(
            model, cluster, c, train),
    ) for c in feasible]
    scored.sort(key=lambda s: (s.analytic_time, s.candidate.describe()))

    gpu = cluster.bottleneck_gpu()
    for s in scored[:sim_top]:
        perf = MegaScalePerfModel(
            cluster=cluster,
            calibration=calibration,
            selective_remat=s.candidate.remat == "selective",
            elem_bytes=s.candidate.elem_bytes,
        )
        s.iteration = perf.iteration(model, s.candidate.parallel,
                                     train, gpu)
    simulated = scored[:sim_top]
    simulated.sort(key=lambda s: (s.iteration_time,
                                  s.cross_node_a2a_bytes,
                                  s.candidate.describe()))
    for s in simulated[:top]:
        s.rationale = _rationale(model, cluster, s.candidate, train)

    best = simulated[0]
    ratio = scale_up_ratio(
        model.ffn_hidden_size, gpu.nvlink_bandwidth, gpu.peak_flops,
        max(best.candidate.parallel.model_parallel_size, 2))
    return PlanSearchResult(
        model=model,
        cluster=cluster,
        train=train,
        best=best,
        ranked=simulated[:top],
        n_enumerated=len(raw),
        n_feasible=len(feasible),
        n_simulated=len(simulated),
        scale_up_ratio=ratio,
    )
