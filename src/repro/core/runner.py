"""Production training runner: checkpoint cadence, faults, recovery.

Fig. 19's run "uses over 10,000 GPUs and lasts for months ... Different
colors indicate training restarts."  Operating such a run requires more
than a train_step: periodic checkpoints, crash detection, resume from
the latest durable state, and a metrics trail.  This module provides
that loop for any trainer exposing ``train_step`` /
``state_dict`` / ``load_state_dict``:

* :class:`ProductionRunner` — drives steps, checkpoints every
  ``checkpoint_interval`` steps, and on a :class:`SimulatedFault`
  rebuilds the trainer from the latest checkpoint and replays from the
  next un-trained batch (steps since the last checkpoint are re-run,
  exactly like a real restart).
* :class:`FaultInjector` — deterministic fault schedule for tests and
  benches.
* :class:`MetricsLog` — step/loss/restart history with CSV export.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["SimulatedFault", "FaultInjector", "MetricsLog",
           "ProductionRunner"]


class SimulatedFault(RuntimeError):
    """A injected failure (node loss, NCCL timeout, ...)."""


class FaultInjector:
    """Raises :class:`SimulatedFault` at predetermined global steps.

    Each scheduled step faults exactly once: the post-restart replay of
    the same step proceeds (a real cluster swaps the bad node out).
    """

    def __init__(self, fault_steps: Sequence[int]):
        self.pending = set(int(s) for s in fault_steps)
        self.fired: List[int] = []

    def check(self, step: int) -> None:
        """Raise :class:`SimulatedFault` if ``step`` is scheduled to fail."""
        if step in self.pending:
            self.pending.discard(step)
            self.fired.append(step)
            raise SimulatedFault(f"injected fault at step {step}")


@dataclass
class MetricsLog:
    """Append-only training telemetry."""

    steps: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    restarts: List[int] = field(default_factory=list)
    checkpoints: List[int] = field(default_factory=list)

    def record(self, step: int, loss: float) -> None:
        """Append one training step."""
        self.steps.append(step)
        self.losses.append(loss)

    def to_csv(self, path: str) -> None:
        """Write the step/loss history as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["step", "loss"])
            for step, loss in zip(self.steps, self.losses):
                writer.writerow([step, loss])

    @property
    def restart_count(self) -> int:
        return len(self.restarts)


class ProductionRunner:
    """Runs a trainer with durable checkpoints and crash recovery.

    Args:
        trainer_factory: Builds a *fresh* trainer (used at start and
            after every restart); must expose ``train_step(batch)``
            returning an object with a ``loss`` attribute (or a float),
            plus ``state_dict()`` / ``load_state_dict()``.
        checkpoint_dir: Where step-stamped ``.npz`` state lands.
        checkpoint_interval: Steps between checkpoints.
        max_restarts: Give up (re-raise) after this many recoveries.
    """

    def __init__(self, trainer_factory: Callable[[], object],
                 checkpoint_dir: str, checkpoint_interval: int = 10,
                 max_restarts: int = 10):
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got "
                f"{checkpoint_interval}"
            )
        self.trainer_factory = trainer_factory
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        os.makedirs(checkpoint_dir, exist_ok=True)

    # -- checkpoint files ---------------------------------------------------

    def _path(self, step: int) -> str:
        return os.path.join(self.checkpoint_dir, f"step_{step:08d}.npz")

    def latest_checkpoint(self) -> Optional[int]:
        """Highest checkpointed step in the directory, or None."""
        steps = []
        for name in os.listdir(self.checkpoint_dir):
            if name.startswith("step_") and name.endswith(".npz"):
                try:
                    steps.append(int(name[5:-4]))
                except ValueError:
                    continue
        return max(steps) if steps else None

    def _save(self, trainer, step: int) -> None:
        state = trainer.state_dict()
        tmp = self._path(step) + ".tmp"
        with open(tmp, "wb") as handle:
            np.savez(handle, **state)
        os.replace(tmp, self._path(step))

    def _load(self, trainer, step: int) -> None:
        with np.load(self._path(step)) as data:
            trainer.load_state_dict({k: data[k] for k in data.files})

    # -- the loop ------------------------------------------------------------

    def run(self, batches: Sequence[np.ndarray],
            fault_injector: Optional[FaultInjector] = None,
            metrics: Optional[MetricsLog] = None) -> MetricsLog:
        """Train through ``batches`` with recovery; returns the log."""
        metrics = metrics or MetricsLog()
        trainer = self.trainer_factory()

        resume = self.latest_checkpoint()
        step = 0
        if resume is not None:
            self._load(trainer, resume)
            step = resume

        restarts = 0
        while step < len(batches):
            try:
                if fault_injector is not None:
                    fault_injector.check(step)
                result = trainer.train_step(batches[step])
                loss = getattr(result, "loss", result)
                metrics.record(step, float(loss))
                step += 1
                if step % self.checkpoint_interval == 0:
                    self._save(trainer, step)
                    metrics.checkpoints.append(step)
            except SimulatedFault:
                restarts += 1
                if restarts > self.max_restarts:
                    raise
                metrics.restarts.append(step)
                trainer = self.trainer_factory()
                resume = self.latest_checkpoint()
                step = resume if resume is not None else 0
                if resume is not None:
                    self._load(trainer, resume)
        self._save(trainer, step)
        metrics.checkpoints.append(step)
        return metrics
