"""Production training runner: checkpoint cadence, faults, recovery.

Fig. 19's run "uses over 10,000 GPUs and lasts for months ... Different
colors indicate training restarts."  Operating such a run requires more
than a train_step: periodic checkpoints, crash detection, resume from
the latest durable state, and a metrics trail.  This module provides
that loop for any trainer exposing ``train_step`` /
``state_dict`` / ``load_state_dict``:

* :class:`ProductionRunner` — drives steps, checkpoints every
  ``checkpoint_interval`` steps, and recovers from faults with a
  layered policy (see :mod:`repro.ft`):

  1. *transient comm faults* (timeouts, checksum mismatches) are
     retried in place with exponential backoff when a
     :class:`~repro.ft.recovery.BackoffPolicy` is configured;
  2. *persistent faults* (rank crashes, exhausted retries, NaNs, and
     plain :class:`SimulatedFault`) trigger a restart: the trainer is
     rebuilt and state reloaded from the newest checkpoint that passes
     CRC/readability validation — corrupt or truncated ``.npz`` files
     are skipped, walking back the checkpoint chain;
  3. *loss spikes* (via a :class:`~repro.ft.health.LossSpikeGuard`)
     roll back to the last checkpoint and replay, or skip the
     offending batch (``on_spike="skip"``).

  Checkpoints are written atomically (tmp file + fsync + rename) with a CRC32
  sidecar; leftover ``.tmp`` files from crashed writes are ignored and
  swept on the next successful save.
* :class:`FaultInjector` — deterministic step-level fault/loss-spike
  schedule for tests and benches (comm-level faults are injected by
  :class:`~repro.ft.faults.FaultPlan` instead).
* :class:`MetricsLog` — step/loss/restart/recovery history with CSV
  export.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from ..core.checkpoint import atomic_write
from ..ft.faults import Fault, LossSpike, ResizeEvent
from ..ft.health import LossSpikeGuard, NumericGuard
from ..ft.recovery import (
    BackoffPolicy,
    LayoutMismatch,
    RetryStats,
    read_checkpoint_meta,
    retry_with_backoff,
    validate_checkpoint,
    write_checkpoint_meta,
)

__all__ = ["SimulatedFault", "FaultInjector", "MetricsLog",
           "ProductionRunner"]


class SimulatedFault(Fault):
    """An injected failure (node loss, NCCL timeout, ...)."""


class FaultInjector:
    """Raises :class:`SimulatedFault` at predetermined global steps.

    Each scheduled step faults exactly once: the post-restart replay of
    the same step proceeds (a real cluster swaps the bad node out).
    ``spike_steps`` additionally perturb the *reported* loss once per
    scheduled step by ``spike_factor`` — modelling a transient loss
    blow-up for the spike-rollback path without touching the weights.
    ``resize_steps`` maps ``{step: target_layout}`` and raises a
    :class:`~repro.ft.faults.ResizeEvent` once per scheduled step —
    the fleet shrinking or growing mid-run, which only an elastic
    runner can absorb.
    """

    def __init__(self, fault_steps: Sequence[int] = (),
                 spike_steps: Sequence[int] = (),
                 spike_factor: float = 100.0,
                 resize_steps: Optional[dict] = None):
        self.pending = set(int(s) for s in fault_steps)
        self.fired: List[int] = []
        self.spike_pending = set(int(s) for s in spike_steps)
        self.spiked: List[int] = []
        self.spike_factor = float(spike_factor)
        self.resize_pending = {int(s): layout for s, layout
                               in (resize_steps or {}).items()}
        self.resized: List[int] = []

    def check(self, step: int) -> None:
        """Raise :class:`SimulatedFault` if ``step`` is scheduled to fail."""
        if step in self.resize_pending:
            layout = self.resize_pending.pop(step)
            self.resized.append(step)
            raise ResizeEvent(step, layout)
        if step in self.pending:
            self.pending.discard(step)
            self.fired.append(step)
            raise SimulatedFault(f"injected fault at step {step}")

    def perturb_loss(self, step: int, loss: float) -> float:
        """Inflate the reported loss once at each scheduled spike step."""
        if step in self.spike_pending:
            self.spike_pending.discard(step)
            self.spiked.append(step)
            return loss * self.spike_factor
        return loss


@dataclass
class MetricsLog:
    """Append-only training telemetry."""

    steps: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    restarts: List[int] = field(default_factory=list)
    checkpoints: List[int] = field(default_factory=list)
    #: Steps at which a loss spike forced a rollback (or a skip).
    rollbacks: List[int] = field(default_factory=list)
    #: Batches dropped by the ``on_spike="skip"`` policy.
    skipped: List[int] = field(default_factory=list)
    #: Checkpoint steps discarded as corrupt during recovery.
    invalid_checkpoints: List[int] = field(default_factory=list)
    #: In-place step retries after transient comm faults.
    retries: int = 0
    #: Total simulated backoff delay across those retries.
    backoff_seconds: float = 0.0
    #: Steps at which an elastic runner absorbed a cluster resize.
    resizes: List[int] = field(default_factory=list)
    #: State bytes that changed ranks across those resizes.
    reshard_bytes: float = 0.0
    #: Modelled wall time spent resharding.
    reshard_seconds: float = 0.0

    def record(self, step: int, loss: float) -> None:
        """Append one training step."""
        self.steps.append(step)
        self.losses.append(loss)

    def to_csv(self, path: str) -> None:
        """Write the step/loss history as CSV."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["step", "loss"])
            for step, loss in zip(self.steps, self.losses):
                writer.writerow([step, loss])

    @property
    def restart_count(self) -> int:
        return len(self.restarts)

    @property
    def replayed_steps(self) -> int:
        """Steps executed more than once (recovery overhead)."""
        return len(self.steps) - len(set(self.steps))


class ProductionRunner:
    """Runs a trainer with durable checkpoints and crash recovery.

    Args:
        trainer_factory: Builds a *fresh* trainer (used at start and
            after every restart); must expose ``train_step(batch)``
            returning an object with a ``loss`` attribute (or a float),
            plus ``state_dict()`` / ``load_state_dict()``.
        checkpoint_dir: Where step-stamped ``.npz`` state lands.
        checkpoint_interval: Steps between checkpoints.
        max_restarts: Give up (re-raise) after this many recoveries.
        retry_policy: Retry transient comm faults in place with this
            backoff before escalating to a restart (None = every fault
            escalates immediately).
        loss_guard: Raise-and-rollback on loss spikes.
        numeric_guard: Raise-and-restart on NaN/inf losses.
        validate_checkpoints: Verify CRC/readability before resuming
            from a checkpoint, walking back past corrupt ones.
        on_spike: ``"rollback"`` reloads the last checkpoint and
            replays; ``"skip"`` drops the offending batch and moves on.
        max_rollbacks: Give up after this many loss-spike recoveries.
        sleep: Receives each backoff delay (None = simulated time,
            no real sleeping).
        obs: Optional :class:`~repro.obs.Observability` bundle; the
            runner marks checkpoints, restarts, and rollbacks as
            instant trace events and counts them in the metrics
            registry (the trainer-level spans come from passing the
            same bundle to the trainer factory's trainer).
    """

    def __init__(self, trainer_factory: Callable[[], object],
                 checkpoint_dir: str, checkpoint_interval: int = 10,
                 max_restarts: int = 10, *,
                 retry_policy: Optional[BackoffPolicy] = None,
                 loss_guard: Optional[LossSpikeGuard] = None,
                 numeric_guard: Optional[NumericGuard] = None,
                 validate_checkpoints: bool = True,
                 on_spike: str = "rollback",
                 max_rollbacks: int = 10,
                 sleep: Optional[Callable[[float], None]] = None,
                 obs: Optional[object] = None):
        if checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got "
                f"{checkpoint_interval}"
            )
        if on_spike not in ("rollback", "skip"):
            raise ValueError(
                f"on_spike must be 'rollback' or 'skip', got "
                f"{on_spike!r}"
            )
        self.trainer_factory = trainer_factory
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.max_restarts = max_restarts
        self.retry_policy = retry_policy
        self.loss_guard = loss_guard
        self.numeric_guard = numeric_guard
        self.validate_checkpoints = validate_checkpoints
        self.on_spike = on_spike
        self.max_rollbacks = max_rollbacks
        self.sleep = sleep
        self.obs = obs
        self.retry_stats = RetryStats()
        #: Checkpoint steps found corrupt/unreadable and walked past.
        self.discarded: List[int] = []
        self._invalid: Set[int] = set()
        os.makedirs(checkpoint_dir, exist_ok=True)
        # A crash before the first save of a resumed run must not leave
        # its .tmp leftovers behind until that save happens.
        self._sweep_tmp_files()

    # -- checkpoint files ---------------------------------------------------

    def _path(self, step: int) -> str:
        return os.path.join(self.checkpoint_dir, f"step_{step:08d}.npz")

    def checkpoint_steps(self) -> List[int]:
        """All checkpointed steps on disk, ascending (``.tmp`` ignored)."""
        steps = []
        for name in os.listdir(self.checkpoint_dir):
            if name.startswith("step_") and name.endswith(".npz"):
                try:
                    steps.append(int(name[5:-4]))
                except ValueError:
                    continue
        return sorted(steps)

    def latest_checkpoint(self) -> Optional[int]:
        """Newest *valid* checkpointed step, or None.

        Walks the chain newest-to-oldest, skipping checkpoints that
        fail CRC-sidecar validation or cannot be read back (truncated
        or bit-flipped archives); skipped steps land in
        :attr:`discarded`.
        """
        for step in reversed(self.checkpoint_steps()):
            if step in self._invalid:
                continue
            if not self.validate_checkpoints:
                return step
            if validate_checkpoint(self._path(step)):
                return step
            self._mark_invalid(step)
        return None

    def _mark_invalid(self, step: int) -> None:
        if step not in self._invalid:
            self._invalid.add(step)
            self.discarded.append(step)

    @staticmethod
    def _trainer_layout(trainer):
        """The trainer's :class:`ParallelLayout`, or None for
        layout-less toy trainers (which opt out of layout checks)."""
        from ..elastic.layout import ParallelLayout

        return ParallelLayout.from_trainer(trainer)

    def _save(self, trainer, step: int) -> None:
        state = trainer.state_dict()
        atomic_write(self._path(step),
                     lambda handle: np.savez(handle, **state))
        write_checkpoint_meta(self._path(step), step,
                              layout=self._trainer_layout(trainer))
        self._invalid.discard(step)
        self._sweep_tmp_files()

    def _sweep_tmp_files(self) -> None:
        """Remove leftovers from writes that crashed mid-checkpoint."""
        for name in os.listdir(self.checkpoint_dir):
            if name.endswith(".npz.tmp") or name.endswith(".json.tmp"):
                try:
                    os.remove(os.path.join(self.checkpoint_dir, name))
                except OSError:
                    pass

    def _load(self, trainer, step: int) -> None:
        with np.load(self._path(step)) as data:
            state = {k: data[k] for k in data.files}
        saved, current = self._saved_layout(step), \
            self._trainer_layout(trainer)
        if saved is not None and current is not None \
                and saved != current:
            state = self._resolve_layout_mismatch(
                state, saved, current, step)
        trainer.load_state_dict(state)

    def _saved_layout(self, step: int):
        """The layout recorded in a checkpoint's sidecar, or None."""
        from ..elastic.layout import ParallelLayout

        meta = read_checkpoint_meta(self._path(step)) or {}
        layout = meta.get("layout")
        if not isinstance(layout, dict):
            return None
        try:
            return ParallelLayout.from_dict(layout)
        except (KeyError, TypeError, ValueError):
            return None

    def _resolve_layout_mismatch(self, state, saved, current,
                                 step: int):
        """Hook for layout-changing loads.  The fixed-size runner
        refuses — restoring wrong-shaped shards silently corrupts the
        run; :class:`~repro.elastic.runner.ElasticRunner` overrides
        this to reshard ``state`` from ``saved`` to ``current``."""
        raise LayoutMismatch(
            f"checkpoint step {step} was written under "
            f"[{saved.describe()}] but the trainer runs "
            f"[{current.describe()}]; use an elastic runner to "
            f"reshard", saved=saved, current=current)

    def _restore(self, trainer, metrics: Optional[MetricsLog] = None,
                 ) -> int:
        """Load the newest checkpoint that actually restores; returns
        the resume step (0 when no usable checkpoint remains)."""
        self._sweep_tmp_files()
        while True:
            resume = self.latest_checkpoint()
            if resume is None:
                if metrics is not None:
                    self._sync_invalid(metrics)
                return 0
            try:
                self._load(trainer, resume)
            except LayoutMismatch:
                # Not corruption: the checkpoint is fine, the world
                # changed shape.  Walking further back would only find
                # more same-layout checkpoints — surface it.
                raise
            except Exception:
                # Validation passed but the load failed (e.g. raced
                # corruption): drop this step and walk further back.
                self._mark_invalid(resume)
                continue
            if metrics is not None:
                self._sync_invalid(metrics)
            return resume

    def _sync_invalid(self, metrics: MetricsLog) -> None:
        for step in self.discarded:
            if step not in metrics.invalid_checkpoints:
                metrics.invalid_checkpoints.append(step)

    # -- observability -------------------------------------------------------

    def _mark(self, name: str, **attrs) -> None:
        """Instant trace event + matching counter, when observed."""
        if self.obs is None:
            return
        self.obs.tracer.instant(name, cat="runner", stream="runner",
                                **attrs)
        self.obs.metrics.inc(f"runner.{name}")

    # -- the loop ------------------------------------------------------------

    def _handle_resize(self, event: ResizeEvent, trainer, step: int,
                       metrics: MetricsLog):
        """React to a cluster resize; returns ``(trainer, step)``.

        A fixed-size runner cannot absorb a world-size change — its
        trainer factory only builds one layout — so the event
        propagates to the operator.
        :class:`~repro.elastic.runner.ElasticRunner` overrides this
        with checkpoint–reshard–resume.
        """
        raise event

    def _attempt_step(self, trainer, batch):
        if self.retry_policy is None:
            return trainer.train_step(batch)
        return retry_with_backoff(
            lambda: trainer.train_step(batch),
            self.retry_policy,
            sleep=self.sleep,
            stats=self.retry_stats,
        )

    def run(self, batches: Sequence[np.ndarray],
            fault_injector: Optional[FaultInjector] = None,
            metrics: Optional[MetricsLog] = None) -> MetricsLog:
        """Train through ``batches`` with recovery; returns the log."""
        metrics = metrics or MetricsLog()
        retries_before = self.retry_stats.retries
        backoff_before = self.retry_stats.total_backoff
        trainer = self.trainer_factory()

        step = self._restore(trainer, metrics)
        last_saved = step if step > 0 else None

        restarts = 0
        rollbacks = 0
        while step < len(batches):
            try:
                if fault_injector is not None:
                    fault_injector.check(step)
                result = self._attempt_step(trainer, batches[step])
                loss = float(getattr(result, "loss", result))
                if fault_injector is not None:
                    loss = fault_injector.perturb_loss(step, loss)
                if self.numeric_guard is not None:
                    self.numeric_guard.check(loss)
                if self.loss_guard is not None:
                    self.loss_guard.observe(step, loss)
                metrics.record(step, loss)
                step += 1
                if step % self.checkpoint_interval == 0:
                    self._save(trainer, step)
                    metrics.checkpoints.append(step)
                    self._mark("checkpoint", step=step)
                    last_saved = step
            except LossSpike:
                rollbacks += 1
                if rollbacks > self.max_rollbacks:
                    raise
                metrics.rollbacks.append(step)
                if self.on_spike == "skip":
                    metrics.skipped.append(step)
                    self._mark("skip", step=step)
                    step += 1
                    continue
                self._mark("rollback", step=step)
                trainer = self.trainer_factory()
                step = self._restore(trainer, metrics)
            except ResizeEvent as event:
                trainer, step = self._handle_resize(
                    event, trainer, step, metrics)
            except Fault as fault:
                restarts += 1
                if restarts > self.max_restarts:
                    raise
                metrics.restarts.append(step)
                self._mark("restart", step=step,
                           fault=type(fault).__name__)
                trainer = self.trainer_factory()
                step = self._restore(trainer, metrics)
        if last_saved != step:
            self._save(trainer, step)
            metrics.checkpoints.append(step)
            self._mark("checkpoint", step=step)
        retries = self.retry_stats.retries - retries_before
        metrics.retries += retries
        metrics.backoff_seconds += (self.retry_stats.total_backoff
                                    - backoff_before)
        if self.obs is not None and retries:
            self.obs.metrics.inc("runner.retries", retries)
        return metrics
