"""Closed-form analysis from the paper.

Implements, symbol-for-symbol, the analytical results MegaScale-MoE's
design rests on:

* communication volumes of the candidate parallelism strategies
  (Eqs. 1–4, §3.1–3.2),
* the compute/communication scale-up ratio R (Eqs. 5–9, §7),
* per-layer activation-memory totals with and without selective
  activation rematerialization (Appendix A.2, Fig. 20),
* parameter/gradient/optimizer memory per GPU under SP vs TP attention
  (§3.1 "data communication & memory overhead", Fig. 13 discussion).

All volume functions return **elements**; multiply by the wire element
size to get bytes.  ``b, s, h, n, m, k`` follow Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .config import ModelConfig, ParallelConfig

__all__ = [
    "tp_attention_comm_volume",
    "sp_attention_comm_volume",
    "ep_ffn_comm_volume",
    "tp_ffn_comm_volume",
    "attention_comm_volume",
    "ffn_comm_volume",
    "scale_up_ratio",
    "ActivationBudget",
    "activation_elements_full",
    "activation_elements_remat",
    "activation_budget",
    "param_memory_per_gpu",
]


def tp_attention_comm_volume(b: int, s: int, h: int, n: int) -> float:
    """Eq. 1 — per-pass TP attention volume: ``2 b s h (n-1)/n``.

    One all-gather plus one reduce-scatter of the ``[b, s, h]``
    activation, both on the critical path.
    """
    if n <= 1:
        return 0.0
    return 2.0 * b * s * h * (n - 1) / n


def sp_attention_comm_volume(b: int, s: int, h: int, n: int,
                             m: int) -> float:
    """Eq. 2 — per-pass Ulysses SP attention volume.

    ``2 b s h (n-1)/n × (2 + 2/m)/n``: two all-to-alls (QKV heads in,
    attention output out), shrinking with both ``n`` and the GQA ratio
    ``m``.
    """
    if n <= 1:
        return 0.0
    return tp_attention_comm_volume(b, s, h, n) * (2.0 + 2.0 / m) / n


def ep_ffn_comm_volume(b: int, s: int, h: int, n: int, k: int) -> float:
    """Eq. 3 — per-pass EP volume: ``2 k/n × b s h (n-1)/n``.

    Token dispatch and combine, each moving the routed ``k/n`` share.
    """
    if n <= 1:
        return 0.0
    return 2.0 * k / n * b * s * h * (n - 1) / n


def tp_ffn_comm_volume(b: int, s: int, h: int, n: int) -> float:
    """Eq. 4 — per-pass TP FFN volume: ``2 b s h (n-1)/n``."""
    return tp_attention_comm_volume(b, s, h, n)


def attention_comm_volume(model: ModelConfig, parallel: ParallelConfig,
                          micro_batch: int) -> float:
    """Per-pass attention communication elements under ``parallel``."""
    b, s, h = micro_batch, model.seq_len, model.hidden_size
    n = parallel.model_parallel_size
    if parallel.attention == "tp":
        return tp_attention_comm_volume(b, s, h, n)
    if parallel.attention == "sp":
        return sp_attention_comm_volume(b, s, h, n, model.gqa_ratio)
    return 0.0  # DP attention has no per-layer communication.


def ffn_comm_volume(model: ModelConfig, parallel: ParallelConfig,
                    micro_batch: int) -> float:
    """Per-pass FFN communication elements under ``parallel``.

    For EP with the all-gather/reduce-scatter dispatch mode the volume is
    capped at TP's (§3.2: "ensuring that EP's communication overhead
    remains equal to or lower than TP's").
    """
    b, s, h = micro_batch, model.seq_len, model.hidden_size
    n = parallel.model_parallel_size
    if parallel.ffn == "tp":
        return tp_ffn_comm_volume(b, s, h, n)
    a2a = ep_ffn_comm_volume(b, s, h, n, model.top_k)
    ag_rs = tp_ffn_comm_volume(b, s, h, n)
    if parallel.ep_dispatch == "a2a":
        return a2a
    if parallel.ep_dispatch == "ag_rs":
        return ag_rs
    return min(a2a, ag_rs)


def scale_up_ratio(h_ffn: int, bandwidth: float, peak: float,
                   n: int = 8) -> float:
    """Eqs. 5–8 — ratio R of FFN compute time to EP communication time.

    ``R = 3/2 · h_ffn · (bandwidth/peak) · n/(n-1)``.  R is independent of
    the number of experts, top-k, hidden size, and batch (§7, "Scale up");
    R > 1 means expert compute can fully hide dispatch/combine
    communication.  ``bandwidth`` is bytes/s on the dispatch path, ``peak``
    is FLOP/s; both sides assume the same element size, which cancels.
    """
    if n <= 1:
        return float("inf")
    return 1.5 * h_ffn * (bandwidth / peak) * n / (n - 1)


@dataclass(frozen=True)
class ActivationBudget:
    """Activation-memory accounting for one MoE layer (Appendix A.2)."""

    full_elements: float
    remat_elements: float

    @property
    def savings_fraction(self) -> float:
        if self.full_elements == 0:
            return 0.0
        return 1.0 - self.remat_elements / self.full_elements


def activation_elements_full(b: int, s: int, h: int, n: int, m: int,
                             k: int, f: float) -> float:
    """Appendix A.2 — elements stored per layer without rematerialization.

    ``(2n + 2k + 3kf + 12 + 5/m) · b s h / n`` where ``f = h_ffn / h``.
    The term-by-term derivation follows Fig. 20's activation list.
    """
    return (2 * n + 2 * k + 3 * k * f + 12 + 5.0 / m) * b * s * h / n


def activation_elements_remat(b: int, s: int, h: int, n: int, m: int,
                              k: int, f: float) -> float:
    """Appendix A.2 — elements retained with selective rematerialization.

    ``(2kf + 4 + 2/m) · b s h / n``: MegaScale-MoE keeps only ``hidden``,
    ``qkv_a2a``, ``attn_a2a``, ``ln2_in`` (4 + 2/m shares) and the two
    GroupedGEMM outputs ``fc1_out``/``fc3_out`` (2kf shares); everything
    else is recomputed or re-communicated during backward.
    """
    return (2 * k * f + 4 + 2.0 / m) * b * s * h / n


def activation_budget(model: ModelConfig, parallel: ParallelConfig,
                      micro_batch: int) -> ActivationBudget:
    """Per-layer activation budget for a model/parallelism pair."""
    f = model.ffn_hidden_size / model.hidden_size
    args = (micro_batch, model.seq_len, model.hidden_size,
            parallel.model_parallel_size, model.gqa_ratio, model.top_k, f)
    return ActivationBudget(
        full_elements=activation_elements_full(*args),
        remat_elements=activation_elements_remat(*args),
    )


def param_memory_per_gpu(
    model: ModelConfig,
    parallel: ParallelConfig,
    bytes_per_param: float = 2.0,
    optimizer_bytes_per_param: float = 16.0,
) -> Dict[str, float]:
    """Static memory per GPU: parameters, gradients, optimizer states.

    SP attention *replicates* attention weights across the ``n`` model-
    parallel ranks while TP shards them (§3.1); experts are sharded by
    both EP and TP.  ZeRO stage ≥ 1 shards optimizer states across every
    rank that holds an identical copy: the DP group for sharded
    parameters, and the full ``n × d`` replica set for SP's replicated
    attention weights (the hierarchical sync of Appendix A.1 gives each
    rank ownership of a ``P/(n·d)`` shard).  Returns a breakdown in
    bytes.

    ``optimizer_bytes_per_param`` defaults to BF16 mixed precision:
    FP32 master copy (4) + Adam m and v (8) + FP32 gradient (4, counted
    under ``grads``).
    """
    n = parallel.model_parallel_size
    d = parallel.data_parallel_size
    layers_per_stage = model.n_layers / parallel.pipeline_size
    opt_bytes = optimizer_bytes_per_param - 4.0

    attn = model.attention_params_per_layer
    attn_per_gpu = attn if parallel.attention == "sp" else attn / n
    ffn_per_gpu = model.ffn_params_per_layer / n
    embed_per_gpu = model.embedding_params / 2.0 / max(n, 1)
    params = (layers_per_stage * (attn_per_gpu + ffn_per_gpu)
              + embed_per_gpu)

    dp_shard = d if parallel.zero_stage >= 1 else 1
    if parallel.zero_stage >= 1:
        # Replicated attention optimizer states shard across n×d; the
        # sharded components across d only.
        attn_replicas = n if parallel.attention == "sp" else 1
        optimizer = layers_per_stage * (
            attn_per_gpu / (attn_replicas * dp_shard)
            + ffn_per_gpu / dp_shard
        ) * opt_bytes + embed_per_gpu / dp_shard * opt_bytes
    else:
        optimizer = params * opt_bytes

    return {
        "params": params * bytes_per_param,
        "grads": params * 4.0,
        "optimizer": optimizer,
        "total": params * (bytes_per_param + 4.0) + optimizer,
    }
