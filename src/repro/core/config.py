"""Model, hardware, and parallelism configuration.

This module encodes the paper's evaluation setup:

* :class:`ModelConfig` — the symbols of Table 1 plus derived parameter
  and FLOP counts; :data:`MODEL_ZOO` holds the six configurations of
  Table 2 (and the Mixtral-8×2B variant used in Figure 16).
* :class:`GPUSpec` — the hardware specifications of Table 4 (H800, A100,
  H20) plus H100 for the Appendix A.1 discussion.
* :class:`ParallelConfig` — sizes and strategy choices for attention
  (TP or SP) and FFN (TP or EP), pipeline and data parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

__all__ = [
    "AttentionParallelism",
    "FFNParallelism",
    "GPUSpec",
    "ModelConfig",
    "ParallelConfig",
    "ServeConfig",
    "TrainConfig",
    "GPU_SPECS",
    "MODEL_ZOO",
]


@dataclass(frozen=True)
class ModelConfig:
    """An MoE transformer configuration (symbols from Table 1/2).

    Attributes:
        name: Configuration name.
        n_layers: Number of transformer layers.
        hidden_size: Model hidden dimension ``h``.
        n_heads: Number of query heads.
        gqa_ratio: ``m`` — ratio of query heads to key-value heads.
        ffn_hidden_size: Expert intermediate dimension ``h_ffn``.
        n_experts: Experts per MoE layer.
        top_k: Experts each token is routed to.
        vocab_size: Vocabulary size (65,536 in the paper's evaluation).
        seq_len: Training sequence length ``s`` (8,192 in the evaluation).
    """

    name: str
    n_layers: int
    hidden_size: int
    n_heads: int
    gqa_ratio: int
    ffn_hidden_size: int
    n_experts: int
    top_k: int
    vocab_size: int = 65536
    seq_len: int = 8192

    def __post_init__(self):
        if self.n_heads % self.gqa_ratio != 0:
            raise ValueError(
                f"n_heads={self.n_heads} not divisible by "
                f"gqa_ratio={self.gqa_ratio}"
            )
        if self.hidden_size % self.n_heads != 0:
            raise ValueError(
                f"hidden_size={self.hidden_size} not divisible by "
                f"n_heads={self.n_heads}"
            )
        if self.top_k > self.n_experts:
            raise ValueError(
                f"top_k={self.top_k} exceeds n_experts={self.n_experts}"
            )

    # -- shapes ----------------------------------------------------------

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.n_heads

    @property
    def n_kv_heads(self) -> int:
        return self.n_heads // self.gqa_ratio

    @property
    def qkv_output_size(self) -> int:
        """Output width of the fused QKV projection: ``h (1 + 2/m)``."""
        return self.hidden_size + 2 * self.n_kv_heads * self.head_dim

    # -- parameter counts --------------------------------------------------

    @property
    def attention_params_per_layer(self) -> int:
        """QKV + output projection + the two RMSNorm weights."""
        h = self.hidden_size
        return h * self.qkv_output_size + h * h + 2 * h

    @property
    def expert_params(self) -> int:
        """One expert: SwiGLU fc1, fc3 (gate) and fc2."""
        return 3 * self.hidden_size * self.ffn_hidden_size

    @property
    def ffn_params_per_layer(self) -> int:
        """All experts plus the router."""
        return (self.n_experts * self.expert_params
                + self.hidden_size * self.n_experts)

    @property
    def params_per_layer(self) -> int:
        return self.attention_params_per_layer + self.ffn_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Input embedding plus untied LM head."""
        return 2 * self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        return self.n_layers * self.params_per_layer + self.embedding_params

    @property
    def activated_params(self) -> int:
        """Parameters touched per token (top-k experts only)."""
        per_layer = (self.attention_params_per_layer
                     + self.hidden_size * self.n_experts
                     + self.top_k * self.expert_params)
        return self.n_layers * per_layer + self.embedding_params

    # -- FLOP counts -------------------------------------------------------

    def flops_per_token(self, seq_len: int = 0, causal: bool = True) -> float:
        """Forward-pass FLOPs per token (GEMMs + attention score/value).

        MFU in the paper counts "FlashAttention and GEMMs" (§6.1); we use
        the standard 2·params convention for GEMMs plus the attention
        quadratic term (halved under causal masking).
        """
        s = seq_len or self.seq_len
        h = self.hidden_size
        gemm_params = (h * self.qkv_output_size  # QKV projection
                       + h * h                   # output projection
                       + h * self.n_experts      # router
                       + self.top_k * self.expert_params)
        per_layer = 2.0 * gemm_params
        attend = s / 2 if causal else s
        per_layer += 2.0 * 2.0 * attend * h  # QK^T and AV
        lm_head = 2.0 * self.vocab_size * h
        return self.n_layers * per_layer + lm_head

    def train_flops_per_token(self, seq_len: int = 0) -> float:
        """Forward + backward FLOPs per token (backward = 2× forward)."""
        return 3.0 * self.flops_per_token(seq_len)

    def scaled(self, **overrides) -> "ModelConfig":
        """A copy with some fields replaced (for scaled-down runs)."""
        return replace(self, **overrides)


#: Table 2 of the paper, plus the Mixtral-8×2B variant from Figure 16.
MODEL_ZOO: Dict[str, ModelConfig] = {
    cfg.name: cfg
    for cfg in (
        ModelConfig("internal-352b", 60, 4096, 32, 4, 14336, 32, 3),
        ModelConfig("mixtral-8x7b", 32, 4096, 32, 4, 14336, 8, 2),
        ModelConfig("mixtral-8x22b", 56, 6144, 48, 6, 16384, 8, 2),
        ModelConfig("hunyuan-large", 64, 6400, 80, 10, 18304, 16, 1),
        ModelConfig("phi-3.5-moe", 32, 4096, 32, 4, 6400, 16, 2),
        ModelConfig("deepseekmoe", 28, 2048, 16, 1, 1408, 64, 6),
        ModelConfig("mixtral-8x2b", 32, 2048, 16, 4, 7168, 8, 2),
    )
}


@dataclass(frozen=True)
class GPUSpec:
    """One GPU model (Table 4) as seen by the performance model.

    Attributes:
        name: Marketing name.
        peak_flops: Dense BF16 peak in FLOP/s.
        memory_bytes: HBM capacity in bytes.
        memory_bandwidth: HBM bandwidth in bytes/s.
        nvlink_bandwidth: Per-GPU NVLink bandwidth in bytes/s.
        nic_bandwidth: Per-GPU inter-node (RDMA) bandwidth in bytes/s.
        sm_count: Streaming multiprocessors (for SM-allocation modelling).
    """

    name: str
    peak_flops: float
    memory_bytes: float
    memory_bandwidth: float
    nvlink_bandwidth: float
    nic_bandwidth: float
    sm_count: int = 132

    @property
    def flops_per_byte_nvlink(self) -> float:
        """Compute-to-NVLink ratio; grows across GPU generations (Fig. 1)."""
        return self.peak_flops / self.nvlink_bandwidth


GB = 1024.0 ** 3
TFLOPS = 1e12

#: Table 4 (H800/A100/H20) plus H100 (Appendix A.1's example) and V100
#: (the Fig. 1 generation baseline).
GPU_SPECS: Dict[str, GPUSpec] = {
    spec.name: spec
    for spec in (
        GPUSpec("v100", 125 * TFLOPS, 32 * GB, 0.9e12, 300e9, 12.5e9, 80),
        GPUSpec("h800", 989 * TFLOPS, 80 * GB, 3.4e12, 400e9, 50e9, 132),
        GPUSpec("a100", 312 * TFLOPS, 80 * GB, 2.0e12, 600e9, 25e9, 108),
        GPUSpec("h20", 148 * TFLOPS, 96 * GB, 4.0e12, 900e9, 50e9, 78),
        GPUSpec("h100", 989 * TFLOPS, 80 * GB, 3.35e12, 450e9, 50e9, 132),
    )
}


class AttentionParallelism:
    """Intra-node strategy for the attention module (§3.1)."""

    TP = "tp"   # Megatron tensor parallelism: shard heads/hidden
    SP = "sp"   # Ulysses sequence parallelism: shard sequence, A2A on heads
    DP = "dp"   # plain data parallelism (rejected: n× activation memory)


class FFNParallelism:
    """Intra-node strategy for the expert/FFN module (§3.2)."""

    TP = "tp"   # shard every expert's intermediate dimension
    EP = "ep"   # whole experts per rank, token dispatch


@dataclass(frozen=True)
class ParallelConfig:
    """A full parallelism assignment for one training job.

    ``model_parallel_size`` is ``n`` from Table 1 — the intra-node degree
    shared by the attention strategy (TP or SP) and the FFN strategy (TP
    or EP).  ``pipeline_size`` × ``data_parallel_size`` ×
    ``model_parallel_size`` must equal the GPU count.
    """

    model_parallel_size: int = 8
    attention: str = AttentionParallelism.SP
    ffn: str = FFNParallelism.EP
    pipeline_size: int = 1
    data_parallel_size: int = 1
    virtual_pipeline_size: int = 1
    #: EP dispatch mode: "a2a", "ag_rs", or "adaptive" (§3.2, Fig. 7).
    ep_dispatch: str = "adaptive"
    zero_stage: int = 1

    def __post_init__(self):
        if self.attention not in ("tp", "sp", "dp"):
            raise ValueError(f"unknown attention strategy {self.attention!r}")
        if self.ffn not in ("tp", "ep"):
            raise ValueError(f"unknown ffn strategy {self.ffn!r}")
        if self.ep_dispatch not in ("a2a", "ag_rs", "adaptive"):
            raise ValueError(f"unknown ep_dispatch {self.ep_dispatch!r}")
        for field_name in ("model_parallel_size", "pipeline_size",
                           "data_parallel_size", "virtual_pipeline_size"):
            v = getattr(self, field_name)
            if v < 1:
                raise ValueError(f"{field_name} must be >= 1, got {v}")

    @property
    def total_gpus(self) -> int:
        return (self.model_parallel_size * self.pipeline_size
                * self.data_parallel_size)

    @property
    def strategy_name(self) -> str:
        """Paper notation ``X+Y`` (attention+FFN), e.g. ``SP+EP``."""
        return f"{self.attention.upper()}+{self.ffn.upper()}"

    @staticmethod
    def megascale(model_parallel_size: int = 8, pipeline_size: int = 1,
                  data_parallel_size: int = 1,
                  **kwargs) -> "ParallelConfig":
        """MegaScale-MoE's choice: SP attention + EP FFN (§3)."""
        return ParallelConfig(
            model_parallel_size=model_parallel_size,
            attention=AttentionParallelism.SP,
            ffn=FFNParallelism.EP,
            pipeline_size=pipeline_size,
            data_parallel_size=data_parallel_size,
            **kwargs,
        )

    @staticmethod
    def megatron(model_parallel_size: int = 8, pipeline_size: int = 1,
                 data_parallel_size: int = 1,
                 **kwargs) -> "ParallelConfig":
        """The Megatron-LM baseline: TP for both modules (§6.1)."""
        return ParallelConfig(
            model_parallel_size=model_parallel_size,
            attention=AttentionParallelism.TP,
            ffn=FFNParallelism.TP,
            pipeline_size=pipeline_size,
            data_parallel_size=data_parallel_size,
            **kwargs,
        )


@dataclass(frozen=True)
class TrainConfig:
    """Knobs of one training run."""

    global_batch_size: int = 720
    micro_batch_size: int = 1
    seq_len: int = 8192
    learning_rate: float = 3e-4
    weight_decay: float = 0.1
    adam_beta1: float = 0.9
    adam_beta2: float = 0.95
    adam_eps: float = 1e-8
    grad_clip: float = 1.0
    #: Mixed-precision regime: "bf16" or "fp8" (§5).
    precision: str = "bf16"
    #: Apply DP gradient-communication compression (§5, Fig. 10/17).
    dp_comm_compression: bool = False
    #: Selective activation rematerialization (§4.1, Fig. 8/16).
    selective_remat: bool = True
    #: Router auxiliary (load-balance) loss coefficient (§3.2).
    aux_loss_coeff: float = 0.01
    #: Token-drop capacity factor; 0 disables dropping (§3.2).
    capacity_factor: float = 0.0
    #: Rank-execution engine: "sequential" (classic per-rank loops),
    #: "threaded" (one thread per rank with rendezvous collectives —
    #: bitwise-identical results), "vectorized" (all ranks stacked on a
    #: leading axis, one batched kernel per op — bitwise-identical,
    #: requires the "dag" backend), or None to defer to the
    #: ``REPRO_EXECUTION`` environment variable.
    execution: Optional[str] = None
    #: Numeric backend: "engine" (classic per-engine call chains),
    #: "dag" (the schedule-ordered DAG executor — bitwise-identical
    #: results), or None to defer to the ``REPRO_BACKEND`` environment
    #: variable.
    backend: Optional[str] = None
    #: Attention-output dropout probability (0 disables).  Randomness
    #: comes from per-rank child streams spawned off ``dropout_seed``
    #: (:class:`~repro.runtime.rng.RankRngPool`), so sequential and
    #: threaded execution stay bitwise-identical with dropout on.
    dropout: float = 0.0
    #: Seed for the per-rank dropout streams.
    dropout_seed: int = 1234
    #: §4.2 tile-granular fused-kernel execution: token-chunk width
    #: (sequence positions per rank) for A2A-adjacent fused groups;
    #: AG/RS groups always tile per source rank.  Must divide the
    #: local sequence shard ``seq_len / n`` (validated when the layer
    #: program is planned) and requires the "dag" backend.  None (or
    #: an unset ``REPRO_TILE_TOKENS``) keeps fused groups whole.
    tile_tokens: Optional[int] = None

    def __post_init__(self):
        if self.precision not in ("bf16", "fp8", "fp32"):
            raise ValueError(f"unknown precision {self.precision!r}")
        if self.global_batch_size < 1 or self.micro_batch_size < 1:
            raise ValueError("batch sizes must be >= 1")
        if self.execution not in (None, "sequential", "threaded",
                                  "vectorized"):
            raise ValueError(
                f"unknown execution mode {self.execution!r}; expected "
                "None, 'sequential', 'threaded', or 'vectorized'"
            )
        if self.backend not in (None, "engine", "dag"):
            raise ValueError(
                f"unknown backend {self.backend!r}; expected None, "
                "'engine', or 'dag'"
            )
        if self.execution == "vectorized" and self.backend == "engine":
            raise ValueError(
                "execution='vectorized' runs through the DAG executor; "
                "it is incompatible with backend='engine'"
            )
        if not 0.0 <= self.dropout < 1.0:
            raise ValueError(
                f"dropout must be in [0, 1), got {self.dropout}"
            )
        if self.tile_tokens is not None and self.tile_tokens < 1:
            raise ValueError(
                f"tile_tokens must be >= 1, got {self.tile_tokens}"
            )
        if self.tile_tokens is not None and self.backend == "engine":
            raise ValueError(
                "tile_tokens requires the 'dag' backend; the engine "
                "path has no scheduled operator graph to tile"
            )


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of the continuous-batching inference engine.

    The serving path (:mod:`repro.serve`) disaggregates the model
    DisagMoE-style: ``attention_ranks`` hold requests (and their paged
    KV caches) while ``expert_ranks`` hold contiguous expert slices;
    the two groups exchange activation rows through the uneven-a2a
    collectives every MoE layer.  Iteration costs are a simple linear
    model used to advance an injected virtual clock, which is what
    makes the latency-SLO benchmarks deterministic in CI.
    """

    #: Ranks holding requests, KV caches, and attention compute.
    attention_ranks: int = 2
    #: Ranks holding contiguous expert slices (DisagMoE FFN side).
    expert_ranks: int = 2
    #: Tokens per paged KV block.
    kv_block_size: int = 4
    #: Total KV blocks in the (per-attention-rank) pool.
    kv_blocks: int = 128
    #: Maximum concurrently active (admitted) requests.
    max_batch_size: int = 4
    #: "sequential" runs attention work on the scheduler thread;
    #: "threaded" fans per-rank attention work out to a worker pool
    #: (bitwise-identical results — the batch axis is scheduling-only).
    execution: str = "sequential"
    #: Virtual-clock cost of one scheduler iteration (fixed part).
    iteration_cost: float = 1.0
    #: Additional virtual-clock cost per prefill token.
    prefill_token_cost: float = 0.01
    #: Additional virtual-clock cost per decode token.
    decode_token_cost: float = 0.1
    #: Generated tokens per request unless the request overrides it.
    max_new_tokens: int = 4

    def __post_init__(self):
        if self.attention_ranks < 1:
            raise ValueError(
                f"attention_ranks must be >= 1, got "
                f"{self.attention_ranks}"
            )
        if self.expert_ranks < 1:
            raise ValueError(
                f"expert_ranks must be >= 1, got {self.expert_ranks}"
            )
        if self.kv_block_size < 1:
            raise ValueError(
                f"kv_block_size must be >= 1, got {self.kv_block_size}"
            )
        if self.kv_blocks < 1:
            raise ValueError(
                f"kv_blocks must be >= 1, got {self.kv_blocks}"
            )
        if self.max_batch_size < 1:
            raise ValueError(
                f"max_batch_size must be >= 1, got "
                f"{self.max_batch_size}"
            )
        if self.execution not in ("sequential", "threaded"):
            raise ValueError(
                f"unknown serve execution {self.execution!r}; expected "
                "'sequential' or 'threaded'"
            )
        if self.max_new_tokens < 1:
            raise ValueError(
                f"max_new_tokens must be >= 1, got "
                f"{self.max_new_tokens}"
            )
        for name in ("iteration_cost", "prefill_token_cost",
                     "decode_token_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def world_size(self) -> int:
        """Total simulated ranks: attention group + expert group."""
        return self.attention_ranks + self.expert_ranks
