"""Numeric execution of a scheduled operator DAG.

:class:`DagExecutor` takes one layer's :class:`~repro.core.executor_bindings.LayerProgram`
(the IR, its overlap schedule, and the flattened op order) plus the
:class:`~repro.core.executor_bindings.OpBinding` list that maps graph
ops to engine handlers, and runs the layer **in schedule order** — the
same order the simulator scores.  Two backends:

* **sequential** — one thread walks the order; each binding's ``seq``
  handler sees all ranks and issues the classic ``dist_*`` collectives;
* **threaded** — one :class:`~repro.runtime.spmd.SpmdExecutor` thread
  per rank walks the *same* order calling the ``rank`` handlers, whose
  collectives rendezvous across threads;
* **vectorized** — one thread walks the order with all ranks' shards
  stacked on a leading rank axis; bindings with a ``vec`` handler run
  one batched numpy kernel for every rank at once
  (:mod:`repro.runtime.vectorized`), the rest fall back to their
  ``seq`` handlers against on-demand per-rank views.

Because every handler performs the identical Tensor arithmetic as the
legacy engine path (the vectorized kernels per rank-*slice*), all
backends are bitwise-identical to it — the ``dag_bitwise`` invariant
in :mod:`repro.verify` enforces this.

Construction validates the whole contract up front: the bindings'
``covers`` partition the graph, the flattened order is a permutation of
the graph in valid topological order, and every binding's reads resolve
before it runs.  :func:`schedule_conformance_problems` re-checks an
*executed* sequence against the program after the fact — the
``dag_schedule_conformance`` invariant.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "BACKENDS",
    "DagExecutor",
    "DagRunResult",
    "resolve_backend",
    "schedule_conformance_problems",
    "tile_conformance_problems",
    "tiled_execution_order",
]

#: Numeric backends the trainer can run a layer through: the legacy
#: per-engine call chain, or the schedule-ordered DAG executor.
BACKENDS = ("engine", "dag")


def resolve_backend(backend: Optional[str] = None) -> str:
    """Pick the numeric backend: explicit config > env > default."""
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND") or "engine"
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


@dataclass
class DagRunResult:
    """What one DAG-executed layer produced.

    ``env`` maps each binding anchor (plus the layer inputs) to its
    per-rank value list; ``executed`` is the op-level order actually
    followed — by construction the program's flattened schedule order,
    recorded so ``repro.verify`` can check conformance independently.
    """

    executed: List[str]
    env: Dict[str, List[Any]]
    covers: Dict[str, Tuple[str, ...]]
    graph: Any = None
    remat_report: Optional[dict] = field(default=None)
    #: Tile-level execution stream (§4.2) when the program carries a
    #: tile decomposition: the op order with each tiled op expanded to
    #: its sub-tiles in the ascending (source-rank-sorted / token-chunk)
    #: order the chunked collectives actually move them.
    executed_tiles: Optional[List[str]] = field(default=None)

    def per_rank(self, name: str) -> List[Any]:
        """All ranks' values for one anchor (or input) name."""
        return self.env[name]

    def apply_remat(self, plan=None,
                    keep: Sequence[str] = ("residual2",)) -> dict:
        """Drop activations a :class:`~repro.core.remat.RematPlan`
        does not retain — the numeric half of the shared remat
        transform (the schedule half is
        :func:`~repro.core.remat.insert_remat_ops`).

        An anchor is dropped when its covered ops' ``produces``
        activations all fall in the plan's Fig. 20 decision set and
        none is in ``plan.retained``; activations outside that set,
        layer inputs, and ``keep`` anchors (the layer output) are
        conservatively kept.  Returns a report with the kept/dropped
        anchor lists.
        """
        from ..core.remat import activation_table, default_remat_plan
        if plan is None:
            plan = default_remat_plan()
        universe = {spec.name for spec in activation_table()}
        kept: List[str] = []
        dropped: List[str] = []
        for anchor in list(self.env):
            if anchor not in self.covers or anchor in keep:
                kept.append(anchor)
                continue
            produced = set()
            for op_name in self.covers[anchor]:
                produced.update(self.graph[op_name].produces)
            decided = produced & universe
            if decided == produced and produced \
                    and not (produced & plan.retained):
                del self.env[anchor]
                dropped.append(anchor)
            else:
                kept.append(anchor)
        self.remat_report = {
            "retained_activations": sorted(plan.retained),
            "kept": kept,
            "dropped": dropped,
        }
        return self.remat_report


class DagExecutor:
    """Runs one layer's bindings in the program's schedule order."""

    def __init__(self, program, bindings, group,
                 inputs: Sequence[str] = ("hidden",)):
        self.program = program
        self.group = group
        self.inputs = tuple(inputs)
        graph_names = [op.name for op in program.graph]
        self._validate_order(program.graph, program.order, graph_names)
        if getattr(program, "tile_graph", None) is not None:
            self._validate_order(
                program.tile_graph, program.tile_order,
                [op.name for op in program.tile_graph])
        self._bindings_in_order = self._validate_bindings(
            program, bindings, graph_names)

    # -- construction-time validation ----------------------------------

    @staticmethod
    def _validate_order(graph, order, graph_names: List[str]) -> None:
        """The flattened order must be a topologically valid permutation
        of the graph — this is where a bad scheduler change surfaces."""
        if sorted(order) != sorted(graph_names):
            missing = set(graph_names) - set(order)
            extra = set(order) - set(graph_names)
            raise ValueError(
                f"program order is not a permutation of the graph "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        seen = set()
        for name in order:
            for dep in graph[name].deps:
                if dep not in seen:
                    raise ValueError(
                        f"program order runs {name!r} before its "
                        f"dependency {dep!r}"
                    )
            seen.add(name)

    def _validate_bindings(self, program, bindings,
                           graph_names: List[str]):
        owner: Dict[str, Any] = {}
        for b in bindings:
            if b.op not in b.covers:
                raise ValueError(
                    f"binding {b.op!r} does not cover its own op"
                )
            for name in b.covers:
                if name not in program.graph:
                    raise ValueError(
                        f"binding {b.op!r} covers unknown op {name!r}"
                    )
                if name in owner:
                    raise ValueError(
                        f"op {name!r} covered by both "
                        f"{owner[name].op!r} and {b.op!r}"
                    )
                owner[name] = b
        uncovered = [n for n in graph_names if n not in owner]
        if uncovered:
            raise ValueError(f"ops not covered by any binding: "
                             f"{uncovered}")

        # A binding triggers at the first covered member the order
        # reaches; its reads must already be available there.
        available = set(self.inputs)
        triggered = set()
        in_order = []
        for name in self.program.order:
            b = owner[name]
            if b.op in triggered:
                continue
            for read in b.reads:
                if read not in available:
                    raise ValueError(
                        f"binding {b.op!r} reads {read!r} before it is "
                        f"produced in the program order"
                    )
            triggered.add(b.op)
            available.add(b.op)
            in_order.append(b)
        return in_order

    # -- execution -----------------------------------------------------

    def _span(self, tracer, binding):
        if tracer is None:
            return contextlib.nullcontext()
        op = self.program.graph[binding.op]
        return tracer.span(
            f"dag.op:{binding.op}", cat="dag", stream="compute",
            phase=op.phase, kind=op.kind,
            ops=",".join(binding.covers),
        )

    def run(self, inputs: Dict[str, List[Any]],
            executor: Optional[object] = None,
            tracer: Optional[object] = None,
            vectorized: bool = False,
            retain: Optional[Sequence[str]] = None) -> DagRunResult:
        """Execute the layer; returns every anchor's per-rank values.

        Args:
            inputs: Per-rank value lists for the declared layer inputs
                (``{"hidden": hidden_shards}``).
            executor: Optional :class:`~repro.runtime.spmd.SpmdExecutor`
                — when given, all bindings run per-rank on its threads.
            tracer: Optional :class:`~repro.obs.Tracer`; each binding
                runs inside a ``dag.op:<anchor>`` span whose measured
                duration can calibrate the perf model
                (:func:`~repro.perf.estimator.calibrate_from_spans`).
            vectorized: Run bindings through their rank-stacked ``vec``
                handlers (one batched kernel per op); incompatible with
                ``executor``.  A world carrying a fault plan silently
                runs sequentially instead — fault injection targets
                per-rank transfers, which the permutation collectives
                do not model.
            retain: Forward-only (decode) mode: release each anchor's
                activations as soon as its last reader has run, keeping
                only these anchors (plus the layer inputs) in the
                returned env.  ``None`` keeps everything — training
                needs the full env for backward.  Sequential-only.
        """
        missing = [name for name in self.inputs if name not in inputs]
        if missing:
            raise ValueError(f"missing layer inputs: {missing}")
        if vectorized and executor is not None:
            raise ValueError(
                "vectorized execution is single-threaded; it cannot "
                "take an SpmdExecutor"
            )
        if retain is not None and (vectorized or executor is not None):
            raise ValueError(
                "retain (forward-only streaming activation release) "
                "is only supported by the sequential backend"
            )
        if vectorized:
            world = getattr(self.group, "world", None)
            if getattr(world, "fault_plan", None) is not None:
                env = self._run_sequential(inputs, tracer)
            else:
                env = self._run_vectorized(inputs, tracer)
        elif executor is not None:
            env = self._run_threaded(inputs, executor, tracer)
        else:
            env = self._run_sequential(inputs, tracer, retain)
        covers = {b.op: b.covers for b in self._bindings_in_order}
        tiles = (tiled_execution_order(self.program)
                 if getattr(self.program, "tile_graph", None) is not None
                 else None)
        return DagRunResult(executed=list(self.program.order), env=env,
                            covers=covers, graph=self.program.graph,
                            executed_tiles=tiles)

    def _run_sequential(self, inputs, tracer,
                        retain: Optional[Sequence[str]] = None
                        ) -> Dict[str, List[Any]]:
        from ..core.executor_bindings import _SeqCtx
        env: Dict[str, List[Any]] = {name: list(vals)
                                     for name, vals in inputs.items()}
        ctx = _SeqCtx(self.group, env)
        if retain is None:
            for b in self._bindings_in_order:
                with self._span(tracer, b):
                    env[b.op] = b.seq(ctx)
            return env
        # Forward-only streaming release: drop each anchor once its
        # last reading binding has run (inference holds no tape worth
        # keeping alive), unless the caller retains it.
        keep = set(retain) | set(self.inputs)
        last_reader: Dict[str, int] = {}
        for i, b in enumerate(self._bindings_in_order):
            for read in b.reads:
                last_reader[read] = i
        for i, b in enumerate(self._bindings_in_order):
            with self._span(tracer, b):
                env[b.op] = b.seq(ctx)
            for name, last in last_reader.items():
                if last == i and name not in keep and name in env:
                    del env[name]
            if b.op not in last_reader and b.op not in keep:
                del env[b.op]
        return env

    def _run_vectorized(self, inputs, tracer) -> Dict[str, List[Any]]:
        from ..core.executor_bindings import _SeqCtx
        from .vectorized import VecCtx, VecEnv
        env = VecEnv(self.group.size)
        for name, vals in inputs.items():
            env[name] = list(vals)
        ctx = VecCtx(self.group, env)
        seq_ctx = _SeqCtx(self.group, env)
        for b in self._bindings_in_order:
            with self._span(tracer, b):
                if b.vec is not None:
                    env.set_stacked(b.op, b.vec(ctx))
                else:
                    env[b.op] = b.seq(seq_ctx)
        return env

    def _run_threaded(self, inputs, executor,
                      tracer) -> Dict[str, List[Any]]:
        from ..core.executor_bindings import _RankCtx
        bindings = self._bindings_in_order

        def rank_fn(comm):
            renv = {name: vals[comm.index]
                    for name, vals in inputs.items()}
            ctx = _RankCtx(comm, renv)
            # Spans on rank 0 only: one measurement per op, and the
            # tracer's span stack stays single-threaded per rank.
            rank_tracer = tracer if comm.index == 0 else None
            for b in bindings:
                with self._span(rank_tracer, b):
                    renv[b.op] = b.rank(ctx)
            return renv

        renvs = executor.run(self.group, rank_fn)
        env: Dict[str, List[Any]] = {name: list(vals)
                                     for name, vals in inputs.items()}
        for b in bindings:
            env[b.op] = [renv[b.op] for renv in renvs]
        return env


def schedule_conformance_problems(program,
                                  executed: Sequence[str]) -> List[str]:
    """Check an executed op sequence against its layer program.

    Three conditions (the ``dag_schedule_conformance`` invariant):

    1. the sequence is a permutation of the graph's ops;
    2. it is a valid topological order of the op-level dependencies;
    3. collapsing ops to their scheduled units (first occurrence) gives
       a valid topological order of the scheduler's task dependencies —
       i.e. the numeric path really followed the overlap schedule.

    Returns human-readable problem strings; empty means conformant.
    """
    problems: List[str] = []
    graph = program.graph
    graph_names = [op.name for op in graph]
    if sorted(executed) != sorted(graph_names):
        missing = set(graph_names) - set(executed)
        extra = set(executed) - set(graph_names)
        problems.append(
            f"executed ops are not a permutation of the graph "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )
        return problems

    seen = set()
    for name in executed:
        for dep in graph[name].deps:
            if dep not in seen:
                problems.append(
                    f"op {name!r} executed before its dependency "
                    f"{dep!r}"
                )
        seen.add(name)

    unit_of = program.task_of()
    unit_sequence: List[str] = []
    seen_units = set()
    for name in executed:
        unit = unit_of[name]
        if unit not in seen_units:
            seen_units.add(unit)
            unit_sequence.append(unit)
    tasks = {t.name: t for t in program.tasks}
    done = set()
    for unit in unit_sequence:
        for dep in tasks[unit].deps:
            if dep not in done:
                problems.append(
                    f"unit {unit!r} started before its scheduled "
                    f"dependency {dep!r}"
                )
        done.add(unit)
    return problems


def tiled_execution_order(program) -> List[str]:
    """The tile-level stream a tiled program's chunked execution moves.

    Expands the program's op order in place: each tiled op becomes its
    sub-tiles in ascending index order (the order the chunked
    collectives copy and ledger-record them), untiled ops pass through.
    Because tile ``i`` of an op depends only on tile ``i`` or the last
    tile of earlier ops (plus its own tile ``i-1``), this expansion of
    any valid op-level topological order is a valid topological order
    of the tile graph.
    """
    from ..core.operators import tiled_members
    members = tiled_members(program.tile_graph)
    out: List[str] = []
    for name in program.order:
        out.extend(members.get(name, [name]))
    return out


def tile_conformance_problems(program,
                              executed_tiles: Optional[Sequence[str]]
                              ) -> List[str]:
    """Check an executed tile stream against a tiled layer program.

    The ``tile_conformance`` invariant: the stream must be a
    permutation of the tile graph's sub-ops and a valid topological
    order of its dependencies — which encode the §4.2 pipeline
    (comm tile ``i`` before its consumer compute tile ``i``, ascending
    source-rank-sorted tile order within each op via the self-chain
    deps).  Returns human-readable problems; empty means conformant.
    """
    problems: List[str] = []
    tile_graph = getattr(program, "tile_graph", None)
    if tile_graph is None:
        if executed_tiles:
            problems.append(
                "executed tile stream present for an untiled program"
            )
        return problems
    if executed_tiles is None:
        return ["tiled program executed without a tile stream"]
    tile_names = [op.name for op in tile_graph]
    if sorted(executed_tiles) != sorted(tile_names):
        missing = set(tile_names) - set(executed_tiles)
        extra = set(executed_tiles) - set(tile_names)
        problems.append(
            f"executed tiles are not a permutation of the tile graph "
            f"(missing={sorted(missing)}, extra={sorted(extra)})"
        )
        return problems
    seen = set()
    for name in executed_tiles:
        for dep in tile_graph[name].deps:
            if dep not in seen:
                problems.append(
                    f"tile {name!r} executed before its dependency "
                    f"{dep!r}"
                )
        seen.add(name)
    return problems
