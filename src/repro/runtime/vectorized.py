"""All-ranks-at-once vectorized kernels for the DAG backend.

The thread-per-rank engine (:mod:`repro.runtime.spmd`) buys overlap but
pays GIL + barrier-rendezvous costs on every collective — exactly the
per-rank coordination overhead that hurts MoE step time at small
per-rank work sizes.  The third execution mode,
``TrainConfig(execution="vectorized")`` / ``REPRO_EXECUTION=vectorized``,
removes the per-rank loop altogether: every rank's shard is stacked on
a leading *rank axis* and each :class:`~repro.core.operators.OpGraph`
op runs as **one** batched numpy kernel for all ranks at once.

Numerics contract (enforced by the ``dag_bitwise`` invariant and
``tests/test_vectorized_engine.py``):

* Batched ``np.matmul`` over leading axes is bitwise-identical per
  slice to the per-rank 2-D/3-D GEMMs (``np.einsum`` is *not*, which is
  why every kernel here uses ``@``).
* Elementwise and row-local ops (RMSNorm, RoPE, softmax, residual adds,
  dropout masks) are trivially slice-identical under a leading axis.
* The balanced all-to-all collective is a pure axis permutation —
  ``reshape``/``transpose``/``reshape`` — of the stacked array: no
  arithmetic at all, so forward values are exact (see
  :func:`vec_all_to_all`).
* Shared-weight gradients accumulate in **increasing-rank order**, the
  same left-associated order the legacy engine's tape produces (one
  contribution per rank, rank 0 first), via :func:`_rank_sum`.
* Every collective still books the identical
  :class:`~repro.comm.group.CommLedger` records — one forward record
  per whole-world call and one one-hot dual record per rank on the
  backward pass — so the Eq. 1-4 comm auditor stays exact.

* The all-gather and reduce-scatter collectives reduce to rank-axis
  data movement: AG is a ``moveaxis``/``reshape`` merge of the rank
  axis (plus a broadcast view for the replicated outputs), RS a single
  ``np.sum`` over the rank axis — the very reduction the per-rank path
  computes — followed by the inverse split.

Scope: the SP and TP attention chains, the per-token norms/residuals,
and the linear projections are vectorized; bindings without a ``vec``
handler (the ragged EP token dispatch and the TP/AG-RS FFN, whose
per-expert row counts differ across ranks) fall back to their
whole-world ``seq`` handlers inside the same run —
:class:`VecEnv` materializes per-rank views of stacked values on demand
so the two handler families compose on one tape.  A world carrying a
fault plan falls back to the sequential backend entirely (fault
injection addresses per-rank transfers, which a permutation does not
model).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

import numpy as np

from ..tensor import Tensor
from ..tensor import ops as tops
from ..tensor.ops import _rope_cache
from ..tensor.tensor import _unbroadcast

__all__ = [
    "VecCtx",
    "VecEnv",
    "stack_shards",
    "vec_all_gather",
    "vec_all_to_all",
    "vec_dropout",
    "vec_linear",
    "vec_reduce_scatter",
    "vec_rmsnorm",
    "vec_rope",
    "vec_scaled_dot_product_attention",
    "vec_shard_matmul",
]


# ---------------------------------------------------------------------------
# Environment: stacked values coexisting with per-rank fallback values
# ---------------------------------------------------------------------------

def stack_shards(shards: Sequence[Tensor]) -> Tensor:
    """Stack per-rank shard Tensors on a new leading rank axis."""
    return tops.stack(list(shards), axis=0)


class _Stacked:
    """A stacked anchor value: a Tensor (or tuple of Tensors) whose
    leading axis is the rank axis, plus lazily-built per-rank views."""

    __slots__ = ("value", "shards")

    def __init__(self, value: Any, shards: Optional[List[Any]] = None):
        self.value = value
        self.shards = shards


class VecEnv(dict):
    """Anchor environment for a vectorized DAG run.

    Vectorized handlers store stacked values via :meth:`set_stacked`
    and read them via :meth:`stacked`; sequential fallback handlers
    (and :meth:`~repro.runtime.dag_executor.DagRunResult.per_rank`)
    read ``env[name]``, which materializes per-rank views of a stacked
    value on first access — each view is ``stacked[r]``, a real tape
    op, so gradients flow back into the stacked graph.  Stacking a
    per-rank list for a vectorized consumer likewise happens at most
    once per anchor.
    """

    def __init__(self, size: int):
        super().__init__()
        self.size = int(size)

    def set_stacked(self, name: str, value: Any) -> None:
        """Store a vec handler's rank-stacked result for ``name``."""
        dict.__setitem__(self, name, _Stacked(value))

    def stacked(self, name: str) -> Any:
        """The stacked form of an anchor (tuple-valued anchors give a
        tuple of stacked Tensors)."""
        v = dict.__getitem__(self, name)
        if isinstance(v, _Stacked):
            return v.value
        stacked = stack_shards(v)
        dict.__setitem__(self, name, _Stacked(stacked, shards=list(v)))
        return stacked

    def __getitem__(self, name: str) -> Any:
        v = dict.__getitem__(self, name)
        if not isinstance(v, _Stacked):
            return v
        if v.shards is None:
            if isinstance(v.value, tuple):
                parts = [[t[r] for t in v.value]
                         for r in range(self.size)]
                v.shards = [tuple(p) for p in parts]
            else:
                v.shards = [v.value[r] for r in range(self.size)]
        return v.shards


class VecCtx:
    """Whole-world stacked view handed to ``vec`` binding handlers."""

    __slots__ = ("group", "env")

    def __init__(self, group: Any, env: VecEnv):
        self.group = group
        self.env = env

    @property
    def size(self) -> int:
        return int(self.group.size)

    def stacked(self, name: str) -> Any:
        """The rank-stacked value of anchor ``name`` (stacking a
        per-rank list from a fallback handler at most once)."""
        return self.env.stacked(name)


# ---------------------------------------------------------------------------
# Gradient accumulation helper
# ---------------------------------------------------------------------------

def _rank_sum(parts: np.ndarray, shape: tuple, dtype) -> np.ndarray:
    """Left-associated sum of per-rank weight-gradient partials.

    The legacy engine builds one tape node per rank per shared weight;
    the tape casts each rank's gradient to the weight dtype, reduces it
    with :func:`~repro.tensor.tensor._unbroadcast`, and accumulates in
    increasing-rank order.  Replaying exactly that sequence keeps the
    single vectorized node bitwise-identical to the per-rank chain.
    """
    total = _unbroadcast(np.asarray(parts[0], dtype=dtype), shape)
    for r in range(1, parts.shape[0]):
        total = total + _unbroadcast(np.asarray(parts[r], dtype=dtype),
                                     shape)
    return total


# ---------------------------------------------------------------------------
# Batched kernels
# ---------------------------------------------------------------------------

def vec_linear(x: Tensor, linear: Any) -> Tensor:
    """``[n, ..., in] @ [in, out]`` for all ranks in one batched GEMM.

    Matches :class:`repro.model.layers.Linear` under the active
    precision policy: activations are fake-quantized per rank slice
    (per-tensor activation scales are *per-rank* scales in the engine,
    so the policy must see one rank at a time), the weight once.
    """
    from ..precision.policy import current_policy
    policy = current_policy()
    n = x.shape[0]
    weight = linear.weight
    bias = linear.bias
    if policy is not None:
        xa = np.stack([policy.activation_fn(x.data[r])
                       for r in range(n)])
        wq = policy.weight_fn(weight.data)
    else:
        xa, wq = x.data, weight.data
    out = xa @ wq
    if bias is not None:
        out = out + bias.data
    inputs = [x, weight] if bias is None else [x, weight, bias]

    def backward(g):
        gx = g @ wq.swapaxes(-1, -2)
        gw = _rank_sum(xa.swapaxes(-1, -2) @ g, weight.data.shape,
                       weight.data.dtype)
        if bias is None:
            return gx, gw
        gb = _rank_sum(g, bias.data.shape, bias.data.dtype)
        return gx, gw, gb

    return Tensor.from_op(out, inputs, backward, "vec_linear")


def vec_rmsnorm(x: Tensor, weight: Tensor, eps: float = 1e-6) -> Tensor:
    """RMSNorm over the last axis of a rank-stacked activation."""
    xd, w = x.data, weight.data
    ms = (xd * xd).mean(axis=-1, keepdims=True)
    inv_rms = 1.0 / np.sqrt(ms + eps)
    normed = xd * inv_rms
    out = normed * w

    def backward(g):
        h = xd.shape[-1]
        partials = np.stack([
            (g[r] * normed[r]).reshape(-1, h).sum(axis=0)
            for r in range(xd.shape[0])
        ])
        gw = _rank_sum(partials, w.shape, w.dtype)
        gx_normed = g * w
        dot = (gx_normed * xd).sum(axis=-1, keepdims=True)
        gx = inv_rms * gx_normed - xd * (inv_rms ** 3) * dot / h
        return gx, gw

    return Tensor.from_op(out, [x, weight], backward, "vec_rmsnorm")


def vec_rope(t: Tensor, base: float,
             positions: Sequence[np.ndarray]) -> Tensor:
    """Rotary embedding on ``[n, b, s_local, heads, head_dim]`` with one
    absolute-position table per rank (SP shards see global positions)."""
    n, _, s, _, hd = t.shape
    if hd % 2 != 0:
        raise ValueError(f"head_dim must be even for RoPE, got {hd}")
    half = hd // 2
    tables = [_rope_cache(s, hd, base, p) for p in positions]
    cos = np.stack([c for c, _ in tables])[:, None, :, None, :]
    sin = np.stack([sn for _, sn in tables])[:, None, :, None, :]
    x1 = t.data[..., :half]
    x2 = t.data[..., half:]
    out = np.concatenate([x1 * cos - x2 * sin, x1 * sin + x2 * cos],
                         axis=-1)

    def backward(g):
        g1 = g[..., :half]
        g2 = g[..., half:]
        gx1 = g1 * cos + g2 * sin
        gx2 = -g1 * sin + g2 * cos
        return (np.concatenate([gx1, gx2], axis=-1),)

    return Tensor.from_op(out, [t], backward, "vec_rope")


def _vec_repeat_heads(t: Tensor, m: int) -> Tensor:
    """GQA head repetition on ``[n, b, heads, s, d]``."""
    n, b, h, s, d = t.shape
    out = np.repeat(t.data, m, axis=2)

    def backward(g):
        return (g.reshape(n, b, h, m, s, d).sum(axis=3),)

    return Tensor.from_op(out, [t], backward, "vec_repeat_heads")


def vec_scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                     causal: bool = True) -> Tensor:
    """Causal GQA attention on ``[n, b, heads, s, head_dim]`` — the
    rank-stacked mirror of
    :func:`repro.tensor.ops.scaled_dot_product_attention`, built from
    the same tape ops so every backward formula matches slice-for-slice.
    """
    _, _, hq, sq, dq = q.shape
    hk = k.shape[2]
    if hq % hk != 0:
        raise ValueError(
            f"query heads {hq} not a multiple of kv heads {hk}"
        )
    m = hq // hk
    if m > 1:
        k = _vec_repeat_heads(k, m)
        v = _vec_repeat_heads(v, m)
    scale = 1.0 / np.sqrt(dq)
    scores = (q @ k.swapaxes(-1, -2)) * scale
    if causal:
        sk = k.shape[3]
        mask = np.triu(np.ones((sq, sk), dtype=bool), k=1)
        scores = tops.masked_fill(scores, mask[None, None, None], -1e30)
    weights = tops.softmax(scores, axis=-1)
    return weights @ v


def vec_shard_matmul(x: Tensor, weights: Sequence[Tensor]) -> Tensor:
    """``x[r] @ weights[r]`` for all ranks in one broadcast GEMM.

    The TP engines pair every rank's activation with that rank's own
    weight *shard* (a distinct leaf Tensor), so unlike
    :func:`vec_linear` there is no cross-rank gradient sum: each shard
    receives exactly its rank's raw ``xᵀ·g`` partial and the tape's
    own unbroadcast reduces the batch axis — the identical node the
    per-rank ``@`` builds.
    """
    n = x.shape[0]
    xd = x.data
    w = np.stack([t.data for t in weights])
    wb = w.reshape((n,) + (1,) * (xd.ndim - 3) + w.shape[1:])
    out = xd @ wb

    def backward(g):
        gx = g @ wb.swapaxes(-1, -2)
        gw = xd.swapaxes(-1, -2) @ g
        return (gx, *(gw[r] for r in range(n)))

    return Tensor.from_op(out, [x] + list(weights), backward,
                          "vec_shard_matmul")


def vec_dropout(t: Tensor, p: float, rng_pool: Any) -> Tensor:
    """Inverted dropout drawing each rank's mask from its private
    stream in increasing-rank order — the identical generator calls the
    per-rank engines make, so all execution modes see the same masks."""
    keep = 1.0 - p
    n = t.shape[0]
    mask = np.stack([
        (rng_pool[r].random(t.shape[1:]) < keep) / keep
        for r in range(n)
    ])

    def backward(g):
        return (g * mask,)

    return Tensor.from_op(t.data * mask, [t], backward, "vec_dropout")


# ---------------------------------------------------------------------------
# Collectives as axis permutations
# ---------------------------------------------------------------------------

def _a2a_permute(data: np.ndarray, n: int, split_axis: int,
                 concat_axis: int) -> np.ndarray:
    """The balanced all-to-all as a pure axis permutation.

    ``data`` is rank-stacked: axis 0 is the source rank, the remaining
    axes one rank's tensor.  Destination ``j`` receives every source's
    ``j``-th chunk of ``split_axis``, concatenated along
    ``concat_axis`` in source-rank order — which is exactly: expand the
    split axis into ``(n_dst, w)``, move ``n_dst`` to the front and the
    old rank axis to just before the concat axis, and re-merge.
    """
    sa, ca = split_axis + 1, concat_axis + 1
    shape = data.shape
    w = shape[sa] // n
    expanded = data.reshape(shape[:sa] + (n, w) + shape[sa + 1:])
    axes = list(range(expanded.ndim))
    axes.remove(sa)   # n_dst, promoted to the new leading axis
    axes.remove(0)    # n_src, re-inserted before the concat axis
    ca_expanded = ca + 1 if ca > sa else ca
    axes.insert(axes.index(ca_expanded), 0)
    permuted = expanded.transpose([sa] + axes)
    out_shape = list(shape)
    out_shape[sa] = w
    out_shape[ca] = shape[ca] * n
    return permuted.reshape(out_shape)


def vec_all_to_all(x: Tensor, split_axis: int, concat_axis: int,
                   group: Any, elem_bytes: Optional[float] = None,
                   tag: str = "", tiles: int = 1,
                   tile_label: str = "") -> Tensor:
    """Balanced all-to-all over the rank axis of a stacked Tensor.

    Zero arithmetic — forward and backward are inverse
    :func:`_a2a_permute` calls — but the ledger sees precisely what the
    per-rank path books: one whole-world ``all_to_all`` record forward
    (each rank sending ``n-1`` chunks) and ``n`` one-hot dual records
    backward, matching :func:`repro.parallel.dist_ops.dist_all_to_all`
    output-by-output.

    With ``tiles > 1`` the forward record is split into per-tile
    records of ``1/tiles`` of each rank's bytes (tile ``(t, tiles)``),
    mirroring the chunked per-rank path; the data movement itself stays
    the one fused permutation — the vectorized analog of the §4.2 fused
    kernel, whose tiles live inside a single launch.
    """
    from ..comm.group import tile_span
    from ..parallel.dist_ops import _one_hot
    n = int(group.size)
    data = x.data
    if data.shape[split_axis + 1] % n != 0:
        raise ValueError(
            f"split axis {split_axis} of size "
            f"{data.shape[split_axis + 1]} not divisible by {n}"
        )
    eb = (float(elem_bytes) if elem_bytes is not None
          else float(data.itemsize))
    chunk = data.size // (n * n)
    wire = (n - 1) * chunk * eb
    group.pre_collective("all_to_all", tag)
    if tiles > 1:
        for t in range(tiles):
            with tile_span(group, tile_label, t, tiles):
                group.record("all_to_all", [wire / tiles] * n, tag,
                             tile=(t, tiles))
    else:
        group.record("all_to_all", [wire] * n, tag)
    out = _a2a_permute(data, n, split_axis, concat_axis)
    group.post_collective("all_to_all", [out[j] for j in range(n)], tag)

    def backward(g):
        for j in range(n):
            group.pre_collective("all_to_all", tag + ":bwd")
            group.record("all_to_all", _one_hot(n, j, wire),
                         tag + ":bwd")
        return (_a2a_permute(g, n, concat_axis, split_axis),)

    return Tensor.from_op(out, [x], backward, "vec_all_to_all")


def vec_all_gather(x: Tensor, axis: int, group: Any,
                   elem_bytes: Optional[float] = None,
                   tag: str = "", tiled: bool = False,
                   tile_label: str = "") -> Tensor:
    """All-gather over the rank axis of a stacked Tensor.

    Forward merges the rank axis into ``axis`` (the concatenation every
    rank receives) and broadcasts the one gathered array across the
    rank axis — the stacked mirror of
    :func:`repro.parallel.dist_ops.dist_all_gather`'s zero-copy path.
    Backward replays the engine's accumulation exactly: output grads
    sum in *ascending*-rank order (the DFS tape order visits the
    per-rank outputs rank 0 first), then scatter back to shards.

    With ``tiled=True`` the forward record is split per source rank
    (one-hot, tile ``(i, n)``) while the movement stays the one fused
    ``moveaxis`` — mirroring the chunked per-rank path's ledger.
    """
    from ..comm.group import tile_span
    from ..parallel.dist_ops import _one_hot
    n = int(group.size)
    data = x.data
    shard_size = data.size // n
    eb = (float(elem_bytes) if elem_bytes is not None
          else float(data.itemsize))
    group.pre_collective("all_gather", tag)
    if tiled and n >= 2:
        for i in range(n):
            with tile_span(group, tile_label, i, n):
                group.record("all_gather",
                             _one_hot(n, i, shard_size * eb * (n - 1)),
                             tag, tile=(i, n))
    else:
        group.record("all_gather", [shard_size * eb * (n - 1)] * n, tag)
    full_shape = list(data.shape[1:])
    full_shape[axis] *= n
    full = np.moveaxis(data, 0, axis).reshape(full_shape)
    group.post_collective("all_gather", [full] * n, tag)
    out = np.broadcast_to(full, (n,) + full.shape)

    def backward(g):
        total = None
        for j in range(n):
            group.pre_collective("reduce_scatter", tag + ":bwd")
            group.record("reduce_scatter",
                         _one_hot(n, j, (n - 1) * shard_size * eb),
                         tag + ":bwd")
            total = g[j] if total is None else total + g[j]
        split = list(total.shape)
        width = split[axis] // n
        split[axis:axis + 1] = [n, width]
        return (np.moveaxis(total.reshape(split), axis, 0),)

    return Tensor.from_op(out, [x], backward, "vec_all_gather")


def vec_reduce_scatter(x: Tensor, axis: int, group: Any,
                       elem_bytes: Optional[float] = None,
                       tag: str = "", tiled: bool = False,
                       tile_label: str = "") -> Tensor:
    """Reduce-scatter over the rank axis of a stacked Tensor.

    Forward is the *same* float64 ``np.sum`` over the rank axis the
    per-rank path computes (``np.sum`` of a shard list stacks first),
    split back into per-rank slices.  Backward places each output grad
    at its slice of a zero full-shape array and folds in
    ascending-rank order — including the engine's ``+0.0`` additions,
    so even signed zeros match — then broadcasts to every rank.

    With ``tiled=True`` the forward record is split per destination
    rank (one-hot, tile ``(j, n)``) while the reduction stays the one
    fused ``np.sum`` — mirroring the chunked per-rank path's ledger.
    """
    from ..comm.group import tile_span
    from ..parallel.dist_ops import _one_hot
    n = int(group.size)
    data = x.data
    if data.shape[axis + 1] % n != 0:
        raise ValueError(
            f"axis {axis} of size {data.shape[axis + 1]} "
            f"not divisible by {n}"
        )
    eb = (float(elem_bytes) if elem_bytes is not None
          else float(data.itemsize))
    shard_elems = data[0].size // n
    total = np.sum(data.astype(np.float64), axis=0)
    group.pre_collective("reduce_scatter", tag)
    if tiled and n >= 2:
        for j in range(n):
            with tile_span(group, tile_label, j, n):
                group.record("reduce_scatter",
                             _one_hot(n, j, shard_elems * eb * (n - 1)),
                             tag, tile=(j, n))
    else:
        group.record("reduce_scatter",
                     [shard_elems * eb * (n - 1)] * n, tag)
    width = total.shape[axis] // n
    split = list(total.shape)
    split[axis:axis + 1] = [n, width]
    out = np.moveaxis(total.reshape(split), axis, 0).astype(
        data.dtype, copy=False)
    group.post_collective("reduce_scatter", [out[j] for j in range(n)],
                          tag)

    def backward(g):
        full_shape = list(data.shape[1:])
        slicer = [slice(None)] * len(full_shape)
        folded = None
        for j in range(n):
            grad = np.zeros(full_shape, dtype=g[j].dtype)
            slicer[axis] = slice(j * width, (j + 1) * width)
            grad[tuple(slicer)] = g[j]
            group.pre_collective("all_gather", tag + ":bwd")
            group.record("all_gather",
                         _one_hot(n, j, g[j].size * eb * (n - 1)),
                         tag + ":bwd")
            folded = grad if folded is None else folded + grad
        return (np.broadcast_to(folded, data.shape),)

    return Tensor.from_op(out, [x], backward, "vec_reduce_scatter")
