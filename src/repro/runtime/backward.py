"""Deterministic parallel reverse-mode sweep over the autograd tape.

:meth:`repro.tensor.Tensor.backward` walks the tape sequentially in
reverse-topological order.  That order is a *valid schedule*, but not
the only one: any node may run as soon as every consumer of its output
has contributed its gradient.  :func:`parallel_backward` exploits that
freedom with a worker pool, while keeping results **bitwise identical**
to the sequential sweep:

* gradient *contributions* to a tensor are tagged with the key
  ``(position of the consumer in the sequential order, input index)``
  and folded in ascending key order once the tensor's consumer count
  drains — exactly the operand order of the sequential
  ``grads[id] = grads[id] + g`` accumulation, including duplicate-input
  occurrences;
* each ``backward_fn`` runs on whatever worker picks the node up, but
  sees the identical, fully-folded upstream gradient, so it produces
  identical outputs;
* dtype coercion and unbroadcasting are applied per contribution before
  folding, as in the sequential code.

Fault-plan interaction: :class:`~repro.ft.faults.FaultPlan` counts
collective calls globally, and the backward hooks of
:mod:`repro.parallel.dist_ops` issue ledger records as they run.  Under
a *scheduled* or *probabilistic* plan the call order decides which
collective a fault hits, so concurrency would change fault placement;
:func:`backward` therefore falls back to the sequential sweep unless
the plan is *passive* (slow-link factors only) — see
:func:`_plan_is_passive`.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..tensor.tensor import Tensor, _unbroadcast

__all__ = ["backward", "parallel_backward"]


def _plan_is_passive(plan: Any) -> bool:
    """True when a fault plan cannot fire (slow-link factors only).

    Scheduled specs and probabilistic rates key off the global
    collective call index, which a concurrent backward would reorder;
    ``slow_ranks`` only scales health-ledger durations and is stateless
    per call, so it stays deterministic under any schedule.
    """
    if plan is None:
        return True
    return (not getattr(plan, "pending", None)
            and float(getattr(plan, "rate", 0.0)) == 0.0)


def backward(root: Tensor, grad: Optional[np.ndarray] = None, *,
             executor: Any = None, fault_plan: Any = None,
             tracer: Any = None) -> None:
    """Run the reverse sweep, parallel when the executor allows it.

    Sequential (``executor is None``) delegates to
    :meth:`Tensor.backward` untouched.  Threaded mode uses
    :func:`parallel_backward` unless ``fault_plan`` is active, whose
    call-index bookkeeping requires the sequential schedule.
    """
    if executor is None or not _plan_is_passive(fault_plan):
        root.backward(grad)
        return
    workers = getattr(executor, "parallelism", None) or os.cpu_count() or 1
    parallel_backward(root, grad, workers=workers, tracer=tracer)


def parallel_backward(root: Tensor, grad: Optional[np.ndarray] = None, *,
                      workers: int = 2, tracer: Any = None) -> None:
    """Multi-threaded tape sweep, bitwise identical to ``root.backward``.

    Args:
        root: Output tensor to differentiate (scalar unless ``grad``).
        grad: Upstream gradient; defaults to ones for scalars.
        workers: Worker-thread count (>= 1).
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; workers
            inherit the caller's open span so comm spans emitted by
            backward hooks nest correctly.
    """
    # -- validation: byte-for-byte the sequential error behaviour ----------
    if not root.requires_grad:
        raise RuntimeError("called backward() on a non-grad tensor")
    if grad is None:
        if root.size != 1:
            raise RuntimeError(
                "backward() without an explicit gradient requires a "
                f"scalar output, got shape {root.shape}"
            )
        grad = np.ones_like(root.data)
    grad = np.asarray(grad, dtype=root.data.dtype)

    order = root._topological_order()
    pos: Dict[int, int] = {id(t): i for i, t in enumerate(order)}
    # Remaining consumer occurrences per tensor; a tensor may run once
    # every consumer has reported (with a gradient or a None).
    pending: Dict[int, int] = {}
    for t in order:
        if t.node is None:
            continue
        for inp in t.node.inputs:
            if id(inp) in pos:
                pending[id(inp)] = pending.get(id(inp), 0) + 1
    # Sort-key -> contribution; key = (consumer position, input index)
    # reproduces the sequential accumulation operand order exactly.
    contribs: Dict[int, List[Tuple[Tuple[int, int], np.ndarray]]] = {
        id(root): [((-1, 0), grad)],
    }

    ready: deque = deque([root])
    cond = threading.Condition()
    state: Dict[str, Any] = {"remaining": len(order), "error": None}
    parent = tracer.current() if tracer is not None else None

    def process(t: Tensor, g_out: Optional[np.ndarray]
                ) -> List[Tuple[Tensor, int, Optional[np.ndarray]]]:
        """One node's backward; returns (input, input_idx, grad) tuples."""
        if g_out is None or t.node is None:
            if g_out is not None and t.node is None and t.requires_grad:
                t.grad = g_out if t.grad is None else t.grad + g_out
            if t.node is None:
                return []
            # g_out is None: no gradient flowed here, but the inputs'
            # consumer counts still drain (sequential simply never
            # touched them from this node).
            return [(inp, i, None) for i, inp in enumerate(t.node.inputs)]
        in_grads = t.node.backward_fn(g_out)
        if len(in_grads) != len(t.node.inputs):
            raise RuntimeError(
                f"op {t.node.op_name!r} returned {len(in_grads)} "
                f"gradients for {len(t.node.inputs)} inputs"
            )
        out: List[Tuple[Tensor, int, Optional[np.ndarray]]] = []
        for i, (inp, g) in enumerate(zip(t.node.inputs, in_grads)):
            if g is None or not inp.requires_grad:
                out.append((inp, i, None))
                continue
            g = _unbroadcast(np.asarray(g, dtype=inp.data.dtype), inp.shape)
            out.append((inp, i, g))
        return out

    def worker() -> None:
        if tracer is not None:
            tracer.inherit_parent(parent)
        try:
            while True:
                with cond:
                    while (not ready and state["remaining"] > 0
                           and state["error"] is None):
                        cond.wait()
                    if state["error"] is not None or state["remaining"] <= 0:
                        return
                    t = ready.popleft()
                    entries = contribs.pop(id(t), None)
                if entries is None:
                    g_out: Optional[np.ndarray] = None
                else:
                    entries.sort(key=lambda e: e[0])
                    g_out = entries[0][1]
                    for _, g in entries[1:]:
                        g_out = g_out + g
                try:
                    produced = process(t, g_out)
                except BaseException as exc:  # noqa: BLE001
                    with cond:
                        if state["error"] is None:
                            state["error"] = exc
                        cond.notify_all()
                    return
                t_pos = pos[id(t)]
                with cond:
                    for inp, idx, g in produced:
                        key = id(inp)
                        if g is not None:
                            contribs.setdefault(key, []).append(
                                ((t_pos, idx), g))
                        if key in pending:
                            pending[key] -= 1
                            if pending[key] == 0:
                                del pending[key]
                                ready.append(inp)
                    state["remaining"] -= 1
                    cond.notify_all()
        finally:
            if tracer is not None:
                tracer.inherit_parent(None)

    count = max(1, min(int(workers), len(order)))
    threads = [threading.Thread(target=worker, name=f"bwd-w{i}",
                                daemon=True)
               for i in range(count)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    if state["error"] is not None:
        raise state["error"]
