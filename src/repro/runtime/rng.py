"""Per-rank random streams for stochastic ops under SPMD execution.

A single shared :class:`numpy.random.Generator` breaks the SPMD
engine's bitwise-identity contract twice over: rank threads racing on
one bit-generator state are not thread-safe, and even with a lock the
draw *order* would depend on thread scheduling, so a threaded run could
never reproduce the sequential rank loop.  The fix is the standard
counter-based recipe: spawn one independent child stream per rank from
a single :class:`numpy.random.SeedSequence`, so

* each rank thread owns its generator exclusively (no races), and
* a rank's stream advances only with that rank's own draws, making the
  cross-rank interleaving irrelevant — sequential and threaded
  execution consume identical per-rank randomness, bitwise.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = ["RankRngPool"]


class RankRngPool:
    """``n_ranks`` independent child generators spawned from one seed.

    ``pool[rank]`` is rank's private :class:`numpy.random.Generator`.
    Two pools built from the same ``(seed, n_ranks)`` yield identical
    streams, which is what makes dropout reproducible across restarts
    and across execution modes.
    """

    def __init__(self, seed: int, n_ranks: int):
        if n_ranks < 1:
            raise ValueError(f"n_ranks must be >= 1, got {n_ranks}")
        self.seed = int(seed)
        self.n_ranks = int(n_ranks)
        children = np.random.SeedSequence(self.seed).spawn(self.n_ranks)
        self._generators: List[np.random.Generator] = [
            np.random.default_rng(child) for child in children
        ]

    def __getitem__(self, rank: int) -> np.random.Generator:
        return self._generators[rank]

    def __len__(self) -> int:
        return self.n_ranks

    def __iter__(self) -> Iterator[np.random.Generator]:
        return iter(self._generators)

    def reset(self) -> None:
        """Rewind every rank stream to its initial state."""
        children = np.random.SeedSequence(self.seed).spawn(self.n_ranks)
        self._generators = [
            np.random.default_rng(child) for child in children
        ]
