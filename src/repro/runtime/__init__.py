"""SPMD runtime: thread-per-rank execution with rendezvous collectives.

See ``docs/INTERNALS.md`` §8 for the execution model, the determinism
contract, and the zero-copy rules the engines rely on.
"""

from .backward import backward, parallel_backward
from .dag_executor import (
    BACKENDS,
    DagExecutor,
    DagRunResult,
    resolve_backend,
    schedule_conformance_problems,
)
from .rng import RankRngPool
from .vectorized import VecCtx, VecEnv
from .spmd import (
    EXECUTION_MODES,
    RankComm,
    SpmdExecutor,
    current_rank,
    make_executor,
    resolve_execution,
)

__all__ = [
    "BACKENDS",
    "EXECUTION_MODES",
    "DagExecutor",
    "DagRunResult",
    "RankComm",
    "RankRngPool",
    "SpmdExecutor",
    "VecCtx",
    "VecEnv",
    "backward",
    "current_rank",
    "make_executor",
    "parallel_backward",
    "resolve_backend",
    "resolve_execution",
    "schedule_conformance_problems",
]
