"""SPMD thread-per-rank execution engine.

The parallel engines in :mod:`repro.parallel` were written as Python
loops over ranks: rank ``r``'s compute is a closure over its shard, and
collectives are whole-world functions taking every rank's tensor at
once.  :class:`SpmdExecutor` runs those same per-rank closures as real
concurrent threads — numpy releases the GIL inside BLAS kernels, so on
a multi-core host the ranks' GEMMs genuinely overlap, which is the
regime where MegaScale-MoE's communication/computation overlap story
(§4) is measurable at all.

Design:

* :meth:`SpmdExecutor.run` spawns one thread per rank of a process
  group and hands each a :class:`RankComm`.  Collectives issued through
  the handle meet at a :class:`~repro.comm.rendezvous.Rendezvous`
  barrier, where one thread executes the *existing* whole-world
  collective over the rank-ordered payload slots — identical
  arithmetic, one ledger record, one fault-plan consultation, one
  tracer span; see the determinism contract in
  :mod:`repro.comm.rendezvous` and ``docs/INTERNALS.md`` §8.
* :meth:`SpmdExecutor.map` runs independent closures (embedding shards,
  LM-loss pieces, DP replicas, pipeline tasks) concurrently with no
  rendezvous, bounded by ``parallelism``.
* The active mode resolves from the ``execution`` knob
  (:class:`~repro.core.config.TrainConfig`), falling back to the
  ``REPRO_EXECUTION`` environment variable and finally to
  ``"sequential"`` — so ``REPRO_EXECUTION=threaded pytest`` exercises
  the whole suite on threads.

Tracer integration: worker threads inherit the spawning thread's
innermost open span as their root parent
(:meth:`repro.obs.tracer.Tracer.inherit_parent`), so Chrome traces show
rank work nested under ``forward``/``backward`` exactly as in
sequential runs.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Callable, Iterable, List, Optional, Sequence

from ..comm.rendezvous import Rendezvous, SpmdAbort

__all__ = [
    "EXECUTION_MODES",
    "RankComm",
    "SpmdExecutor",
    "current_rank",
    "make_executor",
    "resolve_execution",
]

EXECUTION_MODES = ("sequential", "threaded", "vectorized")

_TLS = threading.local()


def current_rank() -> Optional[int]:
    """The world rank of the calling SPMD thread (None outside one)."""
    return getattr(_TLS, "rank", None)


def resolve_execution(execution: Optional[str] = None) -> str:
    """Resolve an execution mode: explicit > ``REPRO_EXECUTION`` > default."""
    mode = execution or os.environ.get("REPRO_EXECUTION") or "sequential"
    if mode not in EXECUTION_MODES:
        raise ValueError(
            f"unknown execution mode {mode!r}; expected one of "
            f"{EXECUTION_MODES}"
        )
    return mode


def make_executor(execution: Optional[str] = None,
                  parallelism: Optional[int] = None
                  ) -> Optional["SpmdExecutor"]:
    """An :class:`SpmdExecutor` for ``"threaded"`` mode, else None.

    ``"vectorized"`` also resolves to None: the vectorized backend is
    single-threaded (all ranks batched into one kernel per op), so the
    engines' sequential code paths carry it — the trainer routes the
    mode to the DAG executor's ``vectorized`` flag instead.

    ``None`` doubles as the sequential sentinel throughout the engines:
    every ``executor`` parameter treats it as "run the classic loop".
    """
    if resolve_execution(execution) == "threaded":
        return SpmdExecutor(parallelism=parallelism)
    return None


def _dist_ops():
    # Imported lazily: repro.parallel builds on repro.runtime.
    from ..parallel import dist_ops
    return dist_ops


class RankComm:
    """One rank's collective endpoint inside an SPMD run.

    Wraps a shared :class:`Rendezvous`; every collective method blocks
    until all ranks of the group arrive, then returns this rank's share
    of the single whole-world result.
    """

    __slots__ = ("group", "index", "rank", "_rdv")

    def __init__(self, group: Any, index: int, rdv: Rendezvous):
        self.group = group
        #: Position of this rank inside ``group.ranks``.
        self.index = index
        #: Global (world) rank id.
        self.rank = int(group.ranks[index])
        self._rdv = rdv

    @property
    def size(self) -> int:
        return int(self.group.size)

    # -- generic exchanges ---------------------------------------------------

    def exchange(self, label: Any, payload: Any,
                 fn: Callable[[List[Any]], Any]) -> Any:
        """Rendezvous on ``label``; one rank runs ``fn(slots)`` for all.

        Returns ``fn``'s result, shared by every rank.  ``fn`` must be
        equivalent across ranks (it sees the rank-ordered payloads).
        """
        return self._rdv.exchange(self.index, label, payload, fn)

    def gossip(self, label: Any, payload: Any) -> List[Any]:
        """All-gather arbitrary Python metadata (no ledger bytes).

        The sequential engines read peers' routing metadata directly
        from shared lists; gossip is the explicit SPMD equivalent.
        """
        return self.exchange(("gossip", label), payload, list)

    def collective(self, fn: Callable[..., Sequence[Any]], payload: Any,
                   **kwargs: Any) -> Any:
        """Run whole-world ``fn(group, slots, **kwargs)``; return my share."""
        label = (getattr(fn, "__name__", repr(fn)), kwargs.get("tag", ""))
        group = self.group
        outs = self.exchange(
            label, payload, lambda slots: fn(group, slots, **kwargs))
        return outs[self.index]

    # -- differentiable collectives (repro.parallel.dist_ops) ----------------

    def all_gather(self, tensor: Any, axis: int = 0,
                   elem_bytes: Optional[float] = None,
                   tag: str = "", tiled: bool = False,
                   tile_label: str = "") -> Any:
        """Differentiable all-gather; returns the full tensor."""
        return self.collective(_dist_ops().dist_all_gather, tensor,
                               axis=axis, elem_bytes=elem_bytes, tag=tag,
                               tiled=tiled, tile_label=tile_label)

    def reduce_scatter(self, tensor: Any, axis: int = 0,
                       elem_bytes: Optional[float] = None,
                       tag: str = "", tiled: bool = False,
                       tile_label: str = "") -> Any:
        """Differentiable reduce-scatter; returns this rank's slice."""
        return self.collective(_dist_ops().dist_reduce_scatter, tensor,
                               axis=axis, elem_bytes=elem_bytes, tag=tag,
                               tiled=tiled, tile_label=tile_label)

    def all_reduce(self, tensor: Any,
                   elem_bytes: Optional[float] = None,
                   tag: str = "") -> Any:
        """Differentiable all-reduce; returns the summed tensor."""
        return self.collective(_dist_ops().dist_all_reduce, tensor,
                               elem_bytes=elem_bytes, tag=tag)

    def all_to_all(self, tensor: Any, split_axis: int, concat_axis: int,
                   elem_bytes: Optional[float] = None,
                   tag: str = "", tiles: int = 1, tile_axis: int = 0,
                   tile_label: str = "") -> Any:
        """Differentiable balanced all-to-all (the Ulysses primitive)."""
        return self.collective(_dist_ops().dist_all_to_all, tensor,
                               split_axis=split_axis,
                               concat_axis=concat_axis,
                               elem_bytes=elem_bytes, tag=tag,
                               tiles=tiles, tile_axis=tile_axis,
                               tile_label=tile_label)

    def all_to_all_uneven(self, tensor: Any, splits: Sequence[int],
                          elem_bytes: Optional[float] = None,
                          tag: str = "", tiled: bool = False,
                          tile_label: str = "") -> Any:
        """Differentiable uneven all-to-all (MoE token dispatch)."""
        ops = _dist_ops()
        group = self.group

        def fn(slots: List[Any]) -> Any:
            return ops.dist_all_to_all_uneven(
                group, [s[0] for s in slots], [s[1] for s in slots],
                elem_bytes=elem_bytes, tag=tag, tiled=tiled,
                tile_label=tile_label)

        outs = self.exchange(("all_to_all_uneven", tag),
                             (tensor, list(splits)), fn)
        return outs[self.index]


class SpmdExecutor:
    """Runs per-rank closures on real threads with rendezvous collectives.

    Args:
        parallelism: Concurrency cap for :meth:`map`.  :meth:`run`
            always keeps every rank resident (a barrier needs all
            parties), exactly as NCCL cannot timeshare a communicator.
            Defaults to ``os.cpu_count()``.
    """

    def __init__(self, parallelism: Optional[int] = None):
        if parallelism is not None and parallelism < 1:
            raise ValueError(
                f"parallelism must be >= 1, got {parallelism}"
            )
        self.parallelism = parallelism

    def _tracer_of(self, group: Any) -> Any:
        world = getattr(group, "world", None)
        return getattr(world, "tracer", None)

    def run(self, group: Any, rank_fn: Callable[[RankComm], Any]
            ) -> List[Any]:
        """Execute ``rank_fn(comm)`` concurrently for every group rank.

        Returns the per-rank results in rank order.  The first failing
        rank's exception propagates; peers stuck at a rendezvous are
        aborted and unwind via :class:`SpmdAbort`.
        """
        n = int(group.size)
        rdv = Rendezvous(n)
        if n == 1:
            return [rank_fn(RankComm(group, 0, rdv))]
        results: List[Any] = [None] * n
        errors: List[Any] = []
        err_lock = threading.Lock()
        tracer = self._tracer_of(group)
        parent = tracer.current() if tracer is not None else None

        def worker(idx: int) -> None:
            _TLS.rank = int(group.ranks[idx])
            if tracer is not None:
                tracer.inherit_parent(parent)
            try:
                results[idx] = rank_fn(RankComm(group, idx, rdv))
            except SpmdAbort:
                pass  # a peer failed; its error is already recorded
            except BaseException as exc:  # noqa: BLE001
                with err_lock:
                    errors.append((idx, exc))
                rdv.abort()
            finally:
                if tracer is not None:
                    tracer.inherit_parent(None)
                _TLS.rank = None

        threads = [
            threading.Thread(target=worker, args=(i,),
                             name=f"spmd-rank{group.ranks[i]}",
                             daemon=True)
            for i in range(n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            errors.sort(key=lambda e: e[0])
            raise errors[0][1]
        return results

    def map(self, fn: Callable[[Any], Any], items: Iterable[Any],
            tracer: Any = None) -> List[Any]:
        """Apply ``fn`` to independent items on concurrent threads.

        No rendezvous: items must not need to communicate.  Concurrency
        is bounded by ``parallelism`` (wave scheduling); results return
        in item order and the lowest-index failure propagates.
        """
        work = list(items)
        if len(work) <= 1:
            return [fn(item) for item in work]
        results: List[Any] = [None] * len(work)
        errors: List[Any] = []
        err_lock = threading.Lock()
        parent = tracer.current() if tracer is not None else None

        def worker(idx: int) -> None:
            if tracer is not None:
                tracer.inherit_parent(parent)
            try:
                results[idx] = fn(work[idx])
            except BaseException as exc:  # noqa: BLE001
                with err_lock:
                    errors.append((idx, exc))
            finally:
                if tracer is not None:
                    tracer.inherit_parent(None)

        limit = self.parallelism or os.cpu_count() or len(work)
        limit = max(1, min(limit, len(work)))
        for start in range(0, len(work), limit):
            wave = [
                threading.Thread(target=worker, args=(i,),
                                 name=f"spmd-map{i}", daemon=True)
                for i in range(start, min(start + limit, len(work)))
            ]
            for t in wave:
                t.start()
            for t in wave:
                t.join()
            if errors:
                break
        if errors:
            errors.sort(key=lambda e: e[0])
            raise errors[0][1]
        return results
