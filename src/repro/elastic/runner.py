"""A production runner that survives world-size changes mid-run.

:class:`ElasticRunner` extends
:class:`~repro.core.runner.ProductionRunner` with the
checkpoint–reshard–resume cycle: when a
:class:`~repro.ft.faults.ResizeEvent` fires (the fleet shrank or
grew), the runner checkpoints the live trainer, switches its layout,
rebuilds the trainer at the new world size, and restores — the load
path detects the layout mismatch recorded in the checkpoint's meta
sidecar and routes it through
:func:`~repro.elastic.reshard.reshard_state` instead of refusing.

Because the checkpoint is taken at the exact step the resize fires, a
resize replays *zero* steps; a cold restart (the only option for the
fixed-size runner) replays everything since the last periodic
checkpoint.  ``benchmarks/bench_elastic_resize.py`` measures exactly
that gap.
"""

from __future__ import annotations

from typing import Callable, List

from ..core.runner import MetricsLog, ProductionRunner
from ..ft.faults import ResizeEvent
from .layout import ParallelLayout
from .reshard import ReshardReport, reshard_state

__all__ = ["ElasticRunner"]


class ElasticRunner(ProductionRunner):
    """Runs a trainer whose world size may change between steps.

    Args:
        layout_factory: Builds a fresh trainer *for a given layout* —
            called at start, after restarts, and after every resize
            with the current :class:`ParallelLayout`.
        initial_layout: The layout the run starts at (a
            :class:`ParallelLayout`, a world-size int, or a dict).
        checkpoint_dir: As for :class:`ProductionRunner`; remaining
            keyword arguments are forwarded unchanged.
    """

    def __init__(self, layout_factory: Callable[[ParallelLayout],
                                                object],
                 initial_layout, checkpoint_dir: str, **kwargs):
        self.layout_factory = layout_factory
        self.current_layout = self._coerce_layout(initial_layout)
        #: Every re-partition performed, in order.
        self.reshard_reports: List[ReshardReport] = []
        # The base restart path calls self.trainer_factory() with no
        # arguments; binding it to the *current* layout keeps every
        # inherited recovery path working across resizes.
        super().__init__(
            lambda: self.layout_factory(self.current_layout),
            checkpoint_dir, **kwargs)

    @staticmethod
    def _coerce_layout(spec) -> ParallelLayout:
        """Accept a ParallelLayout, a dict, or a bare world size.

        A bare int means the repo's canonical SP-attention / EP-FFN
        megascale layout at that size (dp = pp = 1).
        """
        if isinstance(spec, ParallelLayout):
            return spec
        if isinstance(spec, dict):
            return ParallelLayout.from_dict(spec)
        n = int(spec)
        return ParallelLayout(world_size=n, ep=n, sp=n)

    # -- the elastic paths ---------------------------------------------------

    def _resolve_layout_mismatch(self, state, saved, current,
                                 step: int):
        """Reshard instead of refusing: map the checkpoint's state
        from its recorded layout onto the live trainer's."""
        new_state, report = reshard_state(state, saved, current,
                                          obs=self.obs)
        self.reshard_reports.append(report)
        return new_state

    def _handle_resize(self, event: ResizeEvent, trainer, step: int,
                       metrics: MetricsLog):
        """Checkpoint – reshard – rebuild – resume at the new size."""
        new_layout = self._coerce_layout(event.layout)
        old_layout = self.current_layout

        # Checkpoint at the exact step the resize fired, so nothing
        # is replayed after the world comes back up.
        self._save(trainer, step)
        if step not in metrics.checkpoints:
            metrics.checkpoints.append(step)
        self._mark("checkpoint", step=step)

        reports_before = len(self.reshard_reports)
        self.current_layout = new_layout
        trainer = self.trainer_factory()
        resume = self._restore(trainer, metrics)

        metrics.resizes.append(event.step)
        for report in self.reshard_reports[reports_before:]:
            metrics.reshard_bytes += report.total_bytes
            metrics.reshard_seconds += report.seconds()
        self._mark("resize", step=event.step,
                   old=old_layout.describe(),
                   new=new_layout.describe(),
                   resumed_at=resume)
        return trainer, resume
