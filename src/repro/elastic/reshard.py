"""Deterministic re-partitioning of training state across layouts.

Three mappings, each exact by construction:

* **ZeRO-1 optimizer shards across a changed shard degree.**  The
  flatten/unflatten layout in :mod:`repro.parallel.zero` is a plain
  concatenation padded to a multiple of the rank count, so resharding
  is concatenate → strip pad → re-pad → re-split: bit-exact, and the
  bytes that change owners fall out of interval arithmetic on the two
  shard grids (:func:`zero1_moved_elements`).
* **Expert re-placement under a changed EP degree.**  Experts live in
  contiguous blocks of ``E/n`` per rank
  (:class:`~repro.parallel.ep_ffn.EPFFNEngine`); the placement at any
  degree is a pure function of ``(E, n)``, and the experts that move
  are exactly those whose block index changes.
* **DP ring re-formation.**  The data-parallel rings at the new world
  size are recomputed from scratch (:func:`form_dp_rings`) — ring
  membership is never patched incrementally, which is what makes the
  re-partition deterministic regardless of which ranks left or joined.

:func:`reshard_state` applies all three to a trainer checkpoint and
returns the re-partitioned state plus a :class:`ReshardReport` (bytes
moved, experts moved, modelled reshard seconds at a configurable link
bandwidth) — the numbers the obs counters, the ``elastic-demo`` CLI,
and ``bench_elastic_resize`` report.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .layout import ParallelLayout

__all__ = [
    "DEFAULT_RESHARD_BANDWIDTH",
    "ReshardReport",
    "zero1_shard_flat",
    "zero1_unshard_flat",
    "zero1_moved_elements",
    "reshard_zero1_state",
    "expert_placement",
    "expert_moves",
    "form_dp_rings",
    "reshard_state",
]

#: Modelled reshard link bandwidth (bytes/s).  Resharding moves state
#: between *nodes*, so the H800 NIC (Table 4) is the honest default.
DEFAULT_RESHARD_BANDWIDTH = 50e9

_EXPERT_KEY = re.compile(
    r"(?:^|/)blocks\.(\d+)\.moe\.experts\.(\d+)\.")


# -- ZeRO-1 shard re-flattening ----------------------------------------------


def _padded(numel: int, dp: int) -> int:
    return -(-numel // dp) * dp


def zero1_shard_flat(flat: np.ndarray, dp: int) -> List[np.ndarray]:
    """Split a flattened parameter space into ``dp`` padded shards.

    Matches :class:`~repro.parallel.zero.Zero1AdamW`'s layout exactly:
    pad to a multiple of ``dp``, then equal contiguous slices.
    """
    if dp < 1:
        raise ValueError(f"dp must be >= 1, got {dp}")
    flat = np.asarray(flat).reshape(-1)
    pad = _padded(flat.size, dp) - flat.size
    if pad:
        flat = np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])
    shard_size = flat.size // dp
    return [flat[r * shard_size:(r + 1) * shard_size].copy()
            for r in range(dp)]


def zero1_unshard_flat(shards: Sequence[np.ndarray],
                       numel: int) -> np.ndarray:
    """Concatenate per-rank shards and strip the padding back off."""
    flat = np.concatenate([np.asarray(s).reshape(-1) for s in shards])
    if flat.size < numel:
        raise ValueError(
            f"shards hold {flat.size} elements < numel {numel}"
        )
    return flat[:numel].copy()


def zero1_moved_elements(numel: int, old_dp: int, new_dp: int) -> int:
    """Elements whose owning rank changes between two shard grids.

    Walks the merged shard boundaries of both grids; within each
    interval the (old owner, new owner) pair is constant, so the count
    is exact without touching per-element data.
    """
    if numel <= 0 or old_dp == new_dp:
        return 0
    old_size = _padded(numel, old_dp) // old_dp
    new_size = _padded(numel, new_dp) // new_dp
    cuts = sorted(
        {0, numel}
        | {min(r * old_size, numel) for r in range(1, old_dp)}
        | {min(r * new_size, numel) for r in range(1, new_dp)}
    )
    moved = 0
    for lo, hi in zip(cuts, cuts[1:]):
        if lo // old_size != lo // new_size:
            moved += hi - lo
    return moved


def reshard_zero1_state(state: Dict, new_dp: int) -> Dict:
    """Re-partition a :meth:`Zero1AdamW.shard_state_dict` across DP.

    Exact: the master copy and both Adam moments are re-flattened
    through the concat/pad/split layout, so loading the result into a
    fresh :class:`~repro.parallel.zero.Zero1AdamW` of degree
    ``new_dp`` continues the trajectory as if it had always run there.
    """
    numel = int(state["numel"])
    out = {
        "numel": numel,
        "dp": int(new_dp),
        "step_count": int(state["step_count"]),
    }
    for kind in ("master", "m", "v"):
        flat = zero1_unshard_flat(state[kind], numel)
        out[kind] = zero1_shard_flat(flat, new_dp)
    return out


# -- expert re-placement ------------------------------------------------------


def expert_placement(n_experts: int, ep: int) -> List[int]:
    """Owning rank per expert index at EP degree ``ep``.

    Contiguous blocks of ``E/n`` experts per rank — the exact layout
    :class:`~repro.parallel.ep_ffn.EPFFNEngine` slices out of the
    reference :class:`~repro.model.moe.MoELayer`.
    """
    if ep < 1:
        raise ValueError(f"ep must be >= 1, got {ep}")
    if n_experts % ep != 0:
        raise ValueError(
            f"n_experts={n_experts} not divisible by ep={ep}"
        )
    per_rank = n_experts // ep
    return [e // per_rank for e in range(n_experts)]


def expert_moves(n_experts: int, old_ep: int,
                 new_ep: int) -> List[int]:
    """Expert indices whose owning rank changes old→new."""
    old = expert_placement(n_experts, old_ep)
    new = expert_placement(n_experts, new_ep)
    return [e for e in range(n_experts) if old[e] != new[e]]


# -- DP ring re-formation -----------------------------------------------------


def form_dp_rings(world_size: int, dp: int) -> List[List[int]]:
    """Data-parallel rings at one world size, re-formed from scratch.

    Ranks are laid out replica-major (all of replica 0's model-parallel
    slots, then replica 1's, ...), so the ``world/dp`` rings each
    connect the same model-parallel slot across all ``dp`` replicas.
    """
    if world_size < 1 or dp < 1:
        raise ValueError("world_size and dp must be >= 1")
    if world_size % dp != 0:
        raise ValueError(
            f"world_size={world_size} not divisible by dp={dp}"
        )
    slots = world_size // dp
    return [[slot + replica * slots for replica in range(dp)]
            for slot in range(slots)]


# -- the full state mapping ---------------------------------------------------


@dataclass(frozen=True)
class ReshardReport:
    """What one checkpoint re-partition moved, and what it would cost."""

    old_layout: ParallelLayout
    new_layout: ParallelLayout
    #: Flattened optimizer-state element count (the ZeRO shard space).
    numel: int
    #: Elements whose ZeRO-1 shard owner changed.
    zero_elements_moved: int
    #: Bytes of master + both Adam moments that change ranks.
    zero_bytes: float
    #: Expert indices (per layer) that change ranks under the new EP.
    experts_moved: Tuple[Tuple[int, ...], ...]
    #: Bytes of expert parameters that change ranks.
    expert_bytes: float
    #: The re-formed DP rings at the new layout.
    dp_rings: Tuple[Tuple[int, ...], ...] = field(default=())

    @property
    def total_bytes(self) -> float:
        return self.zero_bytes + self.expert_bytes

    @property
    def n_experts_moved(self) -> int:
        return sum(len(layer) for layer in self.experts_moved)

    def seconds(self,
                bandwidth: float = DEFAULT_RESHARD_BANDWIDTH) -> float:
        """Modelled reshard time: bytes over one re-partition link."""
        if bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {bandwidth}")
        return self.total_bytes / bandwidth


def _optimizer_keys(state: Dict[str, np.ndarray]) -> List[str]:
    return sorted(
        (k for k in state if re.fullmatch(r"opt/[mv]/\d+", k)),
        key=lambda k: (k.split("/")[1], int(k.split("/")[2])),
    )


def _expert_bytes_by_layer(state: Dict[str, np.ndarray],
                           ) -> Dict[int, Dict[int, float]]:
    """``{layer: {expert: bytes}}`` for every expert tensor in state."""
    layers: Dict[int, Dict[int, float]] = {}
    for key, value in state.items():
        match = _EXPERT_KEY.search(key)
        if match is None:
            continue
        layer, expert = int(match.group(1)), int(match.group(2))
        per = layers.setdefault(layer, {})
        per[expert] = per.get(expert, 0.0) + float(
            np.asarray(value).nbytes)
    return layers


def reshard_state(state: Dict[str, np.ndarray],
                  old_layout: ParallelLayout,
                  new_layout: ParallelLayout,
                  *,
                  obs: Optional[object] = None,
                  ) -> Tuple[Dict[str, np.ndarray], ReshardReport]:
    """Map a trainer checkpoint from one parallel layout to another.

    The optimizer moments are round-tripped through the ZeRO-1
    shard grids of both layouts (shard at the old degree, unshard,
    re-shard at the new) — an exact identity that *is* the re-flatten
    the real system performs, and whose owner-change count prices the
    movement.  Expert tensors pass through unchanged (they are
    replicated in this simulation's reference model) while their
    re-placement under the new EP degree is computed and priced.  The
    ZeRO shard group is the full world: with ``dp == 1`` layouts the
    simulated trainer shards optimizer state across the model-parallel
    ranks, which is the dimension an elastic resize actually changes.

    Returns ``(new_state, report)``; when ``obs`` is given the
    re-partition lands as an ``elastic.reshard`` span plus
    ``elastic.reshards`` / ``elastic.bytes_moved`` counters.
    """
    old_group = old_layout.world_size
    new_group = new_layout.world_size

    new_state: Dict[str, np.ndarray] = {}
    numel = 0
    for key, value in state.items():
        array = np.asarray(value)
        if re.fullmatch(r"opt/[mv]/\d+", key):
            numel += array.size
            # The exact re-flatten: old shard grid -> flat -> new grid.
            shards = zero1_shard_flat(array.reshape(-1), old_group)
            flat = zero1_unshard_flat(shards, array.size)
            regathered = zero1_unshard_flat(
                zero1_shard_flat(flat, new_group), array.size)
            new_state[key] = regathered.reshape(array.shape)
        else:
            new_state[key] = array.copy()
    # m and v each contribute numel once; shard accounting covers the
    # flattened space a single time.
    numel //= 2 if numel else 1

    moved = zero1_moved_elements(numel, old_group, new_group)
    # Master copy (8 B) + first and second Adam moments (8 B each).
    zero_bytes = 3.0 * 8.0 * moved

    expert_bytes = 0.0
    moved_by_layer: List[Tuple[int, ...]] = []
    per_layer = _expert_bytes_by_layer(state)
    old_ep, new_ep = old_layout.ep, new_layout.ep
    for layer in sorted(per_layer):
        experts = per_layer[layer]
        moves = tuple(expert_moves(len(experts), old_ep, new_ep))
        moved_by_layer.append(moves)
        expert_bytes += sum(experts[e] for e in moves)

    report = ReshardReport(
        old_layout=old_layout,
        new_layout=new_layout,
        numel=numel,
        zero_elements_moved=moved,
        zero_bytes=zero_bytes,
        experts_moved=tuple(moved_by_layer),
        expert_bytes=expert_bytes,
        dp_rings=tuple(tuple(ring) for ring in form_dp_rings(
            new_layout.world_size, new_layout.dp)),
    )

    if obs is not None:
        with obs.tracer.span("elastic.reshard", cat="elastic",
                             stream="runner",
                             old=old_layout.describe(),
                             new=new_layout.describe(),
                             bytes=report.total_bytes,
                             experts_moved=report.n_experts_moved):
            pass
        obs.metrics.inc("elastic.reshards")
        obs.metrics.inc("elastic.bytes_moved", report.total_bytes)
        obs.metrics.set("elastic.last_reshard_seconds",
                        report.seconds())
    return new_state, report
