"""Elastic production runs: checkpoint–reshard–resume across resizes.

The paper's production story (§6.4, Fig. 19) is month-long 352B jobs on
fleets that shrink and grow as machines fail and return.  The ft
subsystem recovers a *fixed-size* world; this package adds the missing
half — a deterministic re-partitioner that maps a saved training state
from one parallel layout to another, and a runner that survives
world-size changes mid-run:

* :class:`~repro.elastic.layout.ParallelLayout` — the (world, DP, EP,
  TP, SP, PP) degrees of a run, recorded in every checkpoint's meta
  sidecar and compared on load.
* :mod:`~repro.elastic.reshard` — exact re-flattening of ZeRO-1
  optimizer shards across a changed DP degree, expert re-placement
  under a changed EP degree, DP ring re-formation, and
  :func:`~repro.elastic.reshard.reshard_state` tying them together
  into a :class:`~repro.elastic.reshard.ReshardReport` (bytes moved,
  experts moved, modelled reshard seconds).
* :class:`~repro.elastic.runner.ElasticRunner` — a
  :class:`~repro.core.runner.ProductionRunner` whose trainer factory
  is layout-parameterized; a :class:`~repro.ft.faults.ResizeEvent`
  (injected through the :class:`~repro.core.runner.FaultInjector`
  fault machinery) makes it checkpoint, reshard, rebuild the trainer
  at the new world size, and resume.

The ``elastic_resume`` verify invariant asserts a resize-injected
run's loss trajectory matches the fixed-size run within the existing
per-format precision bands (see :mod:`repro.verify.invariants`).
"""

from .layout import ParallelLayout
from .reshard import (
    DEFAULT_RESHARD_BANDWIDTH,
    ReshardReport,
    expert_moves,
    expert_placement,
    form_dp_rings,
    reshard_state,
    reshard_zero1_state,
    zero1_moved_elements,
    zero1_shard_flat,
    zero1_unshard_flat,
)
from .runner import ElasticRunner

__all__ = [
    "ParallelLayout",
    "ReshardReport",
    "DEFAULT_RESHARD_BANDWIDTH",
    "expert_placement",
    "expert_moves",
    "form_dp_rings",
    "zero1_shard_flat",
    "zero1_unshard_flat",
    "zero1_moved_elements",
    "reshard_zero1_state",
    "reshard_state",
    "ElasticRunner",
]
