"""The parallel layout of a run: one hashable (world, DP, EP, TP, SP, PP).

A checkpoint is only restorable onto a cluster whose parallel degrees
it understands — the Megatron Core report treats resumable resharding
across layouts as table stakes for production MoE training.  This
module gives the repo a single value type for "which layout wrote this
state": recorded in every checkpoint meta sidecar
(:func:`~repro.ft.recovery.write_checkpoint_meta`), compared by
:meth:`~repro.core.runner.ProductionRunner._load` before arrays are
restored, and used as the (from, to) key of every
:func:`~repro.elastic.reshard.reshard_state` call.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional

__all__ = ["ParallelLayout"]


@dataclass(frozen=True)
class ParallelLayout:
    """The parallel degrees of one training run.

    ``world_size`` is the total rank count; the remaining fields are
    the per-dimension degrees (1 = that dimension is not used).  In
    this repo's simulated trainer the model-parallel group spans the
    whole world (``dp == pp == 1``), with SP or TP attention and EP or
    TP FFN sharing the same degree — but the type carries the full
    5-tuple so checkpoints from richer layouts stay self-describing.
    """

    world_size: int
    dp: int = 1
    ep: int = 1
    tp: int = 1
    sp: int = 1
    pp: int = 1

    def __post_init__(self):
        for name in ("world_size", "dp", "ep", "tp", "sp", "pp"):
            value = getattr(self, name)
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"{name} must be an int >= 1, got {value!r}"
                )

    # -- construction --------------------------------------------------------

    @classmethod
    def from_parallel_config(cls, parallel,
                             ) -> "ParallelLayout":
        """Layout of a :class:`~repro.core.config.ParallelConfig`.

        The intra-node degree ``n`` is shared by the attention strategy
        (SP or TP) and the FFN strategy (EP or TP), exactly as §3 lays
        out the per-layer data flow.
        """
        n = parallel.model_parallel_size
        return cls(
            world_size=(n * parallel.pipeline_size
                        * parallel.data_parallel_size),
            dp=parallel.data_parallel_size,
            ep=n if parallel.ffn == "ep" else 1,
            tp=n if "tp" in (parallel.attention, parallel.ffn) else 1,
            sp=n if parallel.attention == "sp" else 1,
            pp=parallel.pipeline_size,
        )

    @classmethod
    def from_trainer(cls, trainer) -> Optional["ParallelLayout"]:
        """Layout of a live trainer, or None for layout-less trainers.

        Duck-typed: anything exposing ``parallel`` (a ParallelConfig)
        qualifies; toy trainers used in tests simply return None and
        opt out of layout checking.
        """
        parallel = getattr(trainer, "parallel", None)
        if parallel is None:
            return None
        try:
            return cls.from_parallel_config(parallel)
        except (AttributeError, TypeError, ValueError):
            return None

    @classmethod
    def from_dict(cls, data: Dict) -> "ParallelLayout":
        """Inverse of :meth:`to_dict` (checkpoint meta sidecars)."""
        return cls(**{k: int(data[k])
                      for k in ("world_size", "dp", "ep", "tp", "sp",
                                "pp") if k in data})

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready form for the checkpoint meta sidecar."""
        return asdict(self)

    def describe(self) -> str:
        """Compact human form, e.g. ``world=4 dp1 ep4 tp1 sp4 pp1``."""
        return (f"world={self.world_size} dp{self.dp} ep{self.ep} "
                f"tp{self.tp} sp{self.sp} pp{self.pp}")
