"""Synthetic language-modelling data.

The paper's convergence experiments (Figs. 17–19) train on ByteDance's
proprietary corpus; we substitute a *learnable* synthetic token stream so
loss curves exhibit a realistic decay that precision changes could
disturb.  Tokens follow a seeded first-order Markov chain whose
transition matrix mixes a low-entropy structured component with a uniform
component — the model must learn the transition structure, so
cross-entropy falls from ``ln(vocab)`` toward the chain's conditional
entropy as training progresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

__all__ = ["MarkovCorpus", "batch_iterator"]


@dataclass
class MarkovCorpus:
    """A seeded Markov-chain token source.

    Attributes:
        vocab_size: Number of distinct tokens.
        branching: Likely successors per token (lower = easier to learn).
        temperature: Mixing weight of the uniform component in (0, 1);
            higher means noisier, higher-entropy text.
        seed: RNG seed; the same seed reproduces the same corpus.
    """

    vocab_size: int = 64
    branching: int = 4
    temperature: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.branching > self.vocab_size:
            raise ValueError(
                f"branching={self.branching} exceeds "
                f"vocab_size={self.vocab_size}"
            )
        rng = np.random.default_rng(self.seed)
        matrix = np.full((self.vocab_size, self.vocab_size),
                         self.temperature / self.vocab_size)
        for token in range(self.vocab_size):
            successors = rng.choice(self.vocab_size, self.branching,
                                    replace=False)
            weights = rng.dirichlet(np.ones(self.branching))
            matrix[token, successors] += (1 - self.temperature) * weights
        self.transition = matrix / matrix.sum(axis=1, keepdims=True)

    def sample(self, rng: np.random.Generator, batch: int,
               seq_len: int) -> np.ndarray:
        """Draw ``[batch, seq_len]`` token ids from the chain."""
        out = np.empty((batch, seq_len), dtype=np.int64)
        out[:, 0] = rng.integers(0, self.vocab_size, batch)
        # Vectorized ancestral sampling via inverse-CDF per step.
        cdf = np.cumsum(self.transition, axis=1)
        for t in range(1, seq_len):
            u = rng.random(batch)
            rows = cdf[out[:, t - 1]]
            out[:, t] = (u[:, None] < rows).argmax(axis=1)
        return out

    def conditional_entropy(self) -> float:
        """Entropy of the next token given the current one (nats) —
        the loss floor a perfect model converges to."""
        p = self.transition
        stationary = self._stationary()
        h = -(p * np.log(p + 1e-30)).sum(axis=1)
        return float((stationary * h).sum())

    def _stationary(self) -> np.ndarray:
        vals, vecs = np.linalg.eig(self.transition.T)
        idx = np.argmin(np.abs(vals - 1.0))
        pi = np.real(vecs[:, idx])
        pi = np.abs(pi)
        return pi / pi.sum()


def batch_iterator(corpus: MarkovCorpus, batch: int, seq_len: int,
                   seed: int = 1,
                   limit: Optional[int] = None) -> Iterator[np.ndarray]:
    """Yield ``[batch, seq_len + 1]`` arrays (inputs + next-token labels)."""
    rng = np.random.default_rng(seed)
    count = 0
    while limit is None or count < limit:
        yield corpus.sample(rng, batch, seq_len + 1)
        count += 1
