"""Synthetic workload generation."""

from .synthetic import MarkovCorpus, batch_iterator

__all__ = ["MarkovCorpus", "batch_iterator"]
