"""repro — reproduction of MegaScale-MoE (EuroSys 2026).

A communication-efficient large-scale MoE training system, rebuilt on a
simulated cluster: real sharded numerics over simulated ranks, plus a
calibrated performance model that regenerates the paper's evaluation.

Quickstart::

    import numpy as np
    from repro import (MODEL_ZOO, ModelConfig, ParallelConfig,
                       TrainConfig, MegaScaleTrainer, World,
                       MoETransformer)

    cfg = ModelConfig("tiny", 2, 32, 8, 2, 48, 8, 2,
                      vocab_size=64, seq_len=16)
    model = MoETransformer(cfg, seed=0)
    trainer = MegaScaleTrainer(model, World(4, 4),
                               ParallelConfig.megascale(4),
                               TrainConfig(global_batch_size=4,
                                           micro_batch_size=4,
                                           seq_len=16))

Subpackages:

* :mod:`repro.core` — configs, Eq. 1–9 analysis, planner, operator
  graphs, holistic scheduler, rematerialization, trainer.
* :mod:`repro.comm` — simulated process groups and collectives with a
  byte ledger.
* :mod:`repro.model` / :mod:`repro.tensor` — numpy MoE transformer with
  tape-based autograd.
* :mod:`repro.parallel` — SP/TP attention, EP/TP FFN, DP, and pipeline
  engines, all numerically equal to the reference model.
* :mod:`repro.precision` — BF16/FP8 emulation, quantization schemes,
  optimizers, communication compression.
* :mod:`repro.perf` / :mod:`repro.sim` — calibrated performance model
  and discrete-event simulator behind every table/figure bench.
* :mod:`repro.baselines` — the Megatron-LM comparison system.
* :mod:`repro.data` — learnable synthetic corpora for loss-curve
  experiments.
"""

from .comm import World
from .core import (
    GPU_SPECS,
    MODEL_ZOO,
    ClusterSpec,
    GPUSpec,
    MegaScaleTrainer,
    ModelConfig,
    NoFeasiblePlan,
    OverlapConfig,
    ParallelConfig,
    TrainConfig,
    plan_cluster,
    plan_parallelism,
)
from .data import MarkovCorpus
from .model import MoETransformer
from .perf import MegaScalePerfModel, MegatronPerfModel

__version__ = "0.1.0"

__all__ = [
    "World",
    "GPU_SPECS",
    "MODEL_ZOO",
    "GPUSpec",
    "MegaScaleTrainer",
    "ModelConfig",
    "OverlapConfig",
    "ParallelConfig",
    "TrainConfig",
    "ClusterSpec",
    "NoFeasiblePlan",
    "plan_cluster",
    "plan_parallelism",
    "MarkovCorpus",
    "MoETransformer",
    "MegaScalePerfModel",
    "MegatronPerfModel",
    "__version__",
]
