"""Transformer building blocks: modules, attention, norms.

The reference (single-rank) implementations of the operators in the
paper's Fig. 20: RMSNorm, fused-QKV projection, RoPE, grouped-query
self-attention, and the output projection.  The parallel engines in
:mod:`repro.parallel` must match these numerically.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..tensor import Tensor, ops

__all__ = ["Module", "Linear", "RMSNorm", "SelfAttention", "init_linear"]


def init_linear(rng: np.random.Generator, fan_in: int, fan_out: int,
                dtype=np.float32) -> np.ndarray:
    """Scaled-normal initialization, std = 1/sqrt(fan_in)."""
    std = 1.0 / np.sqrt(fan_in)
    return (rng.standard_normal((fan_in, fan_out)) * std).astype(dtype)


class Module:
    """Minimal parameter container with recursive traversal."""

    def named_parameters(self, prefix: str = "") -> Iterator[
            Tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs, depth-first."""
        for name, value in vars(self).items():
            full = f"{prefix}{name}" if not prefix else f"{prefix}.{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(full)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(f"{full}.{i}")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Tensor]:
        """All trainable parameter Tensors."""
        return [p for _, p in self.named_parameters()]

    def zero_grad(self) -> None:
        """Clear gradients on every parameter."""
        for p in self.parameters():
            p.zero_grad()

    def n_params(self) -> int:
        """Total trainable element count."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters, validating names and shapes strictly."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        extra = set(state) - set(own)
        if missing or extra:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)[:5]} "
                f"extra={sorted(extra)[:5]}"
            )
        for name, p in own.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: {p.data.shape} vs "
                    f"{state[name].shape}"
                )
            p.data = state[name].astype(p.data.dtype).copy()


class Linear(Module):
    """``y = x @ W (+ b)`` with weight shape ``[in, out]``."""

    def __init__(self, rng: np.random.Generator, fan_in: int, fan_out: int,
                 bias: bool = False, dtype=np.float32):
        self.weight = Tensor(init_linear(rng, fan_in, fan_out, dtype),
                             requires_grad=True, name="weight")
        self.bias = (Tensor(np.zeros(fan_out, dtype=dtype),
                            requires_grad=True, name="bias")
                     if bias else None)

    def __call__(self, x: Tensor) -> Tensor:
        from ..precision.policy import current_policy
        policy = current_policy()
        weight = self.weight
        if policy is not None:
            x = policy.cast_activation(x)
            weight = policy.cast_weight(weight)
        out = x @ weight
        if self.bias is not None:
            out = out + self.bias
        return out


class RMSNorm(Module):
    """Root-mean-square normalization with a learned scale."""

    def __init__(self, hidden_size: int, eps: float = 1e-6,
                 dtype=np.float32):
        self.weight = Tensor(np.ones(hidden_size, dtype=dtype),
                             requires_grad=True, name="weight")
        self.eps = eps

    def __call__(self, x: Tensor) -> Tensor:
        return ops.rmsnorm(x, self.weight, self.eps)


class SelfAttention(Module):
    """Grouped-query causal self-attention with RoPE.

    Input/output shape ``[batch, seq, hidden]``.  The fused QKV projection
    produces ``h(1 + 2/m)`` channels (Fig. 20's ``qkv`` activation); RoPE
    is applied to Q and K; attention runs per head with KV heads shared
    across ``m`` query heads.
    """

    def __init__(self, rng: np.random.Generator, hidden_size: int,
                 n_heads: int, gqa_ratio: int, rope_base: float = 10000.0,
                 dtype=np.float32, memory_efficient: bool = True):
        if n_heads % gqa_ratio != 0:
            raise ValueError(
                f"n_heads={n_heads} not divisible by gqa_ratio={gqa_ratio}"
            )
        if hidden_size % n_heads != 0:
            raise ValueError(
                f"hidden_size={hidden_size} not divisible by "
                f"n_heads={n_heads}"
            )
        self.hidden_size = hidden_size
        self.n_heads = n_heads
        self.n_kv_heads = n_heads // gqa_ratio
        self.head_dim = hidden_size // n_heads
        self.rope_base = rope_base
        #: FlashAttention-style memory behaviour: the s×s attention
        #: probabilities are never materialized on the tape; backward
        #: recomputes them from Q/K/V (identical gradients).
        self.memory_efficient = memory_efficient
        qkv_out = hidden_size + 2 * self.n_kv_heads * self.head_dim
        self.qkv_proj = Linear(rng, hidden_size, qkv_out, dtype=dtype)
        self.out_proj = Linear(rng, hidden_size, hidden_size, dtype=dtype)

    def split_qkv(self, qkv: Tensor, batch: int,
                  seq: int) -> Tuple[Tensor, Tensor, Tensor]:
        """Slice the fused projection into per-head Q, K, V tensors."""
        h = self.hidden_size
        kv = self.n_kv_heads * self.head_dim
        q = qkv[:, :, :h].reshape(batch, seq, self.n_heads, self.head_dim)
        k = qkv[:, :, h:h + kv].reshape(batch, seq, self.n_kv_heads,
                                        self.head_dim)
        v = qkv[:, :, h + kv:].reshape(batch, seq, self.n_kv_heads,
                                       self.head_dim)
        return q, k, v

    def attend(self, q: Tensor, k: Tensor, v: Tensor,
               positions: Optional[np.ndarray] = None) -> Tensor:
        """RoPE + causal attention on ``[b, s, heads, head_dim]`` inputs.

        Returns ``[b, s, q_heads, head_dim]``.  ``positions`` carries the
        absolute token positions when the caller holds a sequence shard.
        """
        q = ops.rope_rotate(q, self.rope_base, positions)
        k = ops.rope_rotate(k, self.rope_base, positions)
        qh = q.transpose(0, 2, 1, 3)
        kh = k.transpose(0, 2, 1, 3)
        vh = v.transpose(0, 2, 1, 3)
        if self.memory_efficient:
            from ..tensor.checkpoint import checkpoint_segment
            out = checkpoint_segment(
                lambda a, b, c: ops.scaled_dot_product_attention(
                    a, b, c, causal=True),
                qh, kh, vh)
        else:
            out = ops.scaled_dot_product_attention(qh, kh, vh,
                                                   causal=True)
        return out.transpose(0, 2, 1, 3)

    def decode_attend(self, q_rot: Tensor, k_cache: Tensor,
                      v_cache: Tensor) -> Tensor:
        """Attention over cached (already-rotated) K/V for serving.

        ``q_rot`` is ``[1, s_q, n_heads, head_dim]`` with RoPE already
        applied; ``k_cache``/``v_cache`` are ``[1, T, n_kv_heads,
        head_dim]`` — the paged-KV gather, keys post-RoPE.  Two modes:

        * **prefill** (``s_q == T``): the square causal mask applies,
          exactly as :meth:`attend`;
        * **decode** (``s_q == 1 < T``): the single query sits at the
          last position and legitimately sees every cached key, so the
          causal mask must be *off* — ``np.triu(..., k=1)`` on a
          ``[1, T]`` score row would wrongly mask all but the first key.

        Chunked prefill (``1 < s_q < T``) is not supported.
        """
        s_q = q_rot.shape[1]
        t_kv = k_cache.shape[1]
        if s_q != t_kv and s_q != 1:
            raise ValueError(
                f"decode_attend needs s_q == T (prefill) or s_q == 1 "
                f"(decode); got s_q={s_q}, T={t_kv}"
            )
        qh = q_rot.transpose(0, 2, 1, 3)
        kh = k_cache.transpose(0, 2, 1, 3)
        vh = v_cache.transpose(0, 2, 1, 3)
        out = ops.scaled_dot_product_attention(qh, kh, vh,
                                               causal=s_q == t_kv)
        return out.transpose(0, 2, 1, 3)

    def __call__(self, x: Tensor) -> Tensor:
        b, s, _ = x.shape
        qkv = self.qkv_proj(x)
        q, k, v = self.split_qkv(qkv, b, s)
        attn = self.attend(q, k, v)
        attn = attn.reshape(b, s, self.hidden_size)
        return self.out_proj(attn)
