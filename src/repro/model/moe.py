"""Mixture-of-Experts layer: router, experts, grouped computation.

Reference (single-rank) implementation of the paper's MoE FFN:

* :class:`TopKRouter` — trainable gate with top-k selection, the
  device-group auxiliary balance loss of §3.2 ("similar to DeepSeek-V2,
  we treat the experts placed on the same GPU as a group"), and optional
  capacity-based token dropping.
* :class:`Expert` — one SwiGLU FFN (fc1 / fc3 gate / fc2, Fig. 20).
* :class:`MoELayer` — dispatch → GroupedGEMM-style per-expert compute →
  weighted combine.  Following §4.1, the gate-weighted sum is applied
  *after* FC2 so ``ffn_out`` never needs to be stored separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..tensor import Tensor, ops
from .layers import Linear, Module, init_linear
from .routing import DispatchPlan, RoutingResult, build_dispatch_plan

__all__ = ["TopKRouter", "Expert", "MoELayer", "MoEOutput",
           "grouped_expert_forward"]


@dataclass
class MoEOutput:
    """Everything a MoE layer forward produces."""

    hidden: Tensor
    aux_loss: Tensor
    routing: RoutingResult
    plan: DispatchPlan
    tokens_per_expert: np.ndarray


class TopKRouter(Module):
    """Trainable gating network with top-k routing.

    Args:
        rng: Initialization source.
        hidden_size: Input feature width.
        n_experts: Total experts.
        top_k: Experts per token.
        experts_per_group: Group size for the balance loss; with EP this
            is ``n_experts / ep_size`` so each group is one GPU's experts
            (§3.2 "Load balance").  Defaults to 1 (per-expert balance).
        capacity_factor: If > 0, each expert keeps at most
            ``ceil(capacity_factor · T · k / E)`` token-slots; the rest
            are dropped.  0 disables dropping.
    """

    def __init__(self, rng: np.random.Generator, hidden_size: int,
                 n_experts: int, top_k: int, experts_per_group: int = 1,
                 capacity_factor: float = 0.0, dtype=np.float32):
        if top_k > n_experts:
            raise ValueError(f"top_k={top_k} > n_experts={n_experts}")
        if n_experts % experts_per_group != 0:
            raise ValueError(
                f"n_experts={n_experts} not divisible by "
                f"experts_per_group={experts_per_group}"
            )
        self.gate = Linear(rng, hidden_size, n_experts, dtype=dtype)
        self.n_experts = n_experts
        self.top_k = top_k
        self.experts_per_group = experts_per_group
        self.capacity_factor = capacity_factor

    def __call__(self, x_flat: Tensor) -> Tuple[RoutingResult, Tensor,
                                                Tensor]:
        """Route a flat ``[T, h]`` batch.

        Returns ``(routing, gate_weights, aux_loss)`` where
        ``gate_weights`` is the differentiable ``[T, k]`` combine-weight
        tensor (renormalized over the selected experts).
        """
        t = x_flat.shape[0]
        logits = self.gate(x_flat)
        probs = ops.softmax(logits, axis=-1)

        # Top-k selection happens on values only (indices carry no grad).
        raw = probs.data
        idx = np.argsort(-raw, axis=-1, kind="stable")[:, :self.top_k]
        selected = probs[np.arange(t)[:, None], idx]
        denom = selected.sum(axis=-1, keepdims=True)
        weights = selected / (denom + 1e-20)

        kept = self._capacity_mask(idx, t)
        aux = self._aux_loss(probs, idx, kept)
        routing = RoutingResult(
            expert_index=idx, gate_weight=weights.data.copy(), kept=kept)
        return routing, weights, aux

    def _capacity_mask(self, idx: np.ndarray, t: int) -> np.ndarray:
        """Token-drop mask: first-come-first-served per expert."""
        kept = np.ones_like(idx, dtype=bool)
        if self.capacity_factor <= 0:
            return kept
        capacity = int(np.ceil(
            self.capacity_factor * t * self.top_k / self.n_experts))
        fill = np.zeros(self.n_experts, dtype=np.int64)
        flat_experts = idx.reshape(-1)
        flat_kept = kept.reshape(-1)
        for pos, e in enumerate(flat_experts):
            if fill[e] >= capacity:
                flat_kept[pos] = False
            else:
                fill[e] += 1
        return flat_kept.reshape(idx.shape)

    def _aux_loss(self, probs: Tensor, idx: np.ndarray,
                  kept: np.ndarray) -> Tensor:
        """Device-group balance loss: ``G · Σ_g f_g · P_g``.

        ``f_g`` — fraction of kept token-slots dispatched to group ``g``
        (a constant w.r.t. the gate); ``P_g`` — mean routed probability
        mass of group ``g`` (differentiable).  With
        ``experts_per_group=1`` this reduces to the classic Switch loss.
        """
        g_size = self.experts_per_group
        n_groups = self.n_experts // g_size
        counts = np.bincount(idx[kept].reshape(-1),
                             minlength=self.n_experts).astype(np.float64)
        group_counts = counts.reshape(n_groups, g_size).sum(axis=1)
        total = max(group_counts.sum(), 1.0)
        f = group_counts / total  # dispatch fraction per group

        t = probs.shape[0]
        group_probs = probs.reshape(t, n_groups, g_size).sum(axis=-1)
        p = group_probs.mean(axis=0)  # [n_groups], differentiable
        return (p * f).sum() * float(n_groups)


class Expert(Module):
    """One SwiGLU feed-forward expert: ``fc2(silu(fc1 x) * fc3 x)``.

    With ``remat=True`` the SwiGLU activation is gradient-checkpointed:
    ``fc1_out``/``fc3_out`` stay resident (GroupedGEMM outputs, §4.1's
    retained set) while ``fc2_in`` is recomputed during backward —
    exactly the Fig. 8b rematerialization.
    """

    def __init__(self, rng: np.random.Generator, hidden_size: int,
                 ffn_hidden_size: int, dtype=np.float32,
                 remat: bool = False):
        self.fc1 = Tensor(init_linear(rng, hidden_size, ffn_hidden_size,
                                      dtype), requires_grad=True, name="fc1")
        self.fc3 = Tensor(init_linear(rng, hidden_size, ffn_hidden_size,
                                      dtype), requires_grad=True, name="fc3")
        self.fc2 = Tensor(init_linear(rng, ffn_hidden_size, hidden_size,
                                      dtype), requires_grad=True, name="fc2")
        self.remat = remat

    def __call__(self, x: Tensor) -> Tensor:
        from ..precision.policy import current_policy
        policy = current_policy()
        fc1, fc3, fc2 = self.fc1, self.fc3, self.fc2
        if policy is not None:
            x = policy.cast_activation(x)
            fc1 = policy.cast_weight(fc1)
            fc3 = policy.cast_weight(fc3)
            fc2 = policy.cast_weight(fc2)
        gate_in = x @ fc1
        lin_in = x @ fc3
        if self.remat:
            from ..tensor.checkpoint import checkpoint_segment
            fc2_in = checkpoint_segment(
                lambda a, b: a.silu() * b, gate_in, lin_in)
        else:
            fc2_in = gate_in.silu() * lin_in
        if policy is not None:
            # SwiGLU expands the dynamic range; the FC2 input is
            # re-quantized exactly where the paper applies per-token
            # quantization (§7, "FP8 training").
            fc2_in = policy.cast_activation(fc2_in)
        return fc2_in @ fc2


def grouped_expert_forward(experts: List[Expert], ffn_in: Tensor,
                           plan: DispatchPlan,
                           expert_offset: int = 0) -> Tensor:
    """GroupedGEMM: run each expert on its contiguous row block.

    ``ffn_in`` rows must already be sorted by expert per ``plan``;
    ``expert_offset`` maps plan expert ids onto the local ``experts``
    list (non-zero on EP ranks holding a slice of the expert set).
    """
    pieces = []
    for expert_id, start, end in plan.expert_slices():
        local = expert_id - expert_offset
        if not 0 <= local < len(experts):
            raise IndexError(
                f"plan references expert {expert_id}, but this rank holds "
                f"[{expert_offset}, {expert_offset + len(experts)})"
            )
        pieces.append(experts[local](ffn_in[start:end]))
    if not pieces:
        return Tensor(np.zeros((0, experts[0].fc2.shape[1]),
                               dtype=ffn_in.dtype))
    return ops.concat(pieces, axis=0)


class MoELayer(Module):
    """Router + experts + dispatch/combine, reference implementation."""

    def __init__(self, rng: np.random.Generator, hidden_size: int,
                 ffn_hidden_size: int, n_experts: int, top_k: int,
                 experts_per_group: int = 1, capacity_factor: float = 0.0,
                 dtype=np.float32, remat: bool = False):
        self.router = TopKRouter(rng, hidden_size, n_experts, top_k,
                                 experts_per_group, capacity_factor, dtype)
        self.experts = [Expert(rng, hidden_size, ffn_hidden_size, dtype,
                               remat=remat)
                        for _ in range(n_experts)]
        self.hidden_size = hidden_size
        self.n_experts = n_experts
        self.top_k = top_k

    def __call__(self, x: Tensor) -> MoEOutput:
        """Forward over ``[b, s, h]`` (or already-flat ``[T, h]``) input."""
        orig_shape = x.shape
        if x.ndim == 3:
            x_flat = x.reshape(-1, orig_shape[-1])
        else:
            x_flat = x
        t = x_flat.shape[0]

        routing, weights, aux = self.router(x_flat)
        plan = build_dispatch_plan(routing, self.n_experts)

        # Scatter: replicate each token's row into its routed positions.
        ffn_in = ops.take_rows(x_flat, plan.token_of_row)
        fc2_out = grouped_expert_forward(self.experts, ffn_in, plan)

        # Weighted combine *after* FC2 (§4.1 reordering): scale each row
        # by its gate weight, then accumulate back per token.
        w_rows = weights[plan.token_of_row, plan.slot_of_row]
        scaled = fc2_out * w_rows.reshape(-1, 1)
        combined = ops.put_rows(scaled, plan.token_of_row, t)

        if len(orig_shape) == 3:
            combined = combined.reshape(*orig_shape)
        return MoEOutput(
            hidden=combined,
            aux_loss=aux,
            routing=routing,
            plan=plan,
            tokens_per_expert=routing.tokens_per_expert(self.n_experts),
        )
