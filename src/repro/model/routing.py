"""Token-routing results and precomputed dispatch mappings.

Section 3.2 ("Efficient operators"): instead of ``torch.scatter_add`` /
``torch.gather``, MegaScale-MoE *pre-calculates the mapping from each row
of the input tensor (a token) to the corresponding row of the output
tensor* from the routing result, then performs scatter/gather as pure
index-driven data movement.  This module builds those mappings.

A routing decision for ``T`` tokens with top-``k`` produces ``T·k``
(token, slot) pairs.  :class:`DispatchPlan` sorts the pairs by expert —
and, for the overlapped AG+scatter+GroupedGEMM kernel, secondarily by
*source rank* (§4.2) — yielding:

* ``token_of_row``  — for output row ``r``, which input token it reads;
* ``slot_of_row``   — which of the token's k slots it corresponds to;
* ``expert_counts`` — contiguous row counts per expert (GroupedGEMM sizes);
* ``row_of_pair``   — inverse map used by the combine/gather step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["RoutingResult", "DispatchPlan", "build_dispatch_plan"]


@dataclass
class RoutingResult:
    """Output of the gating network for a flat batch of tokens.

    Attributes:
        expert_index: ``[T, k]`` int array — chosen expert per slot.
        gate_weight: ``[T, k]`` float array — combine weight per slot
            (already renormalized over the k chosen experts).
        kept: ``[T, k]`` bool array — False where the token-slot was
            dropped by the capacity limit (§3.2 "Load balance").
    """

    expert_index: np.ndarray
    gate_weight: np.ndarray
    kept: np.ndarray

    def __post_init__(self):
        if self.expert_index.shape != self.gate_weight.shape:
            raise ValueError("expert_index and gate_weight shapes differ")
        if self.kept.shape != self.expert_index.shape:
            raise ValueError("kept mask shape differs from expert_index")

    @property
    def n_tokens(self) -> int:
        return self.expert_index.shape[0]

    @property
    def top_k(self) -> int:
        return self.expert_index.shape[1]

    def tokens_per_expert(self, n_experts: int) -> np.ndarray:
        """Kept token-slots routed to each expert."""
        idx = self.expert_index[self.kept]
        return np.bincount(idx, minlength=n_experts)


@dataclass
class DispatchPlan:
    """Precomputed index maps for scatter (dispatch) and gather (combine)."""

    #: For each output row (sorted by expert): source token id. ``[R]``
    token_of_row: np.ndarray
    #: For each output row: which top-k slot of that token. ``[R]``
    slot_of_row: np.ndarray
    #: Rows assigned to each expert, contiguous in row order. ``[E]``
    expert_counts: np.ndarray
    #: Inverse map: row id for each kept (token, slot) pair, -1 if dropped.
    row_of_pair: np.ndarray

    @property
    def n_rows(self) -> int:
        return self.token_of_row.shape[0]

    def expert_slices(self) -> Tuple[Tuple[int, int, int], ...]:
        """(expert, start_row, end_row) for every non-empty expert."""
        offsets = np.concatenate([[0], np.cumsum(self.expert_counts)])
        return tuple(
            (e, int(offsets[e]), int(offsets[e + 1]))
            for e in range(len(self.expert_counts))
            if self.expert_counts[e] > 0
        )


def build_dispatch_plan(
    routing: RoutingResult,
    n_experts: int,
    source_rank_of_token: Optional[np.ndarray] = None,
) -> DispatchPlan:
    """Build the row-index maps for a routing result.

    Args:
        routing: Router output over a flat token batch.
        n_experts: Total experts visible to this plan (global experts for
            the reference model, local experts for an EP rank).
        source_rank_of_token: Optional ``[T]`` array giving the rank each
            token arrived from.  When provided, rows are sorted by
            ``(expert, source_rank)`` — the §4.2 ordering that lets each
            GroupedGEMM tile depend on as few source ranks as possible.

    Returns:
        A :class:`DispatchPlan` with stable ordering (ties keep token
        order) so results are deterministic.
    """
    t, k = routing.expert_index.shape
    pair_token = np.repeat(np.arange(t), k)
    pair_slot = np.tile(np.arange(k), t)
    pair_expert = routing.expert_index.reshape(-1)
    pair_kept = routing.kept.reshape(-1)

    kept_pos = np.nonzero(pair_kept)[0]
    experts = pair_expert[kept_pos]
    if (experts < 0).any() or (experts >= n_experts).any():
        raise ValueError(
            f"expert index out of range [0, {n_experts}) in routing result"
        )
    if source_rank_of_token is not None:
        ranks = np.asarray(source_rank_of_token)[pair_token[kept_pos]]
        order = np.lexsort((kept_pos, ranks, experts))
    else:
        order = np.lexsort((kept_pos, experts))
    sorted_pos = kept_pos[order]

    token_of_row = pair_token[sorted_pos]
    slot_of_row = pair_slot[sorted_pos]
    expert_counts = np.bincount(experts, minlength=n_experts)

    row_of_pair = np.full(t * k, -1, dtype=np.int64)
    row_of_pair[sorted_pos] = np.arange(sorted_pos.shape[0])

    return DispatchPlan(
        token_of_row=token_of_row,
        slot_of_row=slot_of_row,
        expert_counts=expert_counts,
        row_of_pair=row_of_pair.reshape(t, k),
    )
