"""Numerical MoE transformer substrate."""

from .layers import Linear, Module, RMSNorm, SelfAttention, init_linear
from .moe import Expert, MoELayer, MoEOutput, TopKRouter, \
    grouped_expert_forward
from .routing import DispatchPlan, RoutingResult, build_dispatch_plan
from .transformer import ModelForward, MoETransformer, TransformerBlock

__all__ = [
    "Linear",
    "Module",
    "RMSNorm",
    "SelfAttention",
    "init_linear",
    "Expert",
    "MoELayer",
    "MoEOutput",
    "TopKRouter",
    "grouped_expert_forward",
    "DispatchPlan",
    "RoutingResult",
    "build_dispatch_plan",
    "ModelForward",
    "MoETransformer",
    "TransformerBlock",
]
