"""Full MoE transformer: embedding → N blocks → LM head.

Each block follows the paper's Fig. 20 data flow:

    hidden → RMSNorm → attention → +residual (ln2_in)
           → RMSNorm → MoE FFN   → +residual (next hidden)

The model returns logits plus the summed router auxiliary loss so the
trainer can weight it (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.config import ModelConfig
from ..tensor import Tensor, ops
from .layers import Linear, Module, RMSNorm, SelfAttention
from .moe import MoELayer, MoEOutput

__all__ = ["TransformerBlock", "MoETransformer", "ModelForward"]


@dataclass
class ModelForward:
    """Forward-pass outputs of :class:`MoETransformer`."""

    logits: Tensor
    aux_loss: Tensor
    moe_outputs: List[MoEOutput]


class TransformerBlock(Module):
    """One attention + MoE-FFN block with pre-norm residuals.

    With ``remat=True`` the memory-bound operators are gradient-
    checkpointed per §4.1: the RMSNorms recompute from their residual
    inputs and each expert's SwiGLU recomputes from the retained
    GroupedGEMM outputs, while attention and FFN GEMM activations stay
    resident.
    """

    def __init__(self, rng: np.random.Generator, config: ModelConfig,
                 experts_per_group: int = 1, capacity_factor: float = 0.0,
                 dtype=np.float32, remat: bool = False):
        self.ln1 = RMSNorm(config.hidden_size, dtype=dtype)
        self.attn = SelfAttention(rng, config.hidden_size, config.n_heads,
                                  config.gqa_ratio, dtype=dtype)
        self.ln2 = RMSNorm(config.hidden_size, dtype=dtype)
        self.moe = MoELayer(rng, config.hidden_size, config.ffn_hidden_size,
                            config.n_experts, config.top_k,
                            experts_per_group, capacity_factor, dtype,
                            remat=remat)
        self.remat = remat

    def __call__(self, hidden: Tensor) -> tuple:
        if self.remat:
            from ..tensor.checkpoint import checkpoint_segment
            ln1_out = checkpoint_segment(self.ln1, hidden)
            attn_out = self.attn(ln1_out)
            ln2_in = hidden + attn_out
            ln2_out = checkpoint_segment(self.ln2, ln2_in)
            moe_out = self.moe(ln2_out)
        else:
            attn_out = self.attn(self.ln1(hidden))
            ln2_in = hidden + attn_out
            moe_out = self.moe(self.ln2(ln2_in))
        return ln2_in + moe_out.hidden, moe_out


class MoETransformer(Module):
    """The reference model every parallel engine is validated against."""

    def __init__(self, config: ModelConfig, seed: int = 0,
                 experts_per_group: int = 1, capacity_factor: float = 0.0,
                 dtype=np.float32, remat: bool = False):
        rng = np.random.default_rng(seed)
        self.config = config
        self.embedding = Tensor(
            (rng.standard_normal((config.vocab_size, config.hidden_size))
             * 0.02).astype(dtype),
            requires_grad=True, name="embedding",
        )
        self.blocks = [
            TransformerBlock(rng, config, experts_per_group,
                             capacity_factor, dtype, remat=remat)
            for _ in range(config.n_layers)
        ]
        self.final_norm = RMSNorm(config.hidden_size, dtype=dtype)
        self.lm_head = Linear(rng, config.hidden_size, config.vocab_size,
                              dtype=dtype)

    def __call__(self, token_ids: np.ndarray) -> ModelForward:
        """Forward over integer token ids ``[batch, seq]``."""
        token_ids = np.asarray(token_ids)
        if token_ids.ndim != 2:
            raise ValueError(
                f"expected [batch, seq] token ids, got {token_ids.shape}"
            )
        hidden = ops.embedding(self.embedding, token_ids)
        moe_outputs: List[MoEOutput] = []
        aux_total: Optional[Tensor] = None
        for block in self.blocks:
            hidden, moe_out = block(hidden)
            moe_outputs.append(moe_out)
            aux_total = (moe_out.aux_loss if aux_total is None
                         else aux_total + moe_out.aux_loss)
        hidden = self.final_norm(hidden)
        logits = self.lm_head(hidden)
        return ModelForward(logits=logits, aux_loss=aux_total,
                            moe_outputs=moe_outputs)

    def language_model_loss(self, token_ids: np.ndarray,
                            aux_coeff: float = 0.0) -> Tensor:
        """Next-token cross-entropy (+ weighted aux loss) on a batch."""
        forward = self(token_ids[:, :-1])
        loss = ops.cross_entropy(forward.logits, token_ids[:, 1:])
        if aux_coeff > 0:
            loss = loss + forward.aux_loss * aux_coeff
        return loss
