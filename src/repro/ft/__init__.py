"""Fault tolerance: injection, detection, and recovery (§7 / Fig. 19).

A months-long 10k-GPU run survives because the system around the
training loop detects faults and recovers from them.  This subpackage
supplies that system for the simulated cluster:

* :mod:`repro.ft.faults` — fault taxonomy plus :class:`FaultPlan`,
  the deterministic injector the comm layer consults around every
  collective (crashes, timeouts, payload corruption, slow links).
* :mod:`repro.ft.health` — straggler detection from per-rank
  collective timings, NaN/inf guards, loss-spike guards.
* :mod:`repro.ft.recovery` — retry-with-backoff for transient comm
  faults and CRC-validated checkpoint chains for restart recovery.

``ProductionRunner`` (:mod:`repro.core.runner`) wires these together;
``python -m repro ft-demo`` shows the whole pipeline end to end.
"""

from .faults import (
    CommTimeout,
    Fault,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    LossSpike,
    NumericFault,
    PayloadCorruption,
    RankCrash,
    ResizeEvent,
    RetryExhausted,
    TransientCommFault,
)
from .health import (
    HealthMonitor,
    LossSpikeGuard,
    NumericGuard,
    StragglerDetector,
)
from .recovery import (
    BackoffPolicy,
    LayoutMismatch,
    RetryStats,
    file_crc32,
    read_checkpoint_meta,
    retry_with_backoff,
    validate_checkpoint,
    write_checkpoint_meta,
)

__all__ = [
    "Fault",
    "TransientCommFault",
    "CommTimeout",
    "PayloadCorruption",
    "RankCrash",
    "NumericFault",
    "LossSpike",
    "RetryExhausted",
    "ResizeEvent",
    "LayoutMismatch",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "StragglerDetector",
    "NumericGuard",
    "LossSpikeGuard",
    "HealthMonitor",
    "BackoffPolicy",
    "RetryStats",
    "retry_with_backoff",
    "file_crc32",
    "read_checkpoint_meta",
    "write_checkpoint_meta",
    "validate_checkpoint",
]
