"""Health monitoring: straggler detection and numeric guards.

At production scale a single slow GPU (thermal throttling, a flaky
NIC) drags every collective it participates in, and a single bad
update (corrupt data, optimizer blow-up) shows up as a NaN or a loss
spike long before anyone reads a log.  This module provides the
detection half of the fault-tolerance story:

* :class:`StragglerDetector` — per-rank rolling window of *relative*
  collective durations; a rank whose windowed mean is a z-score
  outlier across ranks (and materially slower in absolute terms) is
  flagged.  Relative durations make ops of very different sizes
  comparable, so the window can mix all-gathers with all-to-alls.
* :class:`NumericGuard` — raises :class:`~repro.ft.faults.NumericFault`
  on NaN/inf losses or gradient norms.
* :class:`LossSpikeGuard` — raises :class:`~repro.ft.faults.LossSpike`
  when a loss exceeds a multiple of its rolling median.
* :class:`HealthMonitor` — bundles the above behind the two hook
  points the rest of the stack calls: ``observe_collective`` (wired to
  :class:`~repro.comm.group.ProcessGroup` via ``World.health``) and
  ``on_step_result`` (called by ``MegaScaleTrainer.train_step``).
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence

from .faults import LossSpike, NumericFault

__all__ = [
    "StragglerDetector",
    "NumericGuard",
    "LossSpikeGuard",
    "HealthMonitor",
]


class StragglerDetector:
    """Flags ranks whose recent collective timings are outliers.

    Args:
        window: Rolling window length (number of collectives) per rank.
        z_threshold: Minimum z-score of a rank's windowed mean relative
            duration, across ranks, to flag it.  Note the z-score of a
            single outlier among ``n`` ranks is bounded by
            ``sqrt(n - 1)``, so thresholds above ~1.7 can never fire
            for 4-rank groups.
        rel_threshold: Minimum windowed mean relative duration (1.0 =
            exactly average) to flag — guards against flagging noise
            when all ranks are effectively identical.
    """

    def __init__(self, window: int = 8, z_threshold: float = 1.5,
                 rel_threshold: float = 1.25):
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.window = int(window)
        self.z_threshold = float(z_threshold)
        self.rel_threshold = float(rel_threshold)
        self._windows: Dict[int, Deque[float]] = {}

    def observe(self, ranks: Sequence[int],
                durations: Sequence[float]) -> None:
        """Record one collective's per-rank durations (seconds)."""
        if len(ranks) != len(durations):
            raise ValueError(
                f"{len(ranks)} ranks but {len(durations)} durations"
            )
        # Non-finite or negative timings (a clock glitch, a poisoned
        # perf counter, an inf slow-factor) would permanently blind the
        # detector: one NaN in any window makes that rank's mean NaN,
        # which drags the cross-rank mean/std to NaN and flagged()
        # never fires again.  Drop the whole observation instead.
        if any(not math.isfinite(d) or d < 0.0 for d in durations):
            return
        mean = sum(durations) / len(durations) if durations else 0.0
        if not math.isfinite(mean) or mean <= 0.0:
            return
        for rank, duration in zip(ranks, durations):
            window = self._windows.get(rank)
            if window is None:
                window = deque(maxlen=self.window)
                self._windows[rank] = window
            window.append(duration / mean)

    def windowed_means(self) -> Dict[int, float]:
        """Mean relative duration per rank with a full window."""
        return {
            rank: sum(window) / len(window)
            for rank, window in self._windows.items()
            if len(window) >= self.window
        }

    def flagged(self) -> List[int]:
        """Ranks currently detected as stragglers (sorted)."""
        means = self.windowed_means()
        if len(means) < 2:
            return []
        values = list(means.values())
        mu = sum(values) / len(values)
        var = sum((v - mu) ** 2 for v in values) / len(values)
        std = math.sqrt(var)
        # Zero-variance (all ranks identical) and degenerate windows
        # produce no outliers by definition; never divide by ~0/NaN.
        if not math.isfinite(std) or std < 1e-9:
            return []
        return sorted(
            rank for rank, value in means.items()
            if (value - mu) / std > self.z_threshold
            and value > self.rel_threshold
        )


class NumericGuard:
    """Raises :class:`NumericFault` on non-finite training telemetry."""

    def __init__(self):
        self.checked = 0

    def check(self, result) -> None:
        """Validate a loss value or a ``TrainStepResult``-like object."""
        self.checked += 1
        loss = float(getattr(result, "loss", result))
        if not math.isfinite(loss):
            raise NumericFault(f"non-finite loss: {loss}")
        grad_norm = getattr(result, "grad_norm", None)
        if grad_norm is not None and not math.isfinite(float(grad_norm)):
            raise NumericFault(f"non-finite grad norm: {grad_norm}")


class LossSpikeGuard:
    """Raises :class:`LossSpike` when a loss jumps above its history.

    The threshold is ``factor`` times the rolling median of the last
    ``window`` accepted losses; the median makes the guard robust to
    the very spikes it is meant to catch.  Spiking losses are *not*
    added to the history, so the post-rollback replay is judged
    against clean statistics.
    """

    def __init__(self, window: int = 8, factor: float = 2.0,
                 min_history: int = 4):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if factor <= 1.0:
            raise ValueError(f"factor must be > 1, got {factor}")
        self.window = int(window)
        self.factor = float(factor)
        self.min_history = int(min_history)
        self._history: Deque[float] = deque(maxlen=window)

    def rolling_median(self) -> Optional[float]:
        """Median of the accepted-loss window (None while empty)."""
        if not self._history:
            return None
        values = sorted(self._history)
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def observe(self, step: int, loss: float) -> None:
        """Judge one loss; accepted values enter the rolling window."""
        loss = float(loss)
        if not math.isfinite(loss):
            raise NumericFault(f"non-finite loss at step {step}: {loss}")
        if len(self._history) >= self.min_history:
            median = self.rolling_median()
            if loss > self.factor * median:
                raise LossSpike(
                    f"loss {loss:.4g} at step {step} exceeds "
                    f"{self.factor:g}x rolling median {median:.4g}"
                )
        self._history.append(loss)


class HealthMonitor:
    """Aggregates detectors behind the comm and trainer hook points.

    Attach to a :class:`~repro.comm.group.World` (``world.health``) so
    every collective feeds the straggler detector, and pass to
    :class:`~repro.core.trainer.MegaScaleTrainer` so each step result
    passes the numeric guard.
    """

    def __init__(self, straggler: Optional[StragglerDetector] = None,
                 numeric: Optional[NumericGuard] = None):
        self.straggler = straggler or StragglerDetector()
        self.numeric = numeric or NumericGuard()
        self.collectives_seen = 0
        # Concurrent replicas/pipeline waves share one monitor; the
        # counter bump and the straggler-window appends serialize.
        self._lock = threading.Lock()

    def observe_collective(self, op: str, ranks: Sequence[int],
                           durations: Sequence[float],
                           tag: str = "") -> None:
        """Feed one collective's per-rank timings (from the comm layer)."""
        with self._lock:
            self.collectives_seen += 1
            self.straggler.observe(ranks, durations)

    def on_step_result(self, result) -> None:
        """Validate one training step's telemetry (from the trainer)."""
        self.numeric.check(result)

    def flagged_stragglers(self) -> List[int]:
        """Ranks currently flagged by the straggler detector."""
        return self.straggler.flagged()
