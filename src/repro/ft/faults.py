"""Fault taxonomy and deterministic fault injection for the comm layer.

The Fig. 19 production run "uses over 10,000 GPUs and lasts for months
... Different colors indicate training restarts" — at that scale the
comm substrate routinely experiences rank crashes, NCCL timeouts,
corrupted transfers, and slow links.  This module models those faults
on the simulated cluster:

* an exception hierarchy rooted at :class:`Fault`, split into
  *transient* faults (retryable at the call site:
  :class:`CommTimeout`, :class:`PayloadCorruption`) and *persistent*
  ones (require a restart: :class:`RankCrash`, :class:`NumericFault`,
  :class:`LossSpike`, :class:`RetryExhausted`);
* :class:`FaultPlan` — a deterministic, seeded schedule of faults that
  :class:`~repro.comm.group.ProcessGroup` consults before and after
  every collective.  Scheduled faults fire exactly once (the
  post-recovery replay proceeds, as on a real cluster after the bad
  node is cordoned); probabilistic faults fire at a per-call ``rate``
  from a seeded RNG, so a given seed always produces the same fault
  sequence.

The comm layer talks to the plan through three duck-typed hooks
(``before`` / ``corrupt`` / ``slow_factor``), so :mod:`repro.comm`
never imports this module.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = [
    "Fault",
    "TransientCommFault",
    "CommTimeout",
    "PayloadCorruption",
    "RankCrash",
    "NumericFault",
    "LossSpike",
    "RetryExhausted",
    "ResizeEvent",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
]


class Fault(RuntimeError):
    """Base class for every injected or detected training fault."""


class TransientCommFault(Fault):
    """A comm fault that a bounded retry of the same step may clear."""


class CommTimeout(TransientCommFault):
    """A collective exceeded its deadline (models an NCCL timeout)."""


class PayloadCorruption(TransientCommFault):
    """A transfer checksum mismatched (bit-flip on the wire)."""


class RankCrash(Fault):
    """A rank died mid-collective; the job must restart."""


class NumericFault(Fault):
    """A NaN/inf appeared in the loss or gradients."""


class LossSpike(Fault):
    """The loss jumped far above its rolling statistics."""


class RetryExhausted(Fault):
    """Transient-fault retries ran out; escalate to a restart."""


class ResizeEvent(Fault):
    """The cluster changed size: rebuild the world at a new layout.

    Raised by the step-level injector when the fleet shrinks (machines
    fail) or grows (machines return).  ``layout`` is the *target*
    parallel layout — a :class:`~repro.elastic.layout.ParallelLayout`,
    or anything the runner's layout factory accepts (duck-typed so this
    module stays import-free of :mod:`repro.elastic`).  A fixed-size
    :class:`~repro.core.runner.ProductionRunner` re-raises it; an
    :class:`~repro.elastic.runner.ElasticRunner` answers with
    checkpoint–reshard–resume.
    """

    def __init__(self, step: int, layout: object):
        super().__init__(
            f"cluster resize at step {step} -> {layout}"
        )
        self.step = int(step)
        self.layout = layout


_KINDS = ("crash", "timeout", "corrupt")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    Attributes:
        kind: ``"crash"``, ``"timeout"``, or ``"corrupt"``.
        at_call: Global collective call index (0-based, as counted by
            the plan across the whole run) at which the fault fires.
        op: Restrict to one collective op name (``None`` = any).
    """

    kind: str
    at_call: int
    op: Optional[str] = None

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{_KINDS}"
            )
        if self.at_call < 0:
            raise ValueError(f"at_call must be >= 0, got {self.at_call}")


@dataclass(frozen=True)
class FaultEvent:
    """Record of one fault that actually fired."""

    kind: str
    op: str
    tag: str
    call_index: int


class FaultPlan:
    """Deterministic fault schedule consulted by the comm layer.

    Args:
        specs: Scheduled :class:`FaultSpec` entries; each fires at most
            once and is then retired.
        rate: Per-collective-call probability of a random fault.
        kinds: Fault kinds the probabilistic mode draws from.
        slow_ranks: ``{global_rank: slowdown_factor}`` for persistently
            slow links; consulted by the health timing ledger.
        seed: Seeds both the probabilistic draws and the corruption
            bit positions, making the full fault sequence reproducible.
        verify_checksums: When True, an injected corruption is caught
            at the receiver (checksum mismatch) and raised as
            :class:`PayloadCorruption`; when False it propagates
            silently into the training numerics.
        timeout_s: Reported deadline in :class:`CommTimeout` messages.
    """

    def __init__(self, specs: Sequence[FaultSpec] = (), *,
                 rate: float = 0.0,
                 kinds: Sequence[str] = ("timeout", "corrupt"),
                 slow_ranks: Optional[Dict[int, float]] = None,
                 seed: int = 0,
                 verify_checksums: bool = True,
                 timeout_s: float = 30.0):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"rate must be in [0, 1), got {rate}")
        for kind in kinds:
            if kind not in _KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        for rank, factor in (slow_ranks or {}).items():
            if factor < 1.0:
                raise ValueError(
                    f"slow factor for rank {rank} must be >= 1, got "
                    f"{factor}"
                )
        self.pending: List[FaultSpec] = sorted(specs,
                                               key=lambda s: s.at_call)
        self.rate = float(rate)
        self.kinds = tuple(kinds)
        self.slow_ranks = dict(slow_ranks or {})
        self.verify_checksums = bool(verify_checksums)
        self.timeout_s = float(timeout_s)
        self.rng = np.random.default_rng(seed)
        self.calls = 0
        self.fired: List[FaultEvent] = []
        self._corrupt_pending = False
        # before()/corrupt() mutate the call counter, the RNG stream,
        # and the pending list; threaded SPMD rank loops may consult
        # the plan from several threads, so the hooks serialize.
        self._lock = threading.Lock()

    # -- hooks used by repro.comm -------------------------------------------

    def before(self, op: str, tag: str) -> None:
        """Called before each collective moves data; may raise."""
        with self._lock:
            index = self.calls
            self.calls += 1
            kind = self._scheduled_kind(index, op)
            if kind is None and self.rate > 0.0:
                if float(self.rng.random()) < self.rate:
                    kind = self.kinds[
                        int(self.rng.integers(len(self.kinds)))]
            if kind is None:
                return
            self.fired.append(FaultEvent(kind, op, tag, index))
            if kind == "crash":
                raise RankCrash(
                    f"injected rank crash during {op} (call {index})"
                )
            if kind == "timeout":
                raise CommTimeout(
                    f"injected timeout: {op} (call {index}) exceeded "
                    f"{self.timeout_s:.0f}s deadline"
                )
            # "corrupt" fires on the payload after the data has moved.
            self._corrupt_pending = True

    def corrupt(self, op: str, tag: str,
                arrays: Sequence[np.ndarray]) -> bool:
        """Flip one random bit in one output buffer if scheduled.

        Returns True when a corruption was applied.  Raises
        :class:`PayloadCorruption` instead when ``verify_checksums``
        is on — the receiver detects the mismatch and discards the
        payload, exactly like a checksummed transport.
        """
        with self._lock:
            if not self._corrupt_pending:
                return False
            self._corrupt_pending = False
            targets = [a for a in arrays if a.size > 0]
            if not targets:
                return False
            target = targets[int(self.rng.integers(len(targets)))]
            raw = target.reshape(-1).view(np.uint8)
            pos = int(self.rng.integers(raw.size))
            raw[pos] ^= np.uint8(1 << int(self.rng.integers(8)))
            if self.verify_checksums:
                raise PayloadCorruption(
                    f"checksum mismatch on {op} payload (call "
                    f"{self.calls - 1})"
                )
            return True

    def slow_factor(self, rank: int) -> float:
        """Link slowdown factor for ``rank`` (1.0 = nominal)."""
        return self.slow_ranks.get(rank, 1.0)

    # -- internals -----------------------------------------------------------

    def _scheduled_kind(self, index: int, op: str) -> Optional[str]:
        for i, spec in enumerate(self.pending):
            if spec.at_call == index and spec.op in (None, op):
                del self.pending[i]
                return spec.kind
            if spec.at_call > index:
                break
        return None
