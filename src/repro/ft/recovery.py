"""Recovery policies: retry with backoff and checkpoint integrity.

Detection (:mod:`repro.ft.health`) and injection
(:mod:`repro.ft.faults`) are only useful if something *acts* on them.
This module supplies the action half:

* :func:`retry_with_backoff` — bounded retry of a transient-faulting
  callable with exponential backoff.  Backoff "sleeps" are simulated
  by default (accumulated into :class:`RetryStats`, no wall-clock
  delay), matching the repo-wide principle that time is modelled, not
  spent.  When retries run out the last transient fault is escalated
  as :class:`~repro.ft.faults.RetryExhausted`, which the
  :class:`~repro.core.runner.ProductionRunner` turns into a restart.
* checkpoint integrity — a CRC32 sidecar written next to every
  ``.npz`` checkpoint and :func:`validate_checkpoint`, which rejects
  truncated files, bit-flipped payloads, and unreadable archives.  The
  runner walks the checkpoint chain newest-to-oldest and resumes from
  the newest checkpoint that validates instead of crashing on a
  corrupt latest.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Type

from .faults import RetryExhausted, TransientCommFault

__all__ = [
    "BackoffPolicy",
    "RetryStats",
    "retry_with_backoff",
    "LayoutMismatch",
    "file_crc32",
    "meta_path",
    "write_checkpoint_meta",
    "read_checkpoint_meta",
    "validate_checkpoint",
]

#: v1 sidecars carried step/size/crc32; v2 adds the parallel layout of
#: the writer.  Readers accept both (``layout`` is simply absent in v1).
META_FORMAT_VERSION = 2


class LayoutMismatch(RuntimeError):
    """A checkpoint's recorded parallel layout differs from the
    trainer it is being loaded into.

    Deliberately *not* a :class:`~repro.ft.faults.Fault`: the restart
    path would retry forever against the same mismatched files.  The
    fixed-size runner raises this instead of silently loading
    wrong-shaped arrays; the elastic runner catches the mismatch
    earlier and reshards.
    """

    def __init__(self, message: str, *, saved: object = None,
                 current: object = None):
        super().__init__(message)
        self.saved = saved
        self.current = current


# -- retry with exponential backoff -----------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff: ``base * multiplier**attempt``.

    ``jitter`` subtracts a deterministic, seeded fraction of up to
    ``jitter`` of each delay so ranks that hit the same transient fault
    don't wake in lockstep and re-stampede the fabric (retry-storm
    avoidance).  The draw is keyed on ``(jitter_seed, salt, attempt)``
    — give each rank its own ``salt`` and every rank sees a different
    but fully reproducible schedule.  The default ``jitter=0.0``
    returns exactly the old deterministic delays, bit for bit.
    """

    max_retries: int = 3
    base_delay: float = 0.5
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, salt: int = 0) -> float:
        """Backoff before retry number ``attempt`` (0-based).

        ``salt`` decorrelates independent retriers (pass the rank).
        """
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if self.jitter == 0.0:
            return delay
        import numpy as np

        rng = np.random.default_rng(
            [int(self.jitter_seed), int(salt), int(attempt)])
        return delay * (1.0 - self.jitter * float(rng.random()))


@dataclass
class RetryStats:
    """Telemetry accumulated across :func:`retry_with_backoff` calls."""

    attempts: int = 0
    retries: int = 0
    exhausted: int = 0
    total_backoff: float = 0.0
    faults: List[str] = field(default_factory=list)


def retry_with_backoff(
    fn: Callable[[], object],
    policy: Optional[BackoffPolicy] = None,
    *,
    retryable: Tuple[Type[BaseException], ...] = (TransientCommFault,),
    sleep: Optional[Callable[[float], None]] = None,
    stats: Optional[RetryStats] = None,
    salt: int = 0,
):
    """Call ``fn`` until it succeeds or retries are exhausted.

    Only ``retryable`` exceptions are retried; anything else (e.g. a
    :class:`~repro.ft.faults.RankCrash`) propagates immediately.  After
    ``policy.max_retries`` failed retries the last fault is re-raised
    wrapped in :class:`RetryExhausted`.
    """
    policy = policy or BackoffPolicy()
    for attempt in range(policy.max_retries + 1):
        if stats is not None:
            stats.attempts += 1
        try:
            return fn()
        except retryable as fault:
            if stats is not None:
                stats.faults.append(f"{type(fault).__name__}: {fault}")
            if attempt == policy.max_retries:
                if stats is not None:
                    stats.exhausted += 1
                raise RetryExhausted(
                    f"gave up after {policy.max_retries} retries; last "
                    f"fault: {fault}"
                ) from fault
            delay = policy.delay(attempt, salt)
            if stats is not None:
                stats.retries += 1
                stats.total_backoff += delay
            if sleep is not None:
                sleep(delay)


# -- checkpoint integrity ----------------------------------------------------


def file_crc32(path: str, chunk_size: int = 1 << 20) -> int:
    """CRC32 of a file's bytes (streamed)."""
    crc = 0
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(chunk_size)
            if not chunk:
                break
            crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def meta_path(checkpoint_path: str) -> str:
    """Path of the integrity sidecar next to a checkpoint file."""
    return checkpoint_path + ".meta.json"


def write_checkpoint_meta(checkpoint_path: str, step: int,
                          layout: Optional[object] = None) -> dict:
    """Write the CRC/size sidecar for an already-written checkpoint.

    ``layout`` (anything with ``to_dict()``, e.g. a
    :class:`~repro.elastic.layout.ParallelLayout`, or a plain dict)
    records the parallel degrees the state was written under, so a
    later load can detect — and a resharder can resolve — a layout
    change instead of silently restoring wrong-shaped arrays.
    """
    from ..core.checkpoint import atomic_write

    meta = {
        "format": META_FORMAT_VERSION,
        "step": int(step),
        "size": os.path.getsize(checkpoint_path),
        "crc32": file_crc32(checkpoint_path),
    }
    if layout is not None:
        to_dict = getattr(layout, "to_dict", None)
        meta["layout"] = dict(to_dict() if callable(to_dict)
                              else layout)
    atomic_write(meta_path(checkpoint_path),
                 lambda handle: json.dump(meta, handle), text=True)
    return meta


def read_checkpoint_meta(checkpoint_path: str) -> Optional[dict]:
    """The sidecar contents, or None when absent/unreadable."""
    try:
        with open(meta_path(checkpoint_path)) as handle:
            meta = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return None
    return meta if isinstance(meta, dict) else None


def validate_checkpoint(checkpoint_path: str) -> bool:
    """True when a checkpoint is present, uncorrupted, and loadable.

    Checks, in order: the file exists; the CRC/size sidecar (when one
    exists) parses and matches the file bytes — a sidecar that is
    *present but unparseable* fails validation, because a half-written
    meta means the checkpoint's provenance can't be trusted, while an
    *absent* sidecar (legacy checkpoint) is still acceptable; and every
    array in the ``.npz`` archive decompresses cleanly (``zipfile``
    verifies per-member CRCs on read, so this also catches truncation
    and in-archive flips even without a sidecar).
    """
    import numpy as np

    if not os.path.isfile(checkpoint_path):
        return False
    meta = read_checkpoint_meta(checkpoint_path)
    if meta is None and os.path.exists(meta_path(checkpoint_path)):
        return False
    if meta is not None:
        try:
            if int(meta.get("size", -1)) != os.path.getsize(
                    checkpoint_path):
                return False
            if int(meta.get("crc32", -1)) != file_crc32(checkpoint_path):
                return False
        except (TypeError, ValueError, OSError):
            return False
    try:
        with np.load(checkpoint_path) as data:
            for key in data.files:
                _ = data[key]
    except Exception:
        return False
    return True
