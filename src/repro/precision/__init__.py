"""Numerics substrate: low-precision formats, quantization, optimizers."""

from .formats import (
    BF16,
    FP8_E4M3,
    FP8_E5M2,
    FP16,
    FP32,
    FloatFormat,
    get_format,
    round_bf16,
    round_fp8,
    round_to_format,
)
from .quantize import (
    QuantizedTensor,
    dequantize,
    quantize_grouped,
    quantize_per_channel,
    quantize_per_tensor,
    quantize_per_token,
)

__all__ = [
    "BF16",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP16",
    "FP32",
    "FloatFormat",
    "get_format",
    "round_bf16",
    "round_fp8",
    "round_to_format",
    "QuantizedTensor",
    "dequantize",
    "quantize_grouped",
    "quantize_per_channel",
    "quantize_per_tensor",
    "quantize_per_token",
]
