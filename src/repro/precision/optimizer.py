"""Optimizers: AdamW and the multi-precision variant of §7.

``AdamW`` keeps FP32 states and is the reference optimizer.

``MultiPrecisionAdamW`` implements the paper's FP8-training optimizer
("we use a multi-precision optimizer to store model parameters directly
in FP8, while keeping main parameters in FP32 with separate buffers for
different data types"): the *main* parameters and Adam moments stay in
FP32, while the *model* parameters handed to forward passes are stored
rounded to a low-precision format.  This halves parameter all-gather
communication in data parallelism and removes the per-step cast/transpose
overhead of BF16-stored implementations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..tensor import Tensor
from .formats import FloatFormat, round_to_format

__all__ = ["AdamW", "MultiPrecisionAdamW", "clip_grad_norm"]


def clip_grad_norm(params: Sequence[Tensor], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm.
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if max_norm > 0 and norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm


class AdamW:
    """Decoupled-weight-decay Adam over a parameter list."""

    def __init__(self, params: Sequence[Tensor], lr: float = 3e-4,
                 betas: tuple = (0.9, 0.95), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        self.params = list(params)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.step_count = 0
        self.m = [np.zeros(p.shape, dtype=np.float64) for p in self.params]
        self.v = [np.zeros(p.shape, dtype=np.float64) for p in self.params]

    def step(self, grads: Optional[Sequence[np.ndarray]] = None) -> None:
        """Apply one update from ``p.grad`` (or explicit ``grads``)."""
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            g = grads[i] if grads is not None else p.grad
            if g is None:
                continue
            g = g.astype(np.float64)
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * g
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * g * g
            update = (self.m[i] / bc1) / (np.sqrt(self.v[i] / bc2)
                                          + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            p.data = (p.data.astype(np.float64)
                      - self.lr * update).astype(p.data.dtype)

    def zero_grad(self) -> None:
        """Clear every parameter's gradient."""
        for p in self.params:
            p.zero_grad()

    def state_nbytes(self) -> float:
        """Bytes held by the optimizer states (m, v in FP64 here)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self.m, self.v))


class MultiPrecisionAdamW(AdamW):
    """AdamW with FP32 main params and low-precision model params.

    After every step the updated FP32 main copy is rounded into the
    ``model_format`` and written back into the Tensors the model computes
    with.  ``p.data`` therefore always holds format-representable values,
    emulating parameters *stored* in FP8/BF16.
    """

    def __init__(self, params: Sequence[Tensor],
                 model_format: FloatFormat, **kwargs):
        super().__init__(params, **kwargs)
        self.model_format = model_format
        # FP32 main copy, seeded from the (already-rounded) model params.
        self.main_params: List[np.ndarray] = [
            p.data.astype(np.float64).copy() for p in self.params
        ]
        for p, main in zip(self.params, self.main_params):
            p.data = round_to_format(main, model_format).astype(p.data.dtype)

    def step(self, grads: Optional[Sequence[np.ndarray]] = None) -> None:
        """Update the FP32 master copy, then round into model params."""
        self.step_count += 1
        t = self.step_count
        bc1 = 1.0 - self.beta1 ** t
        bc2 = 1.0 - self.beta2 ** t
        for i, p in enumerate(self.params):
            g = grads[i] if grads is not None else p.grad
            if g is None:
                continue
            g = g.astype(np.float64)
            self.m[i] = self.beta1 * self.m[i] + (1 - self.beta1) * g
            self.v[i] = self.beta2 * self.v[i] + (1 - self.beta2) * g * g
            update = (self.m[i] / bc1) / (np.sqrt(self.v[i] / bc2)
                                          + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * self.main_params[i]
            self.main_params[i] -= self.lr * update
            p.data = round_to_format(
                self.main_params[i], self.model_format
            ).astype(p.data.dtype)

    def model_param_nbytes(self) -> float:
        """Wire/storage bytes of the low-precision model copy."""
        return sum(p.size * self.model_format.bytes_per_element
                   for p in self.params)
