"""Communication compression (§5 of the paper).

Two families:

**DP gradient compression** (BF16 mixed-precision training, Fig. 10):
instead of an FP32 reduce-scatter, the *accumulated* FP32 gradients are
cast to BF16 once, exchanged with an all-to-all inside the DP group, and
summed locally in FP32.  This halves wire bytes while avoiding the
repeated BF16 accumulation a ring reduce would perform.  The
risky ring-style BF16 reduce is also provided for comparison
(:func:`sync_gradients` with ``method="bf16_ring_rs"``).

**FP8 communication compression** (FP8 training): BF16 reduce-scatters
are replaced by FP8(E4M3) all-to-alls with FP32 reduction — per-token
quantization for forward activations, per-channel (optionally grouped
along tokens) for backward gradients.

The in-place buffer trick ("we develop a memory-efficient operator that
in-places BF16 gradients into half of the FP32 input buffer...") is
modelled by :class:`InPlaceCastBuffer`, which tracks peak bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ..comm.collectives import all_gather, all_to_all, reduce_scatter
from ..comm.group import ProcessGroup
from .formats import FP8_E4M3, FloatFormat, round_bf16
from .quantize import (
    dequantize,
    quantize_grouped,
    quantize_per_channel,
    quantize_per_token,
)

__all__ = [
    "sync_gradients",
    "fp8_compressed_reduce_scatter",
    "fp8_compressed_all_gather",
    "InPlaceCastBuffer",
    "GRAD_SYNC_METHODS",
]

GRAD_SYNC_METHODS = ("fp32_rs", "bf16_a2a", "bf16_ring_rs")


def _pad_to(flat: np.ndarray, multiple: int) -> np.ndarray:
    if flat.size % multiple == 0:
        return flat
    pad = multiple - flat.size % multiple
    return np.concatenate([flat, np.zeros(pad, dtype=flat.dtype)])


def sync_gradients(
    group: ProcessGroup,
    grads: Sequence[np.ndarray],
    method: str = "bf16_a2a",
    average: bool = True,
) -> List[np.ndarray]:
    """Synchronize per-rank accumulated gradients across a DP group.

    Args:
        group: The data-parallel process group.
        grads: One FP32/FP64 gradient array per rank (same shape).
        method: ``"fp32_rs"`` — exact FP32 reduce-scatter + all-gather
            (the baseline of Fig. 17); ``"bf16_a2a"`` — MegaScale's
            compression: one BF16 cast, all-to-all, FP32 local sum;
            ``"bf16_ring_rs"`` — the rejected design: ring reduce with
            BF16 accumulation at every hop.
        average: Divide by the group size (DP averages gradients).

    Returns:
        Per-rank synchronized gradients with the input shape.
    """
    if method not in GRAD_SYNC_METHODS:
        raise ValueError(
            f"unknown method {method!r}; choose from {GRAD_SYNC_METHODS}"
        )
    n = group.size
    shape = np.asarray(grads[0]).shape
    flats = [_pad_to(np.asarray(g, dtype=np.float64).reshape(-1), n)
             for g in grads]
    numel = int(np.prod(shape))

    if method == "fp32_rs":
        shards = reduce_scatter(group, flats, elem_bytes=4.0,
                                tag="dp_sync:fp32_rs")
        fulls = all_gather(group, shards, elem_bytes=4.0,
                           tag="dp_sync:fp32_ag")
    elif method == "bf16_a2a":
        # One-time BF16 cast of the accumulated gradient...
        casted = [round_bf16(f).astype(np.float64) for f in flats]
        chunk_lists = [np.split(c, n) for c in casted]
        # ...all-to-all exchange of the shards (2 bytes each)...
        received = all_to_all(group, chunk_lists, elem_bytes=2.0,
                              tag="dp_sync:bf16_a2a")
        # ...and FP32 local aggregation: no repeated BF16 accumulation.
        shards = [np.sum([c.astype(np.float64) for c in chunks], axis=0)
                  for chunks in received]
        # Parameter/gradient shard redistribution in BF16 as well.
        fulls = all_gather(
            group, [round_bf16(s).astype(np.float64) for s in shards],
            elem_bytes=2.0, tag="dp_sync:bf16_ag")
    else:  # bf16_ring_rs — rounds the partial sum at every ring hop.
        shards = []
        for j in range(n):
            chunk_size = flats[0].size // n
            lo, hi = j * chunk_size, (j + 1) * chunk_size
            acc = round_bf16(flats[j][lo:hi]).astype(np.float64)
            for step in range(1, n):
                src = (j - step) % n
                incoming = round_bf16(flats[src][lo:hi]).astype(np.float64)
                acc = round_bf16(acc + incoming).astype(np.float64)
            shards.append(acc)
        group.record("reduce_scatter",
                     [flats[0].size / n * 2.0 * (n - 1)] * n,
                     "dp_sync:bf16_ring_rs")
        fulls = all_gather(
            group, [round_bf16(s).astype(np.float64) for s in shards],
            elem_bytes=2.0, tag="dp_sync:bf16_ag")

    scale = 1.0 / n if average else 1.0
    return [(f[:numel] * scale).reshape(shape) for f in fulls]


def fp8_compressed_reduce_scatter(
    group: ProcessGroup,
    tensors: Sequence[np.ndarray],
    fmt: FloatFormat = FP8_E4M3,
    tag: str = "fp8_rs",
) -> List[np.ndarray]:
    """FP8 replacement for a forward-pass BF16 reduce-scatter (§5).

    Each rank's ``[T, h]`` tensor is split into ``n`` row chunks; each
    chunk is quantized **per token** (SwiGLU widens the per-token dynamic
    range, §7), exchanged via all-to-all at 1 byte/element, dequantized,
    and reduced in FP32.
    """
    n = group.size
    first = np.asarray(tensors[0])
    if first.shape[0] % n != 0:
        raise ValueError(
            f"token dim {first.shape[0]} not divisible by group size {n}"
        )
    chunk_lists = []
    quant_meta = []
    for t in tensors:
        chunks = np.split(np.asarray(t), n, axis=0)
        quants = [quantize_per_token(c, fmt) for c in chunks]
        chunk_lists.append([q.payload for q in quants])
        quant_meta.append(quants)
    received = all_to_all(group, chunk_lists,
                          elem_bytes=fmt.bytes_per_element, tag=tag)
    outs = []
    for j, payloads in enumerate(received):
        total = None
        for i, payload in enumerate(payloads):
            q = quant_meta[i][j]
            q = type(q)(payload, q.scales, q.fmt, q.scheme, q.group_size)
            val = dequantize(q).astype(np.float64)
            total = val if total is None else total + val
        outs.append(total)
    return outs


def fp8_compressed_all_gather(
    group: ProcessGroup,
    shards: Sequence[np.ndarray],
    fmt: FloatFormat = FP8_E4M3,
    group_size: int = 128,
    tag: str = "fp8_ag",
) -> List[np.ndarray]:
    """FP8 all-gather for backward gradients (§5).

    Gradients are quantized **per channel**, grouped along the token
    dimension with a small ``group_size`` (e.g. 128) to bound each
    scale's dynamic range, gathered at 1 byte/element, and dequantized.
    """
    quants = [
        quantize_grouped(np.asarray(s), group_size, fmt)
        if group_size else quantize_per_channel(np.asarray(s), fmt)
        for s in shards
    ]
    gathered = all_gather(group, [q.payload for q in quants],
                          elem_bytes=fmt.bytes_per_element, tag=tag)
    # Every rank reconstructs the full tensor from the shard metadata.
    restored = [dequantize(q) for q in quants]
    full = np.concatenate(restored, axis=0)
    return [full.copy() for _ in range(group.size)]


@dataclass
class InPlaceCastBuffer:
    """Peak-memory model of the in-place BF16 cast (§5).

    A naive implementation allocates a BF16 send buffer (0.5×) and a
    BF16 receive buffer (0.5×) next to the FP32 gradients (1×), peaking
    at 2× the FP32 bytes.  The paper's operator writes BF16 values into
    the first half of the FP32 buffer and receives into the second half,
    keeping the peak at exactly 1×.
    """

    fp32_bytes: float

    @property
    def naive_peak_bytes(self) -> float:
        return 2.0 * self.fp32_bytes

    @property
    def inplace_peak_bytes(self) -> float:
        return self.fp32_bytes

    @property
    def savings_fraction(self) -> float:
        return 1.0 - self.inplace_peak_bytes / self.naive_peak_bytes
