"""Quantization strategies used by MegaScale-MoE's compressed communication.

Section 5 of the paper compresses FP8 communication with *scaled*
quantization: each block of values shares one FP32 scale chosen so that the
block's maximum magnitude maps onto the FP8 format's maximum.  The paper
uses three granularities:

* **per-tensor** — one scale for the whole tensor (baseline; rejected for
  SwiGLU activations because the operator expands the dynamic range).
* **per-token** — one scale per row (a ``1 × h`` vector per token); used
  for *forward* activation communication.
* **per-channel** — one scale per column; used for *backward* gradient
  communication, optionally **grouped** along the token dimension with a
  small group size (e.g. 128) for a tighter dynamic range.

Quantization returns a :class:`QuantizedTensor` carrying the low-precision
payload and the scales; :func:`dequantize` restores float32.  The payload
values are exactly representable in the target FP8 format, so transmitting
them costs ``fmt.bytes_per_element`` bytes each, plus 4 bytes per scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .formats import FP8_E4M3, FloatFormat, round_to_format

__all__ = [
    "QuantizedTensor",
    "quantize_per_tensor",
    "quantize_per_token",
    "quantize_per_channel",
    "quantize_grouped",
    "dequantize",
]

# Scales are chosen so the block max maps to the format max; a block of all
# zeros would produce scale 0, so we floor it at a tiny positive value.
_MIN_SCALE = 1e-30
# Scales are transmitted as FP32, so they must stay finite in float32:
# a block max near the float32 ceiling (or inf/NaN from an upstream
# blow-up) would otherwise overflow the scale to inf, turning the whole
# block — zeros included — into NaN through payload = x / scale.
_MAX_SCALE = float(np.finfo(np.float32).max)


@dataclass
class QuantizedTensor:
    """A quantized payload plus the metadata needed to dequantize it.

    Attributes:
        payload: float32 array whose values are exactly representable in
            ``fmt`` *after division by the broadcast scales*.
        scales: float32 array broadcastable against ``payload``; the
            dequantized value is ``payload * scales``.
        fmt: Target low-precision format of the payload.
        scheme: Which granularity produced this tensor (``"per_tensor"``,
            ``"per_token"``, ``"per_channel"``, or ``"grouped"``).
        group_size: Group length for the ``"grouped"`` scheme, else None.
    """

    payload: np.ndarray
    scales: np.ndarray
    fmt: FloatFormat
    scheme: str
    group_size: Optional[int] = None

    @property
    def shape(self) -> tuple:
        return self.payload.shape

    @property
    def nbytes_on_wire(self) -> float:
        """Bytes needed to transmit payload + scales."""
        return (
            self.payload.size * self.fmt.bytes_per_element
            + self.scales.size * 4.0
        )


def _scale_for(block_max: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Scale mapping ``block_max`` onto the format's max magnitude.

    Degenerate blocks are guarded so no scale is ever 0, inf, or NaN:

    * all-zero blocks keep the ``_MIN_SCALE`` floor (payload is exact
      zeros, dequantize returns exact zeros);
    * non-finite block maxima (an inf/NaN activation upstream) and
      maxima that would overflow the FP32 scale are clamped to
      ``_MAX_SCALE`` — the payload then saturates through
      :func:`round_to_format` like a hardware FP8 cast instead of
      poisoning every element of the block with NaN.
    """
    ratio = np.asarray(block_max, dtype=np.float64) / fmt.max_value
    ratio = np.where(np.isfinite(ratio), ratio, _MAX_SCALE)
    return np.clip(ratio, _MIN_SCALE, _MAX_SCALE).astype(np.float32)


def _quantize_with_scales(
    x: np.ndarray, scales: np.ndarray, fmt: FloatFormat, scheme: str,
    group_size: Optional[int] = None,
) -> QuantizedTensor:
    payload = round_to_format(np.asarray(x, dtype=np.float64) / scales, fmt)
    return QuantizedTensor(payload, np.asarray(scales, np.float32), fmt,
                           scheme, group_size)


def quantize_per_tensor(
    x: np.ndarray, fmt: FloatFormat = FP8_E4M3
) -> QuantizedTensor:
    """Quantize with a single scale for the whole tensor."""
    x = np.asarray(x)
    scale = _scale_for(np.max(np.abs(x), initial=0.0), fmt)
    return _quantize_with_scales(x, scale, fmt, "per_tensor")


def quantize_per_token(
    x: np.ndarray, fmt: FloatFormat = FP8_E4M3
) -> QuantizedTensor:
    """Quantize with one scale per row (token).

    The paper applies this to forward activation communication: SwiGLU
    expands the numerical range across tokens, so a shared per-tensor
    scale would crush small-magnitude tokens (Section 7, "FP8 training").
    """
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError("per-token quantization needs a 2D+ tensor")
    flat = x.reshape(-1, x.shape[-1])
    row_max = np.max(np.abs(flat), axis=-1, keepdims=True)
    scales = _scale_for(row_max, fmt)
    q = _quantize_with_scales(flat, scales, fmt, "per_token")
    q.payload = q.payload.reshape(x.shape)
    return q


def quantize_per_channel(
    x: np.ndarray, fmt: FloatFormat = FP8_E4M3
) -> QuantizedTensor:
    """Quantize with one scale per column (channel).

    Used for backward gradient communication, where per-channel statistics
    are more stable than per-token ones.
    """
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError("per-channel quantization needs a 2D+ tensor")
    flat = x.reshape(-1, x.shape[-1])
    col_max = np.max(np.abs(flat), axis=0, keepdims=True)
    scales = _scale_for(col_max, fmt)
    q = _quantize_with_scales(flat, scales, fmt, "per_channel")
    q.payload = q.payload.reshape(x.shape)
    return q


def quantize_grouped(
    x: np.ndarray, group_size: int = 128, fmt: FloatFormat = FP8_E4M3
) -> QuantizedTensor:
    """Per-channel quantization grouped along the token dimension.

    The paper further groups backward-communication quantization "along
    the token dimension using a small group size (e.g., 128)" (Section 5):
    each ``group_size × 1`` block of a column gets its own scale, bounding
    the dynamic range any single scale must cover.

    The token dimension is padded up to a multiple of ``group_size``
    internally; the returned payload keeps the original shape.
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    x = np.asarray(x)
    if x.ndim < 2:
        raise ValueError("grouped quantization needs a 2D+ tensor")
    flat = x.reshape(-1, x.shape[-1])
    tokens, channels = flat.shape
    groups = -(-tokens // group_size)
    padded = np.zeros((groups * group_size, channels), dtype=np.float64)
    padded[:tokens] = flat
    blocks = padded.reshape(groups, group_size, channels)
    block_max = np.max(np.abs(blocks), axis=1, keepdims=True)
    scales = _scale_for(block_max, fmt)  # [groups, 1, channels]
    payload = round_to_format(blocks / scales, fmt)
    payload = payload.reshape(groups * group_size, channels)[:tokens]
    q = QuantizedTensor(
        payload.reshape(x.shape), scales.squeeze(1), fmt, "grouped",
        group_size,
    )
    return q


def dequantize(q: QuantizedTensor) -> np.ndarray:
    """Restore a float32 tensor from a :class:`QuantizedTensor`."""
    if q.scheme in ("per_tensor",):
        return (q.payload.astype(np.float64) * q.scales).astype(np.float32)
    flat = q.payload.reshape(-1, q.payload.shape[-1]).astype(np.float64)
    if q.scheme == "per_token":
        out = flat * q.scales
    elif q.scheme == "per_channel":
        out = flat * q.scales
    elif q.scheme == "grouped":
        tokens, channels = flat.shape
        groups = q.scales.shape[0]
        group_size = q.group_size
        padded = np.zeros((groups * group_size, channels), dtype=np.float64)
        padded[:tokens] = flat
        blocks = padded.reshape(groups, group_size, channels)
        blocks = blocks * q.scales[:, None, :]
        out = blocks.reshape(groups * group_size, channels)[:tokens]
    else:
        raise ValueError(f"unknown quantization scheme {q.scheme!r}")
    return out.reshape(q.payload.shape).astype(np.float32)
