"""Software emulation of low-precision floating-point formats.

MegaScale-MoE trains in BF16 mixed precision and, for its most aggressive
configuration, FP8 (Section 5 of the paper).  Reproducing the convergence
experiments (Figures 17 and 18) requires the *rounding behaviour* of these
formats, not hardware tensor cores, so this module emulates them on top of
numpy float32/float64 arrays:

* ``round_bf16``  — bfloat16: 8-bit exponent, 7-bit mantissa.
* ``round_fp8``   — FP8 in either the E4M3 or E5M2 layout used by NVIDIA
  Hopper (the paper adopts E4M3 for all tensors in Section 5).

All rounding uses round-to-nearest-even, matching IEEE 754 and hardware
cast instructions.  Values above the format's maximum magnitude saturate
(the behaviour of NVIDIA's saturating casts used in training).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FloatFormat",
    "BF16",
    "FP8_E4M3",
    "FP8_E5M2",
    "FP16",
    "FP32",
    "round_bf16",
    "round_fp8",
    "round_to_format",
]


@dataclass(frozen=True)
class FloatFormat:
    """Description of a binary floating-point format.

    Attributes:
        name: Human-readable format name.
        exponent_bits: Number of exponent bits.
        mantissa_bits: Number of explicit mantissa (fraction) bits.
        max_value: Largest finite representable magnitude.
        bytes_per_element: Storage size, used by communication cost models.
    """

    name: str
    exponent_bits: int
    mantissa_bits: int
    max_value: float
    bytes_per_element: float

    @property
    def exponent_bias(self) -> int:
        return (1 << (self.exponent_bits - 1)) - 1

    @property
    def min_normal_exponent(self) -> int:
        """Unbiased exponent of the smallest normal number."""
        return 1 - self.exponent_bias

    @property
    def epsilon(self) -> float:
        """Distance between 1.0 and the next representable value."""
        return 2.0 ** (-self.mantissa_bits)


# E4M3 per the OCP FP8 spec: bias 7, max = 1.75 * 2**8 = 448 (S.1111.110).
FP8_E4M3 = FloatFormat("fp8_e4m3", 4, 3, 448.0, 1.0)
# E5M2: bias 15, max = 1.75 * 2**15 = 57344.
FP8_E5M2 = FloatFormat("fp8_e5m2", 5, 2, 57344.0, 1.0)
BF16 = FloatFormat("bf16", 8, 7, 3.3895313892515355e38, 2.0)
FP16 = FloatFormat("fp16", 5, 10, 65504.0, 2.0)
FP32 = FloatFormat("fp32", 8, 23, float(np.finfo(np.float32).max), 4.0)

_FORMATS = {f.name: f for f in (FP8_E4M3, FP8_E5M2, BF16, FP16, FP32)}


def get_format(name: str) -> FloatFormat:
    """Look up a :class:`FloatFormat` by its canonical name."""
    try:
        return _FORMATS[name]
    except KeyError:
        raise ValueError(
            f"unknown float format {name!r}; known: {sorted(_FORMATS)}"
        ) from None


def round_bf16(x: np.ndarray) -> np.ndarray:
    """Round an array to bfloat16 precision (round-to-nearest-even).

    The result is returned as float32 (bfloat16 values are exactly
    representable in float32).  NaN and infinity pass through unchanged.
    """
    x32 = np.asarray(x, dtype=np.float32)
    bits = x32.view(np.uint32)
    # Round-to-nearest-even on the low 16 bits that bfloat16 discards:
    # add 0x7FFF plus the value of bit 16 (the LSB that survives).
    lsb = (bits >> np.uint32(16)) & np.uint32(1)
    rounded = bits + np.uint32(0x7FFF) + lsb
    rounded &= np.uint32(0xFFFF0000)
    out = rounded.view(np.float32).copy()
    # NaN payloads can be clobbered by the bias addition; restore them.
    nan_mask = np.isnan(x32)
    if nan_mask.any():
        out[nan_mask] = np.nan
    return out


def round_fp8(x: np.ndarray, fmt: FloatFormat = FP8_E4M3) -> np.ndarray:
    """Round an array to FP8 precision with saturation.

    Args:
        x: Input array (any float dtype).
        fmt: ``FP8_E4M3`` (default, used by the paper) or ``FP8_E5M2``.

    Returns:
        float32 array whose values are exactly representable in ``fmt``.
        Out-of-range values saturate to ``±fmt.max_value``; NaN passes
        through.
    """
    if fmt.exponent_bits >= 8:
        raise ValueError(f"round_fp8 expects an FP8 format, got {fmt.name}")
    return round_to_format(x, fmt)


def round_to_format(x: np.ndarray, fmt: FloatFormat) -> np.ndarray:
    """Round an array to an arbitrary :class:`FloatFormat`.

    Works for any format with fewer mantissa bits than float64.  Uses
    round-to-nearest-even via :func:`numpy.round` on the scaled mantissa.
    """
    if fmt.name == "fp32":
        return np.asarray(x, dtype=np.float32).copy()
    if fmt.name == "bf16":
        return round_bf16(x)

    x64 = np.asarray(x, dtype=np.float64)
    out = np.zeros_like(x64)
    finite = np.isfinite(x64)
    nonzero = finite & (x64 != 0.0)

    mag = np.abs(x64[nonzero])
    # Unbiased exponent of each value, clamped at the subnormal threshold
    # so that tiny values quantize onto the subnormal grid.
    exponent = np.floor(np.log2(mag))
    # Guard against log2 landing one ulp low for exact powers of two.
    exponent = np.where(mag >= 2.0 ** (exponent + 1), exponent + 1, exponent)
    exponent = np.maximum(exponent, float(fmt.min_normal_exponent))
    step = 2.0 ** (exponent - fmt.mantissa_bits)
    quantized = np.round(x64[nonzero] / step) * step
    # Rounding the mantissa up can push the value into the next binade,
    # which is still representable, so no correction is needed; but it can
    # also exceed the max: saturate.
    quantized = np.clip(quantized, -fmt.max_value, fmt.max_value)
    out[nonzero] = quantized

    # Propagate NaN/inf: inf saturates (hardware saturating cast), NaN stays.
    out[~finite & np.isnan(x64)] = np.nan
    out[np.isposinf(x64)] = fmt.max_value
    out[np.isneginf(x64)] = -fmt.max_value
    return out.astype(np.float32)
