"""Mixed-precision GEMM emulation policies.

To reproduce the FP8-vs-BF16 convergence experiments (Fig. 18) the model
must *compute* as the paper's kernels do: GEMM inputs quantized to the
training format (with the §5/§7 quantization granularities), accumulation
in high precision.  A :class:`PrecisionPolicy` installed via context
manager makes every :class:`~repro.model.layers.Linear` and
:class:`~repro.model.moe.Expert` fake-quantize its activations and
weights on the forward pass (gradients flow straight through, matching
hardware GEMMs that accumulate in FP32).

Policies:

* :func:`bf16_policy` — round activations and weights to BF16.
* :func:`fp8_policy` — per-token FP8-E4M3 activations (the paper's fix
  for SwiGLU's wide dynamic range), per-tensor FP8 weights.
* :func:`fp8_naive_policy` — per-tensor activation quantization, the
  rejected baseline whose loss misaligns with BF16 (§5).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import numpy as np

from ..tensor import Tensor
from ..tensor.ops import precision_cast
from .formats import FP8_E4M3, round_bf16
from .quantize import dequantize, quantize_per_tensor, quantize_per_token

__all__ = [
    "PrecisionPolicy",
    "current_policy",
    "bf16_policy",
    "fp8_policy",
    "fp8_naive_policy",
]

_ACTIVE: List["PrecisionPolicy"] = []


def current_policy() -> Optional["PrecisionPolicy"]:
    """The innermost active policy, or None for full precision."""
    return _ACTIVE[-1] if _ACTIVE else None


def _fake_quant_per_token(x: np.ndarray) -> np.ndarray:
    flat = x.reshape(-1, x.shape[-1])
    return dequantize(quantize_per_token(flat, FP8_E4M3)).reshape(x.shape)


def _fake_quant_per_tensor(x: np.ndarray) -> np.ndarray:
    return dequantize(quantize_per_tensor(x, FP8_E4M3)).reshape(x.shape)


class PrecisionPolicy:
    """Installable activation/weight quantization for GEMM inputs.

    Args:
        name: Label used in logs and experiment records.
        activation_fn: ndarray→ndarray rounding for GEMM activations.
        weight_fn: ndarray→ndarray rounding for GEMM weights.
    """

    def __init__(self, name: str,
                 activation_fn: Callable[[np.ndarray], np.ndarray],
                 weight_fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self.activation_fn = activation_fn
        self.weight_fn = weight_fn

    def cast_activation(self, x: Tensor) -> Tensor:
        """Fake-quantize a GEMM activation input."""
        return precision_cast(x, self.activation_fn)

    def cast_weight(self, w: Tensor) -> Tensor:
        """Fake-quantize a GEMM weight input."""
        return precision_cast(w, self.weight_fn)

    def __enter__(self) -> "PrecisionPolicy":
        _ACTIVE.append(self)
        return self

    def __exit__(self, *exc) -> bool:
        popped = _ACTIVE.pop()
        assert popped is self, "mismatched PrecisionPolicy nesting"
        return False


def bf16_policy() -> PrecisionPolicy:
    """BF16 GEMM inputs — the paper's mixed-precision default."""
    return PrecisionPolicy("bf16", round_bf16, round_bf16)


def fp8_policy() -> PrecisionPolicy:
    """FP8 with the paper's quantization: per-token activations
    (robust to SwiGLU's range expansion, §7), per-tensor weights."""
    return PrecisionPolicy("fp8", _fake_quant_per_token,
                           _fake_quant_per_tensor)


def fp8_naive_policy() -> PrecisionPolicy:
    """FP8 with per-tensor activation quantization — the configuration
    the paper found to cause loss misalignment."""
    return PrecisionPolicy("fp8-naive", _fake_quant_per_tensor,
                           _fake_quant_per_tensor)
