"""Figure 18 — FP8 vs BF16 training loss curves.

Paper setup: (a) a 35B MoE trained from scratch and (b) a 176B MoE
continued from a checkpoint, each in BF16 and in FP8 with the paper's
quantization recipe (per-token activations, FP32 accumulation).  Paper
result: stable convergence and consistent loss across both precisions.

The miniature substrate uses emulated FP8-E4M3 GEMM inputs; we also run
the *rejected* per-tensor quantization to show why the paper moved to
per-token scales (§7: SwiGLU "significantly expands the numerical
range").
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW
from repro.precision.policy import bf16_policy, fp8_naive_policy, \
    fp8_policy

CONFIG = ModelConfig("moe-35b-mini", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=64, seq_len=16)
STEPS = 12


def make_trainer(policy, seed=0):
    model = MoETransformer(CONFIG, seed=seed, dtype=np.float64)
    train = TrainConfig(global_batch_size=4, micro_batch_size=4,
                        seq_len=CONFIG.seq_len, learning_rate=3e-3,
                        aux_loss_coeff=0.01)
    return MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=3e-3), policy=policy)


def train_curve(policy, steps=STEPS, trainer=None, data_seed=1):
    trainer = trainer or make_trainer(policy)
    corpus = MarkovCorpus(vocab_size=64, seed=0)
    losses = [trainer.train_step(b).lm_loss
              for b in batch_iterator(corpus, 4, CONFIG.seq_len,
                                      seed=data_seed, limit=steps)]
    return np.array(losses), trainer


def run_fig18():
    bf16, bf16_trainer = train_curve(bf16_policy())
    fp8, _ = train_curve(fp8_policy())
    naive, _ = train_curve(fp8_naive_policy())

    # Continued training: load the BF16 checkpoint, continue in FP8.
    continued = make_trainer(fp8_policy(), seed=77)
    continued.load_state_dict(bf16_trainer.state_dict())
    resumed, _ = train_curve(None, steps=6, trainer=continued,
                             data_seed=9)
    return {"bf16": bf16, "fp8": fp8, "fp8_naive": naive,
            "resumed": resumed}


@pytest.mark.benchmark(group="fig18")
def test_fig18_fp8_convergence(benchmark):
    curves = benchmark.pedantic(run_fig18, rounds=1, iterations=1)

    rows = [[i, curves["bf16"][i], curves["fp8"][i],
             curves["fp8_naive"][i]] for i in range(STEPS)]
    report(
        "Fig. 18a: from-scratch loss, BF16 vs FP8 (per-token) vs "
        "FP8 (per-tensor, rejected)",
        ["step", "bf16", "fp8", "fp8_naive"],
        rows,
    )
    report(
        "Fig. 18b: continued training in FP8 from a BF16 checkpoint",
        ["step", "loss"],
        [[i, v] for i, v in enumerate(curves["resumed"])],
        notes="paper: consistent loss across BF16 and FP8",
    )

    bf16, fp8 = curves["bf16"], curves["fp8"]
    rel = np.abs(bf16 - fp8) / bf16
    # Point-wise within batch noise, no systematic drift (Fig. 18).
    assert rel.max() < 0.05
    assert rel.mean() < 0.02
    # Both converge.
    assert bf16[-1] < bf16[0] and fp8[-1] < fp8[0]
    # Continued run picks up near the checkpoint loss and keeps going.
    assert curves["resumed"][0] == pytest.approx(bf16[-1], rel=0.15)
    # The per-tensor curve is reported for reference; at this miniature
    # scale activations lack the SwiGLU outliers that separate the two
    # recipes, so its advantage is exercised deterministically in
    # tests/test_optimizer_and_policy.py instead.
    assert np.isfinite(curves["fp8_naive"]).all()
