"""Figure 16 — selective activation rematerialization (SAR) ablation.

Paper setup: Mixtral-8×7B and Mixtral-8×2B on 128 H800 GPUs, MegaScale
with and without SAR.  Paper results: SAR cuts activation memory by
45.5% and 57.2% respectively (21.3% / 35% of total memory), while the
training-MFU difference stays within 0.5% because the recompute work
hides under communication.
"""

import pytest

from conftest import report
from repro.core.analysis import param_memory_per_gpu
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.core.remat import default_remat_plan, no_remat_plan
from repro.perf.systems import MegaScalePerfModel

GPU = GPU_SPECS["h800"]
GB = 1024.0 ** 3
ELEM_BYTES = 2.0  # BF16 activations

# 128 GPUs: intra-node 8, PP covering layers, DP filling the rest.
SETUPS = {
    "mixtral-8x7b": ParallelConfig.megascale(8, pipeline_size=4,
                                             data_parallel_size=4),
    "mixtral-8x2b": ParallelConfig.megascale(8, pipeline_size=4,
                                             data_parallel_size=4),
}


def memory_breakdown(model_name, plan):
    model = MODEL_ZOO[model_name]
    pc = SETUPS[model_name]
    # 1F1B keeps up to pipeline_size micro-batches of activations alive
    # on the first stage.
    layers_per_stage = model.n_layers / pc.pipeline_size
    in_flight = pc.pipeline_size
    act = plan.retained_elements(model, pc, 1) * ELEM_BYTES \
        * layers_per_stage * in_flight
    static = param_memory_per_gpu(model, pc)["total"]
    return {"activations": act, "static": static, "total": act + static}


def run_fig16():
    rows = []
    train = TrainConfig(global_batch_size=128)
    for name in SETUPS:
        model = MODEL_ZOO[name]
        pc = SETUPS[name]
        sar = memory_breakdown(name, default_remat_plan())
        no_sar = memory_breakdown(name, no_remat_plan())

        mfu_sar = MegaScalePerfModel(selective_remat=True).iteration(
            model, pc, train, GPU).mfu(model, GPU)
        mfu_no = MegaScalePerfModel(selective_remat=False).iteration(
            model, pc, train, GPU).mfu(model, GPU)
        rows.append({
            "model": name,
            "act_sar": sar["activations"],
            "act_no": no_sar["activations"],
            "total_sar": sar["total"],
            "total_no": no_sar["total"],
            "act_savings": 1 - sar["activations"] / no_sar["activations"],
            "total_savings": 1 - sar["total"] / no_sar["total"],
            "mfu_sar": mfu_sar,
            "mfu_no": mfu_no,
        })
    return rows


@pytest.mark.benchmark(group="fig16")
def test_fig16_sar(benchmark):
    rows = benchmark(run_fig16)
    report(
        "Fig. 16: selective activation rematerialization (128 GPUs)",
        ["model", "act GB (SAR)", "act GB (no SAR)", "act saved",
         "total saved", "MFU (SAR)", "MFU (no SAR)"],
        [[r["model"], r["act_sar"] / GB, r["act_no"] / GB,
          f"{r['act_savings'] * 100:.1f}%",
          f"{r['total_savings'] * 100:.1f}%",
          f"{r['mfu_sar'] * 100:.2f}%", f"{r['mfu_no'] * 100:.2f}%"]
         for r in rows],
        notes="paper measured: -45.5%/-57.2% activations (8x7B/8x2B), "
              "-21.3%/-35% total, MFU within 0.5%. Our model tracks the "
              "paper's own Appendix A.2 formulas, which give ~66% per-"
              "layer savings; the lower measured figures include "
              "activations outside the MoE-layer graph (logits, "
              "attention workspace, fragmentation) that a layer-level "
              "model excludes.",
    )

    by_model = {r["model"]: r for r in rows}
    # Per-layer activation savings follow Appendix A.2 — roughly the
    # paper's "~50%" headline, between the measured 45.5%/57.2% and the
    # formula's 66%.
    for r in rows:
        assert 0.40 < r["act_savings"] < 0.75, r["model"]
    # Total memory saved is substantial but smaller than the activation
    # fraction (static parameter/optimizer bytes are untouched).
    for r in rows:
        assert 0.0 < r["total_savings"] < r["act_savings"]
    # Training speed essentially unchanged (paper: within 0.5%).
    for r in rows:
        assert abs(r["mfu_sar"] / r["mfu_no"] - 1) < 0.02, r["model"]
