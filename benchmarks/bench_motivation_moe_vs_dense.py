"""Motivation (§1) — MoE's sub-linear FLOP scaling vs dense models.

"This design leads to sub-linear scaling of FLOPs required as the model
size increases ... achieving an order-of-magnitude reduction in training
cost compared to dense models with equivalent model quality."  This
bench quantifies both halves on the Table 2 zoo: training FLOPs per
token for each MoE versus a dense model of the *same total parameter
count*, and the growth of FLOPs as experts are added at fixed top-k.
"""

import pytest

from conftest import report
from repro.core.config import MODEL_ZOO, ModelConfig


def dense_equivalent(moe: ModelConfig) -> ModelConfig:
    """A dense (1-expert, top-1) model with ~the same total params.

    Keeps depth/width; widens the single FFN until total parameters
    match the MoE's.
    """
    target_ffn_params = moe.n_experts * moe.expert_params
    dense_ffn = int(round(target_ffn_params
                          / (3 * moe.hidden_size)))
    return ModelConfig(
        moe.name + "-dense", moe.n_layers, moe.hidden_size,
        moe.n_heads, moe.gqa_ratio, dense_ffn, 1, 1,
        vocab_size=moe.vocab_size, seq_len=moe.seq_len)


def run_comparison():
    rows = []
    for name in ("internal-352b", "mixtral-8x7b", "mixtral-8x22b",
                 "deepseekmoe"):
        moe = MODEL_ZOO[name]
        dense = dense_equivalent(moe)
        rows.append({
            "model": name,
            "total_b": moe.total_params / 1e9,
            "moe_flops": moe.train_flops_per_token(),
            "dense_flops": dense.train_flops_per_token(),
            "savings": dense.train_flops_per_token()
            / moe.train_flops_per_token(),
        })

    # Scaling experts at fixed top-k: params grow, FLOPs stay ~flat.
    base = MODEL_ZOO["mixtral-8x7b"]
    scaling = []
    for experts in (8, 16, 32, 64):
        m = base.scaled(name=f"e{experts}", n_experts=experts)
        scaling.append({
            "experts": experts,
            "params_b": m.total_params / 1e9,
            "flops": m.train_flops_per_token(),
        })
    return rows, scaling


@pytest.mark.benchmark(group="motivation")
def test_moe_vs_dense(benchmark):
    rows, scaling = benchmark(run_comparison)
    report(
        "Motivation: training FLOPs/token, MoE vs equal-size dense",
        ["model", "total params", "MoE GFLOPs/tok", "dense GFLOPs/tok",
         "dense/MoE"],
        [[r["model"], f"{r['total_b']:.0f}B", r["moe_flops"] / 1e9,
          r["dense_flops"] / 1e9, f"{r['savings']:.1f}x"]
         for r in rows],
    )
    report(
        "Motivation: scaling experts at fixed top-k (Mixtral-8x7B base)",
        ["experts", "total params", "train GFLOPs/token"],
        [[s["experts"], f"{s['params_b']:.0f}B", s["flops"] / 1e9]
         for s in scaling],
        notes="parameters scale ~linearly with experts; FLOPs/token "
              "stay constant — the §1 sub-linear scaling",
    )

    for r in rows:
        assert r["savings"] > 2.0, r["model"]
    # The 352B model shows the near-order-of-magnitude gap of §1.
    big = next(r for r in rows if r["model"] == "internal-352b")
    assert big["savings"] > 7.0
    # FLOPs flat in expert count (within the router's tiny growth).
    flops = [s["flops"] for s in scaling]
    assert flops[-1] / flops[0] < 1.02
    params = [s["params_b"] for s in scaling]
    assert params[-1] / params[0] > 6.0
