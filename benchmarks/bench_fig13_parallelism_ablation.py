"""Figure 13 — training MFU under the four parallelism combinations.

Paper setup: one 8×H800 node, global batch 32, other optimizations
disabled, six models from Table 2 (layer counts trimmed to fit memory).
Paper result: SP+EP consistently wins, with 14.9%–32.9% higher MFU than
TP+TP; both the lower communication volume and EP's full-width expert
GEMMs contribute.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.core.schedule import OverlapConfig
from repro.perf.systems import SystemPerfModel

GPU = GPU_SPECS["h800"]
MODELS = ["internal-352b", "mixtral-8x7b", "mixtral-8x22b",
          "hunyuan-large", "phi-3.5-moe", "deepseekmoe"]
STRATEGIES = [("sp", "ep"), ("sp", "tp"), ("tp", "ep"), ("tp", "tp")]


def run_fig13():
    results = {}
    train = TrainConfig(global_batch_size=32)
    for name in MODELS:
        model = MODEL_ZOO[name].scaled(n_layers=4)  # fit in memory
        row = {}
        for attn, ffn in STRATEGIES:
            system = SystemPerfModel(
                name=f"{attn}+{ffn}",
                overlap=OverlapConfig.none(),  # isolate parallelism
                mem_eff=0.8, grad_elem_bytes=4.0)
            br = system.iteration(model, ParallelConfig(8, attn, ffn),
                                  train, GPU)
            row[f"{attn.upper()}+{ffn.upper()}"] = br.mfu(model, GPU)
        results[name] = row
    return results


@pytest.mark.benchmark(group="fig13")
def test_fig13_parallelism_ablation(benchmark):
    results = benchmark(run_fig13)
    table = []
    for name, row in results.items():
        gain = row["SP+EP"] / row["TP+TP"] - 1
        table.append([
            name,
            *(f"{row[s] * 100:.1f}%" for s in
              ("SP+EP", "SP+TP", "TP+EP", "TP+TP")),
            f"+{gain * 100:.1f}%",
        ])
    report(
        "Fig. 13: MFU by parallelism strategy (1 node x 8 H800)",
        ["model", "SP+EP", "SP+TP", "TP+EP", "TP+TP",
         "SP+EP vs TP+TP"],
        table,
        notes="paper: SP+EP wins everywhere, +14.9% to +32.9% vs TP+TP",
    )

    for name, row in results.items():
        # SP+EP strictly best for every model.
        assert row["SP+EP"] == max(row.values()), name
        # TP+TP strictly worst.
        assert row["TP+TP"] == min(row.values()), name
        gain = row["SP+EP"] / row["TP+TP"] - 1
        assert 0.10 < gain < 0.45, (name, gain)
        # Each single substitution already helps.
        assert row["SP+TP"] > row["TP+TP"], name
        assert row["TP+EP"] > row["TP+TP"], name
