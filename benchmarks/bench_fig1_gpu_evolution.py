"""Figure 1 — evolution of NVIDIA GPUs: compute outpaces interconnect.

The paper's motivating figure: across GPU generations, dense compute
throughput grows much faster than NVLink bandwidth, so the FLOPs
available per communicated byte keeps rising — which is why
communication became the MoE-training bottleneck (§1).  This bench
derives the ratio from the Table 4 specs and connects it to the exposed
communication the full system model predicts per generation.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.perf.systems import MegatronPerfModel

GENERATIONS = ["v100", "a100", "h100", "h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]


def run_fig1():
    rows = []
    base = GPU_SPECS["v100"]
    for name in GENERATIONS:
        gpu = GPU_SPECS[name]
        breakdown = MegatronPerfModel(full_recompute=False).iteration(
            MODEL, ParallelConfig.megatron(8, 1, 4),
            TrainConfig(global_batch_size=32), gpu)
        rows.append({
            "gpu": name,
            "tflops": gpu.peak_flops / 1e12,
            "nvlink": gpu.nvlink_bandwidth / 1e9,
            "ratio": gpu.flops_per_byte_nvlink,
            "ratio_growth": gpu.flops_per_byte_nvlink
            / base.flops_per_byte_nvlink,
            "exposed": breakdown.fraction("exposed_comm_time"),
        })
    return rows


@pytest.mark.benchmark(group="fig1")
def test_fig1_gpu_evolution(benchmark):
    rows = benchmark(run_fig1)
    report(
        "Fig. 1: GPU evolution — compute vs NVLink",
        ["GPU", "BF16 TFLOPS", "NVLink GB/s", "FLOPs/NVLink byte",
         "vs V100", "Megatron exposed comm"],
        [[r["gpu"], r["tflops"], r["nvlink"], f"{r['ratio']:.0f}",
          f"{r['ratio_growth']:.1f}x", f"{r['exposed'] * 100:.0f}%"]
         for r in rows],
        notes="compute/bandwidth ratio grows ~6x from V100 to H800 — "
              "why communication became the bottleneck (§1)",
    )

    ratios = {r["gpu"]: r["ratio"] for r in rows}
    # The compute/interconnect ratio grows monotonically through the
    # export-constrained H800, which pairs Hopper compute with reduced
    # NVLink.
    assert ratios["v100"] < ratios["a100"] < ratios["h100"] < \
        ratios["h800"]
    assert ratios["h800"] / ratios["v100"] > 4.0
    # And exposed communication under the no-overlap baseline grows
    # with the ratio (same parallelism, same model).
    exposed = {r["gpu"]: r["exposed"] for r in rows}
    assert exposed["h800"] > exposed["a100"] > 0.0
