"""Eqs. 5–9 — the scale-up ratio R and the §7 "Scale up" insights.

The paper closes with two claims about R = comp_time / comm_time for a
SwiGLU MoE under EP:

1. R is independent of the expert count, top-k, hidden size, parallel
   degree (asymptotically), and input size.
2. R depends only on the expert intermediate dimension and the hardware
   bandwidth/peak ratio — so on fixed hardware, models can scale as long
   as ``h_ffn`` is large enough.

This bench verifies both against a direct simulation: it builds actual
EP operator graphs across a grid of model knobs and compares the
measured FFN compute/communication time ratio with the closed form.
"""

import pytest

from conftest import report
from repro.core.analysis import scale_up_ratio
from repro.core.config import GPU_SPECS, MODEL_ZOO, ModelConfig, \
    ParallelConfig
from repro.core.operators import build_forward_graph

GPU = GPU_SPECS["h800"]


def measured_ratio(h_ffn, n_experts=8, top_k=2, hidden=512,
                   micro_batch=1, n=8):
    """FFN GEMM time over dispatch+combine comm time from the operator
    graph, using raw bandwidth/peak (no efficiency derating) to match
    the formula's idealized terms."""
    model = ModelConfig("probe", 1, hidden, 8, 2, h_ffn, n_experts,
                        top_k, vocab_size=128, seq_len=256)
    pc = ParallelConfig.megascale(n, ep_dispatch="a2a")
    graph = build_forward_graph(model, pc, micro_batch)
    comp = sum(op.flops for op in graph
               if op.name in ("fc1", "fc3", "fc2")) / GPU.peak_flops
    comm = sum(op.comm_bytes for op in graph.comm_ops()
               if op.name in ("dispatch_a2a", "combine_a2a")) \
        / GPU.nvlink_bandwidth
    return comp / comm


def run_scaleup():
    # Claim 1: invariance across model knobs at fixed h_ffn.
    invariance = []
    base = measured_ratio(h_ffn=2048)
    for label, kwargs in (
        ("experts 8→64", {"n_experts": 64, "top_k": 2}),
        ("top-k 2→6", {"top_k": 6}),
        ("hidden 512→1024", {"hidden": 1024}),
        ("micro-batch 1→4", {"micro_batch": 4}),
    ):
        invariance.append((label, measured_ratio(2048, **kwargs) / base))

    # Claim 2: R scales linearly with h_ffn; formula vs measured.
    sweep = []
    for h_ffn in (1408, 4096, 8192, 14336, 18304):
        formula = scale_up_ratio(h_ffn, GPU.nvlink_bandwidth,
                                 GPU.peak_flops, 8)
        sweep.append((h_ffn, formula, measured_ratio(h_ffn)))

    # RDMA scale-out threshold: minimum h_ffn for R > 1 at 50 GB/s.
    rdma_threshold = None
    for h_ffn in range(1024, 40000, 512):
        if scale_up_ratio(h_ffn, GPU.nic_bandwidth,
                          GPU.peak_flops, 8) > 1.0:
            rdma_threshold = h_ffn
            break
    return invariance, sweep, rdma_threshold


@pytest.mark.benchmark(group="scaleup")
def test_scaleup_ratio(benchmark):
    invariance, sweep, rdma_threshold = benchmark(run_scaleup)

    report(
        "Eqs. 5-9: R invariance to model knobs (ratio vs base config)",
        ["varied knob", "R / R_base"],
        [[label, f"{ratio:.4f}"] for label, ratio in invariance],
    )
    report(
        "Eqs. 5-9: R vs expert intermediate size (H800 NVLink)",
        ["h_ffn", "formula R", "measured R"],
        [[h, f"{f:.2f}", f"{m:.2f}"] for h, f, m in sweep],
        notes=f"min h_ffn for R>1 over RDMA (50 GB/s): "
              f"{rdma_threshold}",
    )

    # Claim 1: R unchanged (within 1%) under every model-knob change.
    for label, ratio in invariance:
        assert ratio == pytest.approx(1.0, rel=0.01), label
    # Claim 2: formula matches the graph-level measurement.
    for h_ffn, formula, measured in sweep:
        assert measured == pytest.approx(formula, rel=0.02), h_ffn
    # R grows linearly in h_ffn.
    assert sweep[-1][1] / sweep[0][1] == pytest.approx(
        sweep[-1][0] / sweep[0][0], rel=1e-6)
    # The large-expert Table 2 models sustain R > 1 on NVLink;
    # DeepSeekMoE's h_ffn = 1408 lands right at the R ≈ 1 boundary —
    # the §7 insight that only the expert dimension matters.
    for name in ("internal-352b", "mixtral-8x7b", "mixtral-8x22b",
                 "hunyuan-large"):
        model = MODEL_ZOO[name]
        r = scale_up_ratio(model.ffn_hidden_size, GPU.nvlink_bandwidth,
                           GPU.peak_flops, 8)
        assert r > 1.0, name
    marginal = scale_up_ratio(MODEL_ZOO["deepseekmoe"].ffn_hidden_size,
                              GPU.nvlink_bandwidth, GPU.peak_flops, 8)
    assert marginal == pytest.approx(1.0, rel=0.15)
    # Crossing to RDMA raises the required expert size ~8x.
    assert rdma_threshold is not None
    assert rdma_threshold > 8 * 1408
