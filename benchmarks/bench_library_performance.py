"""Microbenchmarks of the library itself (wall-clock, pytest-benchmark).

Unlike the table/figure benches (which regenerate *modelled* results),
these time the actual Python substrate: autograd step, MoE layer
forward/backward, simulated collectives, the event simulator, and a
full distributed trainer step.  They guard against performance
regressions in the reproduction itself.
"""

import numpy as np
import pytest

from repro.comm import World, all_gather, all_to_all_uneven
from repro.core.config import GPU_SPECS, MODEL_ZOO, ModelConfig, \
    ParallelConfig, TrainConfig
from repro.core.operators import build_backward_graph
from repro.core.schedule import HolisticScheduler, OverlapConfig
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.model.moe import MoELayer
from repro.perf.estimator import KernelModel
from repro.precision.optimizer import AdamW
from repro.sim.engine import simulate
from repro.tensor import Tensor

CONFIG = ModelConfig("perf", n_layers=2, hidden_size=64, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=96, n_experts=8,
                     top_k=2, vocab_size=128, seq_len=32)


@pytest.mark.benchmark(group="library")
def test_perf_moe_layer_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    moe = MoELayer(rng, 64, 96, 8, 2, dtype=np.float64)
    x = rng.standard_normal((4, 32, 64))

    def step():
        moe.zero_grad()
        xt = Tensor(x, requires_grad=True)
        out = moe(xt)
        (out.hidden.sum() + out.aux_loss).backward()
        return out.hidden.data

    result = benchmark(step)
    assert np.isfinite(result).all()


@pytest.mark.benchmark(group="library")
def test_perf_trainer_step(benchmark):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=32, aux_loss_coeff=0.01)
    trainer = MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=1e-3))
    corpus = MarkovCorpus(vocab_size=128, seed=0)
    batch = next(batch_iterator(corpus, 2, 32))

    result = benchmark(lambda: trainer.train_step(batch).loss)
    assert np.isfinite(result)


@pytest.mark.benchmark(group="library")
def test_perf_collectives(benchmark):
    rng = np.random.default_rng(0)
    world = World(8, 8)
    g = world.full_group()
    shards = [rng.standard_normal((256, 64)) for _ in range(8)]
    splits = [[32] * 8 for _ in range(8)]

    def step():
        all_gather(g, shards)
        all_to_all_uneven(g, shards, splits)
        return world.ledger.total_bytes()

    assert benchmark(step) > 0


@pytest.mark.benchmark(group="library")
def test_perf_schedule_and_simulate(benchmark):
    graph = build_backward_graph(MODEL_ZOO["mixtral-8x7b"],
                                 ParallelConfig.megascale(8), 1)
    km = KernelModel(GPU_SPECS["h800"])
    durations = km.durations(graph)
    scheduler = HolisticScheduler(OverlapConfig.full())

    def step():
        return simulate(scheduler.schedule(graph, durations)).makespan

    assert benchmark(step) > 0
