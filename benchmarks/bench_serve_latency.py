"""Continuous-batching serving latency under arrival processes.

The paper's training system decomposes attention and expert FFNs into
an operator DAG; ISSUE 9 reuses that IR for DisagMoE-style serving.
This bench measures the serving engine on its own deterministic terms
— the virtual clock and the modelled per-iteration costs — so every
percentile is an exact, CI-stable number:

1. Latency percentiles vs arrival process: the same request population
   served under Poisson arrivals (steady load) and bursty arrivals
   (admission-pressure worst case), at batch sizes 1/2/4, reporting
   p50/p95/p99, mean latency, throughput, and iteration counts.
   Continuous batching must beat the unbatched (batch=1) run on mean
   latency for both processes.
2. Mid-stream rank failure: a scheduled crash at the Nth bridge
   collective re-queues the in-flight requests; the leg must complete
   *every* admitted request, its outputs must stay bitwise-identical
   to the fault-free golden, and the latency overhead of the replay is
   reported.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ServeConfig
from repro.ft import FaultPlan, FaultSpec
from repro.model import MoETransformer
from repro.obs import Tracer
from repro.serve import (
    ServeEngine,
    VirtualClock,
    bursty_trace,
    poisson_trace,
)

CONFIG = ModelConfig("serve-bench", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=64, seq_len=64)
N_REQUESTS = 10


def make_trace(kind, seed=0):
    if kind == "bursty":
        return bursty_trace(N_REQUESTS, burst_size=4, burst_gap=3.0,
                            vocab=64, seed=seed)
    return poisson_trace(N_REQUESTS, rate=0.8, vocab=64, seed=seed)


def serve(model, requests, max_batch_size, crash_at=None,
          kv_blocks=64):
    config = ServeConfig(attention_ranks=2, expert_ranks=2,
                         kv_block_size=4, kv_blocks=kv_blocks,
                         max_batch_size=max_batch_size)
    world = World(config.world_size)
    if crash_at is not None:
        world.attach_fault_plan(FaultPlan(
            [FaultSpec(kind="crash", at_call=crash_at)]))
    clock = VirtualClock()
    tracer = Tracer(clock=clock)
    engine = ServeEngine(model, config, world=world, tracer=tracer,
                         clock=clock)
    try:
        result = engine.run(requests)
    finally:
        engine.shutdown()
    return result


@pytest.mark.benchmark(group="serve-latency")
def test_latency_vs_arrival_process(benchmark):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)

    def run_all():
        out = []
        for kind in ("poisson", "bursty"):
            requests = make_trace(kind)
            for batch in (1, 2, 4):
                out.append((kind, batch,
                            serve(model, requests, batch)))
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    mean_by_kind_batch = {}
    for kind, batch, result in results:
        lat = result.latency
        assert lat["count"] == float(N_REQUESTS)
        assert result.n_crashes == 0 and lat["p50"] > 0
        mean_by_kind_batch[(kind, batch)] = lat["mean"]
        rows.append((kind, batch, result.n_iterations, lat["p50"],
                     lat["p95"], lat["p99"], lat["mean"],
                     lat["throughput_tokens"]))
    for kind in ("poisson", "bursty"):
        # Continuous batching overlaps queueing with decode; at equal
        # modelled per-token cost it must beat serial service.
        assert mean_by_kind_batch[(kind, 4)] < \
            mean_by_kind_batch[(kind, 1)]
    report(
        "serve latency vs arrival process (virtual clock)",
        ["trace", "batch", "iters", "p50 s", "p95 s", "p99 s",
         "mean s", "tok/s"],
        rows,
        notes="deterministic percentiles: seeded traces + modelled "
              "iteration costs on the injected VirtualClock",
    )


@pytest.mark.benchmark(group="serve-latency")
def test_midstream_rank_failure_completes_all(benchmark):
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    requests = make_trace("poisson")

    def run_all():
        clean = serve(model, requests, 4)
        crashed = serve(model, requests, 4, crash_at=7)
        return clean, crashed

    clean, crashed = benchmark.pedantic(run_all, rounds=1,
                                        iterations=1)

    assert crashed.n_crashes == 1
    # Every admitted request completes despite the mid-stream failure,
    # and replay-from-scratch keeps outputs bitwise-identical.
    assert set(crashed.results) == set(clean.results) \
        == {r.request_id for r in requests}
    for rid, want in clean.results.items():
        got = crashed.results[rid]
        assert got.generated == want.generated
        assert all(np.array_equal(a, b)
                   for a, b in zip(got.logits, want.logits))
    replayed = sum(r.restarts for r in crashed.results.values())
    assert replayed >= 1
    rows = [
        ("fault-free", clean.n_iterations, 0, 0,
         clean.latency["p50"], clean.latency["p99"],
         clean.latency["mean"]),
        ("crash@call7", crashed.n_iterations, crashed.n_crashes,
         replayed, crashed.latency["p50"], crashed.latency["p99"],
         crashed.latency["mean"]),
    ]
    report(
        "serve mid-stream rank failure (crash -> re-queue -> replay)",
        ["leg", "iters", "crashes", "replays", "p50 s", "p99 s",
         "mean s"],
        rows,
        notes="all admitted requests complete; outputs bitwise-equal "
              "to the fault-free run",
    )
