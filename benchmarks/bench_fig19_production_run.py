"""Figure 19 — a long production run with checkpoint restarts.

Paper setup: a 200B-total / 20B-activated MoE trained for months on
10,000+ GPUs over multi-trillion tokens, restarted multiple times
(different colours in the figure).  Paper result: the loss keeps
converging smoothly across restarts.

The miniature reproduction trains for many more steps than the other
benches, injects three checkpoint/restart events, and checks the loss
trajectory is smooth (no restart discontinuities) and converging toward
the corpus's conditional entropy.
"""

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.data import MarkovCorpus, batch_iterator
from repro.model import MoETransformer
from repro.precision.optimizer import AdamW

CONFIG = ModelConfig("moe-200b-mini", n_layers=2, hidden_size=32,
                     n_heads=8, gqa_ratio=2, ffn_hidden_size=48,
                     n_experts=8, top_k=2, vocab_size=32, seq_len=16)
STEPS = 40
RESTARTS = (12, 24, 32)


def make_trainer(seed):
    model = MoETransformer(CONFIG, seed=seed, dtype=np.float64)
    train = TrainConfig(global_batch_size=8, micro_batch_size=8,
                        seq_len=CONFIG.seq_len, learning_rate=5e-3,
                        aux_loss_coeff=0.01)
    return MegaScaleTrainer(
        model, World(4, 4), ParallelConfig.megascale(4), train,
        optimizer=AdamW(model.parameters(), lr=5e-3))


def run_fig19():
    corpus = MarkovCorpus(vocab_size=32, branching=3, temperature=0.1,
                          seed=3)
    batches = list(batch_iterator(corpus, 8, CONFIG.seq_len, seed=4,
                                  limit=STEPS))
    trainer = make_trainer(seed=0)
    losses = []
    segments = []
    segment = 0
    for i, batch in enumerate(batches):
        if i in RESTARTS:
            # Simulated failure: save, build a fresh job, reload.
            state = trainer.state_dict()
            trainer = make_trainer(seed=1000 + i)
            trainer.load_state_dict(state)
            segment += 1
        losses.append(trainer.train_step(batch).lm_loss)
        segments.append(segment)
    return np.array(losses), segments, corpus.conditional_entropy()


@pytest.mark.benchmark(group="fig19")
def test_fig19_production_run(benchmark):
    losses, segments, entropy_floor = benchmark.pedantic(
        run_fig19, rounds=1, iterations=1)

    stride = 4
    report(
        "Fig. 19: long run with restarts (segment = restart epoch)",
        ["step", "segment", "lm loss"],
        [[i, segments[i], losses[i]]
         for i in range(0, STEPS, stride)],
        notes=f"corpus conditional entropy (loss floor) = "
              f"{entropy_floor:.3f} nats; restarts at {RESTARTS}",
    )

    # Overall convergence: final quarter clearly below the first.
    assert losses[-STEPS // 4:].mean() < 0.8 * losses[:STEPS // 4].mean()
    # Loss stays above (approaching) the information-theoretic floor.
    assert losses[-1] > entropy_floor * 0.9
    # No restart discontinuity: the step right after each restart is
    # within the normal step-to-step variation.
    steps_diff = np.abs(np.diff(losses))
    typical = np.percentile(steps_diff, 90)
    for restart in RESTARTS:
        jump = abs(losses[restart] - losses[restart - 1])
        assert jump <= max(typical * 2.0, 0.05), (restart, jump, typical)
    # The trend is monotone at coarse granularity.
    coarse = losses.reshape(-1, 8).mean(axis=1)
    assert all(a >= b - 0.02 for a, b in zip(coarse, coarse[1:]))
