"""Ablation — interleaved (virtual-stage) pipeline scheduling (§2.2).

Megatron-LM and MegaScale-MoE both use interleaved 1F1B, dividing each
stage into virtual chunks to cut the pipeline bubble by the interleave
factor.  This bench sweeps the virtual-stage count for the Table 3
strong-scaling setup and shows the bubble/MFU recovery — explaining why
the MFU decline in Table 3 (fixed batch, more GPUs) is a bubble effect.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.parallel.pipeline import bubble_fraction
from repro.perf.systems import MegaScalePerfModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["internal-352b"]


def run_sweep():
    rows = []
    train = TrainConfig(global_batch_size=720)
    for v in (1, 2, 3, 4):
        pc = ParallelConfig.megascale(8, 15, 12,
                                      virtual_pipeline_size=v)
        br = MegaScalePerfModel().iteration(MODEL, pc, train, GPU)
        m = 720 // 12
        rows.append({
            "v": v,
            "iter": br.iteration_time,
            "bubble_s": br.bubble_time,
            "bubble_frac": bubble_fraction(15, m, v),
            "mfu": br.mfu(MODEL, GPU),
        })
    return rows


@pytest.mark.benchmark(group="ablation-vpp")
def test_ablation_virtual_pipeline(benchmark):
    rows = benchmark(run_sweep)
    report(
        "Ablation: interleaved pipeline virtual stages (1,440 GPUs)",
        ["virtual stages", "iter (s)", "bubble (s)",
         "analytic bubble", "MFU"],
        [[r["v"], r["iter"], r["bubble_s"],
          f"{r['bubble_frac'] * 100:.1f}%", f"{r['mfu'] * 100:.1f}%"]
         for r in rows],
        notes="interleaving divides the (p-1) bubble term by v "
              "(Megatron-LM's schedule, adopted by MegaScale-MoE)",
    )

    iters = [r["iter"] for r in rows]
    bubbles = [r["bubble_s"] for r in rows]
    mfus = [r["mfu"] for r in rows]
    assert all(a > b for a, b in zip(iters, iters[1:]))
    assert all(a > b for a, b in zip(bubbles, bubbles[1:]))
    assert all(a < b for a, b in zip(mfus, mfus[1:]))
    # Bubble time scales as 1/v.
    assert bubbles[0] / bubbles[3] == pytest.approx(4.0, rel=1e-6)
