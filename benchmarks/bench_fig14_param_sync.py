"""Figure 14 — parameter synchronization time under SP vs TP attention.

Paper setup: model-parallel degree 8 (one node); per-GPU attention
parameter footprint 384–1,536 MB; FFN parameters fixed at 10 GB per GPU;
DP groups of 4 and 8 (32 and 64 GPUs total).  Paper result: SP and TP
attention synchronization times are consistently comparable, differing
by only 0.3%–3.1% — Appendix A.1's hierarchical-communication argument.
"""

import pytest

from conftest import report
from repro.comm.cost import (
    flat_sync_time,
    hierarchical_sync_time,
    ring_all_gather_time,
    ring_reduce_scatter_time,
)
from repro.core.config import GPU_SPECS
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
N = 8
MB = 1024.0 ** 2
GB = 1024.0 ** 3
ATTN_SIZES_MB = [384, 768, 1152, 1536]
FFN_PER_GPU = 10 * GB


def ffn_sync_time(dp, inter):
    """FFN parameters are sharded identically under both strategies."""
    return (ring_reduce_scatter_time(FFN_PER_GPU, dp, inter)
            + ring_all_gather_time(FFN_PER_GPU, dp, inter))


def run_fig14():
    km = KernelModel(GPU)
    intra, inter = km.intra_link(), km.inter_link()
    rows = []
    for dp in (4, 8):
        for attn_mb in ATTN_SIZES_MB:
            # attn_mb is the per-GPU attention footprint under SP (the
            # full replicated P); the same model under TP stores and
            # syncs the P/n shard.  Appendix A.1: identical inter-node
            # volume, SP's extra intra-node stages pipeline under it.
            p_bytes = attn_mb * MB
            sp = hierarchical_sync_time(p_bytes, N, dp, intra,
                                        inter) + ffn_sync_time(dp, inter)
            tp = flat_sync_time(p_bytes, N, dp, inter) \
                + ffn_sync_time(dp, inter)
            rows.append({
                "dp": dp,
                "attn_mb": attn_mb,
                "sp": sp,
                "tp": tp,
                "diff": abs(sp - tp) / tp,
            })
    return rows


@pytest.mark.benchmark(group="fig14")
def test_fig14_param_sync(benchmark):
    rows = benchmark(run_fig14)
    report(
        "Fig. 14: parameter sync time, SP vs TP attention",
        ["DP", "attn MB/GPU", "SP sync (ms)", "TP sync (ms)", "diff"],
        [[r["dp"], r["attn_mb"], r["sp"] * 1e3, r["tp"] * 1e3,
          f"{r['diff'] * 100:.1f}%"] for r in rows],
        notes="paper: SP and TP differ by only 0.3%-3.1%",
    )

    for r in rows:
        # The central claim: comparable sync cost despite n× more
        # replicated attention parameters under SP.
        assert r["diff"] < 0.05, r
    # Sync time grows with attention size and shrinks nowhere.
    for dp in (4, 8):
        times = [r["sp"] for r in rows if r["dp"] == dp]
        assert all(a <= b for a, b in zip(times, times[1:]))
