"""§7 "Scale up" — communication vs model-parallel degree.

"While increased TP reduces per-GPU computation, the communication
overhead remains constant ... leading to progressively longer
communication times ... In contrast, when scaling training with SP and
EP, the communication volume decreases as the parallel size n
increases."  This bench sweeps n and reports, per layer and per rank,
the communication volume and the no-overlap time share for TP+TP versus
SP+EP — making TP's scalability wall concrete.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
from repro.core.operators import build_forward_graph
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]
SIZES = [2, 4, 8, 16, 32]


def per_layer(n, attention, ffn):
    pc = ParallelConfig(n, attention, ffn)
    graph = build_forward_graph(MODEL, pc, 1)
    km = KernelModel(GPU)
    durations = km.durations(graph)
    comm_bytes = sum(op.comm_bytes for op in graph.comm_ops())
    comm_time = sum(durations[op.name] for op in graph.comm_ops())
    compute_time = sum(durations[op.name]
                       for op in graph.compute_ops())
    return comm_bytes, comm_time, compute_time


def run_sweep():
    rows = []
    for n in SIZES:
        tp_bytes, tp_comm, tp_comp = per_layer(n, "tp", "tp")
        ms_bytes, ms_comm, ms_comp = per_layer(n, "sp", "ep")
        rows.append({
            "n": n,
            "tp_mb": tp_bytes / 1e6,
            "ms_mb": ms_bytes / 1e6,
            "tp_comm_share": tp_comm / (tp_comm + tp_comp),
            "ms_comm_share": ms_comm / (ms_comm + ms_comp),
        })
    return rows


@pytest.mark.benchmark(group="scaleup-n")
def test_scaleup_parallel_size(benchmark):
    rows = benchmark(run_sweep)
    report(
        "§7: per-rank per-layer communication vs model-parallel size n",
        ["n", "TP+TP MB", "SP+EP MB", "TP comm share (no overlap)",
         "SP+EP comm share"],
        [[r["n"], r["tp_mb"], r["ms_mb"],
          f"{r['tp_comm_share'] * 100:.0f}%",
          f"{r['ms_comm_share'] * 100:.0f}%"] for r in rows],
        notes="TP volume ~constant in n while compute shrinks 1/n -> "
              "its comm share explodes; SP+EP volume falls with n",
    )

    tp_bytes = [r["tp_mb"] for r in rows]
    ms_bytes = [r["ms_mb"] for r in rows]
    # TP volume is ~constant in n (the (n-1)/n factor saturates)...
    assert tp_bytes[-1] / tp_bytes[0] < 2.0
    assert tp_bytes[-1] / tp_bytes[0] > 1.0
    # ...while SP+EP volume strictly decreases.
    assert all(a > b for a, b in zip(ms_bytes, ms_bytes[1:]))
    # TP's communication share grows monotonically toward domination;
    # the paper observed >50% when pushing TP across nodes.
    tp_share = [r["tp_comm_share"] for r in rows]
    assert all(a < b for a, b in zip(tp_share, tp_share[1:]))
    assert tp_share[-1] > 0.5
    # SP+EP's share stays bounded as n grows.
    ms_share = [r["ms_comm_share"] for r in rows]
    assert ms_share[-1] < ms_share[0] * 2.5
    assert ms_share[-1] < 0.5
