"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure from the paper's evaluation
(§6) and prints paper-vs-measured rows.  Run with::

    pytest benchmarks/ --benchmark-only -s

Each bench uses the ``benchmark`` fixture so timing is recorded, asserts
the paper's *qualitative* claims (who wins, by roughly what factor,
where crossovers fall), and emits its table through :func:`report`.
Measured rows are also appended to ``benchmarks/results.json`` so
EXPERIMENTS.md can be regenerated from a run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")


def report(title: str, headers: Sequence[str],
           rows: Sequence[Sequence], notes: str = "") -> None:
    """Print one experiment table and persist it for EXPERIMENTS.md."""
    widths = [
        max(len(str(h)), max((len(_fmt(r[i])) for r in rows), default=0))
        for i, h in enumerate(headers)
    ]
    lines = [f"\n=== {title} ==="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers,
                                                           widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(_fmt(v).ljust(w)
                               for v, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    print("\n".join(lines))

    record = {
        "title": title,
        "headers": list(headers),
        "rows": [[_fmt(v) for v in row] for row in rows],
        "notes": notes,
    }
    existing: List[Dict] = []
    if os.path.exists(RESULTS_PATH):
        try:
            with open(RESULTS_PATH) as handle:
                existing = json.load(handle)
        except (json.JSONDecodeError, OSError):
            existing = []
    existing = [r for r in existing if r["title"] != title]
    existing.append(record)
    with open(RESULTS_PATH, "w") as handle:
        json.dump(existing, handle, indent=1)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
