"""Figure 12 — iteration-time breakdown and MFU across GPU models.

Paper setup: Mixtral-8×7B on 32 GPUs (DP=4, intra-node degree 8) on
H800, H20, and A100.  Paper results: MegaScale-MoE outperforms
Megatron-LM by up to 1.58× in MFU; exposed communication shrinks to near
zero under MegaScale; MFU *decreases* as GPU compute capability grows
because memory-bound MoE ops (routing, scatter/gather) don't scale with
FLOPs.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.perf.systems import MegaScalePerfModel, MegatronPerfModel

MODEL = MODEL_ZOO["mixtral-8x7b"]
TRAIN = TrainConfig(global_batch_size=32)


def run_fig12():
    rows = []
    for gpu_name in ("h800", "a100", "h20"):
        gpu = GPU_SPECS[gpu_name]
        ms = MegaScalePerfModel().iteration(
            MODEL, ParallelConfig.megascale(8, 1, 4), TRAIN, gpu)
        mg = MegatronPerfModel(full_recompute=False).iteration(
            MODEL, ParallelConfig.megatron(8, 1, 4), TRAIN, gpu)
        rows.append({
            "gpu": gpu_name,
            "peak_tflops": gpu.peak_flops / 1e12,
            "ms": ms, "mg": mg,
            "ms_mfu": ms.mfu(MODEL, gpu),
            "mg_mfu": mg.mfu(MODEL, gpu),
        })
    return rows


@pytest.mark.benchmark(group="fig12")
def test_fig12_breakdown(benchmark):
    rows = benchmark(run_fig12)
    table = []
    for r in rows:
        for label, br, mfu in (("megatron", r["mg"], r["mg_mfu"]),
                               ("megascale", r["ms"], r["ms_mfu"])):
            table.append([
                r["gpu"], label,
                f"{br.iteration_time:.3f}",
                f"{br.fraction('attn_time') * 100:.0f}%",
                f"{br.fraction('gemm_time') * 100:.0f}%",
                f"{br.fraction('memory_op_time') * 100:.0f}%",
                f"{br.fraction('exposed_comm_time') * 100:.0f}%",
                f"{mfu * 100:.1f}%",
            ])
    report(
        "Fig. 12: Mixtral-8x7B on 32 GPUs — breakdown and MFU",
        ["GPU", "system", "iter (s)", "FlashAttn", "GEMM", "mem ops",
         "exposed comm", "MFU"],
        table,
        notes="paper: up to 1.58x MFU gain; MFU decreases with GPU "
              "compute capability",
    )

    by_gpu = {r["gpu"]: r for r in rows}
    # MegaScale beats Megatron on every GPU; H800 gap is the largest.
    ratios = {g: r["ms_mfu"] / r["mg_mfu"] for g, r in by_gpu.items()}
    for gpu, ratio in ratios.items():
        assert ratio > 1.05, (gpu, ratio)
    assert ratios["h800"] == max(ratios.values())
    assert ratios["h800"] == pytest.approx(1.58, rel=0.2)
    # MFU inversely ordered by compute capability (h20 < a100 < h800
    # in FLOPs; opposite in MFU).
    assert by_gpu["h20"]["ms_mfu"] > by_gpu["a100"]["ms_mfu"] > \
        by_gpu["h800"]["ms_mfu"]
    # Exposed communication nearly eliminated by MegaScale.
    for r in rows:
        assert r["ms"].fraction("exposed_comm_time") < 0.05
        assert r["ms"].fraction("exposed_comm_time") < \
            0.4 * max(r["mg"].fraction("exposed_comm_time"), 1e-9)
