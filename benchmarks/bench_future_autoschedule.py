"""Future work (§7) — automatic operator scheduling vs the hand-tailored
holistic schedule.

The paper: "we seek to automate operator scheduling within the search
space ... We leave automatic optimization for future work."  This bench
runs the randomized-local-search scheduler against the holistic baseline
on every strategy's forward and backward graphs and reports how much (if
anything) automation recovers — quantifying how close the hand schedule
already is to the searchable optimum.
"""

import pytest

from conftest import report
from repro.core.autoschedule import AutoScheduler
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig
from repro.core.operators import build_backward_graph, build_forward_graph
from repro.core.schedule import OverlapConfig
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]
CASES = [
    ("SP+EP fwd", ParallelConfig.megascale(8), "fwd"),
    ("SP+EP bwd", ParallelConfig.megascale(8), "bwd"),
    ("SP+EP(agrs) bwd", ParallelConfig.megascale(8, ep_dispatch="ag_rs"),
     "bwd"),
    ("TP+TP bwd", ParallelConfig.megatron(8), "bwd"),
]


def run_search():
    km = KernelModel(GPU)
    rows = []
    for label, parallel, which in CASES:
        if which == "fwd":
            graph = build_forward_graph(MODEL, parallel, 1)
        else:
            graph = build_backward_graph(MODEL, parallel, 1,
                                         selective_remat=True)
        result = AutoScheduler(
            overlap=OverlapConfig.full(), budget=120, seed=0
        ).optimize(graph, km.durations(graph))
        rows.append({
            "case": label,
            "holistic_ms": result.baseline_makespan * 1e3,
            "auto_ms": result.makespan * 1e3,
            "gain": result.gain,
            "evals": result.evaluations,
        })
    return rows


@pytest.mark.benchmark(group="future-autoschedule")
def test_future_autoschedule(benchmark):
    rows = benchmark.pedantic(run_search, rounds=1, iterations=1)
    report(
        "Future work: automatic vs holistic operator scheduling",
        ["graph", "holistic (ms)", "auto (ms)", "gain", "evaluations"],
        [[r["case"], r["holistic_ms"], r["auto_ms"],
          f"{r['gain'] * 100:.2f}%", r["evals"]] for r in rows],
        notes="search never regresses; small gains mean the hand "
              "schedule is already near the searchable optimum (§7)",
    )

    for r in rows:
        # Never worse than the hand-tailored schedule...
        assert r["auto_ms"] <= r["holistic_ms"] + 1e-9, r["case"]
        # ...and the holistic schedule is within 10% of anything the
        # search finds — the paper's engineering effort, validated.
        assert r["gain"] < 0.10, r["case"]
