"""Future work (§7) — automatic operator scheduling vs the hand-tailored
holistic schedule.

The paper: "we seek to automate operator scheduling within the search
space ... We leave automatic optimization for future work."  This bench
runs the randomized-local-search scheduler against the holistic baseline
on every strategy's forward and backward graphs and reports how much (if
anything) automation recovers — quantifying how close the hand schedule
already is to the searchable optimum.
"""

import pytest

from conftest import report
from repro.core.autoschedule import AutoScheduler, optimize_plan
from repro.core.cluster import ClusterSpec
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, TrainConfig
from repro.core.operators import build_backward_graph, build_forward_graph
from repro.core.schedule import OverlapConfig
from repro.perf.estimator import KernelModel

GPU = GPU_SPECS["h800"]
MODEL = MODEL_ZOO["mixtral-8x7b"]
CASES = [
    ("SP+EP fwd", ParallelConfig.megascale(8), "fwd"),
    ("SP+EP bwd", ParallelConfig.megascale(8), "bwd"),
    ("SP+EP(agrs) bwd", ParallelConfig.megascale(8, ep_dispatch="ag_rs"),
     "bwd"),
    ("TP+TP bwd", ParallelConfig.megatron(8), "bwd"),
]


def run_search():
    km = KernelModel(GPU)
    rows = []
    for label, parallel, which in CASES:
        if which == "fwd":
            graph = build_forward_graph(MODEL, parallel, 1)
        else:
            graph = build_backward_graph(MODEL, parallel, 1,
                                         selective_remat=True)
        result = AutoScheduler(
            overlap=OverlapConfig.full(), budget=120, seed=0
        ).optimize(graph, km.durations(graph))
        rows.append({
            "case": label,
            "holistic_ms": result.baseline_makespan * 1e3,
            "auto_ms": result.makespan * 1e3,
            "gain": result.gain,
            "evals": result.evaluations,
        })
    return rows


@pytest.mark.benchmark(group="future-autoschedule")
def test_future_autoschedule(benchmark):
    rows = benchmark.pedantic(run_search, rounds=1, iterations=1)
    report(
        "Future work: automatic vs holistic operator scheduling",
        ["graph", "holistic (ms)", "auto (ms)", "gain", "evaluations"],
        [[r["case"], r["holistic_ms"], r["auto_ms"],
          f"{r['gain'] * 100:.2f}%", r["evals"]] for r in rows],
        notes="search never regresses; small gains mean the hand "
              "schedule is already near the searchable optimum (§7)",
    )

    for r in rows:
        # Never worse than the hand-tailored schedule...
        assert r["auto_ms"] <= r["holistic_ms"] + 1e-9, r["case"]
        # ...and the holistic schedule is within 10% of anything the
        # search finds — the paper's engineering effort, validated.
        assert r["gain"] < 0.10, r["case"]


PLAN_CASES = [
    ("mixtral-8x2b 2x8 h800",
     MODEL_ZOO["mixtral-8x2b"],
     ClusterSpec.homogeneous("h800", n_nodes=2),
     TrainConfig(global_batch_size=64, micro_batch_size=2)),
    ("mixtral-8x7b 4x8 h800",
     MODEL_ZOO["mixtral-8x7b"],
     ClusterSpec.homogeneous("h800", n_nodes=4),
     TrainConfig(global_batch_size=512, micro_batch_size=2)),
]


def run_plan_search():
    rows = []
    for label, model, cluster, train in PLAN_CASES:
        result = optimize_plan(model, cluster, train, budget=60, seed=0)
        best = result.plan.best
        rows.append({
            "case": label,
            "plan": best.candidate.describe(),
            "feasible": f"{result.plan.n_feasible}"
                        f"/{result.plan.n_enumerated}",
            "iter_ms": best.iteration_time * 1e3,
            "cross_gb": best.cross_node_a2a_bytes / 1e9,
            "layer_gain": result.layer_gain,
            "fwd": result.fwd,
            "bwd": result.bwd,
        })
    return rows


@pytest.mark.benchmark(group="future-autoschedule")
def test_future_plan_search(benchmark):
    """Composed §7 search: pick the plan, then the op order inside it."""
    rows = benchmark.pedantic(run_plan_search, rounds=1, iterations=1)
    report(
        "Future work: calibrated plan-space + schedule search",
        ["cluster", "best plan", "feasible", "iter (ms)",
         "cross-node a2a (GB)", "layer gain"],
        [[r["case"], r["plan"], r["feasible"], r["iter_ms"],
          f"{r['cross_gb']:.1f}", f"{r['layer_gain'] * 100:.2f}%"]
         for r in rows],
        notes="plan picked by the calibrated simulator over the full "
              "feasible space; schedule search never regresses the "
              "holistic baseline (§7)",
    )

    for r in rows:
        # MegaScale's strategy family falls out of the search; on the
        # paper's 8-GPU-node shape the exact n=8 choice does too.
        assert r["plan"].startswith("SP+EP"), r["case"]
        if "8x7b" in r["case"]:
            assert r["plan"].startswith("SP+EP n=8"), r["case"]
        for sched in (r["fwd"], r["bwd"]):
            assert sched.makespan <= sched.baseline_makespan + 1e-9, \
                r["case"]
