"""Figure 11 — weak-scaling training performance of the 352B MoE model.

Paper setup: global batch scaled 360→1,080 with GPUs 480→1,440.  Paper
result: MegaScale-MoE sustains 1.74–1.79× Megatron-LM's throughput with
near-linear scaling, while Megatron-LM's per-GPU throughput sags ~2.7%
from growing communication.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.perf.systems import MegaScalePerfModel, MegatronPerfModel

MODEL = MODEL_ZOO["internal-352b"]
GPU = GPU_SPECS["h800"]
POINTS = [(480, 360), (720, 540), (960, 720), (1200, 900), (1440, 1080)]


def run_fig11():
    rows = []
    for n_gpus, gbs in POINTS:
        dp = n_gpus // 120
        train = TrainConfig(global_batch_size=gbs)
        ms = MegaScalePerfModel().iteration(
            MODEL, ParallelConfig.megascale(8, 15, dp), train, GPU)
        mg = MegatronPerfModel().iteration(
            MODEL, ParallelConfig.megatron(8, 15, dp), train, GPU)
        rows.append({
            "n_gpus": n_gpus,
            "gbs": gbs,
            "ms_tput": ms.tokens_per_second,
            "mg_tput": mg.tokens_per_second,
            "speedup": mg.iteration_time / ms.iteration_time,
        })
    return rows


@pytest.mark.benchmark(group="fig11")
def test_fig11_weak_scaling(benchmark):
    rows = benchmark(run_fig11)
    base = rows[0]
    report(
        "Fig. 11: weak scaling, 352B on H800",
        ["GPUs", "global batch", "Megatron tok/s", "MegaScale tok/s",
         "speedup", "MegaScale per-GPU vs 480"],
        [[r["n_gpus"], r["gbs"],
          f"{r['mg_tput'] / 1e3:.0f}k", f"{r['ms_tput'] / 1e3:.0f}k",
          f"{r['speedup']:.2f}x",
          f"{(r['ms_tput'] / r['n_gpus']) / (base['ms_tput'] / base['n_gpus']) * 100:.1f}%"]
         for r in rows],
        notes="paper: 1.74-1.79x speedup, near-linear MegaScale scaling",
    )

    for r in rows:
        assert 1.55 < r["speedup"] < 2.0
    # Near-linear: per-GPU throughput within 2% of the 480-GPU point.
    for r in rows[1:]:
        per_gpu = r["ms_tput"] / r["n_gpus"]
        base_per_gpu = base["ms_tput"] / base["n_gpus"]
        assert abs(per_gpu / base_per_gpu - 1) < 0.02
    # Throughput triples from 480→1,440 GPUs.
    assert rows[-1]["ms_tput"] / rows[0]["ms_tput"] == \
        pytest.approx(3.0, rel=0.05)
