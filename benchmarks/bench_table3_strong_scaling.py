"""Table 3 — strong-scaling training performance of the 352B MoE model.

Paper setup: Internal-352B on 240–1,440 H800 GPUs, global batch fixed at
720 sequences of 8,192 tokens, PP=15, intra-node degree 8 (TP for
Megatron-LM, SP=EP for MegaScale-MoE).  Paper results: MegaScale-MoE is
1.65–1.88× faster, reaching 1.41M tokens/s on 1,440 GPUs with MFU
declining from 32.5% to 27.9% as bubbles grow.
"""

import pytest

from conftest import report
from repro.core.config import GPU_SPECS, MODEL_ZOO, ParallelConfig, \
    TrainConfig
from repro.perf.mfu import days_for_tokens
from repro.perf.systems import MegaScalePerfModel, MegatronPerfModel

MODEL = MODEL_ZOO["internal-352b"]
GPU = GPU_SPECS["h800"]
PAPER = {
    240: (39.94, 151.1e3, 21.61, 272.9e3),
    480: (19.56, 301.1e3, 11.83, 498.6e3),
    720: (13.70, 430.5e3, 7.97, 740.1e3),
    960: (10.82, 550.2e3, 6.12, 963.8e3),
    1440: (7.90, 746.6e3, 4.19, 1407.7e3),
}


def run_table3():
    rows = []
    train = TrainConfig(global_batch_size=720)
    for n_gpus, paper in PAPER.items():
        dp = n_gpus // 120
        ms = MegaScalePerfModel().iteration(
            MODEL, ParallelConfig.megascale(8, 15, dp), train, GPU)
        mg = MegatronPerfModel().iteration(
            MODEL, ParallelConfig.megatron(8, 15, dp), train, GPU)
        rows.append({
            "n_gpus": n_gpus,
            "mg_iter": mg.iteration_time,
            "ms_iter": ms.iteration_time,
            "mg_tput": mg.tokens_per_second,
            "ms_tput": ms.tokens_per_second,
            "speedup": mg.iteration_time / ms.iteration_time,
            "ms_mfu": ms.mfu(MODEL, GPU),
            "ms_days": days_for_tokens(ms.tokens_per_second),
            "paper": paper,
        })
    return rows


@pytest.mark.benchmark(group="table3")
def test_table3_strong_scaling(benchmark):
    rows = benchmark(run_table3)

    table = []
    for r in rows:
        mg_p_iter, mg_p_tput, ms_p_iter, ms_p_tput = r["paper"]
        table.append([
            r["n_gpus"],
            f"{r['mg_iter']:.2f}/{mg_p_iter:.2f}",
            f"{r['ms_iter']:.2f}/{ms_p_iter:.2f}",
            f"{r['ms_tput'] / 1e3:.0f}k/{ms_p_tput / 1e3:.0f}k",
            f"{r['speedup']:.2f}x/"
            f"{mg_p_iter / ms_p_iter:.2f}x",
            f"{r['ms_mfu'] * 100:.1f}%",
            f"{r['ms_days']:.1f}",
        ])
    report(
        "Table 3: strong scaling, 352B on H800 (measured/paper)",
        ["GPUs", "Megatron iter(s)", "MegaScale iter(s)",
         "MegaScale tok/s", "speedup", "MFU*", "days/1T"],
        table,
        notes="* our MFU counts model FLOPs (2·params + causal attn); "
              "the paper's convention counts ~1.28x more FLOPs/token, "
              "so paper MFU 32.5-27.9% corresponds to ~25-21% here.",
    )

    # Shape assertions vs the paper.
    for r in rows:
        mg_p_iter, _, ms_p_iter, _ = r["paper"]
        paper_speedup = mg_p_iter / ms_p_iter
        assert 1.5 < r["speedup"] < 2.1
        assert abs(r["speedup"] - paper_speedup) / paper_speedup < 0.25
        assert r["ms_iter"] == pytest.approx(ms_p_iter, rel=0.25)
        assert r["mg_iter"] == pytest.approx(mg_p_iter, rel=0.25)
    # Headline: ~1.4M tokens/s at 1,440 GPUs.
    assert rows[-1]["ms_tput"] == pytest.approx(1.41e6, rel=0.15)
    # MFU declines with scale (fixed global batch → more bubbles).
    mfus = [r["ms_mfu"] for r in rows]
    assert all(a > b for a, b in zip(mfus, mfus[1:]))
