"""Hot path — threaded SPMD executor vs sequential rank loops.

The SPMD execution engine (docs/INTERNALS.md §8) runs one thread per
simulated rank with barrier-rendezvous collectives.  Its contract is
twofold: threaded runs are *bitwise identical* to the classic
sequential rank loops, and on a multi-core host the concurrent rank
bodies plus the zero-copy collective fast paths make the 4-rank SP+EP
forward+backward materially faster (the numpy kernels release the GIL).

This bench measures the median-of-5 fwd+bwd wall time in both modes on
the same model/seed/batch, always asserts the bitwise-identity half of
the contract (losses, every parameter gradient, ledger byte totals),
and asserts the >= 1.5x speedup half only when the host actually has
more than one core — wall-clock parallelism is machine-dependent, so
the speedup number stays out of the regression harness (which tracks
deterministic metrics only; see benchmarks/regression.py).
"""

import os
import statistics
import time

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.model import MoETransformer
from repro.runtime import backward as runtime_backward

CONFIG = ModelConfig("hotpath", n_layers=2, hidden_size=64, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=128, n_experts=8,
                     top_k=2, vocab_size=128, seq_len=64)
RANKS = 4
REPEATS = 5
SPEEDUP_FLOOR = 1.5


def _fwd_bwd(trainer, tokens):
    """One gradient computation; returns the three loss scalars."""
    trainer.model.zero_grad()
    total, lm, aux = trainer.loss(tokens)
    runtime_backward(total, executor=trainer.executor,
                     fault_plan=trainer.world.fault_plan,
                     tracer=trainer.world.tracer)
    return total.item(), lm.item(), aux.item()


def run_mode(execution):
    """Median-of-5 fwd+bwd wall time plus the values it computed."""
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    world = World(RANKS, ranks_per_node=RANKS)
    parallel = ParallelConfig(model_parallel_size=RANKS, attention="sp",
                              ffn="ep", ep_dispatch="a2a")
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=CONFIG.seq_len, learning_rate=1e-2,
                        aux_loss_coeff=0.01, execution=execution)
    trainer = MegaScaleTrainer(model, world, parallel, train)
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, CONFIG.vocab_size,
                          size=(2, CONFIG.seq_len + 1))
    _fwd_bwd(trainer, tokens)  # warm-up: rope memo, allocator, caches
    times, losses = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        losses.append(_fwd_bwd(trainer, tokens))
        times.append(time.perf_counter() - start)
    grads = {name: p.grad.copy()
             for name, p in model.named_parameters()
             if p.grad is not None}
    return {
        "median_s": statistics.median(times),
        "losses": losses,
        "grads": grads,
        "ledger_bytes": world.ledger.total_bytes(),
        "ledger_counts": world.ledger.counts(),
    }


def run_both():
    return run_mode("sequential"), run_mode("threaded")


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_threaded_speedup(benchmark):
    seq, thr = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Bitwise identity always holds, whatever the host looks like.
    assert seq["losses"] == thr["losses"]
    assert seq["grads"].keys() == thr["grads"].keys()
    for name in seq["grads"]:
        np.testing.assert_array_equal(seq["grads"][name],
                                      thr["grads"][name], err_msg=name)
    assert seq["ledger_bytes"] == thr["ledger_bytes"]
    assert seq["ledger_counts"] == thr["ledger_counts"]

    speedup = seq["median_s"] / thr["median_s"]
    cores = os.cpu_count() or 1
    multicore = cores >= 2
    report(
        "Hot path: threaded SPMD vs sequential rank loops "
        "(4-rank SP+EP fwd+bwd, median of 5)",
        ["mode", "median fwd+bwd (ms)", "speedup", "bitwise identical"],
        [["sequential", seq["median_s"] * 1e3, 1.0, "yes"],
         ["threaded", thr["median_s"] * 1e3, speedup, "yes"]],
        notes=(f"host cores = {cores}; speedup floor "
               f"{SPEEDUP_FLOOR}x is asserted only on multi-core hosts"
               + ("" if multicore else " — SKIP (single core)")),
    )
    if multicore:
        assert speedup >= SPEEDUP_FLOOR, (
            f"threaded speedup {speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host"
        )
    else:
        print(f"SKIP (single core): speedup assertion skipped; "
              f"measured {speedup:.2f}x on {cores} core")
