"""Hot path — vectorized and threaded DAG backends vs sequential loops.

The SPMD execution engine (docs/INTERNALS.md §8) runs one thread per
simulated rank with barrier-rendezvous collectives; the vectorized DAG
backend (docs/INTERNALS.md §12) instead stacks all ranks on a leading
axis and runs every op as one batched numpy kernel, turning collectives
into axis permutations.  The contract is twofold: every execution mode
is *bitwise identical* to the classic sequential rank loops, and on a
multi-core host the threaded mode beats sequential (concurrent rank
bodies, GIL-releasing kernels) while the vectorized mode beats threaded
by a larger margin still (no per-rank Python dispatch, no rendezvous,
one BLAS-friendly GEMM per op).

This bench measures the median-of-5 fwd+bwd wall time in all three
modes on the same model/seed/batch, always asserts and reports the
bitwise-identity half of the contract (losses, every parameter
gradient, ledger byte totals and record counts) — including on 1-core
runners — and asserts the speedup floors (threaded >= 1.5x sequential,
vectorized >= 2x threaded) only when the host actually has more than
one core: wall-clock parallelism is machine-dependent, so the speedup
numbers stay out of the regression harness (which tracks deterministic
metrics only; see benchmarks/regression.py).
"""

import os
import statistics
import time

import numpy as np
import pytest

from conftest import report
from repro.comm import World
from repro.core.config import ModelConfig, ParallelConfig, TrainConfig
from repro.core.trainer import MegaScaleTrainer
from repro.model import MoETransformer
from repro.runtime import backward as runtime_backward

CONFIG = ModelConfig("hotpath", n_layers=2, hidden_size=64, n_heads=8,
                     gqa_ratio=2, ffn_hidden_size=128, n_experts=8,
                     top_k=2, vocab_size=128, seq_len=192)
RANKS = 4
REPEATS = 5
MODES = ("sequential", "threaded", "vectorized")
#: threaded must beat sequential by this factor on a multi-core host.
SPEEDUP_FLOOR = 1.5
#: vectorized must beat *threaded* by this factor on a multi-core host.
VEC_SPEEDUP_FLOOR = 2.0


def _fwd_bwd(trainer, tokens):
    """One gradient computation; returns the three loss scalars."""
    trainer.model.zero_grad()
    total, lm, aux = trainer.loss(tokens)
    runtime_backward(total, executor=trainer.executor,
                     fault_plan=trainer.world.fault_plan,
                     tracer=trainer.world.tracer)
    return total.item(), lm.item(), aux.item()


def run_mode(execution):
    """Median-of-5 fwd+bwd wall time plus the values it computed."""
    model = MoETransformer(CONFIG, seed=0, dtype=np.float64)
    world = World(RANKS, ranks_per_node=RANKS)
    parallel = ParallelConfig(model_parallel_size=RANKS, attention="sp",
                              ffn="ep", ep_dispatch="a2a")
    train = TrainConfig(global_batch_size=2, micro_batch_size=2,
                        seq_len=CONFIG.seq_len, learning_rate=1e-2,
                        aux_loss_coeff=0.01, execution=execution)
    trainer = MegaScaleTrainer(model, world, parallel, train)
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, CONFIG.vocab_size,
                          size=(2, CONFIG.seq_len + 1))
    _fwd_bwd(trainer, tokens)  # warm-up: rope memo, allocator, caches
    times, losses = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        losses.append(_fwd_bwd(trainer, tokens))
        times.append(time.perf_counter() - start)
    grads = {name: p.grad.copy()
             for name, p in model.named_parameters()
             if p.grad is not None}
    return {
        "median_s": statistics.median(times),
        "losses": losses,
        "grads": grads,
        "ledger_bytes": world.ledger.total_bytes(),
        "ledger_counts": world.ledger.counts(),
    }


def run_all():
    return {mode: run_mode(mode) for mode in MODES}


def _assert_identical(base, other, mode):
    """Bitwise identity of one mode against the sequential baseline."""
    assert base["losses"] == other["losses"], mode
    assert base["grads"].keys() == other["grads"].keys(), mode
    for name in base["grads"]:
        np.testing.assert_array_equal(base["grads"][name],
                                      other["grads"][name],
                                      err_msg=f"{mode}:{name}")
    assert base["ledger_bytes"] == other["ledger_bytes"], mode
    assert base["ledger_counts"] == other["ledger_counts"], mode


@pytest.mark.benchmark(group="hotpath")
def test_hotpath_execution_speedup(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    seq, thr, vec = (results[m] for m in MODES)

    # Bitwise identity always holds, whatever the host looks like.
    for mode in ("threaded", "vectorized"):
        _assert_identical(seq, results[mode], mode)

    thr_speedup = seq["median_s"] / thr["median_s"]
    vec_speedup = seq["median_s"] / vec["median_s"]
    vec_over_thr = thr["median_s"] / vec["median_s"]
    cores = os.cpu_count() or 1
    multicore = cores >= 2

    # The identity result is reported unconditionally — a 1-core runner
    # still prints and persists the full table, only the speedup floors
    # go unasserted there.
    report(
        "Hot path: execution modes on the 4-rank SP+EP fwd+bwd "
        "(median of 5)",
        ["mode", "median fwd+bwd (ms)", "speedup vs sequential",
         "bitwise identical"],
        [["sequential", seq["median_s"] * 1e3, 1.0, "yes"],
         ["threaded", thr["median_s"] * 1e3, thr_speedup, "yes"],
         ["vectorized", vec["median_s"] * 1e3, vec_speedup, "yes"]],
        notes=(f"host cores = {cores}; vectorized is "
               f"{vec_over_thr:.2f}x the threaded mode; floors "
               f"(threaded >= {SPEEDUP_FLOOR}x sequential, vectorized "
               f">= {VEC_SPEEDUP_FLOOR}x threaded) are asserted only "
               "on multi-core hosts"
               + ("" if multicore else " — SKIP (single core)")),
    )
    if multicore:
        assert thr_speedup >= SPEEDUP_FLOOR, (
            f"threaded speedup {thr_speedup:.2f}x below the "
            f"{SPEEDUP_FLOOR}x floor on a {cores}-core host"
        )
        assert vec_over_thr >= VEC_SPEEDUP_FLOOR, (
            f"vectorized is only {vec_over_thr:.2f}x threaded, below "
            f"the {VEC_SPEEDUP_FLOOR}x floor on a {cores}-core host"
        )
    else:
        print(f"SKIP (single core): speedup floors unasserted; "
              f"measured threaded {thr_speedup:.2f}x, vectorized "
              f"{vec_over_thr:.2f}x threaded on {cores} core")
